// detlint — the determinism lint for the serving fleet.
//
// The repo's core contract is that every serving-visible stream
// (verdicts, outcomes, telemetry fingerprints, fault schedules) is a
// pure function of the accepted-block order. Nondeterminism only ever
// leaks in through a handful of doors, and all of them are visible at
// the token level in the source:
//
//   wall-clock  — std::chrono clock reads, time()/clock_gettime()/
//                 gettimeofday(). Wall time is allowed ONLY in fields
//                 explicitly exempted from determinism comparisons
//                 (wall_s spans, bench timing); everything else must
//                 use stream time or block indices.
//   rand        — rand()/srand()/drand48()/std::random_device/
//                 std::random_shuffle. All randomness in the tree is
//                 counter-based splitmix64 keyed on deterministic
//                 coordinates; ambient RNG state is banned outright.
//   unordered   — std::unordered_{map,set,multimap,multiset}. Their
//                 iteration order is libstdc++-internal and can leak
//                 into any stream built by walking one. A token scanner
//                 cannot prove a given container is never iterated, so
//                 EVERY use must carry a justification (allowlist entry
//                 or pragma) stating why its layout cannot escape.
//   raw-mutex   — std::mutex / std::shared_mutex / std::timed_mutex /
//                 std::recursive_mutex spelled outside common/sync.h.
//                 Every lock in the tree must be an annotated
//                 ivc::ts_mutex so Clang Thread Safety Analysis sees
//                 it; a raw std::mutex is invisible to the analysis.
//
// The scanner strips comments and string literals before matching, so
// prose about std::mutex (or this header) never trips a rule. Two
// suppression channels exist, both carrying a reason:
//
//   inline pragma  — `// detlint: allow(<rule>) <reason>` on the
//                    offending line;
//   allowlist file — lines of `<rule> <path>` (exact, relative to the
//                    repo root) or `<rule> <dir/>` (prefix), checked
//                    in at tools/detlint_rules.
//
// Allowlist entries that no longer suppress anything are reported as
// stale and fail the run — the exception list cannot rot.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ivc::tools::detlint {

// One rule hit at a specific source line.
struct finding {
  std::string rule;  // "wall-clock" | "rand" | "unordered" | "raw-mutex"
  std::string path;  // relative to options::root
  std::size_t line = 0;  // 1-based
  std::string text;      // the offending source line, trimmed
};

// One parsed allowlist entry.
struct allow_entry {
  std::string rule;
  std::string path;  // exact path, or a prefix when it ends with '/'
  std::size_t line = 0;  // line in the rules file, for diagnostics
};

struct report {
  std::vector<finding> violations;  // unsuppressed — these fail the lint
  std::vector<finding> suppressed;  // matched a pragma or allowlist entry
  // Allowlist entries that suppressed nothing this run (rot), plus any
  // rules-file parse problems. Non-empty fails the lint.
  std::vector<std::string> stale;
};

struct options {
  std::string root;  // repo root; scanned paths are reported relative to it
  std::vector<std::string> scan_dirs;  // relative to root, e.g. {"src"}
  std::string rules_path;  // allowlist file; empty = no allowlist
};

// Names of every rule the scanner knows, in report order.
const std::vector<std::string>& rule_names();

// Scans one in-memory file (unit-test entry point). `rel_path` is the
// path findings are reported under; the allowlist is applied, pragmas
// always are.
void scan_source(const std::string& rel_path, const std::string& text,
                 const std::vector<allow_entry>& allowlist, report& out);

// Parses an allowlist file. Unknown rules or malformed lines land in
// `errors` (formatted, with line numbers).
std::vector<allow_entry> parse_rules_file(const std::string& path,
                                          std::vector<std::string>& errors);

// Full run: walks every .h/.cpp under root/scan_dirs in sorted order
// (the lint's own output is deterministic), applies the allowlist, and
// appends stale-entry diagnostics.
report run(const options& opts);

// Human-readable dump of a report; returns true when the lint is clean
// (no violations, nothing stale).
bool print_report(const report& rep);

}  // namespace ivc::tools::detlint
