#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ivc::tools::detlint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

struct rule_def {
  const char* name;
  // Identifiers banned as exact tokens.
  std::vector<const char*> idents;
  // Substrings banned with identifier-boundary checks at pattern edges.
  std::vector<const char*> substrs;
};

const std::vector<rule_def>& rules() {
  static const std::vector<rule_def> defs = {
      {"wall-clock",
       {"system_clock", "steady_clock", "high_resolution_clock",
        "clock_gettime", "gettimeofday", "timespec_get", "localtime",
        "gmtime"},
       {"time(nullptr", "time(NULL"}},
      {"rand",
       {"rand", "srand", "drand48", "lrand48", "mrand48", "random_device",
        "random_shuffle"},
       {}},
      {"unordered",
       {"unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"},
       {}},
      {"raw-mutex",
       {},
       {"std::mutex", "std::shared_mutex", "std::timed_mutex",
        "std::recursive_mutex", "std::recursive_timed_mutex",
        "std::shared_timed_mutex"}},
  };
  return defs;
}

// One source line after comment/string stripping, with the pragma rules
// extracted from its comments.
struct scrubbed_line {
  std::string code;
  std::vector<std::string> allowed_rules;  // detlint: allow(<rule>)
};

// Collects `detlint: allow(<rule>)` pragmas out of comment text.
void collect_pragmas(const std::string& comment,
                     std::vector<std::string>& out) {
  static const std::string kKey = "detlint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kKey, pos)) != std::string::npos) {
    const std::size_t start = pos + kKey.size();
    const std::size_t end = comment.find(')', start);
    if (end == std::string::npos) {
      break;
    }
    out.push_back(comment.substr(start, end - start));
    pos = end;
  }
}

// Splits a translation unit into lines with comments and string/char
// literals blanked out (so prose and literals never trip a rule) while
// keeping the pragma text reachable.
std::vector<scrubbed_line> scrub(const std::string& text) {
  std::vector<scrubbed_line> lines(1);
  std::string comment;  // comment text accumulated for the current line

  enum class state { code, line_comment, block_comment, str, chr, raw_str };
  state st = state::code;
  std::string raw_delim;  // for raw string literals: )delim"

  auto end_line = [&](std::size_t) {
    collect_pragmas(comment, lines.back().allowed_rules);
    comment.clear();
    lines.emplace_back();
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == state::line_comment) {
        st = state::code;
      }
      end_line(i);
      continue;
    }
    switch (st) {
      case state::code:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          st = state::line_comment;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          st = state::block_comment;
          ++i;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (i == 0 || !is_ident_char(text[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          while (j < n && text[j] != '(') {
            ++j;
          }
          raw_delim.assign(1, ')');
          raw_delim.append(text, i + 2, j - (i + 2));
          raw_delim.push_back('"');
          st = state::raw_str;
          i = j;  // consume through the opening '('
          lines.back().code.push_back(' ');
        } else if (c == '"') {
          st = state::str;
          lines.back().code.push_back(' ');
        } else if (c == '\'') {
          st = state::chr;
          lines.back().code.push_back(' ');
        } else {
          lines.back().code.push_back(c);
        }
        break;
      case state::line_comment:
        comment.push_back(c);
        break;
      case state::block_comment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          st = state::code;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case state::str:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '"') {
          st = state::code;
        }
        break;
      case state::chr:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '\'') {
          st = state::code;
        }
        break;
      case state::raw_str:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = state::code;
        }
        break;
    }
  }
  collect_pragmas(comment, lines.back().allowed_rules);
  return lines;
}

bool has_ident(const std::string& code, const std::vector<const char*>& set) {
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    if (!is_ident_char(code[i]) ||
        std::isdigit(static_cast<unsigned char>(code[i])) != 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && is_ident_char(code[j])) {
      ++j;
    }
    for (const char* name : set) {
      if (code.compare(i, j - i, name) == 0) {
        return true;
      }
    }
    i = j;
  }
  return false;
}

bool has_substr(const std::string& code, const char* pat) {
  const std::string p{pat};
  std::size_t pos = 0;
  while ((pos = code.find(p, pos)) != std::string::npos) {
    const bool lhs_ok = pos == 0 || !is_ident_char(p.front()) ||
                        !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + p.size();
    const bool rhs_ok = end >= code.size() || !is_ident_char(p.back()) ||
                        !is_ident_char(code[end]);
    if (lhs_ok && rhs_ok) {
      return true;
    }
    ++pos;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) {
    ++a;
  }
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) {
    --b;
  }
  return s.substr(a, b - a);
}

bool entry_matches(const allow_entry& entry, const finding& f) {
  if (entry.rule != f.rule) {
    return false;
  }
  if (!entry.path.empty() && entry.path.back() == '/') {
    return f.path.compare(0, entry.path.size(), entry.path) == 0;
  }
  return f.path == entry.path;
}

bool known_rule(const std::string& name) {
  for (const rule_def& def : rules()) {
    if (name == def.name) {
      return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const rule_def& def : rules()) {
      out.emplace_back(def.name);
    }
    return out;
  }();
  return names;
}

void scan_source(const std::string& rel_path, const std::string& text,
                 const std::vector<allow_entry>& allowlist, report& out) {
  const std::vector<scrubbed_line> lines = scrub(text);
  // The original text, split the same way, for finding snippets.
  std::vector<std::string> raw;
  {
    std::stringstream ss{text};
    std::string line;
    while (std::getline(ss, line)) {
      raw.push_back(line);
    }
  }
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const scrubbed_line& sl = lines[li];
    for (const rule_def& def : rules()) {
      bool hit = has_ident(sl.code, def.idents);
      for (std::size_t si = 0; !hit && si < def.substrs.size(); ++si) {
        hit = has_substr(sl.code, def.substrs[si]);
      }
      if (!hit) {
        continue;
      }
      finding f;
      f.rule = def.name;
      f.path = rel_path;
      f.line = li + 1;
      f.text = li < raw.size() ? trim(raw[li]) : std::string{};
      const bool pragma_ok =
          std::find(sl.allowed_rules.begin(), sl.allowed_rules.end(),
                    f.rule) != sl.allowed_rules.end();
      bool listed = false;
      for (const allow_entry& entry : allowlist) {
        if (entry_matches(entry, f)) {
          listed = true;
          break;
        }
      }
      (pragma_ok || listed ? out.suppressed : out.violations)
          .push_back(std::move(f));
    }
  }
}

std::vector<allow_entry> parse_rules_file(const std::string& path,
                                          std::vector<std::string>& errors) {
  std::vector<allow_entry> entries;
  std::ifstream in{path};
  if (!in) {
    errors.push_back("detlint: cannot open rules file: " + path);
    return entries;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    std::stringstream ss{line};
    allow_entry entry;
    entry.line = lineno;
    std::string extra;
    if (!(ss >> entry.rule >> entry.path)) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": malformed allowlist line (want `<rule> <path>`)");
      continue;
    }
    if (!known_rule(entry.rule)) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": unknown rule `" + entry.rule + "`");
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

report run(const options& opts) {
  namespace fs = std::filesystem;
  report rep;
  std::vector<allow_entry> allowlist;
  if (!opts.rules_path.empty()) {
    allowlist = parse_rules_file(opts.rules_path, rep.stale);
  }

  std::vector<std::string> files;  // relative paths
  for (const std::string& dir : opts.scan_dirs) {
    const fs::path base = fs::path{opts.root} / dir;
    if (!fs::exists(base)) {
      rep.stale.push_back("detlint: scan dir does not exist: " +
                          base.string());
      continue;
    }
    for (const auto& de : fs::recursive_directory_iterator{base}) {
      if (!de.is_regular_file()) {
        continue;
      }
      const std::string ext = de.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      files.push_back(
          fs::relative(de.path(), fs::path{opts.root}).generic_string());
    }
  }
  // Directory iteration order is filesystem-dependent; the determinism
  // lint's own output is sorted.
  std::sort(files.begin(), files.end());

  for (const std::string& rel : files) {
    std::ifstream in{fs::path{opts.root} / rel, std::ios::binary};
    std::stringstream ss;
    ss << in.rdbuf();
    scan_source(rel, ss.str(), allowlist, rep);
  }

  // Self-check: every allowlist entry must still match a real line
  // (violation or suppressed — either proves the entry is live).
  for (const allow_entry& entry : allowlist) {
    bool used = false;
    for (const finding& f : rep.suppressed) {
      if (entry_matches(entry, f)) {
        used = true;
        break;
      }
    }
    for (std::size_t i = 0; !used && i < rep.violations.size(); ++i) {
      used = entry_matches(entry, rep.violations[i]);
    }
    if (!used) {
      rep.stale.push_back(opts.rules_path + ":" +
                          std::to_string(entry.line) + ": stale allowlist " +
                          "entry `" + entry.rule + " " + entry.path +
                          "` matches nothing");
    }
  }
  return rep;
}

bool print_report(const report& rep) {
  for (const finding& f : rep.violations) {
    std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.text.c_str());
  }
  for (const std::string& msg : rep.stale) {
    std::printf("%s\n", msg.c_str());
  }
  std::printf(
      "detlint: %zu violation(s), %zu suppressed, %zu stale/error line(s)\n",
      rep.violations.size(), rep.suppressed.size(), rep.stale.size());
  return rep.violations.empty() && rep.stale.empty();
}

}  // namespace ivc::tools::detlint
