// CLI wrapper for the determinism lint. Usage:
//
//   detlint --root <repo> --rules <allowlist> [--scan <rel_dir>]...
//
// Exit 0 when clean, 1 on violations or stale allowlist entries, 2 on
// usage errors. Run from anywhere; all paths in the output are relative
// to --root.
#include <cstdio>
#include <cstring>
#include <string>

#include "detlint.h"

int main(int argc, char** argv) {
  ivc::tools::detlint::options opts;
  opts.root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    const bool has_value = i + 1 < argc;
    if (arg == "--root" && has_value) {
      opts.root = argv[++i];
    } else if (arg == "--rules" && has_value) {
      opts.rules_path = argv[++i];
    } else if (arg == "--scan" && has_value) {
      opts.scan_dirs.emplace_back(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: detlint --root DIR [--rules FILE] "
                   "[--scan REL_DIR]...\n");
      return 2;
    }
  }
  if (opts.scan_dirs.empty()) {
    opts.scan_dirs = {"src"};
  }
  const ivc::tools::detlint::report rep = ivc::tools::detlint::run(opts);
  return ivc::tools::detlint::print_report(rep) ? 0 : 1;
}
