// End-to-end scenarios: attack rig → air → victim device → recognizer,
// and genuine-talker → air → device. Every experiment in bench/ runs
// through these two paths, so attacked and genuine captures share the
// same channel and microphone physics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include <optional>

#include "acoustics/noise.h"
#include "acoustics/room.h"
#include "asr/intelligibility.h"
#include "asr/recognizer.h"
#include "attack/planner.h"
#include "audio/buffer.h"
#include "common/rng.h"
#include "mic/device_profiles.h"
#include "synth/commands.h"

namespace ivc::sim {

struct environment_config {
  acoustics::air_model air;
  double ambient_spl_db = 38.0;
  acoustics::noise_kind ambient_kind = acoustics::noise_kind::speech_shaped;
};

struct attack_scenario {
  attack::rig_config rig;
  mic::device_profile device = mic::phone_profile();
  double distance_m = 2.0;
  environment_config environment;
  std::string command_id = "take_picture";
  synth::voice_params voice = synth::male_voice();
  // Seed for the victim recognizer's enrolled template bank. 0 (the
  // default) derives it from the session seed, matching the legacy
  // per-session enrollment bit for bit. Experiments that model ONE
  // victim across many sessions (the engine's scenario-path grids) set
  // it explicitly so every session shares one cached enrollment.
  std::uint64_t enrollment_seed = 0;
};

struct trial_result {
  bool success = false;  // recognizer accepted the intended command
  asr::recognition_result recognition;
  // Band-envelope correlation between the capture and the clean command.
  double intelligibility = 0.0;
  audio::buffer capture;  // what the device recorded (device rate)
};

// One prepared attack: the rig is built once (conditioning + splitting are
// the expensive steps); distance/power/device mutate cheaply between
// trials, which is what the sweep drivers rely on.
class attack_session {
 public:
  // `seed` fixes the command rendition and all per-trial noise streams.
  attack_session(attack_scenario scenario, std::uint64_t seed);

  void set_distance(double distance_m);
  void set_total_power(double watts);
  void set_device(const mic::device_profile& device);
  // Swaps the trace-cancellation setting (the F-R10 adaptive-attacker
  // axis): re-assembles the rig from the cached conditioned baseband,
  // so synthesis, conditioning, and enrollment all happen once per
  // session however many settings a sweep visits. Preserves the current
  // array power.
  void set_cancellation(const std::optional<attack::cancellation_config>& c);

  double distance_m() const { return scenario_.distance_m; }
  double total_power_w() const { return rig_.array.total_power_w(); }
  std::size_t num_speakers() const { return rig_.num_speakers; }
  const attack::attack_rig& rig() const { return rig_; }
  const audio::buffer& clean_command() const { return clean_; }
  const asr::recognizer& command_recognizer() const { return *recognizer_; }

  // Runs one attack trial; `trial_index` decorrelates noise streams and
  // makes each trial individually reproducible.
  trial_result run_trial(std::uint64_t trial_index) const;

  // The pressure field at the device port for a trial (exposed so the
  // defense corpus builder can record through custom microphones).
  audio::buffer render_field(std::uint64_t trial_index) const;

 private:
  attack_scenario scenario_;
  attack::attack_rig rig_;
  audio::buffer clean_;  // clean command at device capture rate
  // Conditioned baseband before cancellation: set_cancellation
  // re-assembles the rig from here instead of re-conditioning.
  audio::buffer conditioned_;
  // Shared with the process-wide template cache: copying a session (the
  // engine's per-point/per-chunk pattern) no longer copies the enrolled
  // template bank.
  std::shared_ptr<const asr::recognizer> recognizer_;
  ivc::rng base_rng_;
  // The rig's field at the device is deterministic given distance/power,
  // so it is rendered once and reused across trials (only ambient and
  // microphone noise vary per trial).
  mutable audio::buffer cached_field_;
  mutable bool field_valid_ = false;
};

// Builds a recognizer enrolled with clean templates of every command in
// the bank, rendered with the standard voices. Always enrolls from
// scratch; sessions go through shared_enrolled_recognizer instead.
asr::recognizer make_enrolled_recognizer(double capture_rate_hz,
                                         std::uint64_t seed);

// Process-wide enrolled-template cache, keyed by (capture rate,
// enrollment seed) — enrollment is deterministic in those two, so a hit
// is bit-identical to a fresh enrollment. Thread-safe; each distinct
// key enrolls exactly once per process.
std::shared_ptr<const asr::recognizer> shared_enrolled_recognizer(
    double capture_rate_hz, std::uint64_t seed);

// Drops every cached enrollment (tests and the perf harness use this to
// measure the cold path; sessions holding a recognizer keep it alive).
void clear_enrolled_recognizer_cache();

// Talker and device placed inside the shoebox meeting room
// (image-source model). When set on a genuine_scenario, the voice
// renders through the room's reflections instead of free-field
// propagation and `distance_m` is ignored.
struct room_placement {
  acoustics::room_model room;
  acoustics::vec3 talker{1.5, 1.0, 1.2};
  acoustics::vec3 device{5.0, 3.0, 1.0};
};

struct genuine_scenario {
  std::string phrase_id = "hello_how";  // from command or benign bank
  synth::voice_params voice = synth::male_voice();
  double distance_m = 1.5;
  double level_db_spl_at_1m = 65.0;
  environment_config environment;
  mic::device_profile device = mic::phone_profile();
  std::optional<room_placement> room;
};

// Renders a genuine utterance through air + microphone; returns the
// device capture. The analog path runs at 48 kHz (speech carries no
// ultrasound, so the wideband rate is unnecessary). One rng stream
// threads through voice, ambient, and microphone noise — the corpus
// builder depends on that stream layout staying put. Grid experiments
// use genuine_session instead, whose per-trial streams decorrelate the
// way attack_session's do.
audio::buffer run_genuine_capture(const genuine_scenario& scenario,
                                  ivc::rng& rng);

// One prepared genuine talker: the voice rendition renders once (the
// expensive step); ambient level, distance, talker level, and device
// mutate cheaply between trials. The propagated field is cached per
// placement, so an ambient sweep pays only noise synthesis and the
// microphone per trial. Mirrors attack_session: `seed` fixes the
// rendition, and every trial's ambient/microphone noise streams are
// pure functions of (seed, trial_index) — never of mutation history or
// thread schedule.
class genuine_session {
 public:
  genuine_session(genuine_scenario scenario, std::uint64_t seed);

  void set_ambient(double spl_db);
  void set_distance(double distance_m);
  void set_level(double db_spl_at_1m);
  void set_device(const mic::device_profile& device);

  const genuine_scenario& scenario() const { return scenario_; }
  const audio::buffer& voice() const { return voice_; }

  // One genuine capture at the device; `trial_index` decorrelates the
  // ambient and microphone noise streams and makes each trial
  // individually reproducible.
  audio::buffer run_trial(std::uint64_t trial_index) const;

  // Renders and caches the propagated field now. The engine warms the
  // prototype before fanning out task-private copies, so an ambient
  // sweep inherits the field instead of re-propagating per task.
  void prepare() const { field(); }

 private:
  const audio::buffer& field() const;  // voice at the device, pre-noise

  genuine_scenario scenario_;
  audio::buffer voice_;  // rendition at the analog rate, unscaled
  ivc::rng base_rng_;
  mutable audio::buffer cached_field_;
  mutable bool field_valid_ = false;
};

}  // namespace ivc::sim
