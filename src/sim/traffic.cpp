#include "sim/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "mic/frontend.h"
#include "synth/commands.h"
#include "synth/synthesizer.h"

namespace ivc::sim {
namespace {

double draw(ivc::rng& rng, const std::pair<double, double>& range) {
  return rng.uniform(range.first, range.second);
}

}  // namespace

std::size_t session_script::num_blocks() const {
  expects(block_samples > 0, "session_script: block_samples must be > 0");
  return (capture.size() + block_samples - 1) / block_samples;
}

audio::buffer session_script::block(std::size_t b) const {
  expects(b < num_blocks(), "session_script: block index out of range");
  const std::size_t start = b * block_samples;
  const std::size_t end = std::min(start + block_samples, capture.size());
  return audio::buffer{
      {capture.samples.begin() + static_cast<std::ptrdiff_t>(start),
       capture.samples.begin() + static_cast<std::ptrdiff_t>(end)},
      capture.sample_rate_hz};
}

double session_script::block_arrival_s(std::size_t b) const {
  expects(b < num_blocks(), "session_script: block index out of range");
  const std::size_t end = std::min((b + 1) * block_samples, capture.size());
  return start_s + static_cast<double>(end) / capture.sample_rate_hz;
}

double session_script::end_s() const {
  return block_arrival_s(num_blocks() - 1);
}

traffic_generator::traffic_generator(traffic_config config, std::uint64_t seed)
    : config_{std::move(config)}, base_rng_{seed} {
  expects(config_.num_sessions > 0, "traffic_generator: need >= 1 session");
  expects(config_.attack_fraction >= 0.0 && config_.attack_fraction <= 1.0,
          "traffic_generator: attack_fraction must be in [0,1]");
  expects(config_.block_s > 0.0, "traffic_generator: block_s must be > 0");
  expects(config_.utterances_per_session >= 1,
          "traffic_generator: need >= 1 utterance per session");
  expects(config_.start_spread_s >= 0.0,
          "traffic_generator: start_spread_s must be >= 0");
  expects(config_.session_rate_hz >= 0.0,
          "traffic_generator: session_rate_hz must be >= 0");
  if (config_.devices.empty()) {
    config_.devices = mic::all_profiles();
  }
  // Start offsets come from one dedicated stream past every per-session
  // id (sessions own ids 4i .. 4i+3), drawn in index order — adding or
  // changing the pacing never changes any session's audio.
  start_s_.assign(config_.num_sessions, 0.0);
  ivc::rng arrival_rng = base_rng_.split(4 * config_.num_sessions);
  if (config_.session_rate_hz > 0.0) {
    double t = 0.0;
    for (double& start : start_s_) {
      // Exponential inter-arrival gap: -ln(1 - U) / rate, U in [0, 1).
      t += -std::log(1.0 - arrival_rng.uniform()) / config_.session_rate_hz;
      start = t;
    }
  } else if (config_.start_spread_s > 0.0) {
    for (double& start : start_s_) {
      start = arrival_rng.uniform(0.0, config_.start_spread_s);
    }
  }
}

double traffic_generator::session_start_s(std::size_t index) const {
  expects(index < config_.num_sessions,
          "traffic_generator: session index out of range");
  return start_s_[index];
}

session_script traffic_generator::script(std::size_t index) const {
  expects(index < config_.num_sessions,
          "traffic_generator: session index out of range");
  // All draws for session `index` come from streams split off the run
  // seed by the index — nothing depends on which sessions rendered
  // before this one. Each session owns a contiguous block of four
  // stream ids (params, noise, per-side session seed), so no two
  // sessions' streams can collide at any fleet size.
  ivc::rng params_rng = base_rng_.split(4 * index);
  ivc::rng noise_rng = base_rng_.split(4 * index + 1);

  session_script s;
  s.index = index;
  s.start_s = start_s_[index];
  s.is_attack = params_rng.bernoulli(config_.attack_fraction);
  // Devices cycle round-robin (not a random draw): every profile is
  // guaranteed to appear once the fleet is at least as large as the
  // device list, which a device-matrix reading of the results needs.
  const mic::device_profile& device =
      config_.devices[index % config_.devices.size()];
  s.device_name = device.name;
  s.ambient_spl_db = draw(params_rng, config_.ambient_spl_db);
  const double rate = device.mic.capture_rate_hz;
  s.block_samples = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(config_.block_s * rate)));

  // Per-utterance captures. Trial indices decorrelate the ambient and
  // microphone noise of repeated utterances of one session.
  std::vector<audio::buffer> parts;
  parts.push_back(audio::silence(draw(params_rng, config_.gap_s), rate));
  if (s.is_attack) {
    const std::vector<synth::command>& bank = synth::command_bank();
    attack_scenario sc;
    sc.rig = config_.rig;
    sc.device = device;
    sc.distance_m = draw(params_rng, config_.attack_distance_m);
    sc.environment.ambient_spl_db = s.ambient_spl_db;
    sc.command_id = bank[static_cast<std::size_t>(params_rng.uniform_int(
                             0, static_cast<std::int64_t>(bank.size()) - 1))]
                        .id;
    // One victim across the whole fleet: every session shares the cached
    // enrollment instead of enrolling per stream.
    sc.enrollment_seed = 1;
    s.phrase_id = sc.command_id;
    s.intended_command_id = sc.command_id;
    s.distance_m = sc.distance_m;
    const attack_session session{sc, base_rng_.split(4 * index + 2).seed()};
    const mic::microphone microphone{device.mic};
    for (std::size_t u = 0; u < config_.utterances_per_session; ++u) {
      // render_field folds ambient noise in per trial; the microphone
      // noise stream is traffic-owned (the script defines its own
      // determinism, it does not replicate attack_session::run_trial).
      ivc::rng mic_rng = noise_rng.split(2 * u);
      parts.push_back(microphone.record(session.render_field(u), mic_rng));
      parts.push_back(audio::silence(draw(params_rng, config_.gap_s), rate));
    }
  } else {
    // Genuine talkers speak benign chatter AND real commands — the
    // serving layer must pass both.
    const std::vector<synth::command>& benign = synth::benign_bank();
    const std::vector<synth::command>& commands = synth::command_bank();
    const std::size_t total = benign.size() + commands.size();
    const auto pick = static_cast<std::size_t>(
        params_rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
    const synth::command& phrase =
        pick < benign.size() ? benign[pick] : commands[pick - benign.size()];
    genuine_scenario g;
    g.phrase_id = phrase.id;
    // A genuine user issuing a real command expects it to execute; benign
    // chatter carries no intent (and executing anything on it is a bug).
    if (pick >= benign.size()) {
      s.intended_command_id = phrase.id;
    }
    const synth::voice_params base_voice = params_rng.bernoulli(0.5)
                                               ? synth::female_voice()
                                               : synth::male_voice();
    g.voice = synth::perturbed_voice(base_voice, params_rng);
    g.distance_m = draw(params_rng, config_.genuine_distance_m);
    g.level_db_spl_at_1m = draw(params_rng, config_.genuine_level_db);
    g.environment.ambient_spl_db = s.ambient_spl_db;
    g.device = device;
    s.phrase_id = g.phrase_id;
    s.distance_m = g.distance_m;
    const genuine_session session{g, base_rng_.split(4 * index + 3).seed()};
    for (std::size_t u = 0; u < config_.utterances_per_session; ++u) {
      parts.push_back(session.run_trial(u));
      parts.push_back(audio::silence(draw(params_rng, config_.gap_s), rate));
    }
  }
  s.capture = audio::concat(parts);
  return s;
}

std::vector<session_script> traffic_generator::render_all() const {
  std::vector<session_script> scripts(config_.num_sessions);
  thread_pool pool{config_.num_threads};
  pool.parallel_for(config_.num_sessions,
                    [&](std::size_t i) { scripts[i] = script(i); });
  return scripts;
}

}  // namespace ivc::sim
