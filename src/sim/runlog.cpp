#include "sim/runlog.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>

#include "common/error.h"
#include "common/json_min.h"

namespace ivc::sim {
namespace {

// FNV-1a, 64-bit: stable across platforms and runs (std::hash is not).
std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x0000'0100'0000'01b3ULL;
  }
  // Separator so {"ab","c"} and {"a","bc"} hash apart.
  h ^= 0x1f;
  h *= 0x0000'0100'0000'01b3ULL;
  return h;
}

std::string utc_timestamp_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return std::string{buf};
}

}  // namespace

std::string grid_signature(const result_table& table) {
  std::string axes;
  for (const std::string& name : table.axis_names()) {
    if (!axes.empty()) {
      axes += '*';
    }
    axes += name;
  }
  std::uint64_t h = 0xcbf2'9ce4'8422'2325ULL;  // FNV offset basis
  for (const std::string& name : table.axis_names()) {
    h = fnv1a(h, name);
  }
  for (const result_table::row& r : table.rows()) {
    for (const std::string& label : r.labels) {
      h = fnv1a(h, label);
    }
  }
  char hash[24];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(h));
  return axes + "|" + std::to_string(table.size()) + "|" + hash;
}

std::string run_key(const run_record& record) {
  return record.figure + "|" + record.grid_signature + "|" +
         std::to_string(record.seed) + "|" + std::to_string(record.trials);
}

void append_run_record(const std::string& path, const run_record& record) {
  std::ofstream out{path, std::ios::app};
  ensures(out.good(), "runlog: cannot open '" + path + "'");
  // The seed is written as a string: it is a 64-bit identity, and JSON
  // readers (ours included) round numbers through a double, which
  // corrupts values above 2^53.
  out << "{\"figure\": \"" << json_escape(record.figure)
      << "\", \"grid\": \"" << json_escape(record.grid_signature)
      << "\", \"seed\": \"" << record.seed << "\", \"trials\": "
      << record.trials << ", \"timestamp\": \""
      << json_escape(record.timestamp.empty() ? utc_timestamp_now()
                                              : record.timestamp)
      << "\", \"metrics\": {";
  for (std::size_t i = 0; i < record.metrics.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << json_escape(record.metrics[i].first)
        << "\": " << format_double_exact(record.metrics[i].second);
  }
  out << "}}\n";
  ensures(out.good(), "runlog: write to '" + path + "' failed");
}

std::vector<run_record> read_run_log(const std::string& path) {
  std::vector<run_record> records;
  std::ifstream in{path};
  if (!in.good()) {
    return records;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    try {
      const json::value doc = json::parse(line);
      run_record r;
      if (const json::value* v = doc.find("figure")) {
        r.figure = v->string();
      }
      if (const json::value* v = doc.find("grid")) {
        r.grid_signature = v->string();
      }
      if (const json::value* v = doc.find("seed")) {
        // Written as a string (exact); tolerate a number for foreign or
        // older lines.
        r.seed = v->is_string()
                     ? std::strtoull(v->string().c_str(), nullptr, 10)
                     : static_cast<std::uint64_t>(v->number());
      }
      if (const json::value* v = doc.find("trials")) {
        r.trials = static_cast<std::uint64_t>(v->number());
      }
      if (const json::value* v = doc.find("timestamp")) {
        r.timestamp = v->string();
      }
      if (const json::value* v = doc.find("metrics"); v && v->is_object()) {
        for (const auto& [name, metric] : v->members()) {
          if (metric.is_number()) {
            r.metrics.emplace_back(name, metric.number());
          }
        }
      }
      records.push_back(std::move(r));
    } catch (const std::invalid_argument&) {
      // Torn or foreign line: skip it, keep the rest of the log usable.
    }
  }
  return records;
}

std::vector<run_diff> diff_latest_runs(
    const std::vector<run_record>& records) {
  std::vector<std::string> key_order;
  std::vector<std::vector<const run_record*>> by_key;
  for (const run_record& r : records) {
    const std::string key = run_key(r);
    std::size_t slot = key_order.size();
    for (std::size_t i = 0; i < key_order.size(); ++i) {
      if (key_order[i] == key) {
        slot = i;
        break;
      }
    }
    if (slot == key_order.size()) {
      key_order.push_back(key);
      by_key.emplace_back();
    }
    by_key[slot].push_back(&r);
  }

  std::vector<run_diff> diffs;
  diffs.reserve(key_order.size());
  for (const std::vector<const run_record*>& runs : by_key) {
    run_diff d;
    d.occurrences = runs.size();
    d.latest = *runs.back();
    if (runs.size() > 1) {
      d.has_previous = true;
      d.previous = *runs[runs.size() - 2];
      for (const auto& [name, latest_value] : d.latest.metrics) {
        for (const auto& [prev_name, prev_value] : d.previous.metrics) {
          if (prev_name == name) {
            d.deltas.push_back(metric_delta{name, prev_value, latest_value});
            break;
          }
        }
      }
    }
    diffs.push_back(std::move(d));
  }
  return diffs;
}

}  // namespace ivc::sim
