#include "sim/sweep.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sim/experiment.h"

namespace ivc::sim {
namespace {

// Runs a one-axis grid over copies of `session` and converts the rows
// back to the classic sweep_point curve.
std::vector<sweep_point> sweep_axis(const attack_session& session, axis ax,
                                    std::size_t trials_per_point,
                                    std::size_t num_threads) {
  run_config cfg;
  cfg.trials_per_point = trials_per_point;
  cfg.num_threads = num_threads;
  const engine eng{cfg};
  const grid g = grid::cartesian({std::move(ax)});
  const result_table table = eng.run_over(session, g);
  std::vector<sweep_point> points;
  points.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    points.push_back(sweep_point{table.at(i).coords[0], table.estimate(i)});
  }
  return points;
}

}  // namespace

interval wilson_interval(std::size_t successes, std::size_t trials) {
  expects(trials > 0, "wilson_interval: trials must be > 0");
  constexpr double z = 1.96;  // 95%
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double denom = 1.0 + z * z / n;
  const double center = (p + z * z / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom;
  return interval{std::max(0.0, center - half), std::min(1.0, center + half)};
}

success_estimate estimate_success(const attack_session& session,
                                  std::size_t trials,
                                  std::uint64_t trial_base) {
  expects(trials > 0, "estimate_success: trials must be > 0");
  success_estimate est;
  est.trials = trials;
  double intel = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const trial_result r = session.run_trial(trial_base + t);
    if (r.success) {
      ++est.successes;
    }
    intel += r.intelligibility;
  }
  est.rate = static_cast<double>(est.successes) / static_cast<double>(trials);
  est.mean_intelligibility = intel / static_cast<double>(trials);
  const interval ci = wilson_interval(est.successes, est.trials);
  est.ci_low = ci.low;
  est.ci_high = ci.high;
  return est;
}

std::vector<sweep_point> sweep_distance(const attack_session& session,
                                        const std::vector<double>& distances_m,
                                        std::size_t trials_per_point,
                                        std::size_t num_threads) {
  expects(!distances_m.empty(), "sweep_distance: need at least one distance");
  return sweep_axis(session, distance_axis(distances_m), trials_per_point,
                    num_threads);
}

std::vector<sweep_point> sweep_power(const attack_session& session,
                                     const std::vector<double>& powers_w,
                                     std::size_t trials_per_point,
                                     std::size_t num_threads) {
  expects(!powers_w.empty(), "sweep_power: need at least one power");
  return sweep_axis(session, power_axis(powers_w), trials_per_point,
                    num_threads);
}

double max_attack_range_m(const attack_session& session, double min_rate,
                          std::size_t trials_per_point, double start_m,
                          double max_m, double step_m,
                          std::size_t num_threads) {
  expects(min_rate > 0.0 && min_rate <= 1.0,
          "max_attack_range_m: min_rate must be in (0, 1]");
  expects(step_m > 0.0 && start_m > 0.0 && max_m > start_m,
          "max_attack_range_m: need 0 < start < max with step > 0");
  // The whole ladder runs in parallel (the serial version early-exited
  // past the range edge; computing the tail costs nothing extra on a
  // pool and per-point results are unchanged — trials are index-seeded).
  std::vector<double> ladder;
  for (double d = start_m; d <= max_m + 1e-9; d += step_m) {
    ladder.push_back(d);
  }
  const std::vector<sweep_point> points =
      sweep_axis(session, distance_axis(ladder), trials_per_point,
                 num_threads);
  double best = 0.0;
  for (const sweep_point& point : points) {
    if (point.result.rate >= min_rate) {
      best = point.x;
    } else if (best > 0.0) {
      break;  // past the edge of the working range
    }
  }
  return best;
}

}  // namespace ivc::sim
