#include "sim/sweep.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ivc::sim {

void wilson_interval(std::size_t successes, std::size_t trials, double& low,
                     double& high) {
  expects(trials > 0, "wilson_interval: trials must be > 0");
  constexpr double z = 1.96;  // 95%
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double denom = 1.0 + z * z / n;
  const double center = (p + z * z / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom;
  low = std::max(0.0, center - half);
  high = std::min(1.0, center + half);
}

success_estimate estimate_success(const attack_session& session,
                                  std::size_t trials,
                                  std::uint64_t trial_base) {
  expects(trials > 0, "estimate_success: trials must be > 0");
  success_estimate est;
  est.trials = trials;
  double intel = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const trial_result r = session.run_trial(trial_base + t);
    if (r.success) {
      ++est.successes;
    }
    intel += r.intelligibility;
  }
  est.rate = static_cast<double>(est.successes) / static_cast<double>(trials);
  est.mean_intelligibility = intel / static_cast<double>(trials);
  wilson_interval(est.successes, est.trials, est.ci_low, est.ci_high);
  return est;
}

std::vector<sweep_point> sweep_distance(attack_session& session,
                                        const std::vector<double>& distances_m,
                                        std::size_t trials_per_point) {
  expects(!distances_m.empty(), "sweep_distance: need at least one distance");
  std::vector<sweep_point> points;
  std::uint64_t base = 0;
  for (const double d : distances_m) {
    session.set_distance(d);
    points.push_back(
        sweep_point{d, estimate_success(session, trials_per_point, base)});
    base += trials_per_point;
  }
  return points;
}

std::vector<sweep_point> sweep_power(attack_session& session,
                                     const std::vector<double>& powers_w,
                                     std::size_t trials_per_point) {
  expects(!powers_w.empty(), "sweep_power: need at least one power");
  std::vector<sweep_point> points;
  std::uint64_t base = 0;
  for (const double p : powers_w) {
    session.set_total_power(p);
    points.push_back(
        sweep_point{p, estimate_success(session, trials_per_point, base)});
    base += trials_per_point;
  }
  return points;
}

double max_attack_range_m(attack_session& session, double min_rate,
                          std::size_t trials_per_point, double start_m,
                          double max_m, double step_m) {
  expects(min_rate > 0.0 && min_rate <= 1.0,
          "max_attack_range_m: min_rate must be in (0, 1]");
  expects(step_m > 0.0 && start_m > 0.0 && max_m > start_m,
          "max_attack_range_m: need 0 < start < max with step > 0");
  double best = 0.0;
  std::uint64_t base = 0;
  for (double d = start_m; d <= max_m + 1e-9; d += step_m) {
    session.set_distance(d);
    const success_estimate est =
        estimate_success(session, trials_per_point, base);
    base += trials_per_point;
    if (est.rate >= min_rate) {
      best = d;
    } else if (best > 0.0) {
      break;  // past the edge of the working range
    }
  }
  return best;
}

}  // namespace ivc::sim
