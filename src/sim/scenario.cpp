#include "sim/scenario.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <map>
#include <utility>

#include "audio/metrics.h"
#include "audio/ops.h"
#include "common/error.h"
#include "common/sync.h"
#include "common/units.h"
#include "dsp/resample.h"
#include "mic/frontend.h"

namespace ivc::sim {
namespace {

// The victim sits on the rig's boresight (+y) at the scenario distance.
acoustics::vec3 device_position(double distance_m) {
  return acoustics::vec3{0.0, distance_m, 0.0};
}

// Genuine speech carries no ultrasound, so the analog path runs at
// 48 kHz instead of the wideband rate.
constexpr double genuine_analog_rate_hz = 48'000.0;

// The talker's voice at the device port: free-field propagation at the
// scenario distance, or the image-source room render when a room
// placement is set. `voice` must already be scaled to the talker level.
audio::buffer genuine_field(const genuine_scenario& scenario,
                            const audio::buffer& voice) {
  if (scenario.room.has_value()) {
    return acoustics::render_in_room(voice, scenario.room->talker,
                                     scenario.room->device,
                                     scenario.room->room,
                                     scenario.environment.air);
  }
  acoustics::propagation_config prop;
  prop.distance_m = scenario.distance_m;
  prop.air = scenario.environment.air;
  return audio::buffer{
      acoustics::propagate(voice.samples, voice.sample_rate_hz, prop),
      voice.sample_rate_hz};
}

}  // namespace

asr::recognizer make_enrolled_recognizer(double capture_rate_hz,
                                         std::uint64_t seed) {
  asr::recognizer rec;
  ivc::rng rng{seed};
  for (const synth::command& cmd : synth::command_bank()) {
    rec.add_template(cmd.id, synth::render_command(cmd, synth::male_voice(),
                                                   rng, capture_rate_hz));
    rec.add_template(cmd.id, synth::render_command(cmd, synth::female_voice(),
                                                   rng, capture_rate_hz));
  }
  return rec;
}

namespace {

using enrollment_key = std::pair<std::uint64_t, std::uint64_t>;
using enrollment_future =
    std::shared_future<std::shared_ptr<const asr::recognizer>>;

ts_mutex& enrollment_cache_mutex() {
  static ts_mutex mutex;
  return mutex;
}

std::map<enrollment_key, enrollment_future>& enrollment_cache() {
  static std::map<enrollment_key, enrollment_future> cache;
  return cache;
}

}  // namespace

std::shared_ptr<const asr::recognizer> shared_enrolled_recognizer(
    double capture_rate_hz, std::uint64_t seed) {
  const enrollment_key key{std::bit_cast<std::uint64_t>(capture_rate_hz),
                           seed};
  // The slot holds a future, claimed under the lock but fulfilled
  // outside it: concurrent builds of one key wait on the first builder
  // (one enrollment per key), while distinct keys — a device-matrix
  // grid spanning capture rates — still enroll in parallel.
  std::promise<std::shared_ptr<const asr::recognizer>> builder;
  enrollment_future shared;
  bool is_builder = false;
  {
    const ts_lock lock{enrollment_cache_mutex()};
    auto [it, inserted] = enrollment_cache().try_emplace(key);
    if (inserted) {
      it->second = builder.get_future().share();
      is_builder = true;
    }
    shared = it->second;
  }
  if (is_builder) {
    try {
      builder.set_value(std::make_shared<const asr::recognizer>(
          make_enrolled_recognizer(capture_rate_hz, seed)));
    } catch (...) {
      builder.set_exception(std::current_exception());
      const ts_lock lock{enrollment_cache_mutex()};
      enrollment_cache().erase(key);
    }
  }
  return shared.get();
}

void clear_enrolled_recognizer_cache() {
  const ts_lock lock{enrollment_cache_mutex()};
  enrollment_cache().clear();
}

attack_session::attack_session(attack_scenario scenario, std::uint64_t seed)
    : scenario_{std::move(scenario)}, base_rng_{seed} {
  expects(scenario_.distance_m > 0.0,
          "attack_session: distance must be > 0");

  // Render the command the attacker will inject (the attacker's "TTS").
  ivc::rng synth_rng = base_rng_.split(1);
  const synth::command& cmd = synth::command_by_id(scenario_.command_id);
  const double capture_rate = scenario_.device.mic.capture_rate_hz;
  clean_ = synth::render_command(cmd, scenario_.voice, synth_rng, capture_rate);

  // Build the rig from the command at the device capture rate, keeping
  // the conditioned baseband so cancellation swaps skip conditioning.
  conditioned_ = attack::condition_for_rig(clean_, scenario_.rig);
  rig_ = attack::assemble_attack_rig(conditioned_, scenario_.rig);

  const std::uint64_t enroll_seed = scenario_.enrollment_seed != 0
                                        ? scenario_.enrollment_seed
                                        : (seed ^ 0x5eedu);
  recognizer_ = shared_enrolled_recognizer(capture_rate, enroll_seed);
}

void attack_session::set_distance(double distance_m) {
  expects(distance_m > 0.0, "attack_session: distance must be > 0");
  if (distance_m != scenario_.distance_m) {
    field_valid_ = false;
  }
  scenario_.distance_m = distance_m;
}

void attack_session::set_total_power(double watts) {
  expects(watts > 0.0, "attack_session: power must be > 0");
  if (watts != rig_.array.total_power_w()) {
    field_valid_ = false;
  }
  rig_.array.scale_power(watts / rig_.array.total_power_w());
}

void attack_session::set_device(const mic::device_profile& device) {
  expects(device.mic.capture_rate_hz ==
              scenario_.device.mic.capture_rate_hz,
          "attack_session: devices must share a capture rate");
  scenario_.device = device;
}

void attack_session::set_cancellation(
    const std::optional<attack::cancellation_config>& c) {
  scenario_.rig.cancellation = c;
  // Re-assemble from the cached conditioned baseband; the rig comes
  // back at the config power, so restore any set_total_power override.
  const double power = rig_.array.total_power_w();
  rig_ = attack::assemble_attack_rig(conditioned_, scenario_.rig);
  if (power != rig_.array.total_power_w()) {
    rig_.array.scale_power(power / rig_.array.total_power_w());
  }
  field_valid_ = false;
}

audio::buffer attack_session::render_field(std::uint64_t trial_index) const {
  // Stream ids spaced far apart so ambient and microphone noise never
  // collide, whatever trial indices callers use.
  ivc::rng noise_rng = base_rng_.split(0x10'0000ULL + trial_index);
  if (!field_valid_) {
    cached_field_ = rig_.array.render_at(
        device_position(scenario_.distance_m), scenario_.environment.air);
    field_valid_ = true;
  }
  audio::buffer field = cached_field_;

  // Ambient noise at the device port.
  const audio::buffer ambient = acoustics::ambient_noise(
      field.duration_s(), field.sample_rate_hz,
      scenario_.environment.ambient_spl_db, scenario_.environment.ambient_kind,
      noise_rng);
  audio::mix_into(field, ambient);
  return field;
}

trial_result attack_session::run_trial(std::uint64_t trial_index) const {
  trial_result result;
  const audio::buffer field = render_field(trial_index);

  ivc::rng mic_rng = base_rng_.split(0x20'0000ULL + trial_index);
  const mic::microphone microphone{scenario_.device.mic};
  result.capture = microphone.record(field, mic_rng);

  result.recognition = recognizer_->recognize(result.capture);
  result.success = result.recognition.accepted() &&
                   *result.recognition.command_id == scenario_.command_id;
  result.intelligibility = asr::intelligibility_score(clean_, result.capture);
  return result;
}

audio::buffer run_genuine_capture(const genuine_scenario& scenario,
                                  ivc::rng& rng) {
  // distance_m is ignored when a room placement positions the talker.
  expects(scenario.room.has_value() || scenario.distance_m > 0.0,
          "run_genuine_capture: distance must be > 0");

  const synth::command& cmd = synth::command_by_id(scenario.phrase_id);
  audio::buffer voice =
      synth::render_command(cmd, scenario.voice, rng, genuine_analog_rate_hz);

  // Scale to the talker's level at 1 m, in pascal, then take it through
  // the air (or the room) to the device.
  const double target_rms = ivc::spl_db_to_pa(scenario.level_db_spl_at_1m);
  voice = audio::normalize_rms(voice, target_rms);
  audio::buffer field = genuine_field(scenario, voice);

  // Ambient noise.
  const audio::buffer ambient = acoustics::ambient_noise(
      field.duration_s(), field.sample_rate_hz,
      scenario.environment.ambient_spl_db, scenario.environment.ambient_kind,
      rng);
  audio::mix_into(field, ambient);

  const mic::microphone microphone{scenario.device.mic};
  return microphone.record(field, rng);
}

genuine_session::genuine_session(genuine_scenario scenario, std::uint64_t seed)
    : scenario_{std::move(scenario)}, base_rng_{seed} {
  expects(scenario_.room.has_value() || scenario_.distance_m > 0.0,
          "genuine_session: distance must be > 0");
  // Render the rendition once from the same stream id attack_session
  // uses for its command; level scaling happens at field build so
  // set_level stays cheap and history-free.
  ivc::rng synth_rng = base_rng_.split(1);
  const synth::command& cmd = synth::command_by_id(scenario_.phrase_id);
  voice_ = synth::render_command(cmd, scenario_.voice, synth_rng,
                                 genuine_analog_rate_hz);
}

void genuine_session::set_ambient(double spl_db) {
  // Ambient is synthesized per trial; the cached field stays valid.
  scenario_.environment.ambient_spl_db = spl_db;
}

void genuine_session::set_distance(double distance_m) {
  expects(distance_m > 0.0, "genuine_session: distance must be > 0");
  if (distance_m != scenario_.distance_m) {
    field_valid_ = false;
  }
  scenario_.distance_m = distance_m;
}

void genuine_session::set_level(double db_spl_at_1m) {
  if (db_spl_at_1m != scenario_.level_db_spl_at_1m) {
    field_valid_ = false;
  }
  scenario_.level_db_spl_at_1m = db_spl_at_1m;
}

void genuine_session::set_device(const mic::device_profile& device) {
  // Unlike attack_session there is no enrolled recognizer tied to the
  // capture rate, so any device profile is fair game; the microphone
  // resamples from the analog rate itself.
  scenario_.device = device;
}

const audio::buffer& genuine_session::field() const {
  if (!field_valid_) {
    const audio::buffer scaled = audio::normalize_rms(
        voice_, ivc::spl_db_to_pa(scenario_.level_db_spl_at_1m));
    cached_field_ = genuine_field(scenario_, scaled);
    field_valid_ = true;
  }
  return cached_field_;
}

audio::buffer genuine_session::run_trial(std::uint64_t trial_index) const {
  // Same stream spacing as attack_session: ambient and microphone noise
  // never collide, whatever trial indices callers use.
  audio::buffer at_port = field();
  ivc::rng noise_rng = base_rng_.split(0x10'0000ULL + trial_index);
  const audio::buffer ambient = acoustics::ambient_noise(
      at_port.duration_s(), at_port.sample_rate_hz,
      scenario_.environment.ambient_spl_db, scenario_.environment.ambient_kind,
      noise_rng);
  audio::mix_into(at_port, ambient);

  ivc::rng mic_rng = base_rng_.split(0x20'0000ULL + trial_index);
  const mic::microphone microphone{scenario_.device.mic};
  return microphone.record(at_port, mic_rng);
}

}  // namespace ivc::sim
