#include "sim/scenario.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <utility>

#include "audio/metrics.h"
#include "audio/ops.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/resample.h"
#include "mic/frontend.h"

namespace ivc::sim {
namespace {

// The victim sits on the rig's boresight (+y) at the scenario distance.
acoustics::vec3 device_position(double distance_m) {
  return acoustics::vec3{0.0, distance_m, 0.0};
}

}  // namespace

asr::recognizer make_enrolled_recognizer(double capture_rate_hz,
                                         std::uint64_t seed) {
  asr::recognizer rec;
  ivc::rng rng{seed};
  for (const synth::command& cmd : synth::command_bank()) {
    rec.add_template(cmd.id, synth::render_command(cmd, synth::male_voice(),
                                                   rng, capture_rate_hz));
    rec.add_template(cmd.id, synth::render_command(cmd, synth::female_voice(),
                                                   rng, capture_rate_hz));
  }
  return rec;
}

namespace {

using enrollment_key = std::pair<std::uint64_t, std::uint64_t>;
using enrollment_future =
    std::shared_future<std::shared_ptr<const asr::recognizer>>;

std::mutex& enrollment_cache_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<enrollment_key, enrollment_future>& enrollment_cache() {
  static std::map<enrollment_key, enrollment_future> cache;
  return cache;
}

}  // namespace

std::shared_ptr<const asr::recognizer> shared_enrolled_recognizer(
    double capture_rate_hz, std::uint64_t seed) {
  const enrollment_key key{std::bit_cast<std::uint64_t>(capture_rate_hz),
                           seed};
  // The slot holds a future, claimed under the lock but fulfilled
  // outside it: concurrent builds of one key wait on the first builder
  // (one enrollment per key), while distinct keys — a device-matrix
  // grid spanning capture rates — still enroll in parallel.
  std::promise<std::shared_ptr<const asr::recognizer>> builder;
  enrollment_future shared;
  bool is_builder = false;
  {
    std::lock_guard<std::mutex> lock{enrollment_cache_mutex()};
    auto [it, inserted] = enrollment_cache().try_emplace(key);
    if (inserted) {
      it->second = builder.get_future().share();
      is_builder = true;
    }
    shared = it->second;
  }
  if (is_builder) {
    try {
      builder.set_value(std::make_shared<const asr::recognizer>(
          make_enrolled_recognizer(capture_rate_hz, seed)));
    } catch (...) {
      builder.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock{enrollment_cache_mutex()};
      enrollment_cache().erase(key);
    }
  }
  return shared.get();
}

void clear_enrolled_recognizer_cache() {
  std::lock_guard<std::mutex> lock{enrollment_cache_mutex()};
  enrollment_cache().clear();
}

attack_session::attack_session(attack_scenario scenario, std::uint64_t seed)
    : scenario_{std::move(scenario)}, base_rng_{seed} {
  expects(scenario_.distance_m > 0.0,
          "attack_session: distance must be > 0");

  // Render the command the attacker will inject (the attacker's "TTS").
  ivc::rng synth_rng = base_rng_.split(1);
  const synth::command& cmd = synth::command_by_id(scenario_.command_id);
  const double capture_rate = scenario_.device.mic.capture_rate_hz;
  clean_ = synth::render_command(cmd, scenario_.voice, synth_rng, capture_rate);

  // Build the rig from the command at the device capture rate.
  rig_ = attack::build_attack_rig(clean_, scenario_.rig);

  const std::uint64_t enroll_seed = scenario_.enrollment_seed != 0
                                        ? scenario_.enrollment_seed
                                        : (seed ^ 0x5eedu);
  recognizer_ = shared_enrolled_recognizer(capture_rate, enroll_seed);
}

void attack_session::set_distance(double distance_m) {
  expects(distance_m > 0.0, "attack_session: distance must be > 0");
  if (distance_m != scenario_.distance_m) {
    field_valid_ = false;
  }
  scenario_.distance_m = distance_m;
}

void attack_session::set_total_power(double watts) {
  expects(watts > 0.0, "attack_session: power must be > 0");
  if (watts != rig_.array.total_power_w()) {
    field_valid_ = false;
  }
  rig_.array.scale_power(watts / rig_.array.total_power_w());
}

void attack_session::set_device(const mic::device_profile& device) {
  expects(device.mic.capture_rate_hz ==
              scenario_.device.mic.capture_rate_hz,
          "attack_session: devices must share a capture rate");
  scenario_.device = device;
}

audio::buffer attack_session::render_field(std::uint64_t trial_index) const {
  // Stream ids spaced far apart so ambient and microphone noise never
  // collide, whatever trial indices callers use.
  ivc::rng noise_rng = base_rng_.split(0x10'0000ULL + trial_index);
  if (!field_valid_) {
    cached_field_ = rig_.array.render_at(
        device_position(scenario_.distance_m), scenario_.environment.air);
    field_valid_ = true;
  }
  audio::buffer field = cached_field_;

  // Ambient noise at the device port.
  const audio::buffer ambient = acoustics::ambient_noise(
      field.duration_s(), field.sample_rate_hz,
      scenario_.environment.ambient_spl_db, scenario_.environment.ambient_kind,
      noise_rng);
  const std::size_t n = std::min(field.size(), ambient.size());
  for (std::size_t i = 0; i < n; ++i) {
    field.samples[i] += ambient.samples[i];
  }
  return field;
}

trial_result attack_session::run_trial(std::uint64_t trial_index) const {
  trial_result result;
  const audio::buffer field = render_field(trial_index);

  ivc::rng mic_rng = base_rng_.split(0x20'0000ULL + trial_index);
  const mic::microphone microphone{scenario_.device.mic};
  result.capture = microphone.record(field, mic_rng);

  result.recognition = recognizer_->recognize(result.capture);
  result.success = result.recognition.accepted() &&
                   *result.recognition.command_id == scenario_.command_id;
  result.intelligibility = asr::intelligibility_score(clean_, result.capture);
  return result;
}

audio::buffer run_genuine_capture(const genuine_scenario& scenario,
                                  ivc::rng& rng) {
  expects(scenario.distance_m > 0.0,
          "run_genuine_capture: distance must be > 0");

  const synth::command& cmd = synth::command_by_id(scenario.phrase_id);
  // Analog path at 48 kHz: genuine speech carries no ultrasound.
  constexpr double analog_rate = 48'000.0;
  audio::buffer voice =
      synth::render_command(cmd, scenario.voice, rng, analog_rate);

  // Scale to the talker's level at 1 m, in pascal.
  const double target_rms = ivc::spl_db_to_pa(scenario.level_db_spl_at_1m);
  voice = audio::normalize_rms(voice, target_rms);

  // Propagate to the device.
  acoustics::propagation_config prop;
  prop.distance_m = scenario.distance_m;
  prop.air = scenario.environment.air;
  audio::buffer field{
      acoustics::propagate(voice.samples, analog_rate, prop), analog_rate};

  // Ambient noise.
  const audio::buffer ambient = acoustics::ambient_noise(
      field.duration_s(), analog_rate, scenario.environment.ambient_spl_db,
      scenario.environment.ambient_kind, rng);
  const std::size_t n = std::min(field.size(), ambient.size());
  for (std::size_t i = 0; i < n; ++i) {
    field.samples[i] += ambient.samples[i];
  }

  const mic::microphone microphone{scenario.device.mic};
  return microphone.record(field, rng);
}

}  // namespace ivc::sim
