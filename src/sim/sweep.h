// Sweep drivers: success-rate estimation over distance, power, and
// carrier frequency — the machinery behind every attack-performance table
// and figure.
//
// The sweep functions are thin wrappers over the declarative experiment
// engine (sim/experiment.h), preserved for callers that want a one-call
// curve; new experiments should build a grid and use the engine
// directly. Wrapper results match the legacy serial implementations bit
// for bit (same session seed, same per-point trial bases), but the
// points now run on a thread pool.
#pragma once

#include <vector>

#include "sim/scenario.h"

namespace ivc::sim {

// A closed interval, e.g. a binomial confidence interval on [0, 1].
struct interval {
  double low = 0.0;
  double high = 0.0;
};

// Wilson score 95% interval for a binomial proportion.
interval wilson_interval(std::size_t successes, std::size_t trials);

struct success_estimate {
  double rate = 0.0;           // fraction of successful trials
  double mean_intelligibility = 0.0;
  std::size_t trials = 0;
  std::size_t successes = 0;
  // Wilson 95% confidence interval on the rate.
  double ci_low = 0.0;
  double ci_high = 0.0;
};

// Runs `trials` attack trials at the session's current settings.
success_estimate estimate_success(const attack_session& session,
                                  std::size_t trials,
                                  std::uint64_t trial_base = 0);

struct sweep_point {
  double x = 0.0;  // the swept quantity (m, W, Hz, ...)
  success_estimate result;
};

// Success vs. distance at fixed power. `num_threads` sizes the engine
// pool (0 = all hardware threads).
std::vector<sweep_point> sweep_distance(const attack_session& session,
                                        const std::vector<double>& distances_m,
                                        std::size_t trials_per_point,
                                        std::size_t num_threads = 0);

// Success vs. total power at fixed distance.
std::vector<sweep_point> sweep_power(const attack_session& session,
                                     const std::vector<double>& powers_w,
                                     std::size_t trials_per_point,
                                     std::size_t num_threads = 0);

// Maximum distance (m) with success rate >= `min_rate`, scanned outward
// in `step_m` increments from `start_m` up to `max_m`. Returns 0 when
// even the first point fails — matches how the papers report "range".
double max_attack_range_m(const attack_session& session, double min_rate,
                          std::size_t trials_per_point, double start_m,
                          double max_m, double step_m,
                          std::size_t num_threads = 0);

}  // namespace ivc::sim
