#include "sim/corpus.h"

#include "common/error.h"

namespace ivc::sim {
namespace {

// Train/test assignment by a hash of the sample index. A plain even/odd
// round-robin interacts with the nested condition loops (e.g. every
// even sample is the near-distance attack), leaking a systematic
// condition difference between the halves; hashing de-correlates the
// split from the generation order.
bool goes_to_train(std::size_t index) {
  std::uint64_t z = static_cast<std::uint64_t>(index) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return (z & 1ULL) == 0ULL;
}

void add_sample(defense_corpus& corpus, const audio::buffer& capture,
                int label, std::size_t index) {
  const defense::trace_features f = defense::extract_trace_features(capture);
  if (goes_to_train(index)) {
    corpus.train.add(f, label);
  } else {
    corpus.test.add(f, label);
    corpus.test_captures.push_back(capture);
    corpus.test_labels.push_back(label);
  }
}

}  // namespace

defense_corpus build_defense_corpus(const corpus_config& config,
                                    std::uint64_t seed) {
  expects(!config.genuine_distances_m.empty() &&
              !config.attack_distances_m.empty(),
          "build_defense_corpus: need both genuine and attack conditions");

  defense_corpus corpus;
  ivc::rng rng{seed};
  std::size_t index = 0;

  // ---- Genuine side: benign phrases AND genuinely spoken commands (the
  // defense must pass real commands, not just chatter).
  std::vector<const synth::command*> genuine_phrases;
  for (const synth::command& c : synth::benign_bank()) {
    genuine_phrases.push_back(&c);
  }
  for (const synth::command& c : synth::command_bank()) {
    genuine_phrases.push_back(&c);
  }
  if (config.max_genuine_phrases > 0 &&
      genuine_phrases.size() > config.max_genuine_phrases) {
    genuine_phrases.resize(config.max_genuine_phrases);
  }

  const synth::voice_params voices[] = {synth::male_voice(),
                                        synth::female_voice()};
  for (const synth::command* phrase : genuine_phrases) {
    for (const synth::voice_params& base_voice : voices) {
      for (const double dist : config.genuine_distances_m) {
        for (const double level : config.genuine_levels_db) {
          for (std::size_t k = 0; k < config.genuine_per_combo; ++k) {
            ivc::rng trial_rng = rng.split(index * 7919 + 17);
            genuine_scenario g;
            g.phrase_id = phrase->id;
            g.voice = synth::perturbed_voice(base_voice, trial_rng);
            g.distance_m = dist;
            g.level_db_spl_at_1m = level;
            g.environment = config.environment;
            g.device = config.device;
            add_sample(corpus, run_genuine_capture(g, trial_rng), 0, index);
            ++index;
          }
        }
      }
    }
  }

  // ---- Attack side: every (participating) bank command through the rig.
  std::size_t session_seed = 0;
  std::size_t attack_commands = synth::command_bank().size();
  if (config.max_attack_commands > 0) {
    attack_commands = std::min(attack_commands, config.max_attack_commands);
  }
  for (std::size_t c = 0; c < attack_commands; ++c) {
    const synth::command& cmd = synth::command_bank()[c];
    attack_scenario sc;
    sc.rig = config.rig;
    sc.device = config.device;
    sc.environment = config.environment;
    sc.command_id = cmd.id;
    attack_session session{sc, seed ^ (0xa77ac0 + session_seed++)};
    for (const double dist : config.attack_distances_m) {
      session.set_distance(dist);
      for (const double power : config.attack_powers_w) {
        session.set_total_power(power);
        for (std::size_t t = 0; t < config.attack_trials_per_combo; ++t) {
          const trial_result r = session.run_trial(index);
          add_sample(corpus, r.capture, 1, index);
          ++index;
        }
      }
    }
  }

  ensures(corpus.train.size() >= 8 && corpus.test.size() >= 8,
          "build_defense_corpus: corpus unexpectedly small");
  return corpus;
}

}  // namespace ivc::sim
