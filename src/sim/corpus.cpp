#include "sim/corpus.h"

#include "common/error.h"
#include "common/parallel.h"

namespace ivc::sim {
namespace {

// Train/test assignment by a hash of the sample index. A plain even/odd
// round-robin interacts with the nested condition loops (e.g. every
// even sample is the near-distance attack), leaking a systematic
// condition difference between the halves; hashing de-correlates the
// split from the generation order.
bool goes_to_train(std::size_t index) {
  std::uint64_t z = static_cast<std::uint64_t>(index) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return (z & 1ULL) == 0ULL;
}

// A rendered capture waiting for the serial train/test assembly.
struct pending_sample {
  defense::trace_features features;
  audio::buffer capture;
  int label = 0;
};

struct genuine_job {
  const synth::command* phrase = nullptr;
  synth::voice_params base_voice;
  double distance_m = 0.0;
  double level_db = 0.0;
  std::size_t index = 0;  // global sample index
};

}  // namespace

defense_corpus build_defense_corpus(const corpus_config& config,
                                    std::uint64_t seed) {
  expects(!config.genuine_distances_m.empty() &&
              !config.attack_distances_m.empty(),
          "build_defense_corpus: need both genuine and attack conditions");

  // ---- Enumerate the genuine side: benign phrases AND genuinely spoken
  // commands (the defense must pass real commands, not just chatter).
  std::vector<const synth::command*> genuine_phrases;
  for (const synth::command& c : synth::benign_bank()) {
    genuine_phrases.push_back(&c);
  }
  for (const synth::command& c : synth::command_bank()) {
    genuine_phrases.push_back(&c);
  }
  if (config.max_genuine_phrases > 0 &&
      genuine_phrases.size() > config.max_genuine_phrases) {
    genuine_phrases.resize(config.max_genuine_phrases);
  }

  const synth::voice_params voices[] = {synth::male_voice(),
                                        synth::female_voice()};
  std::vector<genuine_job> genuine_jobs;
  std::size_t index = 0;
  for (const synth::command* phrase : genuine_phrases) {
    for (const synth::voice_params& base_voice : voices) {
      for (const double dist : config.genuine_distances_m) {
        for (const double level : config.genuine_levels_db) {
          for (std::size_t k = 0; k < config.genuine_per_combo; ++k) {
            genuine_jobs.push_back(
                genuine_job{phrase, base_voice, dist, level, index});
            ++index;
          }
        }
      }
    }
  }
  const std::size_t genuine_total = index;

  // ---- Attack side: every (participating) bank command through the
  // rig. Each command gets one session; its samples occupy a contiguous
  // index block, so per-sample indices (and therefore trial noise and
  // the train/test split) are computable up front.
  std::size_t attack_commands = synth::command_bank().size();
  if (config.max_attack_commands > 0) {
    attack_commands = std::min(attack_commands, config.max_attack_commands);
  }
  const std::size_t samples_per_command = config.attack_distances_m.size() *
                                          config.attack_powers_w.size() *
                                          config.attack_trials_per_combo;
  const std::size_t total =
      genuine_total + attack_commands * samples_per_command;

  // ---- Render every sample on the pool. Slot i of `samples` is written
  // only by the task that owns global index i, so the corpus is
  // bit-identical at any thread count (and to the old serial builder:
  // the per-sample RNG streams are pure functions of `seed` and the
  // global index).
  std::vector<pending_sample> samples(total);
  const ivc::rng base_rng{seed};

  thread_pool pool{config.num_threads};
  pool.parallel_for(genuine_jobs.size(), [&](std::size_t j) {
    const genuine_job& job = genuine_jobs[j];
    ivc::rng trial_rng = base_rng.split(job.index * 7919 + 17);
    genuine_scenario g;
    g.phrase_id = job.phrase->id;
    g.voice = synth::perturbed_voice(job.base_voice, trial_rng);
    g.distance_m = job.distance_m;
    g.level_db_spl_at_1m = job.level_db;
    g.environment = config.environment;
    g.device = config.device;
    audio::buffer capture = run_genuine_capture(g, trial_rng);
    pending_sample& slot = samples[job.index];
    slot.features = defense::extract_trace_features(capture);
    slot.label = 0;
    // Only the test half keeps raw audio; dropping train captures here
    // bounds peak memory at the test half, like the serial builder.
    if (!goes_to_train(job.index)) {
      slot.capture = std::move(capture);
    }
  });

  pool.parallel_for(attack_commands, [&](std::size_t c) {
    const synth::command& cmd = synth::command_bank()[c];
    attack_scenario sc;
    sc.rig = config.rig;
    sc.device = config.device;
    sc.environment = config.environment;
    sc.command_id = cmd.id;
    attack_session session{sc, seed ^ (0xa77ac0 + c)};
    std::size_t sample_index = genuine_total + c * samples_per_command;
    for (const double dist : config.attack_distances_m) {
      session.set_distance(dist);
      for (const double power : config.attack_powers_w) {
        session.set_total_power(power);
        for (std::size_t t = 0; t < config.attack_trials_per_combo; ++t) {
          trial_result r = session.run_trial(sample_index);
          pending_sample& slot = samples[sample_index];
          slot.features = defense::extract_trace_features(r.capture);
          slot.label = 1;
          if (!goes_to_train(sample_index)) {
            slot.capture = std::move(r.capture);
          }
          ++sample_index;
        }
      }
    }
  });

  // ---- Serial assembly in index order: the split and the row order in
  // each half match the serial builder exactly.
  defense_corpus corpus;
  for (std::size_t i = 0; i < total; ++i) {
    pending_sample& sample = samples[i];
    if (goes_to_train(i)) {
      corpus.train.add(sample.features, sample.label);
    } else {
      corpus.test.add(sample.features, sample.label);
      corpus.test_captures.push_back(std::move(sample.capture));
      corpus.test_labels.push_back(sample.label);
    }
  }

  ensures(corpus.train.size() >= 8 && corpus.test.size() >= 8,
          "build_defense_corpus: corpus unexpectedly small");
  return corpus;
}

}  // namespace ivc::sim
