#include "sim/experiment.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/parallel.h"

namespace ivc::sim {
namespace {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return std::string{buf};
}

// splitmix64 finalizer: decorrelates per-point session seeds.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t point) {
  std::uint64_t z = seed + (point + 1) * 0x9e37'79b9'7f4a'7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return z ^ (z >> 31);
}

trial_outcome default_outcome(const trial_result& r) {
  return trial_outcome{r.success, r.intelligibility};
}

// rate / CI / mean score over one point's trial outcomes.
std::vector<double> summarize(const std::vector<trial_outcome>& outcomes) {
  std::size_t successes = 0;
  double score = 0.0;
  for (const trial_outcome& o : outcomes) {
    if (o.success) {
      ++successes;
    }
    score += o.score;
  }
  const double n = static_cast<double>(outcomes.size());
  const interval ci = wilson_interval(successes, outcomes.size());
  return {static_cast<double>(successes) / n, ci.low, ci.high, score / n,
          static_cast<double>(successes), n};
}

std::vector<std::string> grid_axis_names(const grid& g) {
  std::vector<std::string> names;
  names.reserve(g.axes().size());
  for (const axis& a : g.axes()) {
    names.push_back(a.name);
  }
  return names;
}

// How many chunks to split each point's trials into. 1 when the grid
// alone covers the pool; more when few points would leave threads idle
// (the max_attack_range_m-style single-point scan). Outcomes are
// indexed by (point, trial) and trial seeding ignores the split, so any
// chunking gives bit-identical results.
std::size_t chunks_per_point(std::size_t points, std::size_t trials,
                             std::size_t num_threads) {
  const std::size_t pool =
      num_threads == 0 ? default_thread_count() : num_threads;
  if (points == 0 || points >= pool) {
    return 1;
  }
  return std::min(trials, (pool + points - 1) / points);
}

}  // namespace

std::string format_double_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string{buf};
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

// -------------------------------------------------------------------- axes

bool axis::session_mutable() const {
  for (const axis_point& p : points) {
    if (!p.apply_session) {
      return false;
    }
  }
  return !points.empty();
}

axis distance_axis(const std::vector<double>& distances_m) {
  axis a{"distance_m", {}};
  for (const double d : distances_m) {
    a.points.push_back(axis_point{
        format_value(d), d,
        [d](attack_scenario& sc) { sc.distance_m = d; },
        [d](attack_session& s) { s.set_distance(d); }});
  }
  return a;
}

axis power_axis(const std::vector<double>& powers_w) {
  axis a{"power_w", {}};
  for (const double p : powers_w) {
    a.points.push_back(axis_point{
        format_value(p), p,
        [p](attack_scenario& sc) { sc.rig.total_power_w = p; },
        [p](attack_session& s) { s.set_total_power(p); }});
  }
  return a;
}

axis carrier_axis(const std::vector<double>& carriers_hz) {
  axis a{"carrier_hz", {}};
  for (const double hz : carriers_hz) {
    a.points.push_back(axis_point{
        format_value(hz), hz,
        [hz](attack_scenario& sc) { sc.rig.modulator.carrier_hz = hz; },
        nullptr});
  }
  return a;
}

axis ambient_axis(const std::vector<double>& ambient_spl_db) {
  axis a{"ambient_db", {}};
  for (const double spl : ambient_spl_db) {
    a.points.push_back(axis_point{
        format_value(spl), spl,
        [spl](attack_scenario& sc) { sc.environment.ambient_spl_db = spl; },
        nullptr});
  }
  return a;
}

axis device_axis(const std::vector<mic::device_profile>& devices) {
  axis a{"device", {}};
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const mic::device_profile d = devices[i];
    a.points.push_back(axis_point{
        d.name, static_cast<double>(i),
        [d](attack_scenario& sc) { sc.device = d; },
        [d](attack_session& s) { s.set_device(d); }});
  }
  return a;
}

axis command_axis(const std::vector<std::string>& command_ids) {
  axis a{"command", {}};
  for (std::size_t i = 0; i < command_ids.size(); ++i) {
    const std::string id = command_ids[i];
    a.points.push_back(axis_point{
        id, static_cast<double>(i),
        [id](attack_scenario& sc) { sc.command_id = id; }, nullptr});
  }
  return a;
}

axis voice_axis(
    const std::vector<std::pair<std::string, synth::voice_params>>& voices) {
  axis a{"voice", {}};
  for (std::size_t i = 0; i < voices.size(); ++i) {
    const synth::voice_params v = voices[i].second;
    a.points.push_back(axis_point{
        voices[i].first, static_cast<double>(i),
        [v](attack_scenario& sc) { sc.voice = v; }, nullptr});
  }
  return a;
}

axis custom_axis(std::string name, std::vector<axis_point> points) {
  return axis{std::move(name), std::move(points)};
}

// -------------------------------------------------------------------- grid

grid::grid(std::vector<axis> axes, bool cartesian)
    : axes_{std::move(axes)}, cartesian_{cartesian} {
  expects(!axes_.empty(), "grid: need at least one axis");
  for (const axis& a : axes_) {
    expects(!a.points.empty(), "grid: axis '" + a.name + "' has no values");
    for (const axis_point& p : a.points) {
      expects(static_cast<bool>(p.apply),
              "grid: axis '" + a.name + "' has a point without apply()");
    }
  }
  if (cartesian_) {
    num_points_ = 1;
    for (const axis& a : axes_) {
      num_points_ *= a.points.size();
    }
  } else {
    num_points_ = axes_.front().points.size();
    for (const axis& a : axes_) {
      expects(a.points.size() == num_points_,
              "grid::zipped: axes must have equal lengths");
    }
  }
}

grid grid::cartesian(std::vector<axis> axes) {
  return grid{std::move(axes), true};
}

grid grid::zipped(std::vector<axis> axes) {
  return grid{std::move(axes), false};
}

std::vector<std::size_t> grid::value_indices(std::size_t point) const {
  expects(point < num_points_, "grid: point index out of range");
  std::vector<std::size_t> indices(axes_.size());
  if (cartesian_) {
    // Last axis fastest-varying, like nested loops.
    std::size_t rest = point;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      const std::size_t n = axes_[a].points.size();
      indices[a] = rest % n;
      rest /= n;
    }
  } else {
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      indices[a] = point;
    }
  }
  return indices;
}

std::vector<std::string> grid::labels(std::size_t point) const {
  const std::vector<std::size_t> indices = value_indices(point);
  std::vector<std::string> labels(axes_.size());
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    labels[a] = axes_[a].points[indices[a]].label;
  }
  return labels;
}

std::vector<double> grid::coords(std::size_t point) const {
  const std::vector<std::size_t> indices = value_indices(point);
  std::vector<double> coords(axes_.size());
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    coords[a] = axes_[a].points[indices[a]].value;
  }
  return coords;
}

attack_scenario grid::scenario_at(std::size_t point,
                                  const attack_scenario& base) const {
  const std::vector<std::size_t> indices = value_indices(point);
  attack_scenario sc = base;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    axes_[a].points[indices[a]].apply(sc);
  }
  return sc;
}

bool grid::session_mutable() const {
  for (const axis& a : axes_) {
    if (!a.session_mutable()) {
      return false;
    }
  }
  return true;
}

void grid::mutate_session(std::size_t point, attack_session& session) const {
  const std::vector<std::size_t> indices = value_indices(point);
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const axis_point& p = axes_[a].points[indices[a]];
    expects(static_cast<bool>(p.apply_session),
            "grid: axis '" + axes_[a].name + "' is not session-mutable");
    p.apply_session(session);
  }
}

// ----------------------------------------------------------------- results

result_table::result_table(std::vector<std::string> axis_names,
                           std::vector<std::string> metric_names)
    : axis_names_{std::move(axis_names)},
      metric_names_{std::move(metric_names)} {}

double result_table::metric(std::size_t row_index,
                            const std::string& name) const {
  const row& r = rows_.at(row_index);
  for (std::size_t m = 0; m < metric_names_.size(); ++m) {
    if (metric_names_[m] == name) {
      return r.metrics[m];
    }
  }
  throw std::invalid_argument{"result_table: unknown metric '" + name + "'"};
}

success_estimate result_table::estimate(std::size_t row_index) const {
  success_estimate est;
  est.rate = metric(row_index, "rate");
  est.ci_low = metric(row_index, "ci_low");
  est.ci_high = metric(row_index, "ci_high");
  est.mean_intelligibility = metric(row_index, "mean_score");
  est.successes = static_cast<std::size_t>(metric(row_index, "successes"));
  est.trials = static_cast<std::size_t>(metric(row_index, "trials"));
  return est;
}

void result_table::add_row(row r) {
  expects(r.labels.size() == axis_names_.size() &&
              r.coords.size() == axis_names_.size(),
          "result_table: row axis width mismatch");
  expects(r.metrics.size() == metric_names_.size(),
          "result_table: row metric width mismatch");
  rows_.push_back(std::move(r));
}

void result_table::write_csv(std::ostream& out) const {
  bool first = true;
  for (const std::string& a : axis_names_) {
    out << (first ? "" : ",") << a;
    first = false;
  }
  for (const std::string& m : metric_names_) {
    out << (first ? "" : ",") << m;
    first = false;
  }
  out << "\n";
  for (const row& r : rows_) {
    first = true;
    for (const std::string& label : r.labels) {
      out << (first ? "" : ",") << label;
      first = false;
    }
    for (const double m : r.metrics) {
      out << (first ? "" : ",") << format_double_exact(m);
      first = false;
    }
    out << "\n";
  }
}

std::string result_table::to_csv() const {
  std::ostringstream out;
  write_csv(out);
  return out.str();
}

void result_table::write_csv_file(const std::string& path) const {
  std::ofstream out{path};
  ensures(out.good(), "result_table: cannot open '" + path + "'");
  write_csv(out);
}

void result_table::write_json(std::ostream& out) const {
  const auto write_names = [&out](const std::vector<std::string>& names) {
    out << "[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << json_escape(names[i]) << '"';
    }
    out << "]";
  };
  out << "{\n  \"axis_names\": ";
  write_names(axis_names_);
  out << ",\n  \"metric_names\": ";
  write_names(metric_names_);
  out << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const row& r = rows_[i];
    out << (i == 0 ? "" : ",") << "\n    {\"labels\": ";
    write_names(r.labels);
    out << ", \"coords\": [";
    for (std::size_t a = 0; a < r.coords.size(); ++a) {
      out << (a == 0 ? "" : ", ") << format_double_exact(r.coords[a]);
    }
    out << "], \"metrics\": [";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      out << (m == 0 ? "" : ", ") << format_double_exact(r.metrics[m]);
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

std::string result_table::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void result_table::write_json_file(const std::string& path) const {
  std::ofstream out{path};
  ensures(out.good(), "result_table: cannot open '" + path + "'");
  write_json(out);
}

void result_table::print(std::FILE* out) const {
  const auto at_least = [](std::size_t w, std::size_t min_width) {
    return w > min_width ? w : min_width;
  };
  std::vector<std::size_t> widths(axis_names_.size());
  for (std::size_t a = 0; a < axis_names_.size(); ++a) {
    widths[a] = at_least(axis_names_[a].size(), 10);
    for (const row& r : rows_) {
      widths[a] = at_least(r.labels[a].size(), widths[a]);
    }
  }
  for (std::size_t a = 0; a < axis_names_.size(); ++a) {
    std::fprintf(out, " %*s", static_cast<int>(widths[a]),
                 axis_names_[a].c_str());
  }
  for (const std::string& name : metric_names_) {
    std::fprintf(out, " %*s", static_cast<int>(at_least(name.size(), 10)),
                 name.c_str());
  }
  std::fprintf(out, "\n");
  for (const row& r : rows_) {
    for (std::size_t a = 0; a < r.labels.size(); ++a) {
      std::fprintf(out, " %*s", static_cast<int>(widths[a]),
                   r.labels[a].c_str());
    }
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      std::fprintf(out, " %*.4g",
                   static_cast<int>(at_least(metric_names_[m].size(), 10)),
                   r.metrics[m]);
    }
    std::fprintf(out, "\n");
  }
}

// ------------------------------------------------------------------ engine

const std::vector<std::string>& success_metric_names() {
  static const std::vector<std::string> names{
      "rate", "ci_low", "ci_high", "mean_score", "successes", "trials"};
  return names;
}

engine::engine(run_config config) : config_{config} {
  expects(config_.trials_per_point > 0,
          "engine: trials_per_point must be > 0");
}

result_table engine::run(const attack_scenario& base, const grid& g) const {
  return run(base, g, default_outcome);
}

result_table engine::run(const attack_scenario& base, const grid& g,
                         const trial_evaluator& eval) const {
  if (g.session_mutable()) {
    return run_over(attack_session{base, config_.seed}, g, eval);
  }
  result_table table{grid_axis_names(g), success_metric_names()};
  const std::size_t trials = config_.trials_per_point;
  const std::size_t chunks =
      chunks_per_point(g.size(), trials, config_.num_threads);
  const std::size_t chunk_len = (trials + chunks - 1) / chunks;
  std::vector<std::vector<trial_outcome>> outcomes(
      g.size(), std::vector<trial_outcome>(trials));
  parallel_for(g.size() * chunks, config_.num_threads, [&](std::size_t w) {
    const std::size_t p = w / chunks;
    const std::size_t t_lo = (w % chunks) * chunk_len;
    const std::size_t t_hi = std::min(trials, t_lo + chunk_len);
    if (t_lo >= t_hi) {
      return;
    }
    attack_scenario sc = g.scenario_at(p, base);
    // One victim per run: every point shares the run-seed enrollment
    // (unless the caller pinned one), so the template cache makes the
    // per-point session builds pay synthesis + rig only.
    if (sc.enrollment_seed == 0) {
      sc.enrollment_seed = config_.seed ^ 0x5eedu;
    }
    const attack_session session{sc, mix_seed(config_.seed, p)};
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      outcomes[p][t] = eval(session.run_trial(t));
    }
  });
  for (std::size_t p = 0; p < g.size(); ++p) {
    table.add_row(
        result_table::row{g.labels(p), g.coords(p), summarize(outcomes[p])});
  }
  return table;
}

result_table engine::run_over(const attack_session& prototype,
                              const grid& g) const {
  return run_over(prototype, g, default_outcome);
}

result_table engine::run_over(const attack_session& prototype, const grid& g,
                              const trial_evaluator& eval) const {
  expects(g.session_mutable(),
          "engine::run_over: every axis must be session-mutable");
  result_table table{grid_axis_names(g), success_metric_names()};
  const std::size_t trials = config_.trials_per_point;
  const std::size_t chunks =
      chunks_per_point(g.size(), trials, config_.num_threads);
  const std::size_t chunk_len = (trials + chunks - 1) / chunks;
  std::vector<std::vector<trial_outcome>> outcomes(
      g.size(), std::vector<trial_outcome>(trials));
  parallel_for(g.size() * chunks, config_.num_threads, [&](std::size_t w) {
    const std::size_t p = w / chunks;
    const std::size_t t_lo = (w % chunks) * chunk_len;
    const std::size_t t_hi = std::min(trials, t_lo + chunk_len);
    if (t_lo >= t_hi) {
      return;
    }
    attack_session session = prototype;  // task-private copy
    g.mutate_session(p, session);
    // Trial indices accumulate across points, matching the legacy
    // serial sweeps bit for bit.
    const std::uint64_t base_index = p * trials;
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      outcomes[p][t] = eval(session.run_trial(base_index + t));
    }
  });
  for (std::size_t p = 0; p < g.size(); ++p) {
    table.add_row(
        result_table::row{g.labels(p), g.coords(p), summarize(outcomes[p])});
  }
  return table;
}

result_table engine::run_metrics(const attack_scenario& base, const grid& g,
                                 std::vector<std::string> metric_names,
                                 const point_evaluator& eval) const {
  expects(!metric_names.empty(), "engine::run_metrics: need metric names");
  const std::size_t num_metrics = metric_names.size();
  result_table table{grid_axis_names(g), std::move(metric_names)};
  std::vector<result_table::row> rows(g.size());
  parallel_for(g.size(), config_.num_threads, [&](std::size_t p) {
    std::vector<double> metrics =
        eval(g.scenario_at(p, base), mix_seed(config_.seed, p), p);
    ensures(metrics.size() == num_metrics,
            "engine::run_metrics: evaluator returned wrong metric count");
    rows[p] = result_table::row{g.labels(p), g.coords(p), std::move(metrics)};
  });
  for (result_table::row& r : rows) {
    table.add_row(std::move(r));
  }
  return table;
}

}  // namespace ivc::sim
