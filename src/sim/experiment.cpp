#include "sim/experiment.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/json_min.h"
#include "common/parallel.h"

namespace ivc::sim {
namespace {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return std::string{buf};
}

// splitmix64 finalizer: decorrelates per-point session seeds.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t point) {
  std::uint64_t z = seed + (point + 1) * 0x9e37'79b9'7f4a'7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return z ^ (z >> 31);
}

trial_outcome default_outcome(const trial_result& r) {
  return trial_outcome{r.success, r.intelligibility};
}

// rate / CI / mean score over one point's trial outcomes.
std::vector<double> summarize(const std::vector<trial_outcome>& outcomes) {
  std::size_t successes = 0;
  double score = 0.0;
  for (const trial_outcome& o : outcomes) {
    if (o.success) {
      ++successes;
    }
    score += o.score;
  }
  const double n = static_cast<double>(outcomes.size());
  const interval ci = wilson_interval(successes, outcomes.size());
  return {static_cast<double>(successes) / n, ci.low, ci.high, score / n,
          static_cast<double>(successes), n};
}

template <class Grid>
std::vector<std::string> grid_axis_names(const Grid& g) {
  std::vector<std::string> names;
  names.reserve(g.axes().size());
  for (const auto& a : g.axes()) {
    names.push_back(a.name);
  }
  return names;
}

// How many chunks to split each point's trials into. 1 when the grid
// alone covers the pool; more when few points would leave threads idle
// (the max_attack_range_m-style single-point scan). Outcomes are
// indexed by (point, trial) and trial seeding ignores the split, so any
// chunking gives bit-identical results.
std::size_t chunks_per_point(std::size_t points, std::size_t trials,
                             std::size_t num_threads) {
  const std::size_t pool =
      num_threads == 0 ? default_thread_count() : num_threads;
  if (points == 0 || points >= pool) {
    return 1;
  }
  return std::min(trials, (pool + points - 1) / points);
}

// The (point × trial-chunk) scheduling every engine path shares:
// run_chunk(point, t_lo, t_hi, slots) fills trial slots [t_lo, t_hi) of
// its point's pre-sized row. Slots are disjoint across tasks, so the
// collected outcomes are bit-identical at any thread count.
template <class Outcome, class RunChunk>
std::vector<std::vector<Outcome>> scheduled_outcomes(
    std::size_t points, std::size_t trials, std::size_t num_threads,
    const RunChunk& run_chunk) {
  const std::size_t chunks = chunks_per_point(points, trials, num_threads);
  const std::size_t chunk_len = (trials + chunks - 1) / chunks;
  std::vector<std::vector<Outcome>> outcomes(points,
                                             std::vector<Outcome>(trials));
  parallel_for(points * chunks, num_threads, [&](std::size_t w) {
    const std::size_t p = w / chunks;
    const std::size_t t_lo = (w % chunks) * chunk_len;
    const std::size_t t_hi = std::min(trials, t_lo + chunk_len);
    if (t_lo >= t_hi) {
      return;
    }
    run_chunk(p, t_lo, t_hi, outcomes[p]);
  });
  return outcomes;
}

// RFC 4180: quote a CSV field when it contains a comma, a quote, or a
// line break; embedded quotes double.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    return s;
  }
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

// Splits RFC 4180 text into records of fields (handles quoted fields
// with embedded commas, quotes, and line breaks). A trailing newline
// does not produce an empty record.
std::vector<std::vector<std::string>> parse_csv_records(
    const std::string& csv) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current record has content
  for (std::size_t i = 0; i < csv.size(); ++i) {
    const char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_started = true;
    } else if (c == ',') {
      record.push_back(std::move(field));
      field.clear();
      field_started = true;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < csv.size() && csv[i + 1] == '\n') {
        ++i;
      }
      if (field_started || !field.empty()) {
        record.push_back(std::move(field));
        field.clear();
        records.push_back(std::move(record));
        record.clear();
        field_started = false;
      }
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) {
    throw std::invalid_argument{"result_table::from_csv: unterminated quote"};
  }
  if (field_started || !field.empty()) {
    record.push_back(std::move(field));
    records.push_back(std::move(record));
  }
  return records;
}

double parse_double_exact(const std::string& s, const char* context) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::invalid_argument{std::string{context} + ": bad number '" + s +
                                "'"};
  }
  return v;
}

const std::string coord_suffix = ":coord";

}  // namespace

std::string format_double_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string{buf};
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Remaining control characters would corrupt the document (and
        // a JSONL run log in particular); emit \u00XX.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

// -------------------------------------------------------------------- axes

axis distance_axis(const std::vector<double>& distances_m) {
  axis a{"distance_m", {}};
  for (const double d : distances_m) {
    a.points.push_back(axis_point{
        format_value(d), d,
        [d](attack_scenario& sc) { sc.distance_m = d; },
        [d](attack_session& s) { s.set_distance(d); }});
  }
  return a;
}

axis power_axis(const std::vector<double>& powers_w) {
  axis a{"power_w", {}};
  for (const double p : powers_w) {
    a.points.push_back(axis_point{
        format_value(p), p,
        [p](attack_scenario& sc) { sc.rig.total_power_w = p; },
        [p](attack_session& s) { s.set_total_power(p); }});
  }
  return a;
}

axis carrier_axis(const std::vector<double>& carriers_hz) {
  axis a{"carrier_hz", {}};
  for (const double hz : carriers_hz) {
    a.points.push_back(axis_point{
        format_value(hz), hz,
        [hz](attack_scenario& sc) { sc.rig.modulator.carrier_hz = hz; },
        nullptr});
  }
  return a;
}

axis ambient_axis(const std::vector<double>& ambient_spl_db) {
  axis a{"ambient_db", {}};
  for (const double spl : ambient_spl_db) {
    a.points.push_back(axis_point{
        format_value(spl), spl,
        [spl](attack_scenario& sc) { sc.environment.ambient_spl_db = spl; },
        nullptr});
  }
  return a;
}

axis device_axis(const std::vector<mic::device_profile>& devices) {
  axis a{"device", {}};
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const mic::device_profile d = devices[i];
    a.points.push_back(axis_point{
        d.name, static_cast<double>(i),
        [d](attack_scenario& sc) { sc.device = d; },
        [d](attack_session& s) { s.set_device(d); }});
  }
  return a;
}

axis command_axis(const std::vector<std::string>& command_ids) {
  axis a{"command", {}};
  for (std::size_t i = 0; i < command_ids.size(); ++i) {
    const std::string id = command_ids[i];
    a.points.push_back(axis_point{
        id, static_cast<double>(i),
        [id](attack_scenario& sc) { sc.command_id = id; }, nullptr});
  }
  return a;
}

axis voice_axis(
    const std::vector<std::pair<std::string, synth::voice_params>>& voices) {
  axis a{"voice", {}};
  for (std::size_t i = 0; i < voices.size(); ++i) {
    const synth::voice_params v = voices[i].second;
    a.points.push_back(axis_point{
        voices[i].first, static_cast<double>(i),
        [v](attack_scenario& sc) { sc.voice = v; }, nullptr});
  }
  return a;
}

axis custom_axis(std::string name, std::vector<axis_point> points) {
  return axis{std::move(name), std::move(points)};
}

genuine_axis custom_axis(std::string name,
                         std::vector<genuine_axis_point> points) {
  return genuine_axis{std::move(name), std::move(points)};
}

// ------------------------------------------------------------ genuine axes

genuine_axis genuine_ambient_axis(const std::vector<double>& ambient_spl_db) {
  genuine_axis a{"ambient_db", {}};
  for (const double spl : ambient_spl_db) {
    a.points.push_back(genuine_axis_point{
        format_value(spl), spl,
        [spl](genuine_scenario& sc) { sc.environment.ambient_spl_db = spl; },
        [spl](genuine_session& s) { s.set_ambient(spl); }});
  }
  return a;
}

genuine_axis genuine_distance_axis(const std::vector<double>& distances_m) {
  genuine_axis a{"distance_m", {}};
  for (const double d : distances_m) {
    a.points.push_back(genuine_axis_point{
        format_value(d), d,
        [d](genuine_scenario& sc) { sc.distance_m = d; },
        [d](genuine_session& s) { s.set_distance(d); }});
  }
  return a;
}

genuine_axis genuine_level_axis(const std::vector<double>& levels_db_spl) {
  genuine_axis a{"level_db", {}};
  for (const double level : levels_db_spl) {
    a.points.push_back(genuine_axis_point{
        format_value(level), level,
        [level](genuine_scenario& sc) { sc.level_db_spl_at_1m = level; },
        [level](genuine_session& s) { s.set_level(level); }});
  }
  return a;
}

genuine_axis genuine_device_axis(
    const std::vector<mic::device_profile>& devices) {
  genuine_axis a{"device", {}};
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const mic::device_profile d = devices[i];
    a.points.push_back(genuine_axis_point{
        d.name, static_cast<double>(i),
        [d](genuine_scenario& sc) { sc.device = d; },
        [d](genuine_session& s) { s.set_device(d); }});
  }
  return a;
}

genuine_axis genuine_phrase_axis(const std::vector<std::string>& phrase_ids) {
  genuine_axis a{"phrase", {}};
  for (std::size_t i = 0; i < phrase_ids.size(); ++i) {
    const std::string id = phrase_ids[i];
    a.points.push_back(genuine_axis_point{
        id, static_cast<double>(i),
        [id](genuine_scenario& sc) { sc.phrase_id = id; }, nullptr});
  }
  return a;
}

genuine_axis genuine_voice_axis(
    const std::vector<std::pair<std::string, synth::voice_params>>& voices) {
  genuine_axis a{"voice", {}};
  for (std::size_t i = 0; i < voices.size(); ++i) {
    const synth::voice_params v = voices[i].second;
    a.points.push_back(genuine_axis_point{
        voices[i].first, static_cast<double>(i),
        [v](genuine_scenario& sc) { sc.voice = v; }, nullptr});
  }
  return a;
}

// ----------------------------------------------------------------- results

result_table::result_table(std::vector<std::string> axis_names,
                           std::vector<std::string> metric_names)
    : axis_names_{std::move(axis_names)},
      metric_names_{std::move(metric_names)} {
  // ":coord" is reserved for the CSV coordinate columns; a column named
  // that way would make a written table parse back with the wrong
  // shape, so reject it at the source.
  const auto reserved = [](const std::string& name) {
    return name.size() >= coord_suffix.size() &&
           name.compare(name.size() - coord_suffix.size(),
                        coord_suffix.size(), coord_suffix) == 0;
  };
  for (const std::string& name : axis_names_) {
    expects(!reserved(name),
            "result_table: axis name '" + name + "' uses reserved ':coord'");
  }
  for (const std::string& name : metric_names_) {
    expects(!reserved(name),
            "result_table: metric name '" + name + "' uses reserved ':coord'");
  }
}

double result_table::metric(std::size_t row_index,
                            const std::string& name) const {
  const row& r = rows_.at(row_index);
  for (std::size_t m = 0; m < metric_names_.size(); ++m) {
    if (metric_names_[m] == name) {
      return r.metrics[m];
    }
  }
  throw std::invalid_argument{"result_table: unknown metric '" + name + "'"};
}

success_estimate result_table::estimate(std::size_t row_index) const {
  success_estimate est;
  est.rate = metric(row_index, "rate");
  est.ci_low = metric(row_index, "ci_low");
  est.ci_high = metric(row_index, "ci_high");
  est.mean_intelligibility = metric(row_index, "mean_score");
  est.successes = static_cast<std::size_t>(metric(row_index, "successes"));
  est.trials = static_cast<std::size_t>(metric(row_index, "trials"));
  return est;
}

void result_table::add_row(row r) {
  expects(r.labels.size() == axis_names_.size() &&
              r.coords.size() == axis_names_.size(),
          "result_table: row axis width mismatch");
  expects(r.metrics.size() == metric_names_.size(),
          "result_table: row metric width mismatch");
  rows_.push_back(std::move(r));
}

void result_table::write_csv(std::ostream& out) const {
  bool first = true;
  const auto cell = [&](const std::string& text) {
    out << (first ? "" : ",") << csv_field(text);
    first = false;
  };
  for (const std::string& a : axis_names_) {
    cell(a);
    cell(a + coord_suffix);
  }
  for (const std::string& m : metric_names_) {
    cell(m);
  }
  out << "\n";
  for (const row& r : rows_) {
    first = true;
    for (std::size_t a = 0; a < r.labels.size(); ++a) {
      cell(r.labels[a]);
      cell(format_double_exact(r.coords[a]));
    }
    for (const double m : r.metrics) {
      cell(format_double_exact(m));
    }
    out << "\n";
  }
}

std::string result_table::to_csv() const {
  std::ostringstream out;
  write_csv(out);
  return out.str();
}

void result_table::write_csv_file(const std::string& path) const {
  std::ofstream out{path};
  ensures(out.good(), "result_table: cannot open '" + path + "'");
  write_csv(out);
}

result_table result_table::from_csv(const std::string& csv) {
  const std::vector<std::vector<std::string>> records =
      parse_csv_records(csv);
  if (records.empty()) {
    throw std::invalid_argument{"result_table::from_csv: empty input"};
  }
  const std::vector<std::string>& header = records.front();

  // The axis block is self-describing: each axis label column is
  // immediately followed by its "<axis>:coord" column.
  std::vector<std::string> axis_names;
  std::size_t col = 0;
  while (col + 1 < header.size() &&
         header[col + 1] == header[col] + coord_suffix) {
    axis_names.push_back(header[col]);
    col += 2;
  }
  std::vector<std::string> metric_names(header.begin() + col, header.end());

  result_table table{axis_names, metric_names};
  for (std::size_t i = 1; i < records.size(); ++i) {
    const std::vector<std::string>& cells = records[i];
    if (cells.size() != header.size()) {
      throw std::invalid_argument{
          "result_table::from_csv: row " + std::to_string(i) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(header.size())};
    }
    row r;
    for (std::size_t a = 0; a < axis_names.size(); ++a) {
      r.labels.push_back(cells[2 * a]);
      r.coords.push_back(
          parse_double_exact(cells[2 * a + 1], "result_table::from_csv"));
    }
    for (std::size_t m = 2 * axis_names.size(); m < cells.size(); ++m) {
      r.metrics.push_back(
          parse_double_exact(cells[m], "result_table::from_csv"));
    }
    table.add_row(std::move(r));
  }
  return table;
}

void result_table::write_json(std::ostream& out) const {
  const auto write_names = [&out](const std::vector<std::string>& names) {
    out << "[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << json_escape(names[i]) << '"';
    }
    out << "]";
  };
  out << "{\n  \"axis_names\": ";
  write_names(axis_names_);
  out << ",\n  \"metric_names\": ";
  write_names(metric_names_);
  out << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const row& r = rows_[i];
    out << (i == 0 ? "" : ",") << "\n    {\"labels\": ";
    write_names(r.labels);
    out << ", \"coords\": [";
    for (std::size_t a = 0; a < r.coords.size(); ++a) {
      out << (a == 0 ? "" : ", ") << format_double_exact(r.coords[a]);
    }
    out << "], \"metrics\": [";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      out << (m == 0 ? "" : ", ") << format_double_exact(r.metrics[m]);
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

std::string result_table::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void result_table::write_json_file(const std::string& path) const {
  std::ofstream out{path};
  ensures(out.good(), "result_table: cannot open '" + path + "'");
  write_json(out);
}

result_table result_table::from_json(const std::string& text) {
  const json::value doc = json::parse(text);
  const auto names_of = [](const json::value* v, const char* what) {
    if (v == nullptr || !v->is_array()) {
      throw std::invalid_argument{
          std::string{"result_table::from_json: missing "} + what};
    }
    std::vector<std::string> names;
    for (const json::value& item : v->items()) {
      names.push_back(item.string());
    }
    return names;
  };
  const auto numbers_of = [](const json::value* v, const char* what) {
    if (v == nullptr || !v->is_array()) {
      throw std::invalid_argument{
          std::string{"result_table::from_json: row missing "} + what};
    }
    std::vector<double> numbers;
    for (const json::value& item : v->items()) {
      numbers.push_back(item.number());
    }
    return numbers;
  };

  result_table table{names_of(doc.find("axis_names"), "axis_names"),
                     names_of(doc.find("metric_names"), "metric_names")};
  const json::value* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    throw std::invalid_argument{"result_table::from_json: missing rows"};
  }
  for (const json::value& r : rows->items()) {
    row parsed;
    parsed.labels = names_of(r.find("labels"), "labels");
    parsed.coords = numbers_of(r.find("coords"), "coords");
    parsed.metrics = numbers_of(r.find("metrics"), "metrics");
    table.add_row(std::move(parsed));
  }
  return table;
}

void result_table::print(std::FILE* out) const {
  const auto at_least = [](std::size_t w, std::size_t min_width) {
    return w > min_width ? w : min_width;
  };
  std::vector<std::size_t> widths(axis_names_.size());
  for (std::size_t a = 0; a < axis_names_.size(); ++a) {
    widths[a] = at_least(axis_names_[a].size(), 10);
    for (const row& r : rows_) {
      widths[a] = at_least(r.labels[a].size(), widths[a]);
    }
  }
  for (std::size_t a = 0; a < axis_names_.size(); ++a) {
    std::fprintf(out, " %*s", static_cast<int>(widths[a]),
                 axis_names_[a].c_str());
  }
  for (const std::string& name : metric_names_) {
    std::fprintf(out, " %*s", static_cast<int>(at_least(name.size(), 10)),
                 name.c_str());
  }
  std::fprintf(out, "\n");
  for (const row& r : rows_) {
    for (std::size_t a = 0; a < r.labels.size(); ++a) {
      std::fprintf(out, " %*s", static_cast<int>(widths[a]),
                   r.labels[a].c_str());
    }
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      std::fprintf(out, " %*.4g",
                   static_cast<int>(at_least(metric_names_[m].size(), 10)),
                   r.metrics[m]);
    }
    std::fprintf(out, "\n");
  }
}

// ------------------------------------------------------------------ engine

const std::vector<std::string>& success_metric_names() {
  static const std::vector<std::string> names{
      "rate", "ci_low", "ci_high", "mean_score", "successes", "trials"};
  return names;
}

engine::engine(run_config config) : config_{config} {
  expects(config_.trials_per_point > 0,
          "engine: trials_per_point must be > 0");
}

result_table engine::run(const attack_scenario& base, const grid& g) const {
  return run(base, g, default_outcome);
}

result_table engine::run(const attack_scenario& base, const grid& g,
                         const trial_evaluator& eval) const {
  if (g.session_mutable()) {
    return run_over(attack_session{base, config_.seed}, g, eval);
  }
  result_table table{grid_axis_names(g), success_metric_names()};
  const std::size_t trials = config_.trials_per_point;
  const auto outcomes = scheduled_outcomes<trial_outcome>(
      g.size(), trials, config_.num_threads,
      [&](std::size_t p, std::size_t t_lo, std::size_t t_hi,
          std::vector<trial_outcome>& slots) {
        attack_scenario sc = g.scenario_at(p, base);
        // One victim per run: every point shares the run-seed enrollment
        // (unless the caller pinned one), so the template cache makes the
        // per-point session builds pay synthesis + rig only.
        if (sc.enrollment_seed == 0) {
          sc.enrollment_seed = config_.seed ^ 0x5eedu;
        }
        const attack_session session{sc, mix_seed(config_.seed, p)};
        for (std::size_t t = t_lo; t < t_hi; ++t) {
          slots[t] = eval(session.run_trial(t));
        }
      });
  for (std::size_t p = 0; p < g.size(); ++p) {
    table.add_row(
        result_table::row{g.labels(p), g.coords(p), summarize(outcomes[p])});
  }
  return table;
}

result_table engine::run_over(const attack_session& prototype,
                              const grid& g) const {
  return run_over(prototype, g, default_outcome);
}

result_table engine::run_over(const attack_session& prototype, const grid& g,
                              const trial_evaluator& eval) const {
  expects(g.session_mutable(),
          "engine::run_over: every axis must be session-mutable");
  result_table table{grid_axis_names(g), success_metric_names()};
  const std::size_t trials = config_.trials_per_point;
  const auto outcomes = scheduled_outcomes<trial_outcome>(
      g.size(), trials, config_.num_threads,
      [&](std::size_t p, std::size_t t_lo, std::size_t t_hi,
          std::vector<trial_outcome>& slots) {
        attack_session session = prototype;  // task-private copy
        g.mutate_session(p, session);
        // Trial indices accumulate across points, matching the legacy
        // serial sweeps bit for bit.
        const std::uint64_t base_index = p * trials;
        for (std::size_t t = t_lo; t < t_hi; ++t) {
          slots[t] = eval(session.run_trial(base_index + t));
        }
      });
  for (std::size_t p = 0; p < g.size(); ++p) {
    table.add_row(
        result_table::row{g.labels(p), g.coords(p), summarize(outcomes[p])});
  }
  return table;
}

result_table engine::run_trial_means(const attack_scenario& base,
                                     const grid& g,
                                     std::vector<std::string> metric_names,
                                     const trial_metrics_evaluator& eval)
    const {
  expects(!metric_names.empty(), "engine::run_trial_means: need metric names");
  const std::size_t num_metrics = metric_names.size();
  result_table table{grid_axis_names(g), std::move(metric_names)};
  const std::size_t trials = config_.trials_per_point;

  const auto checked = [&](std::vector<double> metrics) {
    ensures(metrics.size() == num_metrics,
            "engine::run_trial_means: evaluator returned wrong metric count");
    return metrics;
  };

  std::vector<std::vector<std::vector<double>>> outcomes;
  if (g.session_mutable()) {
    // Same fast path as run_over: one build, task-private copies, trial
    // indices accumulating across points.
    const attack_session prototype{base, config_.seed};
    outcomes = scheduled_outcomes<std::vector<double>>(
        g.size(), trials, config_.num_threads,
        [&](std::size_t p, std::size_t t_lo, std::size_t t_hi,
            std::vector<std::vector<double>>& slots) {
          attack_session session = prototype;
          g.mutate_session(p, session);
          const std::uint64_t base_index = p * trials;
          for (std::size_t t = t_lo; t < t_hi; ++t) {
            slots[t] = checked(eval(session.run_trial(base_index + t)));
          }
        });
  } else {
    outcomes = scheduled_outcomes<std::vector<double>>(
        g.size(), trials, config_.num_threads,
        [&](std::size_t p, std::size_t t_lo, std::size_t t_hi,
            std::vector<std::vector<double>>& slots) {
          attack_scenario sc = g.scenario_at(p, base);
          if (sc.enrollment_seed == 0) {
            sc.enrollment_seed = config_.seed ^ 0x5eedu;
          }
          const attack_session session{sc, mix_seed(config_.seed, p)};
          for (std::size_t t = t_lo; t < t_hi; ++t) {
            slots[t] = checked(eval(session.run_trial(t)));
          }
        });
  }

  for (std::size_t p = 0; p < g.size(); ++p) {
    std::vector<double> means(num_metrics, 0.0);
    for (const std::vector<double>& trial : outcomes[p]) {
      for (std::size_t m = 0; m < num_metrics; ++m) {
        means[m] += trial[m];
      }
    }
    for (double& m : means) {
      m /= static_cast<double>(trials);
    }
    table.add_row(
        result_table::row{g.labels(p), g.coords(p), std::move(means)});
  }
  return table;
}

result_table engine::run_genuine(const genuine_scenario& base,
                                 const genuine_grid& g,
                                 const genuine_trial_evaluator& eval) const {
  result_table table{grid_axis_names(g), success_metric_names()};
  const std::size_t trials = config_.trials_per_point;

  std::vector<std::vector<trial_outcome>> outcomes;
  if (g.session_mutable()) {
    // One rendition for the whole grid; global trial indices keep the
    // noise streams distinct per (point, trial). Warm the field cache
    // so copies only re-propagate when their point mutates placement.
    const genuine_session prototype{base, config_.seed};
    prototype.prepare();
    outcomes = scheduled_outcomes<trial_outcome>(
        g.size(), trials, config_.num_threads,
        [&](std::size_t p, std::size_t t_lo, std::size_t t_hi,
            std::vector<trial_outcome>& slots) {
          genuine_session session = prototype;  // task-private copy
          g.mutate_session(p, session);
          const std::uint64_t base_index = p * trials;
          for (std::size_t t = t_lo; t < t_hi; ++t) {
            slots[t] = eval(session.run_trial(base_index + t));
          }
        });
  } else {
    // Per-point sessions seeded from the point index: every axis —
    // ambient level included — lands in the per-trial noise streams,
    // so no two grid points reuse a voice or noise rendition (the
    // legacy F-R9 loop reset its seed per ambient level and did).
    outcomes = scheduled_outcomes<trial_outcome>(
        g.size(), trials, config_.num_threads,
        [&](std::size_t p, std::size_t t_lo, std::size_t t_hi,
            std::vector<trial_outcome>& slots) {
          const genuine_session session{g.scenario_at(p, base),
                                        mix_seed(config_.seed, p)};
          for (std::size_t t = t_lo; t < t_hi; ++t) {
            slots[t] = eval(session.run_trial(t));
          }
        });
  }

  for (std::size_t p = 0; p < g.size(); ++p) {
    table.add_row(
        result_table::row{g.labels(p), g.coords(p), summarize(outcomes[p])});
  }
  return table;
}

result_table engine::run_metrics(const attack_scenario& base, const grid& g,
                                 std::vector<std::string> metric_names,
                                 const point_evaluator& eval) const {
  expects(!metric_names.empty(), "engine::run_metrics: need metric names");
  const std::size_t num_metrics = metric_names.size();
  result_table table{grid_axis_names(g), std::move(metric_names)};
  std::vector<result_table::row> rows(g.size());
  parallel_for(g.size(), config_.num_threads, [&](std::size_t p) {
    std::vector<double> metrics =
        eval(g.scenario_at(p, base), mix_seed(config_.seed, p), p);
    ensures(metrics.size() == num_metrics,
            "engine::run_metrics: evaluator returned wrong metric count");
    rows[p] = result_table::row{g.labels(p), g.coords(p), std::move(metrics)};
  });
  for (result_table::row& r : rows) {
    table.add_row(std::move(r));
  }
  return table;
}

result_table engine::run_genuine_metrics(
    const genuine_scenario& base, const genuine_grid& g,
    std::vector<std::string> metric_names,
    const genuine_point_evaluator& eval) const {
  expects(!metric_names.empty(),
          "engine::run_genuine_metrics: need metric names");
  const std::size_t num_metrics = metric_names.size();
  result_table table{grid_axis_names(g), std::move(metric_names)};
  std::vector<result_table::row> rows(g.size());
  parallel_for(g.size(), config_.num_threads, [&](std::size_t p) {
    std::vector<double> metrics =
        eval(g.scenario_at(p, base), mix_seed(config_.seed, p), p);
    ensures(metrics.size() == num_metrics,
            "engine::run_genuine_metrics: evaluator returned wrong count");
    rows[p] = result_table::row{g.labels(p), g.coords(p), std::move(metrics)};
  });
  for (result_table::row& r : rows) {
    table.add_row(std::move(r));
  }
  return table;
}

}  // namespace ivc::sim
