// Append-only experiment run log.
//
// Every `--json` bench appends one JSONL record keyed by (figure, grid
// signature, seed, trials per point): the scalar metrics of that run,
// stamped with a UTC timestamp. Because the key pins the swept grid,
// the seed, and the trial count, two records with the same key
// measured the same experiment — diffing
// their metrics across commits is the cross-PR trend tracking the
// ROADMAP asks for. The aggregator (`diff_latest_runs`, surfaced by the
// `runlog_report` tool) collapses each key to its latest record and
// reports the metric deltas against the previous run of that key.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.h"

namespace ivc::sim {

struct run_record {
  std::string figure;          // e.g. "F-R10"
  std::string grid_signature;  // from grid_signature(); any stable id works
  std::uint64_t seed = 0;      // the experiment's run seed
  std::uint64_t trials = 0;    // trials per point (0 = not trial-based)
  std::string timestamp;       // ISO-8601 UTC; append fills it when empty
  // Scalar metrics in insertion order (what json_report::add_metric saw).
  std::vector<std::pair<std::string, double>> metrics;
};

// Stable signature of a swept grid: axis names and every row's labels,
// compressed to "<axes>|<rows>|<hash>". Independent of metric values,
// so runs of the same experiment share a signature however the results
// moved.
std::string grid_signature(const result_table& table);

// The identity two comparable runs share:
// "figure|grid_signature|seed|trials". Trials are part of the key: a
// --trials 1 CI smoke and a full default run sweep the same grid with
// the same seed but are NOT the same experiment.
std::string run_key(const run_record& record);

// Appends one JSONL line to `path`, creating the file when missing.
// Fills record.timestamp (in the written line only) when empty. Throws
// when the file cannot be opened.
void append_run_record(const std::string& path, const run_record& record);

// Reads every record in file order. Returns an empty vector for a
// missing file; skips lines that fail to parse (a torn write must not
// poison the whole log).
std::vector<run_record> read_run_log(const std::string& path);

// One metric present in a key's latest and previous records.
struct metric_delta {
  std::string name;
  double previous = 0.0;
  double latest = 0.0;
};

// Aggregated view of one run key.
struct run_diff {
  run_record latest;
  bool has_previous = false;
  run_record previous;                // valid when has_previous
  std::vector<metric_delta> deltas;   // metrics shared by both records
  std::size_t occurrences = 0;        // records in the log with this key
};

// Collapses the log to its distinct keys (first-seen order): per key
// the latest record, the one before it (when the key appeared more than
// once — same-key dedupe), and the metric deltas between the two.
std::vector<run_diff> diff_latest_runs(const std::vector<run_record>& records);

}  // namespace ivc::sim
