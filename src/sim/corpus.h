// Defense corpus builder: labelled genuine + injected captures rendered
// through identical channel/microphone physics, with feature extraction.
#pragma once

#include <cstdint>
#include <vector>

#include "defense/features.h"
#include "sim/scenario.h"

namespace ivc::sim {

struct corpus_config {
  // Genuine side: phrases × voices × distances at these talker levels.
  std::vector<double> genuine_distances_m = {0.5, 1.5, 3.0};
  std::vector<double> genuine_levels_db = {60.0, 68.0};
  std::size_t genuine_per_combo = 1;
  // Attack side: rig distances and powers.
  std::vector<double> attack_distances_m = {1.0, 2.0, 4.0};
  std::vector<double> attack_powers_w = {12.0, 25.0};
  std::size_t attack_trials_per_combo = 2;
  attack::rig_config rig;  // rig template (power overridden per combo)
  mic::device_profile device = mic::phone_profile();
  environment_config environment;
  // Cap how many bank entries participate (0 = all). Small corpora for
  // tests and interactive demos; the benches use the full banks.
  std::size_t max_attack_commands = 0;
  std::size_t max_genuine_phrases = 0;
  // Rendering threads (0 = one per hardware thread). The corpus is
  // bit-identical at any thread count.
  std::size_t num_threads = 0;
};

struct defense_corpus {
  defense::labelled_features train;
  defense::labelled_features test;
  // Raw captures of the test half, aligned with `test` rows (for
  // detectors that want audio rather than features).
  std::vector<audio::buffer> test_captures;
  std::vector<int> test_labels;
};

// Builds the corpus. Samples are split train/test by an index hash so
// both halves cover every condition without generation-order artifacts.
// Deterministic in `seed`.
defense_corpus build_defense_corpus(const corpus_config& config,
                                    std::uint64_t seed);

}  // namespace ivc::sim
