// Declarative experiment engine.
//
// Every result in the paper is a grid of attack trials over scenario
// axes — distance, power, carrier, device, ambient, voice, command.
// Instead of each figure hand-rolling its sweep loop, an experiment is
// declared as a `grid` of `axis` values over a base `attack_scenario`
// and handed to the `engine`, which:
//
//   * executes grid points on a thread pool (common/parallel.h),
//     splitting a point's trials across the pool when the grid alone
//     cannot fill it (single-point range scans),
//   * seeds every point and trial deterministically from the run seed
//     and the point index — results are bit-identical at any thread
//     count and any trial split,
//   * uses a fast path when every axis can mutate a prepared
//     `attack_session` in place (distance/power/device), so the
//     expensive rig build happens once per run instead of once per
//     point,
//   * collects results into a typed `result_table` with success rates,
//     Wilson intervals, and CSV/JSON writers, so benches stop
//     formatting by hand.
//
// New axes need no engine changes: `custom_axis` takes arbitrary
// per-value setter callbacks over the scenario (and optionally the
// session).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/scenario.h"
#include "sim/sweep.h"

namespace ivc::sim {

// ------------------------------------------------------------------ axes

// One value of one axis: a display label, a numeric coordinate for
// plotting/CSV, the scenario mutation it stands for, and — when the
// mutation is cheap on a live session — the session fast-path mutation.
struct axis_point {
  std::string label;
  double value = 0.0;
  std::function<void(attack_scenario&)> apply;
  std::function<void(attack_session&)> apply_session;  // optional
};

struct axis {
  std::string name;
  std::vector<axis_point> points;

  // True when every point can mutate a prepared session in place.
  bool session_mutable() const;
};

axis distance_axis(const std::vector<double>& distances_m);
axis power_axis(const std::vector<double>& powers_w);
axis carrier_axis(const std::vector<double>& carriers_hz);
axis ambient_axis(const std::vector<double>& ambient_spl_db);
axis device_axis(const std::vector<mic::device_profile>& devices);
axis command_axis(const std::vector<std::string>& command_ids);
axis voice_axis(
    const std::vector<std::pair<std::string, synth::voice_params>>& voices);

// Extension point: any named list of labelled scenario mutations.
axis custom_axis(std::string name, std::vector<axis_point> points);

// ------------------------------------------------------------------ grid

// An ordered set of experiment points over one or more axes. Cartesian
// grids enumerate the cross product (last axis fastest-varying, like
// nested loops); zipped grids advance all axes together.
class grid {
 public:
  static grid cartesian(std::vector<axis> axes);
  static grid zipped(std::vector<axis> axes);

  std::size_t size() const { return num_points_; }
  const std::vector<axis>& axes() const { return axes_; }

  // Per-axis value index of a grid point.
  std::vector<std::size_t> value_indices(std::size_t point) const;
  // Label / numeric coordinate per axis at a grid point.
  std::vector<std::string> labels(std::size_t point) const;
  std::vector<double> coords(std::size_t point) const;

  // The base scenario with every axis mutation for `point` applied.
  attack_scenario scenario_at(std::size_t point,
                              const attack_scenario& base) const;

  // True when every axis is session-mutable (engine fast path).
  bool session_mutable() const;
  void mutate_session(std::size_t point, attack_session& session) const;

 private:
  grid(std::vector<axis> axes, bool cartesian);

  std::vector<axis> axes_;
  bool cartesian_ = true;
  std::size_t num_points_ = 0;
};

// --------------------------------------------------------------- results

// Serialization helpers shared by result_table and the bench JSON
// reporters: minimal JSON string escaping, and double formatting with
// enough digits to round-trip bit-identically.
std::string json_escape(const std::string& s);
std::string format_double_exact(double v);

// A rectangular result set: one row per grid point, axis columns
// (label + numeric coordinate) followed by named metric columns.
class result_table {
 public:
  struct row {
    std::vector<std::string> labels;   // one per axis
    std::vector<double> coords;        // one per axis
    std::vector<double> metrics;       // one per metric column
    bool operator==(const row&) const = default;
  };

  result_table() = default;
  result_table(std::vector<std::string> axis_names,
               std::vector<std::string> metric_names);

  const std::vector<std::string>& axis_names() const { return axis_names_; }
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }
  const std::vector<row>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  const row& at(std::size_t index) const { return rows_.at(index); }

  // Metric lookup by column name; throws for unknown names.
  double metric(std::size_t row_index, const std::string& name) const;
  // Reconstructs the success estimate from the standard engine columns.
  success_estimate estimate(std::size_t row_index) const;

  void add_row(row r);  // validates column counts

  // CSV: header of axis + metric names; doubles at full precision so a
  // written table parses back bit-identically.
  std::string to_csv() const;
  void write_csv(std::ostream& out) const;
  void write_csv_file(const std::string& path) const;

  // JSON object {axis_names, metric_names, rows:[{labels, coords,
  // metrics}]} at full precision.
  std::string to_json() const;
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;

  // Fixed-width human-readable table (what benches print).
  void print(std::FILE* out = stdout) const;

  bool operator==(const result_table&) const = default;

 private:
  std::vector<std::string> axis_names_;
  std::vector<std::string> metric_names_;
  std::vector<row> rows_;
};

// ---------------------------------------------------------------- engine

struct run_config {
  std::size_t trials_per_point = 8;
  std::uint64_t seed = 42;
  // 0 = one thread per hardware thread.
  std::size_t num_threads = 0;
};

// Verdict of one trial under a custom evaluator.
struct trial_outcome {
  bool success = false;
  double score = 0.0;
};
using trial_evaluator = std::function<trial_outcome(const trial_result&)>;

// Names of the standard success-experiment metric columns, in order:
// rate, ci_low, ci_high, mean_score, successes, trials.
const std::vector<std::string>& success_metric_names();

class engine {
 public:
  explicit engine(run_config config = {});
  const run_config& config() const { return config_; }

  // Standard success-rate experiment: per grid point, builds (or
  // mutates) a session, runs `trials_per_point` trials, and records
  // rate / Wilson CI / mean score. The default evaluator scores
  // recognizer success and intelligibility; pass `eval` to redefine
  // what counts as success (e.g. "the defense detected the capture").
  result_table run(const attack_scenario& base, const grid& g) const;
  result_table run(const attack_scenario& base, const grid& g,
                   const trial_evaluator& eval) const;

  // Fast path over a caller-prepared session; every grid axis must be
  // session-mutable. Trial indices accumulate across points exactly
  // like the legacy serial sweeps, so results match them bit for bit.
  result_table run_over(const attack_session& prototype, const grid& g) const;
  result_table run_over(const attack_session& prototype, const grid& g,
                        const trial_evaluator& eval) const;

  // Fully custom per-point measurement (leakage figures, range scans):
  // `eval` receives the point's scenario, a deterministic per-point
  // seed, and the grid point index (for per-point side tables), and
  // returns one value per metric name.
  using point_evaluator = std::function<std::vector<double>(
      const attack_scenario&, std::uint64_t point_seed,
      std::size_t point_index)>;
  result_table run_metrics(const attack_scenario& base, const grid& g,
                           std::vector<std::string> metric_names,
                           const point_evaluator& eval) const;

 private:
  run_config config_;
};

}  // namespace ivc::sim
