// Declarative experiment engine.
//
// Every result in the paper is a grid of trials over scenario axes —
// distance, power, carrier, device, ambient, voice, command — on both
// sides of the ROC: attack captures (detection / success rates) and
// genuine captures (false positives). Instead of each figure
// hand-rolling its sweep loop, an experiment is declared as a `grid` of
// `axis` values over a base scenario and handed to the `engine`, which:
//
//   * executes grid points on a thread pool (common/parallel.h),
//     splitting a point's trials across the pool when the grid alone
//     cannot fill it (single-point range scans),
//   * seeds every point and trial deterministically from the run seed
//     and the point index — results are bit-identical at any thread
//     count and any trial split,
//   * uses a fast path when every axis can mutate a prepared session in
//     place (distance/power/device on the attack side; ambient/
//     distance/level/device on the genuine side), so the expensive
//     build happens once per run instead of once per point,
//   * collects results into a typed `result_table` with success rates,
//     Wilson intervals, and CSV/JSON writers **and parsers**, so benches
//     stop formatting by hand and written tables round-trip.
//
// The axis/grid machinery is templated over (scenario, session) pairs:
// `axis`/`grid` sweep `attack_scenario`/`attack_session`,
// `genuine_axis`/`genuine_grid` sweep `genuine_scenario`/
// `genuine_session`. New axes need no engine changes: `custom_axis`
// takes arbitrary per-value setter callbacks over the scenario (and
// optionally the session).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "sim/scenario.h"
#include "sim/sweep.h"

namespace ivc::sim {

// ------------------------------------------------------------------ axes

// One value of one axis: a display label, a numeric coordinate for
// plotting/CSV, the scenario mutation it stands for, and — when the
// mutation is cheap on a live session — the session fast-path mutation.
template <class Scenario, class Session>
struct basic_axis_point {
  std::string label;
  double value = 0.0;
  std::function<void(Scenario&)> apply;
  std::function<void(Session&)> apply_session;  // optional
};

template <class Scenario, class Session>
struct basic_axis {
  std::string name;
  std::vector<basic_axis_point<Scenario, Session>> points;

  // True when every point can mutate a prepared session in place.
  bool session_mutable() const {
    for (const basic_axis_point<Scenario, Session>& p : points) {
      if (!p.apply_session) {
        return false;
      }
    }
    return !points.empty();
  }
};

using axis_point = basic_axis_point<attack_scenario, attack_session>;
using axis = basic_axis<attack_scenario, attack_session>;
using genuine_axis_point = basic_axis_point<genuine_scenario, genuine_session>;
using genuine_axis = basic_axis<genuine_scenario, genuine_session>;

axis distance_axis(const std::vector<double>& distances_m);
axis power_axis(const std::vector<double>& powers_w);
axis carrier_axis(const std::vector<double>& carriers_hz);
axis ambient_axis(const std::vector<double>& ambient_spl_db);
axis device_axis(const std::vector<mic::device_profile>& devices);
axis command_axis(const std::vector<std::string>& command_ids);
axis voice_axis(
    const std::vector<std::pair<std::string, synth::voice_params>>& voices);

// Genuine-side vocabulary (the F-R9 false-positive grids). Ambient,
// distance, talker level, and device mutate a prepared genuine_session
// in place; phrase and voice re-render the rendition, so they are
// scenario-only.
genuine_axis genuine_ambient_axis(const std::vector<double>& ambient_spl_db);
genuine_axis genuine_distance_axis(const std::vector<double>& distances_m);
genuine_axis genuine_level_axis(const std::vector<double>& levels_db_spl);
genuine_axis genuine_device_axis(
    const std::vector<mic::device_profile>& devices);
genuine_axis genuine_phrase_axis(const std::vector<std::string>& phrase_ids);
genuine_axis genuine_voice_axis(
    const std::vector<std::pair<std::string, synth::voice_params>>& voices);

// Extension point: any named list of labelled scenario mutations, on
// either side. (Concrete overloads, not a template: callers pass braced
// initializer lists, which cannot deduce the scenario type.)
axis custom_axis(std::string name, std::vector<axis_point> points);
genuine_axis custom_axis(std::string name,
                         std::vector<genuine_axis_point> points);

// ------------------------------------------------------------------ grid

// An ordered set of experiment points over one or more axes. Cartesian
// grids enumerate the cross product (last axis fastest-varying, like
// nested loops); zipped grids advance all axes together.
template <class Scenario, class Session>
class basic_grid {
 public:
  using axis_type = basic_axis<Scenario, Session>;

  static basic_grid cartesian(std::vector<axis_type> axes) {
    return basic_grid{std::move(axes), true};
  }
  static basic_grid zipped(std::vector<axis_type> axes) {
    return basic_grid{std::move(axes), false};
  }

  std::size_t size() const { return num_points_; }
  const std::vector<axis_type>& axes() const { return axes_; }

  // Per-axis value index of a grid point.
  std::vector<std::size_t> value_indices(std::size_t point) const {
    expects(point < num_points_, "grid: point index out of range");
    std::vector<std::size_t> indices(axes_.size());
    if (cartesian_) {
      // Last axis fastest-varying, like nested loops.
      std::size_t rest = point;
      for (std::size_t a = axes_.size(); a-- > 0;) {
        const std::size_t n = axes_[a].points.size();
        indices[a] = rest % n;
        rest /= n;
      }
    } else {
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        indices[a] = point;
      }
    }
    return indices;
  }

  // Label / numeric coordinate per axis at a grid point.
  std::vector<std::string> labels(std::size_t point) const {
    const std::vector<std::size_t> indices = value_indices(point);
    std::vector<std::string> labels(axes_.size());
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      labels[a] = axes_[a].points[indices[a]].label;
    }
    return labels;
  }

  std::vector<double> coords(std::size_t point) const {
    const std::vector<std::size_t> indices = value_indices(point);
    std::vector<double> coords(axes_.size());
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      coords[a] = axes_[a].points[indices[a]].value;
    }
    return coords;
  }

  // The base scenario with every axis mutation for `point` applied.
  Scenario scenario_at(std::size_t point, const Scenario& base) const {
    const std::vector<std::size_t> indices = value_indices(point);
    Scenario sc = base;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      axes_[a].points[indices[a]].apply(sc);
    }
    return sc;
  }

  // True when every axis is session-mutable (engine fast path).
  bool session_mutable() const {
    for (const axis_type& a : axes_) {
      if (!a.session_mutable()) {
        return false;
      }
    }
    return true;
  }

  void mutate_session(std::size_t point, Session& session) const {
    const std::vector<std::size_t> indices = value_indices(point);
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const basic_axis_point<Scenario, Session>& p =
          axes_[a].points[indices[a]];
      expects(static_cast<bool>(p.apply_session),
              "grid: axis '" + axes_[a].name + "' is not session-mutable");
      p.apply_session(session);
    }
  }

 private:
  basic_grid(std::vector<axis_type> axes, bool cartesian)
      : axes_{std::move(axes)}, cartesian_{cartesian} {
    expects(!axes_.empty(), "grid: need at least one axis");
    for (const axis_type& a : axes_) {
      expects(!a.points.empty(), "grid: axis '" + a.name + "' has no values");
      for (const basic_axis_point<Scenario, Session>& p : a.points) {
        expects(static_cast<bool>(p.apply),
                "grid: axis '" + a.name + "' has a point without apply()");
      }
    }
    if (cartesian_) {
      num_points_ = 1;
      for (const axis_type& a : axes_) {
        num_points_ *= a.points.size();
      }
    } else {
      num_points_ = axes_.front().points.size();
      for (const axis_type& a : axes_) {
        expects(a.points.size() == num_points_,
                "grid::zipped: axes must have equal lengths");
      }
    }
  }

  std::vector<axis_type> axes_;
  bool cartesian_ = true;
  std::size_t num_points_ = 0;
};

using grid = basic_grid<attack_scenario, attack_session>;
using genuine_grid = basic_grid<genuine_scenario, genuine_session>;

// --------------------------------------------------------------- results

// Serialization helpers shared by result_table and the bench JSON
// reporters: minimal JSON string escaping, and double formatting with
// enough digits to round-trip bit-identically.
std::string json_escape(const std::string& s);
std::string format_double_exact(double v);

// A rectangular result set: one row per grid point, axis columns
// (label + numeric coordinate) followed by named metric columns.
class result_table {
 public:
  struct row {
    std::vector<std::string> labels;   // one per axis
    std::vector<double> coords;        // one per axis
    std::vector<double> metrics;       // one per metric column
    bool operator==(const row&) const = default;
  };

  result_table() = default;
  result_table(std::vector<std::string> axis_names,
               std::vector<std::string> metric_names);

  const std::vector<std::string>& axis_names() const { return axis_names_; }
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }
  const std::vector<row>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  const row& at(std::size_t index) const { return rows_.at(index); }

  // Metric lookup by column name; throws for unknown names.
  double metric(std::size_t row_index, const std::string& name) const;
  // Reconstructs the success estimate from the standard engine columns.
  success_estimate estimate(std::size_t row_index) const;

  void add_row(row r);  // validates column counts

  // CSV: per axis a label column and a "<axis>:coord" numeric column,
  // then the metric columns. Fields are quoted per RFC 4180 ('"'
  // doubling) and doubles written at full precision, so a written table
  // parses back bit-identically through from_csv.
  std::string to_csv() const;
  void write_csv(std::ostream& out) const;
  void write_csv_file(const std::string& path) const;

  // Inverse of to_csv(): throws std::invalid_argument on malformed
  // input or a header without the axis/coord column structure.
  static result_table from_csv(const std::string& csv);

  // JSON object {axis_names, metric_names, rows:[{labels, coords,
  // metrics}]} at full precision.
  std::string to_json() const;
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;

  // Inverse of to_json(); throws std::invalid_argument on malformed or
  // mis-shaped input.
  static result_table from_json(const std::string& json);

  // Fixed-width human-readable table (what benches print).
  void print(std::FILE* out = stdout) const;

  bool operator==(const result_table&) const = default;

 private:
  std::vector<std::string> axis_names_;
  std::vector<std::string> metric_names_;
  std::vector<row> rows_;
};

// ---------------------------------------------------------------- engine

struct run_config {
  std::size_t trials_per_point = 8;
  std::uint64_t seed = 42;
  // 0 = one thread per hardware thread.
  std::size_t num_threads = 0;
};

// Verdict of one trial under a custom evaluator.
struct trial_outcome {
  bool success = false;
  double score = 0.0;
};
using trial_evaluator = std::function<trial_outcome(const trial_result&)>;

// Genuine-side evaluator: judges one genuine capture (e.g. "the defense
// false-alarmed on it").
using genuine_trial_evaluator =
    std::function<trial_outcome(const audio::buffer& capture)>;

// Per-trial metric vector (one value per metric column); the engine
// reports per-point means. Rates are means of 0/1 indicators.
using trial_metrics_evaluator =
    std::function<std::vector<double>(const trial_result&)>;

// Names of the standard success-experiment metric columns, in order:
// rate, ci_low, ci_high, mean_score, successes, trials.
const std::vector<std::string>& success_metric_names();

class engine {
 public:
  explicit engine(run_config config = {});
  const run_config& config() const { return config_; }

  // Standard success-rate experiment: per grid point, builds (or
  // mutates) a session, runs `trials_per_point` trials, and records
  // rate / Wilson CI / mean score. The default evaluator scores
  // recognizer success and intelligibility; pass `eval` to redefine
  // what counts as success (e.g. "the defense detected the capture").
  result_table run(const attack_scenario& base, const grid& g) const;
  result_table run(const attack_scenario& base, const grid& g,
                   const trial_evaluator& eval) const;

  // Fast path over a caller-prepared session; every grid axis must be
  // session-mutable. Trial indices accumulate across points exactly
  // like the legacy serial sweeps, so results match them bit for bit.
  result_table run_over(const attack_session& prototype, const grid& g) const;
  result_table run_over(const attack_session& prototype, const grid& g,
                        const trial_evaluator& eval) const;

  // Per-point means of per-trial metric vectors (the F-R10 shape: one
  // row per cancellation accuracy, columns for residual trace, defense
  // verdicts, attack success). Uses the session fast path when the grid
  // allows it.
  result_table run_trial_means(const attack_scenario& base, const grid& g,
                               std::vector<std::string> metric_names,
                               const trial_metrics_evaluator& eval) const;

  // Genuine-side success grid (the F-R9 false-positive measurement):
  // per point, builds (or mutates) a genuine_session and evaluates
  // `trials_per_point` captures. Point seeds fold every axis — ambient
  // included — into the per-trial noise streams, and results are
  // bit-identical at any thread count.
  result_table run_genuine(const genuine_scenario& base, const genuine_grid& g,
                           const genuine_trial_evaluator& eval) const;

  // Fully custom per-point measurement (leakage figures, range scans):
  // `eval` receives the point's scenario, a deterministic per-point
  // seed, and the grid point index (for per-point side tables), and
  // returns one value per metric name.
  using point_evaluator = std::function<std::vector<double>(
      const attack_scenario&, std::uint64_t point_seed,
      std::size_t point_index)>;
  result_table run_metrics(const attack_scenario& base, const grid& g,
                           std::vector<std::string> metric_names,
                           const point_evaluator& eval) const;

  // Genuine-side counterpart of run_metrics (the F-R13 room ablation).
  using genuine_point_evaluator = std::function<std::vector<double>(
      const genuine_scenario&, std::uint64_t point_seed,
      std::size_t point_index)>;
  result_table run_genuine_metrics(const genuine_scenario& base,
                                   const genuine_grid& g,
                                   std::vector<std::string> metric_names,
                                   const genuine_point_evaluator& eval) const;

 private:
  run_config config_;
};

}  // namespace ivc::sim
