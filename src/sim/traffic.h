// Scenario-driven traffic generation for the serving layer.
//
// Synthesizes a fleet of heterogeneous device streams — some genuine
// talkers, some inaudible-command attacks — from the existing scenario
// and device-profile library, and slices each stream into ingest blocks
// for the serve/ session manager. Determinism is the load-bearing
// property: a session's stream is a pure function of (config, seed,
// session index) — never of render order or thread count — so the load
// bench can assert bit-identical per-session verdict streams whatever
// parallelism rendered the traffic or drained the sessions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "attack/planner.h"
#include "audio/buffer.h"
#include "common/rng.h"
#include "mic/device_profiles.h"
#include "sim/scenario.h"

namespace ivc::sim {

struct traffic_config {
  std::size_t num_sessions = 64;
  // Expected fraction of attack streams (per-session Bernoulli draw).
  double attack_fraction = 0.3;
  // Ingest block duration the stream is sliced into.
  double block_s = 0.05;
  // Utterances per stream, separated by silence gaps.
  std::size_t utterances_per_session = 1;
  std::pair<double, double> gap_s{0.15, 0.45};
  // Devices cycled over the fleet; empty = mic::all_profiles().
  std::vector<mic::device_profile> devices;
  // Per-session parameter ranges (uniform draws).
  std::pair<double, double> genuine_distance_m{0.5, 3.0};
  std::pair<double, double> genuine_level_db{60.0, 70.0};
  std::pair<double, double> attack_distance_m{1.0, 3.5};
  std::pair<double, double> ambient_spl_db{32.0, 50.0};
  // Attack rig template. The single-speaker rig keeps per-session render
  // cost low; the load bench is about the defense side, not the rig.
  attack::rig_config rig = attack::monolithic_rig();
  // Threads for render_all (0 = hardware). Output is bit-identical at
  // any count.
  std::size_t num_threads = 0;
  // ---- Arrival timeline (serve_load --paced) -------------------------
  // Sessions start uniformly spread over [0, start_spread_s] seconds
  // (0 = everyone starts at t = 0); a session's block `b` then arrives
  // once its audio has been captured, i.e. at start + end-of-block time.
  double start_spread_s = 0.0;
  // > 0: session starts instead form a Poisson process at this rate
  // (sessions/s) — exponential inter-arrival gaps seeded from the run
  // seed, cumulative in session index. Overrides start_spread_s.
  double session_rate_hz = 0.0;
};

// One synthesized stream: the full capture at the device rate plus its
// ground truth, sliceable into ingest blocks.
struct session_script {
  std::size_t index = 0;
  bool is_attack = false;
  std::string phrase_id;
  // Ground truth for the end-to-end pipeline: the command id this
  // stream's utterances intend to execute — the injected command for an
  // attack stream, the spoken command for a genuine user issuing one,
  // and EMPTY for benign chatter (nothing should execute; an execution
  // on such a stream is a pipeline false-execute). Lets serve_load
  // score attacker success (= intended command executed) and genuine
  // task completion, not just detector hits.
  std::string intended_command_id;
  std::string device_name;
  double distance_m = 0.0;
  double ambient_spl_db = 0.0;
  double start_s = 0.0;           // timeline offset of the stream start
  audio::buffer capture;          // device-rate stream (utterances + gaps)
  std::size_t block_samples = 0;  // ingest block size in samples

  std::size_t num_blocks() const;
  // Block `b` of the stream (the last block may be short).
  audio::buffer block(std::size_t b) const;
  // Timeline instant block `b` becomes available to offer: the session
  // start offset plus the capture time of the block's last sample (a
  // capture device can only hand over a block once it has recorded it).
  double block_arrival_s(std::size_t b) const;
  // Arrival of the final block — when the stream is over.
  double end_s() const;
};

class traffic_generator {
 public:
  traffic_generator(traffic_config config, std::uint64_t seed);

  const traffic_config& config() const { return config_; }
  std::size_t num_sessions() const { return config_.num_sessions; }

  // Renders session `index`'s stream. Pure in (config, seed, index).
  session_script script(std::size_t index) const;

  // Timeline start offset of session `index` (also stamped into its
  // script). Pure in (config, seed, index); the Poisson process draws
  // its gaps from a dedicated stream split off the run seed, so start
  // times never perturb the audio content of any session.
  double session_start_s(std::size_t index) const;

  // Renders every session on a thread pool (slot-per-session writes, so
  // the result is bit-identical at any thread count).
  std::vector<session_script> render_all() const;

 private:
  traffic_config config_;
  ivc::rng base_rng_;
  std::vector<double> start_s_;  // per-session timeline offsets
};

}  // namespace ivc::sim
