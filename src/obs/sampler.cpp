#include "obs/sampler.h"

#include <fstream>
#include <utility>

#include "common/error.h"

namespace ivc::obs {

fleet_sampler::fleet_sampler(sampler_config config,
                             std::function<json::value()> probe)
    : config_{std::move(config)}, probe_{std::move(probe)} {
  expects(!config_.path.empty(), "fleet_sampler: empty output path");
  expects(config_.interval_s > 0.0, "fleet_sampler: interval must be > 0");
  expects(probe_ != nullptr, "fleet_sampler: null probe");
}

fleet_sampler::~fleet_sampler() {
  stop();
  if (thread_.joinable()) {
    thread_.join();  // belt-and-braces against a start()/stop() race
  }
}

void fleet_sampler::start() {
  {
    const ts_lock lock{mutex_};
    if (running_) {
      return;  // idempotent: already sampling
    }
    running_ = true;
    stopping_ = false;
    t0_ = std::chrono::steady_clock::now();
  }
  take_sample();  // t ~ 0 baseline, before any interval elapses
  const ts_lock lock{mutex_};
  thread_ = std::thread{[this] { loop(); }};
}

void fleet_sampler::stop() {
  std::thread joinee;
  {
    const ts_lock lock{mutex_};
    if (!running_) {
      return;  // idempotent: not sampling
    }
    running_ = false;
    stopping_ = true;
    joinee.swap(thread_);
  }
  cv_.notify_all();
  if (joinee.joinable()) {
    joinee.join();
  }
  take_sample();  // final state of the run, after the workers' last tick
}

bool fleet_sampler::running() const {
  const ts_lock lock{mutex_};
  return running_;
}

std::size_t fleet_sampler::samples() const {
  const ts_lock lock{mutex_};
  return samples_;
}

void fleet_sampler::loop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.interval_s));
  for (;;) {
    {
      ts_unique_lock lock{mutex_};
      // Explicit deadline loop instead of the predicate overload: the
      // predicate would be a lambda reading stopping_, which the
      // analysis treats as a separate lock-free function. Semantics are
      // identical — stopping_ is only ever read with the lock held.
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!stopping_) {
        if (cv_.wait_until(lock.native(), deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) {
        return;  // stop() takes the final sample itself
      }
    }
    take_sample();
  }
}

void fleet_sampler::take_sample() {
  json::value probed;
  try {
    probed = probe_();
  } catch (...) {
    return;  // a failed probe drops the tick, never the thread
  }
  if (!probed.is_object()) {
    return;
  }
  std::chrono::steady_clock::time_point t0;
  {
    const ts_lock lock{mutex_};
    t0 = t0_;
  }
  const double t_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  json::object line;
  line.reserve(probed.members().size() + 1);
  line.emplace_back("t_s", json::value{t_s});
  for (const auto& [key, val] : probed.members()) {
    line.emplace_back(key, val);
  }
  const std::string text = json::write(json::value{std::move(line)});
  const ts_lock lock{mutex_};
  std::ofstream out{config_.path, std::ios::app};
  if (!out.good()) {
    return;  // an unwritable path drops samples, not the run
  }
  out << text << '\n';
  ++samples_;
}

}  // namespace ivc::obs
