#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>

#include "common/error.h"

namespace ivc::obs {

namespace {

// Canonical identity string: name|k=v|k=v with labels sorted by key.
// '|' cannot appear in a Prometheus metric name, and label VALUES with
// '|' would only matter if two different label sets collided to one
// key — the '=' separator plus sorted keys makes that a non-issue for
// the closed set of names this codebase emits.
std::string canonical_key(const std::string& name, const label_set& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '|';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

void canonicalize(label_set& labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    expects(labels[i - 1].first != labels[i].first,
            "metrics_registry: duplicate label key");
  }
}

// Prometheus sample value: integers print plain, doubles at full
// precision (the same %.17g contract as json_min::write).
std::string prom_number(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string prom_labels(const label_set& labels) {
  if (labels.empty()) {
    return {};
  }
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first;
    out += "=\"";
    // Escape per the exposition format: backslash, quote, newline.
    for (const char c : labels[i].second) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

json::value labels_json(const label_set& labels) {
  json::object o;
  o.reserve(labels.size());
  for (const auto& [k, v] : labels) {
    o.emplace_back(k, json::value{v});
  }
  return json::value{std::move(o)};
}

}  // namespace

metrics_registry::metrics_registry(std::size_t shards, histogram_config bins)
    : bins_{bins}, shards_(shards == 0 ? 1 : shards) {}

metrics_registry::entry& metrics_registry::intern(const std::string& name,
                                                  label_set labels, kind type,
                                                  bool deterministic) {
  expects(!name.empty(), "metrics_registry: empty metric name");
  canonicalize(labels);
  const std::string key = canonical_key(name, labels);
  table_shard& sh = shards_[std::hash<std::string>{}(key) % shards_.size()];
  const ts_lock lock{sh.mutex};
  for (const std::unique_ptr<entry>& e : sh.entries) {
    if (e->key == key) {
      expects(e->type == type,
              "metrics_registry: metric re-registered as a different kind");
      expects(e->deterministic == deterministic,
              "metrics_registry: metric re-registered with a different "
              "deterministic flag");
      return *e;
    }
  }
  auto e = std::make_unique<entry>();
  e->key = key;
  e->name = name;
  e->labels = std::move(labels);
  e->type = type;
  e->deterministic = deterministic;
  switch (type) {
    case kind::counter:
      e->cnt = std::make_unique<detail::counter_cell>();
      break;
    case kind::gauge:
      e->gge = std::make_unique<detail::gauge_cell>();
      break;
    case kind::histogram:
      e->hist = std::make_unique<detail::histogram_cell>(bins_);
      break;
  }
  sh.entries.push_back(std::move(e));
  return *sh.entries.back();
}

counter metrics_registry::get_counter(const std::string& name,
                                      label_set labels, bool deterministic) {
  return counter{
      intern(name, std::move(labels), kind::counter, deterministic).cnt.get()};
}

gauge metrics_registry::get_gauge(const std::string& name, label_set labels) {
  // Gauges are point-in-time reads of scheduling state — never part of
  // the deterministic fingerprint.
  return gauge{intern(name, std::move(labels), kind::gauge, false).gge.get()};
}

histogram metrics_registry::get_histogram(const std::string& name,
                                          label_set labels) {
  return histogram{
      intern(name, std::move(labels), kind::histogram, false).hist.get()};
}

std::vector<const metrics_registry::entry*> metrics_registry::sorted_entries()
    const {
  std::vector<const entry*> out;
  for (const table_shard& sh : shards_) {
    const ts_lock lock{sh.mutex};
    for (const std::unique_ptr<entry>& e : sh.entries) {
      out.push_back(e.get());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const entry* a, const entry* b) { return a->key < b->key; });
  return out;
}

json::value metrics_registry::snapshot() const {
  json::array counters;
  json::array gauges;
  json::array histograms;
  for (const entry* e : sorted_entries()) {
    json::object o;
    o.emplace_back("name", json::value{e->name});
    o.emplace_back("labels", labels_json(e->labels));
    switch (e->type) {
      case kind::counter:
        o.emplace_back("value",
                       json::value{static_cast<double>(
                           e->cnt->value.load(std::memory_order_relaxed))});
        o.emplace_back("deterministic", json::value{e->deterministic});
        counters.emplace_back(json::value{std::move(o)});
        break;
      case kind::gauge:
        o.emplace_back(
            "value",
            json::value{e->gge->value.load(std::memory_order_relaxed)});
        gauges.emplace_back(json::value{std::move(o)});
        break;
      case kind::histogram: {
        const ts_lock lock{e->hist->mutex};
        const log_histogram& h = e->hist->hist;
        o.emplace_back("count",
                       json::value{static_cast<double>(h.count())});
        o.emplace_back("mean", json::value{h.mean()});
        o.emplace_back("min", json::value{h.min()});
        o.emplace_back("max", json::value{h.max()});
        o.emplace_back("p50", json::value{h.quantile(0.50)});
        o.emplace_back("p95", json::value{h.quantile(0.95)});
        o.emplace_back("p99", json::value{h.quantile(0.99)});
        histograms.emplace_back(json::value{std::move(o)});
        break;
      }
    }
  }
  json::object root;
  root.emplace_back("counters", json::value{std::move(counters)});
  root.emplace_back("gauges", json::value{std::move(gauges)});
  root.emplace_back("histograms", json::value{std::move(histograms)});
  return json::value{std::move(root)};
}

std::string metrics_registry::to_json() const { return json::write(snapshot()); }

std::string metrics_registry::to_prometheus() const {
  std::string out;
  // Group consecutive entries of one name under a single # TYPE line;
  // sorted_entries() keeps a name's label variants adjacent because the
  // key starts with the name.
  std::string open_name;
  for (const entry* e : sorted_entries()) {
    if (e->name != open_name) {
      open_name = e->name;
      out += "# TYPE ";
      out += e->name;
      switch (e->type) {
        case kind::counter:
          out += " counter\n";
          break;
        case kind::gauge:
          out += " gauge\n";
          break;
        case kind::histogram:
          out += " summary\n";
          break;
      }
    }
    switch (e->type) {
      case kind::counter:
        out += e->name + prom_labels(e->labels) + ' ' +
               prom_number(static_cast<double>(
                   e->cnt->value.load(std::memory_order_relaxed))) +
               '\n';
        break;
      case kind::gauge:
        out += e->name + prom_labels(e->labels) + ' ' +
               prom_number(e->gge->value.load(std::memory_order_relaxed)) +
               '\n';
        break;
      case kind::histogram: {
        const ts_lock lock{e->hist->mutex};
        const log_histogram& h = e->hist->hist;
        const double quantiles[] = {0.50, 0.95, 0.99};
        for (const double q : quantiles) {
          label_set labels = e->labels;
          labels.emplace_back("quantile", prom_number(q));
          out += e->name + prom_labels(labels) + ' ' +
                 prom_number(h.quantile(q)) + '\n';
        }
        out += e->name + "_sum" + prom_labels(e->labels) + ' ' +
               prom_number(h.mean() * static_cast<double>(h.count())) + '\n';
        out += e->name + "_count" + prom_labels(e->labels) + ' ' +
               prom_number(static_cast<double>(h.count())) + '\n';
        break;
      }
    }
  }
  return out;
}

json::value metrics_registry::counters_snapshot() const {
  json::object o;
  for (const entry* e : sorted_entries()) {
    if (e->type == kind::counter && e->deterministic) {
      o.emplace_back(e->key,
                     json::value{static_cast<double>(
                         e->cnt->value.load(std::memory_order_relaxed))});
    }
  }
  return json::value{std::move(o)};
}

std::string metrics_registry::deterministic_fingerprint() const {
  return json::write(counters_snapshot());
}

}  // namespace ivc::obs
