#include "obs/trace.h"

#include <fstream>
#include <utility>

#include "common/error.h"
#include "common/json_field.h"

namespace ivc::obs {

const char* stage_name(trace_stage stage) {
  switch (stage) {
    case trace_stage::ingest:
      return "ingest";
    case trace_stage::detector:
      return "detector";
    case trace_stage::asr:
      return "asr";
    case trace_stage::intent:
      return "intent";
    case trace_stage::outcome:
      return "outcome";
    case trace_stage::quarantine:
      return "quarantine";
  }
  return "unknown";
}

json::value encode_spans(const std::vector<span>& spans) {
  json::array all;
  all.reserve(spans.size());
  for (const span& s : spans) {
    json::array row;
    row.reserve(6);
    row.emplace_back(static_cast<double>(s.stage));
    row.emplace_back(static_cast<double>(s.index));
    row.emplace_back(s.t_s);
    row.emplace_back(s.value);
    row.emplace_back(s.wall_s);
    row.emplace_back(s.detail);
    all.emplace_back(std::move(row));
  }
  return json::value{std::move(all)};
}

std::vector<span> decode_spans(const json::value& v) {
  std::vector<span> out;
  out.reserve(v.items().size());
  for (const json::value& rv : v.items()) {
    const json::array& row = rv.items();
    expects(row.size() == 6, "trace: span row size mismatch");
    span s;
    const int stage = static_cast<int>(row[0].number());
    expects(stage >= 0 && stage <= 5, "trace: span stage out of range");
    s.stage = static_cast<trace_stage>(stage);
    s.index = static_cast<std::uint64_t>(row[1].number());
    s.t_s = row[2].number();
    s.value = row[3].number();
    s.wall_s = row[4].number();
    s.detail = row[5].string();
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<span> strip_wall_clock(std::vector<span> spans) {
  for (span& s : spans) {
    s.wall_s = 0.0;
  }
  return spans;
}

void trace_ring::record(span s) {
  if (capacity_ == 0) {
    return;
  }
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(s));
    count_ = ring_.size();
    return;
  }
  ring_[next_] = std::move(s);
  next_ = (next_ + 1) % capacity_;
}

void trace_ring::clear() {
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  count_ = 0;
  total_ = 0;
}

std::vector<span> trace_ring::spans() const {
  std::vector<span> out;
  out.reserve(count_);
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;  // not wrapped yet: storage order IS stream order
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

json::value trace_ring::snapshot() const {
  json::object o;
  o.emplace_back("cap", json::value{static_cast<double>(capacity_)});
  o.emplace_back("tot", json::value{static_cast<double>(total_)});
  o.emplace_back("sp", encode_spans(spans()));
  return json::value{std::move(o)};
}

void trace_ring::restore(const json::value& snap) {
  expects(static_cast<std::size_t>(json::num(snap, "cap")) == capacity_,
          "trace_ring: snapshot capacity mismatch");
  std::vector<span> spans = decode_spans(json::field(snap, "sp"));
  ring_.clear();
  next_ = 0;
  count_ = 0;
  total_ = 0;
  for (span& s : spans) {
    record(std::move(s));
  }
  // record() counted only the retained spans; the overwritten history
  // is part of the recorder's identity, restore it exactly.
  total_ = json::u64(snap, "tot");
}

jsonl_trace_sink::jsonl_trace_sink(std::string path)
    : path_{std::move(path)} {}

void jsonl_trace_sink::on_quarantine(std::uint64_t session_id,
                                     const std::string& error,
                                     const std::vector<span>& spans) {
  json::object o;
  o.emplace_back("session", json::value{static_cast<double>(session_id)});
  o.emplace_back("error", json::value{error});
  o.emplace_back("spans", encode_spans(spans));
  const std::string line = json::write(json::value{std::move(o)});
  const ts_lock lock{mutex_};
  std::ofstream out{path_, std::ios::app};
  expects(out.good(), "jsonl_trace_sink: cannot open " + path_);
  out << line << '\n';
  ++dumps_;
}

std::size_t jsonl_trace_sink::dumps() const {
  const ts_lock lock{mutex_};
  return dumps_;
}

}  // namespace ivc::obs
