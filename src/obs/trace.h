// Per-block span tracing: the flight recorder of one detection session.
//
// A span is one stage of the serving pipeline acting on one
// deterministic stream coordinate — a block index for the ingest and
// detector stages, an utterance index for the ASR/intent/outcome
// stages. Everything in a span except `wall_s` is a pure function of
// the accepted-block order, so the retained span sequence is
// bit-identical at any worker count and in both drain modes (the same
// contract as the verdict stream); `wall_s` carries the wall-clock
// duration alongside and is exempt from every determinism comparison.
//
// The trace_ring is a bounded ring buffer: a session retains its last N
// spans at O(1) record cost, so when the fault ladder parks the session
// the ring IS the flight recorder — the final span carries the faulting
// stage and the last_error() message, and the preceding spans are what
// the session was doing on the way down. The ring is dumped to the
// configured trace_sink on quarantine/force_quarantine and readable on
// demand via session_manager::trace(id); it serializes with the session
// snapshot, so eviction/rehydration preserves it bit-exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json_min.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace ivc::obs {

// Pipeline stages a span can attribute work (or a fault) to.
enum class trace_stage : std::uint8_t {
  ingest,      // block accepted off the ring (wall_s = queue wait)
  detector,    // block scored (wall_s = detector service time)
  asr,         // utterance ran the recognizer (wall_s = ASR time)
  intent,      // recognized command mapped through the intent engine
  outcome,     // utterance resolved (value = outcome kind code)
  quarantine,  // force_quarantine: parked without stage attribution
};

const char* stage_name(trace_stage stage);

struct span {
  trace_stage stage = trace_stage::ingest;
  // Deterministic stream coordinate: block index (ingest/detector) or
  // utterance index (asr/intent/outcome).
  std::uint64_t index = 0;
  double t_s = 0.0;    // stream position, deterministic
  double value = 0.0;  // deterministic payload (samples, verdict count,
                       // ASR distance, outcome kind code)
  double wall_s = 0.0;  // wall-clock duration — EXEMPT from determinism
  std::string detail;   // command/intent/outcome label, fault message
};

// Span list <-> json rows [stage, index, t_s, value, wall_s, detail].
json::value encode_spans(const std::vector<span>& spans);
std::vector<span> decode_spans(const json::value& v);

// Copies `spans` with every wall-clock field zeroed — the deterministic
// projection the telemetry gate compares across worker counts.
std::vector<span> strip_wall_clock(std::vector<span> spans);

// Bounded span ring. NOT internally locked: the owning session guards
// it with its own mutex, exactly like the verdict stream.
class trace_ring {
 public:
  trace_ring() = default;
  explicit trace_ring(std::size_t capacity) : capacity_{capacity} {}

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return count_; }
  // Spans ever recorded, including the ones the ring has overwritten.
  std::uint64_t total() const { return total_; }

  // Records one span (no-op when capacity is 0). The ring grows lazily
  // to its capacity — an idle session costs no span storage, which is
  // what lets a million open sessions each carry a recorder.
  void record(span s);

  void clear();

  // Retained spans, oldest -> newest.
  std::vector<span> spans() const;

  // Serializable state ({"cap","tot","sp"}): restore(snapshot()) on a
  // ring of the same capacity reproduces spans() and total() exactly —
  // the session snapshot layer carries the recorder through eviction.
  json::value snapshot() const;
  void restore(const json::value& snap);

 private:
  std::size_t capacity_ = 0;
  std::vector<span> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;    // write cursor once wrapped
  std::size_t count_ = 0;
  std::uint64_t total_ = 0;
};

// Receives flight-recorder dumps when sessions are parked quarantined.
// Implementations must be thread-safe: workers of every session (and
// every shard) quarantine concurrently.
class trace_sink {
 public:
  virtual ~trace_sink() = default;
  virtual void on_quarantine(std::uint64_t session_id,
                             const std::string& error,
                             const std::vector<span>& spans) = 0;
};

// Appends one JSON line per quarantine dump to `path`:
//   {"session":id,"error":"...","spans":[[stage,idx,t,val,wall,det]..]}
class jsonl_trace_sink : public trace_sink {
 public:
  explicit jsonl_trace_sink(std::string path);

  void on_quarantine(std::uint64_t session_id, const std::string& error,
                     const std::vector<span>& spans) override;

  // Dumps written so far.
  std::size_t dumps() const;

 private:
  const std::string path_;
  mutable ts_mutex mutex_;  // serializes file appends with the count
  std::size_t dumps_ IVC_GUARDED_BY(mutex_) = 0;
};

}  // namespace ivc::obs
