// Lock-sharded metrics registry of the serving layer.
//
// The serving fleet needs counters/gauges/histograms that every
// session, manager and shard can bump from its hot path without
// serializing on one registry lock. The registry shards its name table
// across N mutexes (registration-time cost only) and hands out CHEAP
// HANDLES: a counter/gauge handle is one raw pointer to an atomic cell,
// so the hot-path cost of `counter.inc()` is a relaxed fetch_add — no
// lock, no hash lookup, no branch beyond the null check that makes a
// default-constructed handle a no-op (telemetry off = null registry =
// zero-cost handles everywhere).
//
// Identity is (name, sorted label set): two get_counter() calls with
// the same name+labels return handles to the SAME cell, which is what
// lets a million sessions share one "serve_blocks_processed_total"
// without per-session cardinality.
//
// Determinism: the serving layer's bit-identity contract extends to
// telemetry. Counters that sum per-block/per-utterance events are pure
// functions of the accepted-block order, so their end-of-run values are
// bit-identical at any worker count and drain mode; counters that count
// SCHEDULING events (evictions, rehydrations, shard kills) are not.
// Each metric declares which side it is on at registration
// (`deterministic`), and deterministic_fingerprint() exports exactly
// the deterministic subset — the string the telemetry gate compares
// across worker counts. Gauges and wall-clock histograms are always
// exempt.
//
// Export: snapshot() -> json_min tree (sorted by name+labels, so the
// output is byte-stable), to_json() the compact text form, and
// to_prometheus() the text exposition format (counters/gauges verbatim,
// log-histograms as summaries with p50/p95/p99 quantile samples).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/json_min.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace ivc::obs {

// Label pairs of one metric. Order-insensitive at registration (the
// registry sorts by key); duplicate keys are rejected.
using label_set = std::vector<std::pair<std::string, std::string>>;

namespace detail {

struct counter_cell {
  std::atomic<std::uint64_t> value{0};
};

struct gauge_cell {
  std::atomic<double> value{0.0};
};

// Histograms are not atomic: record() takes the cell's own mutex. Keep
// registry histograms for LOW-RATE series (rehydrate latency, sampler
// internals); per-block latency stays in the per-session histograms,
// which are already under the session mutex.
struct histogram_cell {
  explicit histogram_cell(const histogram_config& bins) : hist{bins} {}
  ts_mutex mutex;
  log_histogram hist IVC_GUARDED_BY(mutex);
};

}  // namespace detail

// Hot-path counter handle. Default-constructed = detached no-op, which
// is how the serving layer runs with telemetry off.
class counter {
 public:
  counter() = default;

  void inc(std::uint64_t n = 1) const noexcept {
    if (cell_ != nullptr) {
      cell_->value.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0
                            : cell_->value.load(std::memory_order_relaxed);
  }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  friend class metrics_registry;
  explicit counter(detail::counter_cell* cell) : cell_{cell} {}
  detail::counter_cell* cell_ = nullptr;
};

// Last-value gauge (resident sessions, frozen bytes, queue depths).
class gauge {
 public:
  gauge() = default;

  void set(double v) const noexcept {
    if (cell_ != nullptr) {
      cell_->value.store(v, std::memory_order_relaxed);
    }
  }
  void add(double d) const noexcept {
    if (cell_ != nullptr) {
      double cur = cell_->value.load(std::memory_order_relaxed);
      while (!cell_->value.compare_exchange_weak(cur, cur + d,
                                                 std::memory_order_relaxed)) {
      }
    }
  }
  double value() const noexcept {
    return cell_ == nullptr ? 0.0
                            : cell_->value.load(std::memory_order_relaxed);
  }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  friend class metrics_registry;
  explicit gauge(detail::gauge_cell* cell) : cell_{cell} {}
  detail::gauge_cell* cell_ = nullptr;
};

// Log-histogram handle; record() locks the cell (not the registry).
class histogram {
 public:
  histogram() = default;

  void record(double v) const {
    if (cell_ != nullptr) {
      const ts_lock lock{cell_->mutex};
      cell_->hist.record(v);
    }
  }
  std::uint64_t count() const {
    if (cell_ == nullptr) {
      return 0;
    }
    const ts_lock lock{cell_->mutex};
    return cell_->hist.count();
  }
  double quantile(double q) const {
    if (cell_ == nullptr) {
      return 0.0;
    }
    const ts_lock lock{cell_->mutex};
    return cell_->hist.quantile(q);
  }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  friend class metrics_registry;
  explicit histogram(detail::histogram_cell* cell) : cell_{cell} {}
  detail::histogram_cell* cell_ = nullptr;
};

class metrics_registry {
 public:
  // `shards` sizes the name-table lock striping; `bins` is the binning
  // of every registry histogram (one config, so exports can compare).
  explicit metrics_registry(std::size_t shards = 8,
                            histogram_config bins = {});

  // Registration (idempotent): returns a handle to the cell identified
  // by (name, labels), creating it on first call. Thread-safe; takes
  // only the one shard lock the name hashes to. Throws when the same
  // identity was registered as a different metric kind or with a
  // different `deterministic` flag.
  counter get_counter(const std::string& name, label_set labels = {},
                      bool deterministic = true);
  gauge get_gauge(const std::string& name, label_set labels = {});
  histogram get_histogram(const std::string& name, label_set labels = {});

  const histogram_config& bins() const { return bins_; }

  // Full export, sorted by (name, labels) so the output is byte-stable:
  //   {"counters":[{"name","labels":{..},"value",..}...],
  //    "gauges":[...], "histograms":[{...,"count","p50","p95","p99",
  //    "mean","min","max"}...]}
  json::value snapshot() const;

  // Compact json_min text of snapshot().
  std::string to_json() const;

  // Prometheus text exposition: counters and gauges verbatim,
  // histograms as summary quantiles.
  std::string to_prometheus() const;

  // The deterministic subset only — counters registered
  // deterministic=true, as one sorted {"key": value} object. This is
  // the string the telemetry gate compares bit-for-bit across worker
  // counts and drain modes.
  json::value counters_snapshot() const;
  std::string deterministic_fingerprint() const;

 private:
  enum class kind : std::uint8_t { counter, gauge, histogram };

  struct entry {
    std::string key;  // canonical "name|k=v|k=v" identity
    std::string name;
    label_set labels;
    kind type = kind::counter;
    bool deterministic = false;
    std::unique_ptr<detail::counter_cell> cnt;
    std::unique_ptr<detail::gauge_cell> gge;
    std::unique_ptr<detail::histogram_cell> hist;
  };

  // Entry pointers stay stable past the shard lock (the vector owns
  // unique_ptrs and is append-only): readers collect them under the
  // lock, then read the immutable metadata and atomic cells lock-free.
  struct table_shard {
    mutable ts_mutex mutex;
    std::vector<std::unique_ptr<entry>> entries IVC_GUARDED_BY(mutex);
  };

  // Finds-or-creates the entry for (name, labels); `labels` must
  // already be canonicalized. Locks the shard.
  entry& intern(const std::string& name, label_set labels, kind type,
                bool deterministic);

  // All entries, sorted by key (locks every shard in index order).
  std::vector<const entry*> sorted_entries() const;

  const histogram_config bins_;
  std::vector<table_shard> shards_;
};

}  // namespace ivc::obs
