// Fleet sampler: a periodic JSONL time-series of serving-fleet state.
//
// End-of-run aggregates cannot show a paced run EVOLVING — queue growth
// under a burst, the resident set breathing against the eviction bound,
// sessions walking the fault ladder. The sampler runs one background
// thread that calls a caller-supplied probe (serve::telemetry_sample
// over a session_manager or shard_manager is the canonical one) every
// interval and appends each snapshot as one JSON line to an append-only
// file, stamped with seconds since start().
//
// The probe runs on the sampler thread concurrently with the serving
// fleet, so it must be thread-safe (aggregate()/balance()/eviction()
// are). A probe that throws drops that tick instead of killing the
// thread. stop() takes one final sample before joining, so even a run
// shorter than the interval produces a first-and-last pair.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>

#include "common/json_min.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace ivc::obs {

struct sampler_config {
  std::string path;          // append-only JSONL output
  double interval_s = 0.25;  // wall-clock sampling period
};

class fleet_sampler {
 public:
  // `probe` returns one json OBJECT of flat numeric fields; the sampler
  // prepends "t_s" (seconds since start()).
  fleet_sampler(sampler_config config, std::function<json::value()> probe);
  ~fleet_sampler();  // stops the thread if still running

  // Takes an immediate first sample, then one per interval. Idempotent.
  void start();

  // Takes a final sample, then joins the thread. Idempotent.
  void stop();

  bool running() const;

  // Lines appended so far (dropped ticks excluded).
  std::size_t samples() const;

 private:
  void loop() IVC_EXCLUDES(mutex_);
  // Probes and appends one line; swallows probe failures. Runs the
  // probe and the file append OUTSIDE the lock-held sections.
  void take_sample() IVC_EXCLUDES(mutex_);

  const sampler_config config_;
  const std::function<json::value()> probe_;

  mutable ts_mutex mutex_;
  std::condition_variable cv_;
  bool running_ IVC_GUARDED_BY(mutex_) = false;
  bool stopping_ IVC_GUARDED_BY(mutex_) = false;
  std::size_t samples_ IVC_GUARDED_BY(mutex_) = 0;
  std::chrono::steady_clock::time_point t0_ IVC_GUARDED_BY(mutex_);
  std::thread thread_ IVC_GUARDED_BY(mutex_);
};

}  // namespace ivc::obs
