// FIR filter design (windowed-sinc) and application.
//
// Designs are type-I linear-phase (odd length, symmetric taps); the
// application helpers compensate the group delay so filtered output is
// time-aligned with the input, which every downstream correlation-based
// metric in this library relies on.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "dsp/window.h"

namespace ivc::dsp {

// Windowed-sinc low-pass. `cutoff_hz` in (0, fs/2). Odd `num_taps`.
std::vector<double> design_fir_lowpass(std::size_t num_taps, double cutoff_hz,
                                       double sample_rate_hz,
                                       window_kind window = window_kind::kaiser,
                                       double kaiser_beta = 8.6);

// Windowed-sinc high-pass via spectral inversion of the low-pass.
std::vector<double> design_fir_highpass(std::size_t num_taps, double cutoff_hz,
                                        double sample_rate_hz,
                                        window_kind window = window_kind::kaiser,
                                        double kaiser_beta = 8.6);

// Windowed-sinc band-pass for (low_hz, high_hz).
std::vector<double> design_fir_bandpass(std::size_t num_taps, double low_hz,
                                        double high_hz, double sample_rate_hz,
                                        window_kind window = window_kind::kaiser,
                                        double kaiser_beta = 8.6);

// Band-stop complement of design_fir_bandpass.
std::vector<double> design_fir_bandstop(std::size_t num_taps, double low_hz,
                                        double high_hz, double sample_rate_hz,
                                        window_kind window = window_kind::kaiser,
                                        double kaiser_beta = 8.6);

// Full linear convolution (output length = signal + taps - 1). Uses FFT
// convolution above a size threshold, direct convolution below it.
std::vector<double> convolve(std::span<const double> signal,
                             std::span<const double> taps);

// Filters and removes the (num_taps-1)/2 group delay, returning a signal
// the same length as the input. Requires odd-length symmetric taps for the
// alignment to be exact.
std::vector<double> filter_zero_delay(std::span<const double> signal,
                                      std::span<const double> taps);

// Complex magnitude response of an FIR filter at `freq_hz`.
double fir_response_at(std::span<const double> taps, double freq_hz,
                       double sample_rate_hz);

// Applies an arbitrary frequency-domain gain to a real signal: the signal
// is FFT'd, each bin is scaled by gain(|f|), and the result inverse
// transformed. `gain` is evaluated on [0, fs/2]; negative-frequency bins
// mirror their positive counterparts, keeping the output real. Zero-phase,
// no delay; ideal for modelling measured magnitude responses (air
// absorption, enclosures, speaker response).
std::vector<double> apply_magnitude_response(
    std::span<const double> signal, double sample_rate_hz,
    const std::function<double(double)>& gain);

}  // namespace ivc::dsp
