// Analysis/synthesis window functions.
#pragma once

#include <string>
#include <vector>

namespace ivc::dsp {

enum class window_kind {
  rectangular,
  hann,
  hamming,
  blackman,
  blackman_harris,
  kaiser,
};

// Builds an n-point symmetric window. `kaiser_beta` is only used for
// window_kind::kaiser. Throws std::invalid_argument for n == 0.
std::vector<double> make_window(window_kind kind, std::size_t n,
                                double kaiser_beta = 8.6);

// Periodic variant (denominator n instead of n-1), appropriate for STFT
// analysis with overlap-add.
std::vector<double> make_periodic_window(window_kind kind, std::size_t n,
                                         double kaiser_beta = 8.6);

// Zeroth-order modified Bessel function of the first kind, used by the
// Kaiser window; exposed for testing.
double bessel_i0(double x);

// Kaiser beta that yields approximately `attenuation_db` of stop-band
// rejection in FIR design (Kaiser's empirical formula).
double kaiser_beta_for_attenuation(double attenuation_db);

// Estimated FIR length for a Kaiser-window design achieving
// `attenuation_db` rejection with a transition band of `transition_hz`
// at sample rate `sample_rate_hz`. Always returns an odd value >= 3.
std::size_t kaiser_length_for_design(double attenuation_db,
                                     double transition_hz,
                                     double sample_rate_hz);

// Human-readable window name, for experiment printouts.
std::string to_string(window_kind kind);

}  // namespace ivc::dsp
