#include "dsp/biquad.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/constants.h"
#include "common/error.h"

namespace ivc::dsp {
namespace {

using cd = std::complex<double>;

// Analog Butterworth pole k of an order-n prototype (left half-plane,
// unit cutoff): s_k = exp(j·pi·(2k + n + 1) / (2n)).
cd analog_pole(std::size_t k, std::size_t n) {
  const double theta =
      pi * (2.0 * static_cast<double>(k) + static_cast<double>(n) + 1.0) /
      (2.0 * static_cast<double>(n));
  return cd{std::cos(theta), std::sin(theta)};
}

// Bilinear transform of an analog section with a conjugate pole pair
// (or a single real pole) into a digital biquad.
//
// For low-pass: H(s) = wc^2 / (s^2 - (p+p*)·wc·s + |p|^2·wc^2) per pair.
// For high-pass the analog prototype is transformed s -> wc/s first.
struct analog_section {
  // H(s) = (c2 s^2 + c1 s + c0) / (d2 s^2 + d1 s + d0)
  double c2 = 0.0, c1 = 0.0, c0 = 1.0;
  double d2 = 1.0, d1 = 0.0, d0 = 1.0;
};

biquad bilinear(const analog_section& s, double warped_wc, double fs) {
  // Substitute s = 2·fs·(1 - z^-1)/(1 + z^-1), with the analog section
  // already scaled by the pre-warped cutoff (embedded in coefficients).
  (void)warped_wc;
  const double k = 2.0 * fs;
  if (s.d2 == 0.0 && s.c2 == 0.0) {
    // True first-order section. Mapping it through the quadratic formulas
    // would introduce a pole/zero pair exactly on the unit circle at
    // z = -1 (mathematically cancelled, numerically poisonous), so divide
    // that common (1 + z^-1) factor out analytically.
    const double a0 = s.d1 * k + s.d0;
    ensures(std::abs(a0) > 0.0, "bilinear: degenerate first-order section");
    const double b0 = (s.c1 * k + s.c0) / a0;
    const double b1 = (s.c0 - s.c1 * k) / a0;
    const double a1 = (s.d0 - s.d1 * k) / a0;
    return biquad{b0, b1, 0.0, a1, 0.0};
  }
  const double k2 = k * k;
  const double b0 = s.c2 * k2 + s.c1 * k + s.c0;
  const double b1 = -2.0 * s.c2 * k2 + 2.0 * s.c0;
  const double b2 = s.c2 * k2 - s.c1 * k + s.c0;
  const double a0 = s.d2 * k2 + s.d1 * k + s.d0;
  const double a1 = -2.0 * s.d2 * k2 + 2.0 * s.d0;
  const double a2 = s.d2 * k2 - s.d1 * k + s.d0;
  ensures(std::abs(a0) > 0.0, "bilinear: degenerate section (a0 == 0)");
  return biquad{b0 / a0, b1 / a0, b2 / a0, a1 / a0, a2 / a0};
}

std::vector<biquad> design(std::size_t order, double cutoff_hz,
                           double sample_rate_hz, bool highpass) {
  expects(order >= 1, "butterworth: order must be >= 1");
  expects(sample_rate_hz > 0.0, "butterworth: sample rate must be > 0");
  expects(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0,
          "butterworth: cutoff must be in (0, fs/2)");

  // Pre-warp the cutoff so the digital response matches at cutoff_hz.
  const double wc =
      2.0 * sample_rate_hz * std::tan(pi * cutoff_hz / sample_rate_hz);

  std::vector<biquad> sections;
  sections.reserve((order + 1) / 2);

  // Pair complex-conjugate poles; an odd order leaves one real pole.
  for (std::size_t k = 0; k < order / 2; ++k) {
    const cd p = analog_pole(k, order);
    const double two_re = -2.0 * p.real();  // > 0 for LHP poles
    analog_section s;
    if (!highpass) {
      // H(s) = wc^2 / (s^2 + 2|Re p| wc s + wc^2)
      s.c2 = 0.0; s.c1 = 0.0; s.c0 = wc * wc;
      s.d2 = 1.0; s.d1 = two_re * wc; s.d0 = wc * wc;
    } else {
      // s -> wc/s: H(s) = s^2 / (s^2 + 2|Re p| wc s + wc^2)
      s.c2 = 1.0; s.c1 = 0.0; s.c0 = 0.0;
      s.d2 = 1.0; s.d1 = two_re * wc; s.d0 = wc * wc;
    }
    sections.push_back(bilinear(s, wc, sample_rate_hz));
  }
  if (order % 2 == 1) {
    analog_section s;
    if (!highpass) {
      // H(s) = wc / (s + wc)
      s.c2 = 0.0; s.c1 = 0.0; s.c0 = wc;
      s.d2 = 0.0; s.d1 = 1.0; s.d0 = wc;
    } else {
      // H(s) = s / (s + wc)
      s.c2 = 0.0; s.c1 = 1.0; s.c0 = 0.0;
      s.d2 = 0.0; s.d1 = 1.0; s.d0 = wc;
    }
    sections.push_back(bilinear(s, wc, sample_rate_hz));
  }
  return sections;
}

}  // namespace

iir_cascade::iir_cascade(std::vector<biquad> sections)
    : sections_{std::move(sections)} {}

std::vector<double> iir_cascade::process(std::span<const double> signal) const {
  std::vector<double> out{signal.begin(), signal.end()};
  for (const biquad& s : sections_) {
    double z1 = 0.0;
    double z2 = 0.0;
    for (double& x : out) {
      const double y = s.b0 * x + z1;
      z1 = s.b1 * x - s.a1 * y + z2;
      z2 = s.b2 * x - s.a2 * y;
      x = y;
    }
  }
  return out;
}

std::vector<double> iir_cascade::process_zero_phase(
    std::span<const double> signal) const {
  std::vector<double> forward = process(signal);
  std::reverse(forward.begin(), forward.end());
  std::vector<double> backward = process(forward);
  std::reverse(backward.begin(), backward.end());
  return backward;
}

double iir_cascade::response_at(double freq_hz, double sample_rate_hz) const {
  expects(sample_rate_hz > 0.0, "iir_cascade::response_at: fs must be > 0");
  const double w = two_pi * freq_hz / sample_rate_hz;
  const cd z_inv{std::cos(w), -std::sin(w)};
  const cd z_inv2 = z_inv * z_inv;
  cd h{1.0, 0.0};
  for (const biquad& s : sections_) {
    h *= (s.b0 + s.b1 * z_inv + s.b2 * z_inv2) /
         (1.0 + s.a1 * z_inv + s.a2 * z_inv2);
  }
  return std::abs(h);
}

bool iir_cascade::is_stable() const {
  for (const biquad& s : sections_) {
    // Schur–Cohn conditions for a real quadratic z^2 + a1 z + a2.
    if (!(std::abs(s.a2) < 1.0 && std::abs(s.a1) < 1.0 + s.a2)) {
      return false;
    }
  }
  return true;
}

iir_filter::iir_filter(iir_cascade cascade)
    : cascade_{std::move(cascade)},
      z1_(cascade_.sections().size(), 0.0),
      z2_(cascade_.sections().size(), 0.0) {}

double iir_filter::process_sample(double x) {
  const auto& sections = cascade_.sections();
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const biquad& s = sections[i];
    const double y = s.b0 * x + z1_[i];
    z1_[i] = s.b1 * x - s.a1 * y + z2_[i];
    z2_[i] = s.b2 * x - s.a2 * y;
    x = y;
  }
  return x;
}

void iir_filter::process_block(std::span<const double> in,
                               std::span<double> out) {
  expects(in.size() == out.size(),
          "iir_filter::process_block: size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = process_sample(in[i]);
  }
}

void iir_filter::reset() {
  std::fill(z1_.begin(), z1_.end(), 0.0);
  std::fill(z2_.begin(), z2_.end(), 0.0);
}

iir_cascade butterworth_lowpass(std::size_t order, double cutoff_hz,
                                double sample_rate_hz) {
  return iir_cascade{design(order, cutoff_hz, sample_rate_hz, false)};
}

iir_cascade butterworth_highpass(std::size_t order, double cutoff_hz,
                                 double sample_rate_hz) {
  return iir_cascade{design(order, cutoff_hz, sample_rate_hz, true)};
}

iir_cascade butterworth_bandpass(std::size_t order, double low_hz,
                                 double high_hz, double sample_rate_hz) {
  expects(low_hz < high_hz, "butterworth_bandpass: low must be < high");
  std::vector<biquad> sections =
      design(order, low_hz, sample_rate_hz, /*highpass=*/true);
  const std::vector<biquad> lp =
      design(order, high_hz, sample_rate_hz, /*highpass=*/false);
  sections.insert(sections.end(), lp.begin(), lp.end());
  return iir_cascade{std::move(sections)};
}

}  // namespace ivc::dsp
