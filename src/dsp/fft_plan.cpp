#include "dsp/fft_plan.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/constants.h"
#include "common/error.h"
#include "common/sync.h"

namespace ivc::dsp {
namespace {

std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> table(n, 0);
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    while (j & bit) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
    table[i] = static_cast<std::uint32_t>(j);
  }
  return table;
}

// Stage-packed forward roots: for each stage of length `len`, the half
// roots exp(-i 2π k / len), k = 0 .. len/2 - 1, computed by direct trig
// per entry (no recurrence, no accumulated rounding).
std::vector<cplx> make_twiddles(std::size_t n) {
  std::vector<cplx> table;
  if (n >= 2) {
    table.reserve(n - 1);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    for (std::size_t k = 0; k < half; ++k) {
      const double angle =
          -two_pi * static_cast<double>(k) / static_cast<double>(len);
      table.emplace_back(std::cos(angle), std::sin(angle));
    }
  }
  return table;
}

}  // namespace

fft_plan::fft_plan(std::size_t n) : n_{n} {
  expects(is_pow2(n), "fft_plan: size must be a power of two");
  bitrev_ = make_bitrev(n_);
  twiddle_ = make_twiddles(n_);
  if (n_ >= 2) {
    const std::size_t m = n_ / 2;
    half_bitrev_ = make_bitrev(m);
    half_twiddle_ = make_twiddles(m);
    unpack_.resize(m / 2 + 1);
    for (std::size_t k = 0; k < unpack_.size(); ++k) {
      const double angle =
          -two_pi * static_cast<double>(k) / static_cast<double>(n_);
      unpack_[k] = cplx{std::cos(angle), std::sin(angle)};
    }
  }
}

void fft_plan::transform(std::span<cplx> data, bool inverse,
                         const std::vector<std::uint32_t>& bitrev,
                         const std::vector<cplx>& twiddle) const {
  const std::size_t n = bitrev.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const cplx* roots = twiddle.data() + stage;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx w = inverse ? std::conj(roots[k]) : roots[k];
        const cplx u = data[i + k];
        const cplx v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
    stage += half;
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] *= scale;
    }
  }
}

void fft_plan::forward(std::span<cplx> data) const {
  expects(data.size() == n_, "fft_plan::forward: span size must equal plan size");
  transform(data, /*inverse=*/false, bitrev_, twiddle_);
}

void fft_plan::inverse(std::span<cplx> data) const {
  expects(data.size() == n_, "fft_plan::inverse: span size must equal plan size");
  transform(data, /*inverse=*/true, bitrev_, twiddle_);
}

void fft_plan::rfft(std::span<const double> in, std::span<cplx> out) const {
  expects(in.size() == n_, "fft_plan::rfft: input size must equal plan size");
  expects(out.size() >= num_real_bins(),
          "fft_plan::rfft: output needs n/2 + 1 bins");
  if (n_ == 1) {
    out[0] = cplx{in[0], 0.0};
    return;
  }
  const std::size_t m = n_ / 2;
  // Pack adjacent sample pairs into a half-size complex signal and
  // transform it in place inside the output span.
  for (std::size_t k = 0; k < m; ++k) {
    out[k] = cplx{in[2 * k], in[2 * k + 1]};
  }
  transform(out.first(m), /*inverse=*/false, half_bitrev_, half_twiddle_);

  // Unpack: with Z = FFT_m(even + i·odd), the even/odd sub-spectra are
  //   E[k] = (Z[k] + conj(Z[m-k]))/2,  O[k] = -i (Z[k] - conj(Z[m-k]))/2,
  // and X[k] = E[k] + w^k O[k] with w = exp(-i 2π / n). The k and m-k
  // bins are computed pairwise so the unpack runs in place:
  //   X[k] = E + t,  X[m-k] = conj(E - t),  t = w^k O[k].
  const cplx z0 = out[0];
  out[0] = cplx{z0.real() + z0.imag(), 0.0};
  out[m] = cplx{z0.real() - z0.imag(), 0.0};
  for (std::size_t k = 1; 2 * k <= m; ++k) {
    const cplx zk = out[k];
    const cplx zmk = std::conj(out[m - k]);
    const cplx even = 0.5 * (zk + zmk);
    const cplx odd = cplx{0.0, -0.5} * (zk - zmk);
    const cplx t = unpack_[k] * odd;
    out[k] = even + t;
    out[m - k] = std::conj(even - t);
  }
}

void fft_plan::irfft(std::span<const cplx> in, std::span<double> out,
                     std::span<cplx> work) const {
  expects(in.size() >= num_real_bins(),
          "fft_plan::irfft: spectrum needs n/2 + 1 bins");
  expects(out.size() == n_, "fft_plan::irfft: output size must equal plan size");
  expects(work.size() >= workspace_size(),
          "fft_plan::irfft: workspace needs n/2 slots");
  if (n_ == 1) {
    out[0] = in[0].real();
    return;
  }
  const std::size_t m = n_ / 2;
  // Invert the unpack algebra to recover Z[k], then a half-size inverse
  // transform recovers the packed sample pairs.
  for (std::size_t k = 0; k < m; ++k) {
    const cplx xk = in[k];
    const cplx xmk = std::conj(in[m - k]);
    const cplx even = 0.5 * (xk + xmk);
    // w^{-k}: conj(unpack) below n/4, mirrored above.
    const cplx winv =
        2 * k <= m ? std::conj(unpack_[k]) : -unpack_[m - k];
    const cplx odd = winv * (0.5 * (xk - xmk));
    work[k] = even + cplx{0.0, 1.0} * odd;
  }
  transform(work.first(m), /*inverse=*/true, half_bitrev_, half_twiddle_);
  for (std::size_t k = 0; k < m; ++k) {
    out[2 * k] = work[k].real();
    out[2 * k + 1] = work[k].imag();
  }
}

std::shared_ptr<const fft_plan> get_fft_plan(std::size_t n) {
  expects(is_pow2(n), "get_fft_plan: size must be a power of two");
  static ts_mutex mutex;
  // Key-lookup only — never iterated, so the unordered layout cannot
  // leak into any deterministic stream.
  static std::unordered_map<std::size_t, std::shared_ptr<const fft_plan>> cache;
  const ts_lock lock{mutex};
  std::shared_ptr<const fft_plan>& slot = cache[n];
  if (!slot) {
    slot = std::make_shared<const fft_plan>(n);
  }
  return slot;
}

std::vector<cplx> rfft(std::span<const double> input) {
  expects(!input.empty(), "rfft: input must be non-empty");
  const std::size_t n = input.size();
  if (is_pow2(n)) {
    const auto plan = get_fft_plan(n);
    std::vector<cplx> out(plan->num_real_bins());
    plan->rfft(input, out);
    return out;
  }
  std::vector<cplx> full = fft_real(input);
  full.resize(n / 2 + 1);
  return full;
}

std::vector<double> irfft(std::span<const cplx> spectrum, std::size_t n) {
  expects(n > 0, "irfft: length must be > 0");
  expects(spectrum.size() >= n / 2 + 1, "irfft: spectrum needs n/2 + 1 bins");
  if (is_pow2(n)) {
    const auto plan = get_fft_plan(n);
    std::vector<double> out(n);
    std::vector<cplx> work(plan->workspace_size());
    plan->irfft(spectrum, out, work);
    return out;
  }
  // Arbitrary length: mirror into a full conjugate-symmetric spectrum
  // and run the Bluestein inverse.
  std::vector<cplx> full(n);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    full[k] = spectrum[k];
  }
  for (std::size_t k = n / 2 + 1; k < n; ++k) {
    full[k] = std::conj(spectrum[n - k]);
  }
  return ifft_real(full);
}

}  // namespace ivc::dsp
