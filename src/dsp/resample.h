// Sample-rate conversion.
//
// Rational-ratio polyphase resampling (upsample by L, Kaiser-windowed
// anti-alias/anti-image low-pass, downsample by M). This is the classic
// upfirdn structure; the polyphase decomposition avoids computing the
// zero-stuffed samples, so cost is O(signal · taps / L).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ivc::dsp {

// Converts `signal` from `rate_in_hz` to `rate_out_hz`. Rates must be
// positive and have a rational ratio when expressed in integer hertz
// (every rate in this library is an integer number of hertz).
// `attenuation_db` sets the Kaiser design target for the interpolation
// filter. `transition_fraction` is the filter's transition bandwidth as a
// fraction of the lower Nyquist frequency: callers whose content is
// already band-limited well below Nyquist (e.g. a 4 kHz voice baseband
// being raised to 192 kHz) can pass a large fraction and get a much
// shorter filter.
std::vector<double> resample(std::span<const double> signal, double rate_in_hz,
                             double rate_out_hz, double attenuation_db = 80.0,
                             double transition_fraction = 0.16);

// Expected output length of resample() for a given input length.
std::size_t resampled_length(std::size_t input_length, double rate_in_hz,
                             double rate_out_hz);

}  // namespace ivc::dsp
