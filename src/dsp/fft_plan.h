// Planned FFTs: precomputed twiddle/bit-reversal tables per size.
//
// The unplanned entry points in dsp/fft.h recompute twiddle factors via
// an error-accumulating recurrence on every call and promote real
// signals to full complex transforms. A `fft_plan` computes its tables
// once (direct trig per root, no recurrence drift), is immutable and
// therefore shareable across threads, and offers a true real-to-complex
// `rfft`/`irfft` that runs a half-size complex transform — halving the
// butterfly work for the all-real signals that dominate this codebase.
//
// Callers obtain shared plans from the process-wide cache with
// `get_fft_plan(n)` and pass their own workspaces, so the per-transform
// hot path performs no allocation:
//
//   const auto plan = get_fft_plan(1024);
//   std::vector<cplx> bins(plan->num_real_bins());
//   plan->rfft(samples, bins);            // 513 nonnegative-freq bins
//
// All transforms follow the library convention: unnormalized forward,
// (1/N)-normalized inverse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.h"

namespace ivc::dsp {

class fft_plan {
 public:
  // Builds tables for a power-of-two transform size (throws otherwise).
  // Prefer get_fft_plan(), which shares plans across the process.
  explicit fft_plan(std::size_t n);

  std::size_t size() const { return n_; }
  // Bins produced by rfft / consumed by irfft: n/2 + 1.
  std::size_t num_real_bins() const { return n_ / 2 + 1; }
  // Scratch slots irfft needs: n/2.
  std::size_t workspace_size() const { return n_ / 2; }

  // In-place complex transforms over exactly size() elements.
  void forward(std::span<cplx> data) const;
  void inverse(std::span<cplx> data) const;

  // Real-input forward transform: packs sample pairs into a half-size
  // complex FFT and unpacks in place. `in` holds size() samples; `out`
  // receives the num_real_bins() nonnegative-frequency bins (bins above
  // n/2 follow by conjugate symmetry). No allocation, no workspace.
  void rfft(std::span<const double> in, std::span<cplx> out) const;

  // Inverse of rfft: consumes num_real_bins() bins of a conjugate-
  // symmetric spectrum, writes size() real samples (1/N-normalized).
  // `work` provides workspace_size() scratch slots.
  void irfft(std::span<const cplx> in, std::span<double> out,
             std::span<cplx> work) const;

 private:
  void transform(std::span<cplx> data, bool inverse,
                 const std::vector<std::uint32_t>& bitrev,
                 const std::vector<cplx>& twiddle) const;

  std::size_t n_;
  // Full-size tables for forward()/inverse().
  std::vector<std::uint32_t> bitrev_;
  std::vector<cplx> twiddle_;  // stage-packed roots, n - 1 entries
  // Half-size tables driving the packed real transform, plus the
  // unpack roots exp(-i 2π k / n) for k = 0 .. n/4.
  std::vector<std::uint32_t> half_bitrev_;
  std::vector<cplx> half_twiddle_;
  std::vector<cplx> unpack_;
};

// Process-wide plan cache: returns the shared plan for power-of-two
// size n, building it on first use. Thread-safe; the returned plan is
// immutable and may be held for the life of the process.
std::shared_ptr<const fft_plan> get_fft_plan(std::size_t n);

// Allocating conveniences for arbitrary lengths. Power-of-two sizes run
// the planned packed kernel; other sizes fall back to the Bluestein
// path in dsp/fft.h. rfft returns the n/2 + 1 nonnegative-frequency
// bins; irfft reconstructs n real samples from them.
std::vector<cplx> rfft(std::span<const double> input);
std::vector<double> irfft(std::span<const cplx> spectrum, std::size_t n);

}  // namespace ivc::dsp
