// Correlation statistics and cross-correlation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ivc::dsp {

// Pearson correlation coefficient in [-1, 1]. Returns 0 when either input
// has (numerically) zero variance. Sizes must match and be >= 2.
double pearson_correlation(std::span<const double> a, std::span<const double> b);

// Full normalized cross-correlation between a and b over all lags in
// [-(b.size()-1), a.size()-1]; entry i corresponds to lag i-(b.size()-1).
// Normalization is by the product of the signals' L2 norms, so a perfect
// scaled copy peaks at 1.
std::vector<double> normalized_cross_correlation(std::span<const double> a,
                                                 std::span<const double> b);

struct alignment {
  std::ptrdiff_t lag = 0;   // samples by which b must shift to align with a
  double peak = 0.0;        // normalized correlation at that lag
};

// Lag of maximum |cross-correlation| and its normalized value.
alignment best_alignment(std::span<const double> a, std::span<const double> b);

// Pearson correlation after shifting b by best_alignment().lag, restricted
// to lags within +/-max_lag samples. Used to score demodulated commands
// against the reference voice without assuming exact time alignment.
double aligned_correlation(std::span<const double> a, std::span<const double> b,
                           std::size_t max_lag);

}  // namespace ivc::dsp
