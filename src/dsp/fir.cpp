#include "dsp/fir.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft_plan.h"

namespace ivc::dsp {
namespace {

// Direct convolution is faster than FFT below this signal*taps product.
constexpr std::size_t direct_conv_threshold = 1u << 14;

void check_design_args(std::size_t num_taps, double sample_rate_hz) {
  expects(num_taps >= 3, "fir design: need at least 3 taps");
  expects(num_taps % 2 == 1, "fir design: tap count must be odd");
  expects(sample_rate_hz > 0.0, "fir design: sample rate must be > 0");
}

// Ideal sinc low-pass tap k (centered), for normalized cutoff w in (0, pi).
double sinc_tap(double w, std::ptrdiff_t k) {
  if (k == 0) {
    return w / pi;
  }
  const double kk = static_cast<double>(k);
  return std::sin(w * kk) / (pi * kk);
}

std::vector<double> windowed_sinc(std::size_t num_taps, double cutoff_hz,
                                  double sample_rate_hz, window_kind window,
                                  double kaiser_beta) {
  const double w = two_pi * cutoff_hz / sample_rate_hz;
  const auto half = static_cast<std::ptrdiff_t>(num_taps / 2);
  const std::vector<double> win = make_window(window, num_taps, kaiser_beta);
  std::vector<double> taps(num_taps);
  for (std::size_t i = 0; i < num_taps; ++i) {
    const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - half;
    taps[i] = sinc_tap(w, k) * win[i];
  }
  return taps;
}

std::vector<double> convolve_fft(std::span<const double> signal,
                                 std::span<const double> taps) {
  // Real × real convolution through the planned half-spectrum path.
  const std::size_t out_len = signal.size() + taps.size() - 1;
  const std::size_t n = next_pow2(out_len);
  const auto plan = get_fft_plan(n);
  const std::size_t bins = plan->num_real_bins();
  std::vector<double> pa(n, 0.0);
  std::vector<double> pb(n, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    pa[i] = signal[i];
  }
  for (std::size_t i = 0; i < taps.size(); ++i) {
    pb[i] = taps[i];
  }
  std::vector<cplx> fa(bins);
  std::vector<cplx> fb(bins);
  plan->rfft(pa, fa);
  plan->rfft(pb, fb);
  for (std::size_t i = 0; i < bins; ++i) {
    fa[i] *= fb[i];
  }
  std::vector<cplx> work(plan->workspace_size());
  plan->irfft(fa, pa, work);
  pa.resize(out_len);
  return pa;
}

std::vector<double> convolve_direct(std::span<const double> signal,
                                    std::span<const double> taps) {
  std::vector<double> out(signal.size() + taps.size() - 1, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double s = signal[i];
    for (std::size_t j = 0; j < taps.size(); ++j) {
      out[i + j] += s * taps[j];
    }
  }
  return out;
}

}  // namespace

std::vector<double> design_fir_lowpass(std::size_t num_taps, double cutoff_hz,
                                       double sample_rate_hz,
                                       window_kind window, double kaiser_beta) {
  check_design_args(num_taps, sample_rate_hz);
  expects(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0,
          "design_fir_lowpass: cutoff must be in (0, fs/2)");
  return windowed_sinc(num_taps, cutoff_hz, sample_rate_hz, window, kaiser_beta);
}

std::vector<double> design_fir_highpass(std::size_t num_taps, double cutoff_hz,
                                        double sample_rate_hz,
                                        window_kind window, double kaiser_beta) {
  std::vector<double> taps =
      design_fir_lowpass(num_taps, cutoff_hz, sample_rate_hz, window, kaiser_beta);
  // Spectral inversion: delta at center minus the low-pass.
  for (auto& t : taps) {
    t = -t;
  }
  taps[num_taps / 2] += 1.0;
  return taps;
}

std::vector<double> design_fir_bandpass(std::size_t num_taps, double low_hz,
                                        double high_hz, double sample_rate_hz,
                                        window_kind window, double kaiser_beta) {
  check_design_args(num_taps, sample_rate_hz);
  expects(low_hz > 0.0 && high_hz > low_hz && high_hz < sample_rate_hz / 2.0,
          "design_fir_bandpass: need 0 < low < high < fs/2");
  const std::vector<double> lp_high =
      windowed_sinc(num_taps, high_hz, sample_rate_hz, window, kaiser_beta);
  const std::vector<double> lp_low =
      windowed_sinc(num_taps, low_hz, sample_rate_hz, window, kaiser_beta);
  std::vector<double> taps(num_taps);
  for (std::size_t i = 0; i < num_taps; ++i) {
    taps[i] = lp_high[i] - lp_low[i];
  }
  return taps;
}

std::vector<double> design_fir_bandstop(std::size_t num_taps, double low_hz,
                                        double high_hz, double sample_rate_hz,
                                        window_kind window, double kaiser_beta) {
  std::vector<double> taps = design_fir_bandpass(num_taps, low_hz, high_hz,
                                                 sample_rate_hz, window, kaiser_beta);
  for (auto& t : taps) {
    t = -t;
  }
  taps[num_taps / 2] += 1.0;
  return taps;
}

std::vector<double> convolve(std::span<const double> signal,
                             std::span<const double> taps) {
  expects(!signal.empty() && !taps.empty(),
          "convolve: signal and taps must be non-empty");
  if (signal.size() * taps.size() <= direct_conv_threshold ||
      taps.size() <= 32) {
    return convolve_direct(signal, taps);
  }
  return convolve_fft(signal, taps);
}

std::vector<double> filter_zero_delay(std::span<const double> signal,
                                      std::span<const double> taps) {
  expects(taps.size() % 2 == 1,
          "filter_zero_delay: taps must have odd length");
  const std::vector<double> full = convolve(signal, taps);
  const std::size_t delay = taps.size() / 2;
  std::vector<double> out(signal.size());
  std::copy_n(full.begin() + static_cast<std::ptrdiff_t>(delay), signal.size(),
              out.begin());
  return out;
}

double fir_response_at(std::span<const double> taps, double freq_hz,
                       double sample_rate_hz) {
  expects(sample_rate_hz > 0.0, "fir_response_at: sample rate must be > 0");
  const double w = two_pi * freq_hz / sample_rate_hz;
  cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < taps.size(); ++k) {
    const double phase = -w * static_cast<double>(k);
    acc += taps[k] * cplx{std::cos(phase), std::sin(phase)};
  }
  return std::abs(acc);
}

std::vector<double> apply_magnitude_response(
    std::span<const double> signal, double sample_rate_hz,
    const std::function<double(double)>& gain) {
  expects(!signal.empty(), "apply_magnitude_response: signal must be non-empty");
  expects(sample_rate_hz > 0.0,
          "apply_magnitude_response: sample rate must be > 0");
  // A real magnitude response applied symmetrically keeps the spectrum
  // conjugate-symmetric, so the half-spectrum round trip suffices. The
  // scratch is per-thread: large callers (ambient noise at the wideband
  // rate, enclosure responses) would otherwise fault in ~10 MB of fresh
  // pages per call.
  const std::size_t n = next_pow2(signal.size());
  const auto plan = get_fft_plan(n);
  thread_local std::vector<double> padded;
  thread_local std::vector<cplx> spec;
  thread_local std::vector<cplx> work;
  padded.assign(n, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    padded[i] = signal[i];
  }
  spec.resize(plan->num_real_bins());
  plan->rfft(padded, spec);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const double f = bin_frequency_hz(i, n, sample_rate_hz);
    spec[i] *= gain(f);
  }
  work.resize(plan->workspace_size());
  plan->irfft(spec, padded, work);
  return {padded.begin(), padded.begin() + static_cast<std::ptrdiff_t>(
                                               signal.size())};
}

}  // namespace ivc::dsp
