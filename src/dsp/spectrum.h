// Power spectral density estimation and band-power measurement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.h"

namespace ivc::dsp {

// One-sided Welch PSD estimate.
struct psd_estimate {
  std::vector<double> frequency_hz;   // bin centers, 0 .. fs/2
  std::vector<double> power;          // power per bin (linear units^2/Hz)
  double bin_width_hz = 0.0;

  // Total power integrated over [low_hz, high_hz] (linear units^2).
  double band_power(double low_hz, double high_hz) const;
  // Frequency of the largest bin within [low_hz, high_hz].
  double peak_frequency(double low_hz, double high_hz) const;
};

struct welch_config {
  std::size_t segment_size = 4096;
  std::size_t overlap = 2048;
  window_kind window = window_kind::hann;
};

// Welch's averaged-periodogram PSD. Density normalization: integrating
// `power` over frequency reproduces the mean-square of the signal
// (Parseval), which the unit tests verify.
psd_estimate welch_psd(std::span<const double> signal, double sample_rate_hz,
                       const welch_config& config = {});

// Mean-square power of the signal restricted to [low_hz, high_hz],
// measured via Welch PSD integration.
double band_power(std::span<const double> signal, double sample_rate_hz,
                  double low_hz, double high_hz);

// Ratio of band powers, in dB: 10·log10(P[num] / P[den]).
double band_power_ratio_db(std::span<const double> signal,
                           double sample_rate_hz, double num_low_hz,
                           double num_high_hz, double den_low_hz,
                           double den_high_hz);

}  // namespace ivc::dsp
