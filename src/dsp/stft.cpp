#include "dsp/stft.h"

#include <cmath>

#include "common/error.h"
#include "dsp/fft_plan.h"

namespace ivc::dsp {

double stft_result::frame_time_s(std::size_t i) const {
  return static_cast<double>(i * hop_size) / sample_rate_hz;
}

double stft_result::bin_hz(std::size_t k) const {
  return static_cast<double>(k) * sample_rate_hz /
         static_cast<double>(frame_size);
}

stft_result stft(std::span<const double> signal, double sample_rate_hz,
                 const stft_config& config) {
  expects(!signal.empty(), "stft: signal must be non-empty");
  expects(config.frame_size >= 8 && is_pow2(config.frame_size),
          "stft: frame_size must be a power of two >= 8");
  expects(config.hop_size > 0 && config.hop_size <= config.frame_size,
          "stft: hop_size must be in [1, frame_size]");
  expects(sample_rate_hz > 0.0, "stft: sample rate must be > 0");

  const std::vector<double> win =
      make_periodic_window(config.window, config.frame_size);
  const std::ptrdiff_t half =
      config.center ? static_cast<std::ptrdiff_t>(config.frame_size / 2) : 0;
  const auto len = static_cast<std::ptrdiff_t>(signal.size());

  stft_result result;
  result.frame_size = config.frame_size;
  result.hop_size = config.hop_size;
  result.sample_rate_hz = sample_rate_hz;

  // Planned real transform: frames are real, so only the n/2 + 1
  // nonnegative-frequency bins (exactly what stft_result stores) are
  // ever computed, through one reused window buffer.
  const auto plan = get_fft_plan(config.frame_size);
  std::vector<double> windowed(config.frame_size);
  for (std::ptrdiff_t start = -half; start + half < len;
       start += static_cast<std::ptrdiff_t>(config.hop_size)) {
    for (std::size_t i = 0; i < config.frame_size; ++i) {
      const std::ptrdiff_t idx = start + static_cast<std::ptrdiff_t>(i);
      const double s =
          (idx >= 0 && idx < len) ? signal[static_cast<std::size_t>(idx)] : 0.0;
      windowed[i] = s * win[i];
    }
    std::vector<cplx> bins(plan->num_real_bins());
    plan->rfft(windowed, bins);
    result.frames.push_back(std::move(bins));
  }
  ensures(!result.frames.empty(), "stft: produced no frames");
  return result;
}

std::vector<std::vector<double>> power_spectrogram(
    std::span<const double> signal, double sample_rate_hz,
    const stft_config& config) {
  const stft_result s = stft(signal, sample_rate_hz, config);
  std::vector<std::vector<double>> power(s.num_frames());
  for (std::size_t i = 0; i < s.num_frames(); ++i) {
    power[i].resize(s.num_bins());
    for (std::size_t k = 0; k < s.num_bins(); ++k) {
      power[i][k] = std::norm(s.frames[i][k]);
    }
  }
  return power;
}

std::vector<double> band_power_trace(std::span<const double> signal,
                                     double sample_rate_hz, double low_hz,
                                     double high_hz,
                                     const stft_config& config) {
  expects(low_hz >= 0.0 && high_hz > low_hz,
          "band_power_trace: need 0 <= low < high");
  const stft_result s = stft(signal, sample_rate_hz, config);
  std::vector<double> trace(s.num_frames(), 0.0);
  for (std::size_t i = 0; i < s.num_frames(); ++i) {
    for (std::size_t k = 0; k < s.num_bins(); ++k) {
      const double f = s.bin_hz(k);
      if (f >= low_hz && f <= high_hz) {
        trace[i] += std::norm(s.frames[i][k]);
      }
    }
  }
  return trace;
}

}  // namespace ivc::dsp
