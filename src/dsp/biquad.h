// Biquad sections and Butterworth IIR design.
//
// Butterworth low/high-pass filters are designed from the analog prototype
// via pole pairing and the bilinear transform with frequency pre-warping,
// yielding a cascade of second-order sections (plus one first-order section
// for odd orders). Cascades are the numerically robust way to realize
// higher-order IIR filters (direct-form high-order polynomials explode).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ivc::dsp {

// One second-order (or degenerate first-order) IIR section in transposed
// direct form II. Coefficients are normalized so a0 == 1.
struct biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

// A cascade of biquad sections applied in sequence.
class iir_cascade {
 public:
  iir_cascade() = default;
  explicit iir_cascade(std::vector<biquad> sections);

  // Filters the whole signal (stateless convenience; state starts at zero).
  std::vector<double> process(std::span<const double> signal) const;

  // Zero-phase (forward-backward) filtering: no group delay, squared
  // magnitude response. For offline paths where a time-aligned band
  // component must be subtracted from the original signal.
  std::vector<double> process_zero_phase(std::span<const double> signal) const;

  // Magnitude response at `freq_hz` for the given sample rate.
  double response_at(double freq_hz, double sample_rate_hz) const;

  // True when every pole lies strictly inside the unit circle.
  bool is_stable() const;

  const std::vector<biquad>& sections() const { return sections_; }

 private:
  std::vector<biquad> sections_;
};

// Streaming filter: keeps per-section state across calls, for block or
// sample-at-a-time processing (used by the real-time defense detector).
class iir_filter {
 public:
  explicit iir_filter(iir_cascade cascade);

  double process_sample(double x);
  void process_block(std::span<const double> in, std::span<double> out);
  void reset();

  const iir_cascade& cascade() const { return cascade_; }

 private:
  iir_cascade cascade_;
  // Transposed direct form II state (two registers per section).
  std::vector<double> z1_;
  std::vector<double> z2_;
};

// Butterworth designs. `order` >= 1, cutoff in (0, fs/2).
iir_cascade butterworth_lowpass(std::size_t order, double cutoff_hz,
                                double sample_rate_hz);
iir_cascade butterworth_highpass(std::size_t order, double cutoff_hz,
                                 double sample_rate_hz);
// Band-pass realized as high-pass(low_hz) cascaded with low-pass(high_hz);
// each leg has the given order.
iir_cascade butterworth_bandpass(std::size_t order, double low_hz,
                                 double high_hz, double sample_rate_hz);

}  // namespace ivc::dsp
