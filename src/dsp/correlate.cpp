#include "dsp/correlate.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/fft_plan.h"

namespace ivc::dsp {
namespace {

double mean_of(std::span<const double> x) {
  double m = 0.0;
  for (const double v : x) {
    m += v;
  }
  return m / static_cast<double>(x.size());
}

}  // namespace

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) {
  expects(a.size() == b.size(), "pearson_correlation: size mismatch");
  expects(a.size() >= 2, "pearson_correlation: need at least 2 samples");
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 1e-300 || sbb <= 1e-300) {
    return 0.0;
  }
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> normalized_cross_correlation(std::span<const double> a,
                                                 std::span<const double> b) {
  expects(!a.empty() && !b.empty(),
          "normalized_cross_correlation: inputs must be non-empty");
  // corr(a, b)[lag] = sum_i a[i+lag]·b[i] == conv(a, reverse(b)).
  // Both inputs are real, so the planned packed transform carries the
  // whole product in the n/2 + 1 nonnegative-frequency bins (a product
  // of conjugate-symmetric spectra stays conjugate-symmetric).
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  const auto plan = get_fft_plan(n);
  const std::size_t bins = plan->num_real_bins();
  std::vector<double> pa(n, 0.0);
  std::vector<double> pb(n, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    pa[i] = a[i];
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    pb[i] = b[b.size() - 1 - i];
  }
  std::vector<cplx> fa(bins);
  std::vector<cplx> fb(bins);
  plan->rfft(pa, fa);
  plan->rfft(pb, fb);
  for (std::size_t i = 0; i < bins; ++i) {
    fa[i] *= fb[i];
  }
  std::vector<cplx> work(plan->workspace_size());
  plan->irfft(fa, pa, work);

  double na = 0.0;
  double nb = 0.0;
  for (const double v : a) {
    na += v * v;
  }
  for (const double v : b) {
    nb += v * v;
  }
  const double norm = std::sqrt(na * nb);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    out[i] = norm > 1e-300 ? pa[i] / norm : 0.0;
  }
  return out;
}

alignment best_alignment(std::span<const double> a, std::span<const double> b) {
  const std::vector<double> xc = normalized_cross_correlation(a, b);
  std::size_t best = 0;
  for (std::size_t i = 1; i < xc.size(); ++i) {
    if (std::abs(xc[i]) > std::abs(xc[best])) {
      best = i;
    }
  }
  return alignment{
      static_cast<std::ptrdiff_t>(best) -
          static_cast<std::ptrdiff_t>(b.size() - 1),
      xc[best]};
}

double aligned_correlation(std::span<const double> a, std::span<const double> b,
                           std::size_t max_lag) {
  expects(a.size() >= 2 && b.size() >= 2,
          "aligned_correlation: inputs too short");
  const std::vector<double> xc = normalized_cross_correlation(a, b);
  const auto zero_lag = static_cast<std::ptrdiff_t>(b.size() - 1);
  std::ptrdiff_t best_lag = 0;
  double best_abs = -1.0;
  for (std::ptrdiff_t lag = -static_cast<std::ptrdiff_t>(max_lag);
       lag <= static_cast<std::ptrdiff_t>(max_lag); ++lag) {
    const std::ptrdiff_t idx = zero_lag + lag;
    if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(xc.size())) {
      continue;
    }
    if (std::abs(xc[static_cast<std::size_t>(idx)]) > best_abs) {
      best_abs = std::abs(xc[static_cast<std::size_t>(idx)]);
      best_lag = lag;
    }
  }
  // Re-measure as a Pearson coefficient on the overlapping region.
  std::span<const double> sa = a;
  std::span<const double> sb = b;
  if (best_lag >= 0) {
    sa = sa.subspan(static_cast<std::size_t>(best_lag));
  } else {
    sb = sb.subspan(static_cast<std::size_t>(-best_lag));
  }
  const std::size_t overlap = std::min(sa.size(), sb.size());
  if (overlap < 2) {
    return 0.0;
  }
  return pearson_correlation(sa.subspan(0, overlap), sb.subspan(0, overlap));
}

}  // namespace ivc::dsp
