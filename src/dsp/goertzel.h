// Goertzel single-bin DFT: cheap power measurement at one frequency,
// used by tests and the non-linearity diagnostics to probe specific
// intermodulation products without a full FFT.
#pragma once

#include <span>

namespace ivc::dsp {

// Mean-square power of the component of `signal` at `freq_hz`
// (equivalent to |DFT bin|^2 · 2 / N^2 for a real sinusoid, i.e. a unit
// amplitude sine returns ~0.5).
double goertzel_power(std::span<const double> signal, double sample_rate_hz,
                      double freq_hz);

// Amplitude of the sinusoidal component at `freq_hz` (a unit-amplitude
// sine at that exact bin returns ~1.0).
double goertzel_amplitude(std::span<const double> signal,
                          double sample_rate_hz, double freq_hz);

}  // namespace ivc::dsp
