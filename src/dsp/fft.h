// Fast Fourier transforms.
//
// Implements an iterative radix-2 Cooley–Tukey FFT for power-of-two sizes
// and Bluestein's chirp-z algorithm for arbitrary sizes, plus real-signal
// helpers. Power-of-two transforms run through the shared plan cache in
// dsp/fft_plan.h (precomputed twiddles and bit-reversal tables); hot
// paths that transform many same-size real frames should hold a plan and
// use its rfft/irfft directly. All transforms are unnormalized forward /
// (1/N)-normalized inverse, matching the common engineering convention.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ivc::dsp {

using cplx = std::complex<double>;

// Smallest power of two >= n (n == 0 maps to 1).
std::size_t next_pow2(std::size_t n);

// True when n is a nonzero power of two.
bool is_pow2(std::size_t n);

// In-place forward/inverse FFT for power-of-two length. Throws for other
// lengths; use fft()/ifft() for arbitrary sizes.
void fft_pow2_inplace(std::vector<cplx>& data, bool inverse);

// Forward FFT of arbitrary length (Bluestein for non-power-of-two).
std::vector<cplx> fft(std::span<const cplx> input);

// Inverse FFT of arbitrary length; includes the 1/N normalization.
std::vector<cplx> ifft(std::span<const cplx> input);

// Forward FFT of a real signal. Returns the full complex spectrum of
// length n (not just n/2+1) so that downstream frequency-domain filters
// can operate on positive and negative frequencies symmetrically.
std::vector<cplx> fft_real(std::span<const double> input);

// Inverse FFT returning only the real part, for spectra known to be
// conjugate-symmetric (within numerical noise).
std::vector<double> ifft_real(std::span<const cplx> spectrum);

// Frequency, in Hz, of FFT bin `index` for a transform of length n at
// `sample_rate_hz`; bins above n/2 map to negative frequencies.
double bin_frequency_hz(std::size_t index, std::size_t n, double sample_rate_hz);

}  // namespace ivc::dsp
