// Analytic signal, envelope extraction, and single-sideband helpers.
//
// The attack's spectrum splitter uses analytic (single-sideband)
// modulation so each ultrasonic speaker carries exactly one copy of its
// voice-band chunk; the defense uses envelopes to correlate low-frequency
// traces against the squared voice envelope.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace ivc::dsp {

// Analytic signal via the FFT method: X(f) doubled for positive
// frequencies, zeroed for negative ones.
std::vector<std::complex<double>> analytic_signal(std::span<const double> input);

// Instantaneous amplitude |analytic(x)|.
std::vector<double> envelope(std::span<const double> input);

// Envelope additionally smoothed by a low-pass at `smooth_hz`
// (2nd-order Butterworth, applied forward only).
std::vector<double> smoothed_envelope(std::span<const double> input,
                                      double sample_rate_hz, double smooth_hz);

// Single-sideband (upper) modulation: shifts the spectrum of `baseband`
// up by `carrier_hz`: Re{ analytic(baseband) · e^{j·2π·fc·t} }.
std::vector<double> ssb_modulate(std::span<const double> baseband,
                                 double carrier_hz, double sample_rate_hz);

}  // namespace ivc::dsp
