#include "dsp/hilbert.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/biquad.h"
#include "dsp/fft_plan.h"

namespace ivc::dsp {

std::vector<std::complex<double>> analytic_signal(
    std::span<const double> input) {
  expects(!input.empty(), "analytic_signal: input must be non-empty");
  const std::size_t len = input.size();
  const std::size_t n = next_pow2(len);
  const auto plan = get_fft_plan(n);
  // The forward transform only needs the nonnegative-frequency half
  // (the rest is zeroed by the analytic filter anyway), so run the
  // packed real transform and inverse in place in one spectrum buffer.
  std::vector<cplx> spec(n, cplx{0.0, 0.0});
  std::vector<double> padded(n, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    padded[i] = input[i];
  }
  plan->rfft(padded, spec);

  // Zero negative frequencies, double positive ones, keep DC and Nyquist.
  for (std::size_t i = 1; i < n / 2; ++i) {
    spec[i] *= 2.0;
  }
  plan->inverse(spec);
  spec.resize(len);
  return spec;
}

std::vector<double> envelope(std::span<const double> input) {
  const auto a = analytic_signal(input);
  std::vector<double> env(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    env[i] = std::abs(a[i]);
  }
  return env;
}

std::vector<double> smoothed_envelope(std::span<const double> input,
                                      double sample_rate_hz,
                                      double smooth_hz) {
  expects(sample_rate_hz > 0.0 && smooth_hz > 0.0 &&
              smooth_hz < sample_rate_hz / 2.0,
          "smoothed_envelope: need 0 < smooth_hz < fs/2");
  const std::vector<double> env = envelope(input);
  const iir_cascade lp = butterworth_lowpass(2, smooth_hz, sample_rate_hz);
  return lp.process(env);
}

std::vector<double> ssb_modulate(std::span<const double> baseband,
                                 double carrier_hz, double sample_rate_hz) {
  expects(sample_rate_hz > 0.0, "ssb_modulate: sample rate must be > 0");
  expects(carrier_hz >= 0.0 && carrier_hz < sample_rate_hz / 2.0,
          "ssb_modulate: carrier must be in [0, fs/2)");
  const auto a = analytic_signal(baseband);
  std::vector<double> out(a.size());
  const double w = two_pi * carrier_hz / sample_rate_hz;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double phase = w * static_cast<double>(i);
    out[i] = a[i].real() * std::cos(phase) - a[i].imag() * std::sin(phase);
  }
  return out;
}

}  // namespace ivc::dsp
