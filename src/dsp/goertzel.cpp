#include "dsp/goertzel.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace ivc::dsp {

double goertzel_power(std::span<const double> signal, double sample_rate_hz,
                      double freq_hz) {
  expects(!signal.empty(), "goertzel: signal must be non-empty");
  expects(sample_rate_hz > 0.0, "goertzel: sample rate must be > 0");
  expects(freq_hz >= 0.0 && freq_hz <= sample_rate_hz / 2.0,
          "goertzel: frequency must be in [0, fs/2]");

  const double w = two_pi * freq_hz / sample_rate_hz;
  const double coeff = 2.0 * std::cos(w);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (const double x : signal) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double n = static_cast<double>(signal.size());
  const double real = s_prev - s_prev2 * std::cos(w);
  const double imag = s_prev2 * std::sin(w);
  const double mag2 = real * real + imag * imag;
  // Mean-square of the sinusoidal component: |X|^2 · 2 / N^2, halved at
  // DC/Nyquist where the component is not split across two bins.
  const bool edge = freq_hz == 0.0 || freq_hz == sample_rate_hz / 2.0;
  return mag2 * (edge ? 1.0 : 2.0) / (n * n);
}

double goertzel_amplitude(std::span<const double> signal,
                          double sample_rate_hz, double freq_hz) {
  const double p = goertzel_power(signal, sample_rate_hz, freq_hz);
  // Mean-square of A·sin is A^2/2, so A = sqrt(2·p).
  const bool edge = freq_hz == 0.0 || freq_hz == sample_rate_hz / 2.0;
  return edge ? std::sqrt(p) : std::sqrt(2.0 * p);
}

}  // namespace ivc::dsp
