#include "dsp/resample.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <tuple>

#include "common/error.h"
#include "dsp/fir.h"
#include "dsp/window.h"

namespace ivc::dsp {
namespace {

struct ratio {
  std::size_t up;    // L
  std::size_t down;  // M
};

ratio rational_ratio(double rate_in_hz, double rate_out_hz) {
  expects(rate_in_hz > 0.0 && rate_out_hz > 0.0,
          "resample: rates must be > 0");
  const auto in = static_cast<long long>(std::llround(rate_in_hz));
  const auto out = static_cast<long long>(std::llround(rate_out_hz));
  expects(std::abs(rate_in_hz - static_cast<double>(in)) < 1e-6 &&
              std::abs(rate_out_hz - static_cast<double>(out)) < 1e-6,
          "resample: rates must be integer hertz");
  const long long g = std::gcd(in, out);
  return ratio{static_cast<std::size_t>(out / g),
               static_cast<std::size_t>(in / g)};
}

}  // namespace

std::size_t resampled_length(std::size_t input_length, double rate_in_hz,
                             double rate_out_hz) {
  const ratio r = rational_ratio(rate_in_hz, rate_out_hz);
  return (input_length * r.up + r.down - 1) / r.down;
}

std::vector<double> resample(std::span<const double> signal, double rate_in_hz,
                             double rate_out_hz, double attenuation_db,
                             double transition_fraction) {
  expects(!signal.empty(), "resample: signal must be non-empty");
  expects(transition_fraction > 0.0 && transition_fraction < 1.0,
          "resample: transition fraction must be in (0, 1)");
  const ratio r = rational_ratio(rate_in_hz, rate_out_hz);
  if (r.up == 1 && r.down == 1) {
    return {signal.begin(), signal.end()};
  }

  // The interpolation filter runs at rate_in · L and must cut at the lower
  // of the two Nyquist frequencies.
  const double internal_rate = rate_in_hz * static_cast<double>(r.up);
  const double nyquist = 0.5 * std::min(rate_in_hz, rate_out_hz);
  const double transition = transition_fraction * nyquist;
  const double cutoff = nyquist - transition / 2.0;

  const double beta = kaiser_beta_for_attenuation(attenuation_db);
  std::size_t num_taps =
      kaiser_length_for_design(attenuation_db, transition, internal_rate);
  // Keep the polyphase branches balanced: round up to a multiple of L,
  // plus one to stay odd-ish in the center (exactness is not required for
  // the polyphase form).
  if (num_taps % r.up != 0) {
    num_taps += r.up - (num_taps % r.up);
  }
  ++num_taps;
  if (num_taps % 2 == 0) {
    ++num_taps;
  }
  // The Kaiser design (a Bessel evaluation per tap, often hundreds of
  // taps) depends only on the rate pair and design parameters, so each
  // thread caches it — the microphone decimator redesigns it per
  // capture otherwise.
  using design_key = std::tuple<double, double, double, double>;
  thread_local std::map<design_key, std::vector<double>> design_cache;
  std::vector<double>& taps =
      design_cache[design_key{rate_in_hz, rate_out_hz, attenuation_db,
                              transition_fraction}];
  if (taps.empty()) {
    taps = design_fir_lowpass(num_taps, cutoff, internal_rate,
                              window_kind::kaiser, beta);
    // Gain of L compensates the energy spread over inserted zeros.
    for (double& t : taps) {
      t *= static_cast<double>(r.up);
    }
  }

  const std::size_t out_len =
      (signal.size() * r.up + r.down - 1) / r.down;
  std::vector<double> out(out_len, 0.0);

  // Polyphase evaluation of y[m] = sum_k h[k] x_up[m·M - k] where x_up is
  // the zero-stuffed input, with group-delay compensation so the output is
  // time-aligned with the input.
  const std::ptrdiff_t delay = static_cast<std::ptrdiff_t>(num_taps / 2);
  const auto sig_len = static_cast<std::ptrdiff_t>(signal.size());
  for (std::size_t m = 0; m < out_len; ++m) {
    // Index into the upsampled stream, shifted by the filter delay.
    const std::ptrdiff_t up_index =
        static_cast<std::ptrdiff_t>(m * r.down) + delay;
    double acc = 0.0;
    // x_up[j] is nonzero only when j is a multiple of L: j = i·L.
    // h index: k = up_index - j must be in [0, num_taps).
    const std::ptrdiff_t i_max = up_index / static_cast<std::ptrdiff_t>(r.up);
    for (std::ptrdiff_t i = i_max; i >= 0; --i) {
      const std::ptrdiff_t k = up_index - i * static_cast<std::ptrdiff_t>(r.up);
      if (k >= static_cast<std::ptrdiff_t>(num_taps)) {
        break;
      }
      if (i < sig_len) {
        acc += taps[static_cast<std::size_t>(k)] *
               signal[static_cast<std::size_t>(i)];
      }
    }
    out[m] = acc;
  }
  return out;
}

}  // namespace ivc::dsp
