#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "dsp/fft_plan.h"

namespace ivc::dsp {

double psd_estimate::band_power(double low_hz, double high_hz) const {
  expects(high_hz >= low_hz, "band_power: high must be >= low");
  double total = 0.0;
  for (std::size_t i = 0; i < frequency_hz.size(); ++i) {
    if (frequency_hz[i] >= low_hz && frequency_hz[i] <= high_hz) {
      total += power[i] * bin_width_hz;
    }
  }
  return total;
}

double psd_estimate::peak_frequency(double low_hz, double high_hz) const {
  double best_f = low_hz;
  double best_p = -1.0;
  for (std::size_t i = 0; i < frequency_hz.size(); ++i) {
    if (frequency_hz[i] >= low_hz && frequency_hz[i] <= high_hz &&
        power[i] > best_p) {
      best_p = power[i];
      best_f = frequency_hz[i];
    }
  }
  return best_f;
}

psd_estimate welch_psd(std::span<const double> signal, double sample_rate_hz,
                       const welch_config& config) {
  expects(!signal.empty(), "welch_psd: signal must be non-empty");
  expects(sample_rate_hz > 0.0, "welch_psd: sample rate must be > 0");
  expects(config.segment_size >= 16 && is_pow2(config.segment_size),
          "welch_psd: segment_size must be a power of two >= 16");
  expects(config.overlap < config.segment_size,
          "welch_psd: overlap must be < segment_size");

  // Shrink the segment if the signal is shorter than one segment.
  std::size_t seg = config.segment_size;
  while (seg > 16 && seg > signal.size()) {
    seg /= 2;
  }
  const std::size_t hop =
      (seg == config.segment_size) ? (config.segment_size - config.overlap)
                                   : seg / 2;

  const std::vector<double> win = make_periodic_window(config.window, seg);
  double win_power = 0.0;
  for (const double w : win) {
    win_power += w * w;
  }

  const std::size_t num_bins = seg / 2 + 1;
  std::vector<double> acc(num_bins, 0.0);
  std::size_t count = 0;
  // Planned packed real transform through reused frame/bin buffers.
  const auto plan = get_fft_plan(seg);
  std::vector<double> windowed(seg);
  std::vector<cplx> bins(num_bins);

  for (std::size_t start = 0; start + seg <= signal.size(); start += hop) {
    for (std::size_t i = 0; i < seg; ++i) {
      windowed[i] = signal[start + i] * win[i];
    }
    plan->rfft(windowed, bins);
    for (std::size_t k = 0; k < num_bins; ++k) {
      // One-sided density: double all interior bins.
      const double scale = (k == 0 || k == seg / 2) ? 1.0 : 2.0;
      acc[k] += scale * std::norm(bins[k]) / (win_power * sample_rate_hz);
    }
    ++count;
  }
  if (count == 0) {
    // Signal shorter than the smallest segment: single zero-padded frame.
    std::fill(windowed.begin(), windowed.end(), 0.0);
    for (std::size_t i = 0; i < signal.size(); ++i) {
      windowed[i] = signal[i] * win[i];
    }
    plan->rfft(windowed, bins);
    for (std::size_t k = 0; k < num_bins; ++k) {
      const double scale = (k == 0 || k == seg / 2) ? 1.0 : 2.0;
      acc[k] += scale * std::norm(bins[k]) / (win_power * sample_rate_hz);
    }
    count = 1;
  }

  psd_estimate est;
  est.bin_width_hz = sample_rate_hz / static_cast<double>(seg);
  est.frequency_hz.resize(num_bins);
  est.power.resize(num_bins);
  for (std::size_t k = 0; k < num_bins; ++k) {
    est.frequency_hz[k] = static_cast<double>(k) * est.bin_width_hz;
    est.power[k] = acc[k] / static_cast<double>(count);
  }
  return est;
}

double band_power(std::span<const double> signal, double sample_rate_hz,
                  double low_hz, double high_hz) {
  return welch_psd(signal, sample_rate_hz).band_power(low_hz, high_hz);
}

double band_power_ratio_db(std::span<const double> signal,
                           double sample_rate_hz, double num_low_hz,
                           double num_high_hz, double den_low_hz,
                           double den_high_hz) {
  const psd_estimate psd = welch_psd(signal, sample_rate_hz);
  const double num = psd.band_power(num_low_hz, num_high_hz);
  const double den = psd.band_power(den_low_hz, den_high_hz);
  if (den <= db_epsilon) {
    return num <= db_epsilon ? 0.0 : 200.0;
  }
  return power_to_db(num / den);
}

}  // namespace ivc::dsp
