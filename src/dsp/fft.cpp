#include "dsp/fft.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft_plan.h"

namespace ivc::dsp {
namespace {

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// convolution, evaluated with (planned) power-of-two FFTs.
std::vector<cplx> bluestein(std::span<const cplx> input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;

  std::vector<cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Reduce k^2 mod 2n before the trig call to keep the angle accurate for
    // large transforms.
    const auto k2 = static_cast<unsigned long long>(k) * k % (2ULL * n);
    const double angle = sign * pi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = {std::cos(angle), std::sin(angle)};
  }

  const std::size_t m = next_pow2(2 * n - 1);
  const auto plan = get_fft_plan(m);
  std::vector<cplx> a(m, cplx{0.0, 0.0});
  std::vector<cplx> b(m, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = input[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
  }
  for (std::size_t k = 1; k < n; ++k) {
    b[m - k] = std::conj(chirp[k]);
  }

  plan->forward(a);
  plan->forward(b);
  for (std::size_t k = 0; k < m; ++k) {
    a[k] *= b[k];
  }
  plan->inverse(a);

  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = a[k] * chirp[k];
  }
  return out;
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_pow2_inplace(std::vector<cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  expects(is_pow2(n), "fft_pow2_inplace: length must be a power of two");
  // Shared plans hold the twiddle/bit-reversal tables, so repeated
  // transforms of one size stop recomputing roots via the old
  // error-accumulating recurrence.
  const auto plan = get_fft_plan(n);
  if (inverse) {
    plan->inverse(data);
  } else {
    plan->forward(data);
  }
}

std::vector<cplx> fft(std::span<const cplx> input) {
  expects(!input.empty(), "fft: input must be non-empty");
  const std::size_t n = input.size();
  if (is_pow2(n)) {
    std::vector<cplx> data{input.begin(), input.end()};
    fft_pow2_inplace(data, /*inverse=*/false);
    return data;
  }
  return bluestein(input, /*inverse=*/false);
}

std::vector<cplx> ifft(std::span<const cplx> input) {
  expects(!input.empty(), "ifft: input must be non-empty");
  const std::size_t n = input.size();
  if (is_pow2(n)) {
    std::vector<cplx> data{input.begin(), input.end()};
    fft_pow2_inplace(data, /*inverse=*/true);
    return data;
  }
  std::vector<cplx> out = bluestein(input, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& x : out) {
    x *= scale;
  }
  return out;
}

std::vector<cplx> fft_real(std::span<const double> input) {
  expects(!input.empty(), "fft_real: input must be non-empty");
  const std::size_t n = input.size();
  if (is_pow2(n)) {
    // Planned packed real transform for the half spectrum, mirrored to
    // the full length this interface promises.
    const auto plan = get_fft_plan(n);
    std::vector<cplx> out(n);
    plan->rfft(input, out);
    for (std::size_t k = n / 2 + 1; k < n; ++k) {
      out[k] = std::conj(out[n - k]);
    }
    return out;
  }
  std::vector<cplx> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = cplx{input[i], 0.0};
  }
  return fft(data);
}

std::vector<double> ifft_real(std::span<const cplx> spectrum) {
  expects(!spectrum.empty(), "ifft_real: spectrum must be non-empty");
  const std::size_t n = spectrum.size();
  if (is_pow2(n)) {
    // Conjugate symmetry is promised, so the n/2 + 1 leading bins carry
    // the whole signal: run the packed half-size inverse.
    const auto plan = get_fft_plan(n);
    std::vector<double> out(n);
    std::vector<cplx> work(plan->workspace_size());
    plan->irfft(spectrum, out, work);
    return out;
  }
  const std::vector<cplx> time = ifft(spectrum);
  std::vector<double> out(time.size());
  for (std::size_t i = 0; i < time.size(); ++i) {
    out[i] = time[i].real();
  }
  return out;
}

double bin_frequency_hz(std::size_t index, std::size_t n,
                        double sample_rate_hz) {
  expects(n > 0 && index < n, "bin_frequency_hz: index out of range");
  const auto half = n / 2;
  const double step = sample_rate_hz / static_cast<double>(n);
  if (index <= half) {
    return static_cast<double>(index) * step;
  }
  return (static_cast<double>(index) - static_cast<double>(n)) * step;
}

}  // namespace ivc::dsp
