// Short-time Fourier transform and spectrogram utilities.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.h"

namespace ivc::dsp {

struct stft_config {
  std::size_t frame_size = 512;
  std::size_t hop_size = 256;
  window_kind window = window_kind::hann;
  bool center = true;  // zero-pad so frame centers align with sample times
};

// One STFT: frames x (frame_size/2 + 1) complex bins.
struct stft_result {
  std::vector<std::vector<std::complex<double>>> frames;
  std::size_t frame_size = 0;
  std::size_t hop_size = 0;
  double sample_rate_hz = 0.0;

  std::size_t num_frames() const { return frames.size(); }
  std::size_t num_bins() const {
    return frames.empty() ? 0 : frames.front().size();
  }
  // Center time of frame `i` in seconds.
  double frame_time_s(std::size_t i) const;
  // Frequency of bin `k` in Hz.
  double bin_hz(std::size_t k) const;
};

stft_result stft(std::span<const double> signal, double sample_rate_hz,
                 const stft_config& config = {});

// Power spectrogram, |X|^2 per frame/bin.
std::vector<std::vector<double>> power_spectrogram(
    std::span<const double> signal, double sample_rate_hz,
    const stft_config& config = {});

// Per-frame power summed over bins whose frequency lies in [low_hz, high_hz].
// This is the defense's sub-band power trace primitive.
std::vector<double> band_power_trace(std::span<const double> signal,
                                     double sample_rate_hz, double low_hz,
                                     double high_hz,
                                     const stft_config& config = {});

}  // namespace ivc::dsp
