#include "dsp/window.h"

#include <cmath>
#include <cstddef>

#include "common/constants.h"
#include "common/error.h"

namespace ivc::dsp {
namespace {

// Evaluates one sample of the requested window with the given phase
// denominator (n-1 for symmetric, n for periodic).
double window_sample(window_kind kind, std::size_t i, double denom,
                     double kaiser_beta) {
  if (denom <= 0.0) {
    return 1.0;  // single-sample window
  }
  const double x = static_cast<double>(i) / denom;  // in [0, 1]
  switch (kind) {
    case window_kind::rectangular:
      return 1.0;
    case window_kind::hann:
      return 0.5 - 0.5 * std::cos(two_pi * x);
    case window_kind::hamming:
      return 0.54 - 0.46 * std::cos(two_pi * x);
    case window_kind::blackman:
      return 0.42 - 0.5 * std::cos(two_pi * x) + 0.08 * std::cos(2.0 * two_pi * x);
    case window_kind::blackman_harris:
      return 0.35875 - 0.48829 * std::cos(two_pi * x) +
             0.14128 * std::cos(2.0 * two_pi * x) -
             0.01168 * std::cos(3.0 * two_pi * x);
    case window_kind::kaiser: {
      const double t = 2.0 * x - 1.0;  // in [-1, 1]
      return bessel_i0(kaiser_beta * std::sqrt(std::max(0.0, 1.0 - t * t))) /
             bessel_i0(kaiser_beta);
    }
  }
  return 1.0;
}

std::vector<double> make_window_impl(window_kind kind, std::size_t n,
                                     double denom, double kaiser_beta) {
  expects(n > 0, "make_window: window length must be > 0");
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = window_sample(kind, i, denom, kaiser_beta);
  }
  return w;
}

}  // namespace

double bessel_i0(double x) {
  // Power-series evaluation; converges quickly for the |x| <= ~700 range
  // used by Kaiser windows (beta rarely exceeds 25).
  const double half = x / 2.0;
  double sum = 1.0;
  double term = 1.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half / k) * (half / k);
    sum += term;
    if (term < sum * 1e-18) {
      break;
    }
  }
  return sum;
}

double kaiser_beta_for_attenuation(double attenuation_db) {
  expects(attenuation_db > 0.0,
          "kaiser_beta_for_attenuation: attenuation must be > 0 dB");
  if (attenuation_db > 50.0) {
    return 0.1102 * (attenuation_db - 8.7);
  }
  if (attenuation_db >= 21.0) {
    const double d = attenuation_db - 21.0;
    return 0.5842 * std::pow(d, 0.4) + 0.07886 * d;
  }
  return 0.0;  // rectangular window suffices below 21 dB
}

std::size_t kaiser_length_for_design(double attenuation_db,
                                     double transition_hz,
                                     double sample_rate_hz) {
  expects(transition_hz > 0.0 && sample_rate_hz > 0.0,
          "kaiser_length_for_design: transition and sample rate must be > 0");
  const double delta_omega = two_pi * transition_hz / sample_rate_hz;
  const double n = (attenuation_db - 8.0) / (2.285 * delta_omega);
  auto len = static_cast<std::size_t>(std::ceil(n)) + 1;
  if (len < 3) {
    len = 3;
  }
  if (len % 2 == 0) {
    ++len;  // odd length keeps a symmetric type-I linear-phase filter
  }
  return len;
}

std::vector<double> make_window(window_kind kind, std::size_t n,
                                double kaiser_beta) {
  return make_window_impl(kind, n, static_cast<double>(n) - 1.0, kaiser_beta);
}

std::vector<double> make_periodic_window(window_kind kind, std::size_t n,
                                         double kaiser_beta) {
  return make_window_impl(kind, n, static_cast<double>(n), kaiser_beta);
}

std::string to_string(window_kind kind) {
  switch (kind) {
    case window_kind::rectangular: return "rectangular";
    case window_kind::hann: return "hann";
    case window_kind::hamming: return "hamming";
    case window_kind::blackman: return "blackman";
    case window_kind::blackman_harris: return "blackman-harris";
    case window_kind::kaiser: return "kaiser";
  }
  return "unknown";
}

}  // namespace ivc::dsp
