#include "mic/nonlinearity.h"

#include <cmath>

namespace ivc::mic {

std::vector<double> apply_nonlinearity(std::span<const double> x,
                                       const poly_nonlinearity& nl) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = nl(x[i]);
  }
  return out;
}

double predicted_imd2_amplitude(const poly_nonlinearity& nl,
                                double amplitude) {
  // (A cos w1 + A cos w2)² contributes a2·A²·cos(w2−w1): coefficient
  // a2·A² on the difference tone.
  return std::abs(nl.a2) * amplitude * amplitude;
}

}  // namespace ivc::mic
