// Memoryless polynomial non-linearity.
//
// The transducer+amplifier of a MEMS/ECM microphone is modelled as
//   y = a1·x + a2·x² + a3·x³ + a4·x⁴
// with x the incident pressure normalized to 1 Pa (94 dB SPL RMS == 1.0).
// The a2 term performs the AM self-demodulation the attack relies on; a3
// contributes odd-order intermodulation. This is Eq. (1) of the
// non-linearity literature, truncated at fourth order.
#pragma once

#include <span>
#include <vector>

namespace ivc::mic {

struct poly_nonlinearity {
  double a1 = 1.0;
  double a2 = 0.0;
  double a3 = 0.0;
  double a4 = 0.0;

  double operator()(double x) const {
    // Horner evaluation of a1·x + a2·x² + a3·x³ + a4·x⁴.
    return x * (a1 + x * (a2 + x * (a3 + x * a4)));
  }

  bool is_linear() const { return a2 == 0.0 && a3 == 0.0 && a4 == 0.0; }
};

// Applies the polynomial to every sample.
std::vector<double> apply_nonlinearity(std::span<const double> x,
                                       const poly_nonlinearity& nl);

// Predicted amplitude of the f2−f1 intermodulation product for a two-tone
// input x = A·cos(2πf1 t) + A·cos(2πf2 t): |a2|·A². Used by tests and the
// F-R1 diagnostic to check the simulated microphone against theory.
double predicted_imd2_amplitude(const poly_nonlinearity& nl, double amplitude);

}  // namespace ivc::mic
