// Victim-device profiles.
//
// Each profile is a microphone parameterization matching a device class
// from the paper's evaluation. Absolute coefficients are calibrated so
// the simulated attack ranges land in the regimes the papers report
// (phone ≈ 3 m with a single speaker at ~19 W; smart speaker shorter
// because of its grille; the array pushing past 7 m).
#pragma once

#include <string>
#include <vector>

#include "mic/frontend.h"

namespace ivc::mic {

struct device_profile {
  std::string name;
  mic_params mic;
  // Short description for experiment printouts.
  std::string notes;
};

// Android-phone class device: bare MEMS port, moderate non-linearity.
device_profile phone_profile();

// Smart-speaker class device (Echo-like): plastic grille attenuates
// ultrasound, far-field mic with AGC.
device_profile smart_speaker_profile();

// Laptop class: recessed mic, slightly lower non-linearity.
device_profile laptop_profile();

// A hardened device with an ultrasound-rejecting acoustic filter and a
// low-distortion mic — the paper's hardware-defense strawman.
device_profile hardened_profile();

// All profiles, for the device-matrix experiment (T-R2).
std::vector<device_profile> all_profiles();

}  // namespace ivc::mic
