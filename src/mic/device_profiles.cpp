#include "mic/device_profiles.h"

namespace ivc::mic {

device_profile phone_profile() {
  device_profile p;
  p.name = "phone";
  p.notes = "bare MEMS port, handheld voice assistant";
  p.mic.full_scale_spl_db = 120.0;
  p.mic.self_noise_spl_db = 29.0;
  p.mic.nonlinearity = poly_nonlinearity{1.0, 9e-3, 9e-4, 0.0};
  p.mic.analog_lpf_hz = 7'200.0;
  p.mic.analog_lpf_order = 6;
  p.mic.capture_rate_hz = 16'000.0;
  p.mic.enclosure = enclosure_model{};  // no grille
  agc_config agc;
  agc.target_rms_dbfs = -20.0;
  agc.max_gain_db = 24.0;
  p.mic.agc = agc;
  return p;
}

device_profile smart_speaker_profile() {
  device_profile p;
  p.name = "smart-speaker";
  p.notes = "far-field device behind a plastic grille (Echo-like)";
  p.mic.full_scale_spl_db = 118.0;
  p.mic.self_noise_spl_db = 27.0;
  p.mic.nonlinearity = poly_nonlinearity{1.0, 8e-3, 8e-4, 0.0};
  p.mic.analog_lpf_hz = 7'200.0;
  p.mic.analog_lpf_order = 6;
  p.mic.capture_rate_hz = 16'000.0;
  // The grille costs the attack ~4 dB of ultrasound twice-over (the
  // demodulated product scales with the square of the received level),
  // reproducing the consistently shorter Echo attack ranges.
  p.mic.enclosure = enclosure_model{18'000.0, 28'000.0, 4.0};
  agc_config agc;
  agc.target_rms_dbfs = -16.0;
  agc.max_gain_db = 30.0;
  p.mic.agc = agc;
  return p;
}

device_profile laptop_profile() {
  device_profile p;
  p.name = "laptop";
  p.notes = "recessed port behind a narrow duct";
  p.mic.full_scale_spl_db = 118.0;
  p.mic.self_noise_spl_db = 31.0;
  p.mic.nonlinearity = poly_nonlinearity{1.0, 7e-3, 7e-4, 0.0};
  p.mic.analog_lpf_hz = 7'200.0;
  p.mic.analog_lpf_order = 6;
  p.mic.capture_rate_hz = 16'000.0;
  p.mic.enclosure = enclosure_model{18'000.0, 30'000.0, 4.0};
  agc_config agc;
  agc.target_rms_dbfs = -20.0;
  agc.max_gain_db = 20.0;
  p.mic.agc = agc;
  return p;
}

device_profile hardened_profile() {
  device_profile p;
  p.name = "hardened";
  p.notes = "ultrasound-rejecting port filter + low-distortion capsule";
  p.mic.full_scale_spl_db = 122.0;
  p.mic.self_noise_spl_db = 30.0;
  p.mic.nonlinearity = poly_nonlinearity{1.0, 1e-3, 1e-4, 0.0};
  p.mic.analog_lpf_hz = 7'200.0;
  p.mic.analog_lpf_order = 6;
  p.mic.capture_rate_hz = 16'000.0;
  // Acoustic low-pass at the port: heavy ultrasound rejection.
  p.mic.enclosure = enclosure_model{16'000.0, 24'000.0, 30.0};
  p.mic.agc = std::nullopt;
  return p;
}

std::vector<device_profile> all_profiles() {
  return {phone_profile(), smart_speaker_profile(), laptop_profile(),
          hardened_profile()};
}

}  // namespace ivc::mic
