#include "mic/frontend.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/units.h"
#include "dsp/biquad.h"
#include "dsp/fir.h"
#include "dsp/resample.h"

namespace ivc::mic {

double enclosure_model::loss_db_at(double freq_hz) const {
  if (ultra_loss_db <= 0.0 || freq_hz <= knee_hz) {
    return 0.0;
  }
  if (freq_hz >= full_hz) {
    return ultra_loss_db;
  }
  const double t = (freq_hz - knee_hz) / (full_hz - knee_hz);
  return ultra_loss_db * t;
}

microphone::microphone(mic_params params) : params_{params} {
  expects(params_.capture_rate_hz > 0.0,
          "microphone: capture rate must be > 0");
  expects(params_.analog_lpf_hz > 0.0 &&
              params_.analog_lpf_hz <= params_.capture_rate_hz / 2.0,
          "microphone: anti-alias cutoff must be in (0, capture_rate/2]");
  expects(params_.bit_depth >= 8 && params_.bit_depth <= 32,
          "microphone: bit depth must be in [8, 32]");
  expects(params_.full_scale_spl_db > params_.self_noise_spl_db,
          "microphone: full scale must exceed the noise floor");
}

audio::buffer microphone::record(const audio::buffer& pressure_pa,
                                 ivc::rng& rng) const {
  audio::validate(pressure_pa, "microphone::record");
  const double analog_rate = pressure_pa.sample_rate_hz;
  expects(analog_rate >= params_.capture_rate_hz,
          "microphone::record: analog rate must be >= capture rate");

  // 1. Enclosure insertion loss.
  std::vector<double> x = params_.enclosure.ultra_loss_db > 0.0
      ? ivc::dsp::apply_magnitude_response(
            pressure_pa.samples, analog_rate,
            [this](double f) {
              return ivc::db_to_amplitude(-params_.enclosure.loss_db_at(f));
            })
      : pressure_pa.samples;

  // 2. Transducer non-linearity on pressure normalized to 1 Pa.
  //    (The samples are already in pascal, so the normalization is 1:1.)
  x = apply_nonlinearity(x, params_.nonlinearity);

  // 3. Self-noise (equivalent input noise), flat spectrum. The rating is
  //    an *in-band* figure, so the per-sample density is scaled up by the
  //    analog-bandwidth/passband ratio: after the anti-alias filter the
  //    surviving noise power matches the rating regardless of the rate
  //    the caller synthesized the field at.
  const double density_scale =
      std::sqrt(analog_rate / (2.0 * params_.analog_lpf_hz));
  const double noise_rms =
      ivc::spl_db_to_pa(params_.self_noise_spl_db) * density_scale;
  for (double& v : x) {
    v += rng.normal(0.0, noise_rms);
  }

  // 4. Analog anti-alias low-pass at the analog rate.
  const ivc::dsp::iir_cascade lpf = ivc::dsp::butterworth_lowpass(
      params_.analog_lpf_order, params_.analog_lpf_hz, analog_rate);
  x = lpf.process(x);

  // 5. ADC decimation to the capture rate.
  if (analog_rate != params_.capture_rate_hz) {
    x = ivc::dsp::resample(x, analog_rate, params_.capture_rate_hz);
  }

  // 6. DC blocker.
  if (params_.highpass_hz > 0.0) {
    const ivc::dsp::iir_cascade hp = ivc::dsp::butterworth_highpass(
        params_.highpass_order, params_.highpass_hz, params_.capture_rate_hz);
    x = hp.process(x);
  }

  // 7. Scale so the acoustic overload point hits digital full scale, then
  //    clip (ADC saturation).
  const double full_scale_pa =
      ivc::spl_db_to_pa(params_.full_scale_spl_db) * std::numbers::sqrt2;
  for (double& v : x) {
    v = std::clamp(v / full_scale_pa, -1.0, 1.0);
  }

  // 8. Quantisation.
  const double levels = std::pow(2.0, static_cast<double>(params_.bit_depth) - 1.0);
  for (double& v : x) {
    v = std::round(v * levels) / levels;
  }

  audio::buffer captured{std::move(x), params_.capture_rate_hz};

  // 9. AGC.
  if (params_.agc.has_value()) {
    captured = apply_agc(captured, *params_.agc);
  }
  return captured;
}

audio::buffer apply_agc(const audio::buffer& captured, const agc_config& agc) {
  audio::validate(captured, "apply_agc");
  expects(agc.frame_s > 0.0, "apply_agc: frame must be > 0");
  expects(agc.smoothing > 0.0 && agc.smoothing <= 1.0,
          "apply_agc: smoothing must be in (0, 1]");

  const auto frame = static_cast<std::size_t>(
      std::max(1.0, agc.frame_s * captured.sample_rate_hz));
  const double target = ivc::db_to_amplitude(agc.target_rms_dbfs);
  const double max_gain = ivc::db_to_amplitude(agc.max_gain_db);
  const double gate = ivc::db_to_amplitude(agc.gate_dbfs);

  audio::buffer out = captured;
  double gain = 1.0;
  double level = 0.0;  // slow-decay estimate of the programme level
  for (std::size_t start = 0; start < out.size(); start += frame) {
    const std::size_t end = std::min(out.size(), start + frame);
    double acc = 0.0;
    for (std::size_t i = start; i < end; ++i) {
      acc += captured.samples[i] * captured.samples[i];
    }
    const double rms = std::sqrt(acc / static_cast<double>(end - start));
    if (rms > level) {
      level = rms;  // fast attack
    } else {
      level *= agc.level_decay;  // slow release
    }
    if (level > gate) {
      const double desired = std::clamp(target / level, 1.0 / max_gain, max_gain);
      gain += agc.smoothing * (desired - gain);
    }
    for (std::size_t i = start; i < end; ++i) {
      out.samples[i] = std::clamp(captured.samples[i] * gain, -1.0, 1.0);
    }
  }
  return out;
}

}  // namespace ivc::mic
