// Microphone front-end: incident pressure → digital capture.
//
// Chain (Fig. 2 of the short paper; standard MEMS capture path):
//
//   pressure (Pa, high-rate)
//     → enclosure insertion loss (grille/case, hurts ultrasound most)
//     → transducer non-linearity (the demodulating a2·x² term)
//     → microphone self-noise (equivalent input noise)
//     → anti-alias low-pass (Butterworth, analog)
//     → decimation to the device capture rate (ADC sampling)
//     → DC-blocking high-pass
//     → full-scale scaling (acoustic overload point → digital 1.0) + clip
//     → quantisation (ADC bit depth)
//     → optional AGC
//
// Order matters and is load-bearing: the non-linearity acts on the
// *wideband* analog signal before any filtering, so ultrasound that the
// ADC could never represent still folds into the audible band.
#pragma once

#include <cstdint>
#include <optional>

#include "audio/buffer.h"
#include "common/rng.h"
#include "mic/nonlinearity.h"

namespace ivc::mic {

struct enclosure_model {
  // Extra insertion loss ramping from 0 dB at `knee_hz` to `ultra_loss_db`
  // at `full_hz` and above. Models a plastic grille / mesh that passes
  // voice but attenuates ultrasound (the Amazon-Echo effect).
  double knee_hz = 18'000.0;
  double full_hz = 30'000.0;
  double ultra_loss_db = 0.0;

  double loss_db_at(double freq_hz) const;
};

struct agc_config {
  double target_rms_dbfs = -18.0;
  double max_gain_db = 30.0;
  double frame_s = 0.05;
  // Gain smoothing factor per frame (1.0 = jump immediately).
  double smoothing = 0.2;
  // The gain tracks a slow-decay peak level estimate, not the raw frame
  // RMS: otherwise the AGC would boost inter-word silence to speech
  // level, which no deployed AGC does. Per-frame decay of that estimate.
  double level_decay = 0.96;
  // Frames below this level never raise the gain (noise gate), dBFS.
  double gate_dbfs = -55.0;
};

struct mic_params {
  // Digital full scale corresponds to this SPL (acoustic overload point).
  double full_scale_spl_db = 120.0;
  // Equivalent input noise (flat), dB SPL.
  double self_noise_spl_db = 28.0;
  // Transducer non-linearity on pressure normalized to 1 Pa.
  poly_nonlinearity nonlinearity{1.0, 8e-3, 8e-4, 0.0};
  // Analog anti-alias filter.
  double analog_lpf_hz = 7'200.0;
  std::size_t analog_lpf_order = 6;
  // DC blocker.
  double highpass_hz = 15.0;
  std::size_t highpass_order = 1;
  // Capture format.
  double capture_rate_hz = 16'000.0;
  unsigned bit_depth = 16;
  // Enclosure between the sound field and the mic port.
  enclosure_model enclosure;
  // Automatic gain control (most voice assistants run one).
  std::optional<agc_config> agc;
};

class microphone {
 public:
  explicit microphone(mic_params params);

  // Records incident pressure (Pa at the device port, any analog rate
  // >= 2× the content of interest) into the device's capture format.
  // `rng` drives the self-noise realization.
  audio::buffer record(const audio::buffer& pressure_pa, ivc::rng& rng) const;

  const mic_params& params() const { return params_; }

 private:
  mic_params params_;
};

// Applies the AGC model to a captured buffer (exposed for tests).
audio::buffer apply_agc(const audio::buffer& captured, const agc_config& agc);

}  // namespace ivc::mic
