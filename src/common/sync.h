// Annotated synchronization primitives.
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// capability attributes, so Clang's analysis cannot model them. These
// thin wrappers delegate to the std primitives and add the attributes —
// they are the ONLY place in the codebase allowed to name std::mutex
// directly (tools/detlint's raw-mutex rule enforces it). Cost: zero.
// Every member is a forwarding inline; ts_mutex is exactly a std::mutex
// at runtime.
//
//   ts_mutex m;                       // a capability
//   int x IVC_GUARDED_BY(m);          // field guarded by it
//   { ts_lock lock{m}; x = 1; }       // scoped acquire, like lock_guard
//   ts_unique_lock lock{m};           // unlockable/relockable guard;
//   cv.wait(lock.native());           // lock.native() feeds a std
//                                     // condition_variable
//
// claim_flag models the serving layer's EXCLUSIVE-CLAIM discipline
// (detection_session::busy_): an atomic try-claim that is a capability,
// so "touched only by the worker holding busy_" becomes
// IVC_GUARDED_BY(busy_) and the compiler checks it like any mutex.
#pragma once

#include <atomic>
#include <mutex>

#include "common/thread_annotations.h"

namespace ivc {

// std::mutex with capability attributes. Satisfies Lockable, but prefer
// ts_lock/ts_unique_lock so the analysis sees the acquire/release.
class IVC_CAPABILITY("mutex") ts_mutex {
 public:
  ts_mutex() = default;
  ts_mutex(const ts_mutex&) = delete;
  ts_mutex& operator=(const ts_mutex&) = delete;

  void lock() IVC_ACQUIRE() { m_.lock(); }
  void unlock() IVC_RELEASE() { m_.unlock(); }
  bool try_lock() IVC_TRY_ACQUIRE(true) { return m_.try_lock(); }

  // The wrapped mutex, for std::condition_variable (via
  // ts_unique_lock::native(), which keeps the capability association).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

// Scoped lock, the std::lock_guard shape: acquires in the constructor,
// releases in the destructor, no unlock in between.
class IVC_SCOPED_CAPABILITY ts_lock {
 public:
  explicit ts_lock(ts_mutex& m) IVC_ACQUIRE(m) : m_{m} { m_.lock(); }
  ~ts_lock() IVC_RELEASE() { m_.unlock(); }
  ts_lock(const ts_lock&) = delete;
  ts_lock& operator=(const ts_lock&) = delete;

 private:
  ts_mutex& m_;
};

// Scoped lock with mid-scope unlock()/lock() and condition-variable
// support, the std::unique_lock shape. native() hands the underlying
// std::unique_lock to std::condition_variable::wait — from the
// analysis's view the capability stays held across the wait, which is
// the usual (and sound) modeling: the predicate is re-checked with the
// lock held.
class IVC_SCOPED_CAPABILITY ts_unique_lock {
 public:
  explicit ts_unique_lock(ts_mutex& m) IVC_ACQUIRE(m) : lock_{m.native()} {}
  // std::unique_lock releases in its destructor iff still owned; the
  // analysis's scoped-capability tracking mirrors exactly that.
  ~ts_unique_lock() IVC_RELEASE() {}
  ts_unique_lock(const ts_unique_lock&) = delete;
  ts_unique_lock& operator=(const ts_unique_lock&) = delete;

  void lock() IVC_ACQUIRE() { lock_.lock(); }
  void unlock() IVC_RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// Exclusive-claim flag: an atomic bool as a capability. try_claim() is
// the only way in (no blocking lock — contention means "someone else
// owns the session", and callers back off instead of waiting), and the
// claim is released via claim_guard so every exit path — including an
// exception unwinding out of the critical region — gives it back.
class IVC_CAPABILITY("claim") claim_flag {
 public:
  claim_flag() = default;
  claim_flag(const claim_flag&) = delete;
  claim_flag& operator=(const claim_flag&) = delete;

  bool try_claim() IVC_TRY_ACQUIRE(true) {
    bool expected = false;
    return flag_.compare_exchange_strong(expected, true);
  }
  void release() IVC_RELEASE() { flag_.store(false); }

 private:
  std::atomic<bool> flag_{false};
};

// Adopts an already-successful try_claim() and releases it on every
// exit path. The constructor REQUIRES the claim instead of acquiring
// it — the try_claim()'s failure branch is the caller's to handle.
class IVC_SCOPED_CAPABILITY claim_guard {
 public:
  explicit claim_guard(claim_flag& f) IVC_REQUIRES(f) : f_{f} {}
  ~claim_guard() IVC_RELEASE() { f_.release(); }
  claim_guard(const claim_guard&) = delete;
  claim_guard& operator=(const claim_guard&) = delete;

 private:
  claim_flag& f_;
};

}  // namespace ivc
