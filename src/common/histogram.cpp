#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/json_field.h"

namespace ivc {

log_histogram::log_histogram(const histogram_config& config)
    : config_{config} {
  expects(config_.lo_edge > 0.0 && config_.hi_edge > config_.lo_edge,
          "log_histogram: need 0 < lo_edge < hi_edge");
  expects(config_.bins_per_decade >= 1,
          "log_histogram: need >= 1 bin per decade");
  const double decades = std::log10(config_.hi_edge / config_.lo_edge);
  const auto bins = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(config_.bins_per_decade)));
  bins_.assign(std::max<std::size_t>(bins, 1), 0);
}

std::size_t log_histogram::bin_index(double value) const {
  if (value <= config_.lo_edge) {
    return 0;
  }
  if (value >= config_.hi_edge) {
    return bins_.size() - 1;
  }
  const double pos = std::log10(value / config_.lo_edge) *
                     static_cast<double>(config_.bins_per_decade);
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, bins_.size() - 1);
}

void log_histogram::record(double value) {
  value = std::max(value, 0.0);
  ++bins_[bin_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

double log_histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double log_histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double log_histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double log_histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "log_histogram::quantile: q must be in [0,1]");
  if (count_ == 0) {
    return 0.0;
  }
  // The extreme quantiles are tracked exactly.
  if (q == 0.0) {
    return min_;
  }
  if (q == 1.0) {
    return max_;
  }
  // Rank of the q-quantile among count_ sorted samples (nearest-rank).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    cum += bins_[b];
    if (cum >= target) {
      const double lo =
          config_.lo_edge *
          std::pow(10.0, static_cast<double>(b) /
                             static_cast<double>(config_.bins_per_decade));
      const double hi =
          lo * std::pow(10.0,
                        1.0 / static_cast<double>(config_.bins_per_decade));
      return std::clamp(std::sqrt(lo * hi), min_, max_);
    }
  }
  return max_;
}

void log_histogram::merge(const log_histogram& other) {
  expects(config_ == other.config_,
          "log_histogram::merge: binning configs differ");
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    bins_[b] += other.bins_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

json::value log_histogram::snapshot() const {
  json::object o;
  o.emplace_back("lo", json::value{config_.lo_edge});
  o.emplace_back("hi", json::value{config_.hi_edge});
  o.emplace_back("bpd",
                 json::value{static_cast<double>(config_.bins_per_decade)});
  o.emplace_back("n", json::value{static_cast<double>(count_)});
  o.emplace_back("sum", json::value{sum_});
  o.emplace_back("min", json::value{min_});
  o.emplace_back("max", json::value{max_});
  json::array bins;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    if (bins_[b] != 0) {
      bins.emplace_back(static_cast<double>(b));
      bins.emplace_back(static_cast<double>(bins_[b]));
    }
  }
  o.emplace_back("bins", json::value{std::move(bins)});
  return json::value{std::move(o)};
}

void log_histogram::restore(const json::value& snap) {
  expects(json::num(snap, "lo") == config_.lo_edge &&
              json::num(snap, "hi") == config_.hi_edge &&
              json::u64(snap, "bpd") == config_.bins_per_decade,
          "log_histogram::restore: binning configs differ");
  std::fill(bins_.begin(), bins_.end(), 0);
  count_ = json::u64(snap, "n");
  sum_ = json::num(snap, "sum");
  min_ = json::num(snap, "min");
  max_ = json::num(snap, "max");
  const json::array& bins = json::arr(snap, "bins");
  expects(bins.size() % 2 == 0,
          "log_histogram::restore: bins must be (index, count) pairs");
  for (std::size_t i = 0; i + 1 < bins.size(); i += 2) {
    const auto b = static_cast<std::size_t>(bins[i].number());
    expects(b < bins_.size(), "log_histogram::restore: bin index out of range");
    bins_[b] = static_cast<std::uint64_t>(bins[i + 1].number());
  }
}

}  // namespace ivc
