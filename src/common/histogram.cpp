#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ivc {

log_histogram::log_histogram(const histogram_config& config)
    : config_{config} {
  expects(config_.lo_edge > 0.0 && config_.hi_edge > config_.lo_edge,
          "log_histogram: need 0 < lo_edge < hi_edge");
  expects(config_.bins_per_decade >= 1,
          "log_histogram: need >= 1 bin per decade");
  const double decades = std::log10(config_.hi_edge / config_.lo_edge);
  const auto bins = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(config_.bins_per_decade)));
  bins_.assign(std::max<std::size_t>(bins, 1), 0);
}

std::size_t log_histogram::bin_index(double value) const {
  if (value <= config_.lo_edge) {
    return 0;
  }
  if (value >= config_.hi_edge) {
    return bins_.size() - 1;
  }
  const double pos = std::log10(value / config_.lo_edge) *
                     static_cast<double>(config_.bins_per_decade);
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, bins_.size() - 1);
}

void log_histogram::record(double value) {
  value = std::max(value, 0.0);
  ++bins_[bin_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

double log_histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double log_histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double log_histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double log_histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "log_histogram::quantile: q must be in [0,1]");
  if (count_ == 0) {
    return 0.0;
  }
  // The extreme quantiles are tracked exactly.
  if (q == 0.0) {
    return min_;
  }
  if (q == 1.0) {
    return max_;
  }
  // Rank of the q-quantile among count_ sorted samples (nearest-rank).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    cum += bins_[b];
    if (cum >= target) {
      const double lo =
          config_.lo_edge *
          std::pow(10.0, static_cast<double>(b) /
                             static_cast<double>(config_.bins_per_decade));
      const double hi =
          lo * std::pow(10.0,
                        1.0 / static_cast<double>(config_.bins_per_decade));
      return std::clamp(std::sqrt(lo * hi), min_, max_);
    }
  }
  return max_;
}

void log_histogram::merge(const log_histogram& other) {
  expects(config_ == other.config_,
          "log_histogram::merge: binning configs differ");
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    bins_[b] += other.bins_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace ivc
