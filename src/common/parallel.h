// Shared-memory parallelism primitives.
//
// A small persistent thread pool with a blocking `parallel_for`. The
// experiment engine, the sweep wrappers, and the corpus builder all
// schedule work as index ranges, where task `i` writes only slot `i` of
// a pre-sized output — so results are bit-identical at any thread count
// and no caller needs locks. The pool's own scheduler state lives in
// the pimpl (parallel.cpp), annotated for Clang Thread Safety Analysis
// via common/sync.h.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace ivc {

// Worker count used when a caller passes 0 (one per hardware thread,
// never less than 1).
std::size_t default_thread_count();

class thread_pool {
 public:
  // `num_threads` counts the calling thread: a pool of 1 runs everything
  // on the caller and spawns nothing. 0 means default_thread_count().
  explicit thread_pool(std::size_t num_threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  // Threads participating in parallel_for, including the caller.
  std::size_t size() const;

  // Runs fn(0) .. fn(count - 1), dynamically distributing indices over
  // the pool; the calling thread participates. Blocks until every index
  // has run, then rethrows the first exception any index threw (the
  // remaining indices still run). Safe to call repeatedly; concurrent
  // calls from different threads are serialized.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

// One-shot convenience for callers without a pool to reuse.
void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ivc
