// Clang Thread Safety Analysis capability macros.
//
// The serving layer's bit-identity contract rests on a locking
// discipline that used to live only in comments ("guards slots_ +
// eviction state"). These macros turn that discipline into something
// the compiler PROVES: every mutex is a declared capability, every
// guarded field names its mutex, and every lock-held helper carries an
// IVC_REQUIRES so calling it without the lock is a compile error under
// `clang++ -Wthread-safety` (the CI static-analysis job builds with
// -Werror=thread-safety). Off-Clang the macros expand to nothing, so
// gcc builds are unaffected.
//
// Use the annotated primitives in common/sync.h (ivc::ts_mutex,
// ivc::ts_lock, ivc::ts_unique_lock) rather than raw std::mutex:
// libstdc++'s std::mutex carries no capability attribute, so the
// analysis cannot see through it. tools/detlint enforces exactly that —
// a raw std::mutex/std::lock_guard outside common/sync.h is a lint
// finding.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define IVC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IVC_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// Declares a type to be a capability (a lockable thing). `x` is the
// capability kind shown in diagnostics, e.g. "mutex" or "claim".
#define IVC_CAPABILITY(x) IVC_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose lifetime acquires/releases a capability.
#define IVC_SCOPED_CAPABILITY IVC_THREAD_ANNOTATION(scoped_lockable)

// Field may only be read/written while holding `x`.
#define IVC_GUARDED_BY(x) IVC_THREAD_ANNOTATION(guarded_by(x))

// Pointer field whose POINTEE may only be accessed while holding `x`.
#define IVC_PT_GUARDED_BY(x) IVC_THREAD_ANNOTATION(pt_guarded_by(x))

// Function may only be called while holding the listed capabilities.
#define IVC_REQUIRES(...) \
  IVC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IVC_REQUIRES_SHARED(...) \
  IVC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires/releases the listed capabilities (no argument =
// `this`, for capability member functions and scoped guards).
#define IVC_ACQUIRE(...) \
  IVC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IVC_ACQUIRE_SHARED(...) \
  IVC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define IVC_RELEASE(...) \
  IVC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IVC_RELEASE_SHARED(...) \
  IVC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Function tries to acquire the capability; `b` is the success value.
#define IVC_TRY_ACQUIRE(...) \
  IVC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called while holding the listed capabilities
// (it acquires them itself — calling with them held would deadlock).
#define IVC_EXCLUDES(...) IVC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock-ordering documentation (checked under -Wthread-safety-beta).
#define IVC_ACQUIRED_BEFORE(...) \
  IVC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define IVC_ACQUIRED_AFTER(...) \
  IVC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function returns a reference to the named capability.
#define IVC_RETURN_CAPABILITY(x) IVC_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: the function's locking is intentionally invisible to
// the analysis. Every use must carry a comment saying why.
#define IVC_NO_THREAD_SAFETY_ANALYSIS \
  IVC_THREAD_ANNOTATION(no_thread_safety_analysis)
