// Physical and signal-chain constants shared across modules.
#pragma once

#include <numbers>

namespace ivc {

inline constexpr double pi = std::numbers::pi;
inline constexpr double two_pi = 2.0 * std::numbers::pi;

// Nominal speed of sound in air at 20 °C, m/s. The acoustics module
// recomputes this from temperature; this constant is the default.
inline constexpr double speed_of_sound_20c = 343.21;

// Audible band edges used throughout the attack/defense analysis, Hz.
inline constexpr double audible_low_hz = 20.0;
inline constexpr double audible_high_hz = 20'000.0;

// Default sample rates, Hz. Ultrasound synthesis runs at 192 kHz (carriers
// up to 96 kHz); devices capture at 16 kHz (typical ASR front-end rate).
inline constexpr double ultrasound_rate_hz = 192'000.0;
inline constexpr double device_rate_hz = 16'000.0;

}  // namespace ivc
