// Log-spaced latency histogram.
//
// The serving layer accounts per-block latency per session and globally;
// a fixed-size log-spaced histogram gives p50/p95/p99 with O(1) record
// cost and exact-count merges, so per-session histograms can be folded
// into a fleet-wide view without storing every sample. The default
// config spans 100 ns .. 1000 s at 16 bins per decade (anything outside
// clamps into the edge bins); the recorded min/max keep the extreme
// quantiles exact at the tails. Merging is only defined between
// histograms of the SAME binning config — bin counts are meaningless
// across different edges, so merge() enforces the match instead of
// silently corrupting bins.
//
// Thread safety: log_histogram is thread-compatible, not thread-safe —
// every concurrent user wraps it in its own capability (the session
// mutex for per-session histograms, obs::detail::histogram_cell's
// mutex in the registry), and those wrappers carry the thread-safety
// annotations. An internal lock here would double-lock every record().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/json_min.h"

namespace ivc {

// Binning of a log_histogram. Two histograms are mergeable iff their
// configs compare equal.
struct histogram_config {
  double lo_edge = 1e-7;  // 100 ns
  double hi_edge = 1e3;   // 1000 s
  std::size_t bins_per_decade = 16;

  friend bool operator==(const histogram_config&,
                         const histogram_config&) = default;
};

class log_histogram {
 public:
  log_histogram() : log_histogram(histogram_config{}) {}
  explicit log_histogram(const histogram_config& config);

  const histogram_config& config() const { return config_; }
  std::size_t num_bins() const { return bins_.size(); }

  // Records one non-negative value (seconds, or any unit — the histogram
  // only assumes a positive dynamic range). Negative values clamp to 0.
  void record(double value);

  std::uint64_t count() const { return count_; }
  double min() const;   // 0 when empty
  double max() const;   // 0 when empty
  double mean() const;  // 0 when empty

  // Quantile in [0, 1] (0.5 = median). Returns the geometric midpoint of
  // the bin holding the rank, clamped to the observed [min, max]; exact
  // to within one bin width (~15% with 16 bins per decade). 0 when empty.
  double quantile(double q) const;

  // Folds `other` into this histogram (counts add; min/max/mean merge).
  // Precondition: other.config() == config() — bin-by-bin addition
  // across different edges would silently misfile every sample (and
  // read out of bounds when the bin counts differ).
  void merge(const log_histogram& other);

  // Clears the counts; the binning config is preserved.
  void reset() { *this = log_histogram{config_}; }

  // Serializable state: binning config plus sparse (index, count) bin
  // pairs and the exact count/sum/min/max — a mostly-empty histogram
  // (the common case per session) snapshots to a handful of entries.
  // restore(snapshot()) reproduces every quantile bit-exactly.
  json::value snapshot() const;

  // Restores counts from a snapshot. Like merge(), only defined between
  // identical binning configs: restoring across a different binning
  // would misfile every bin, so a mismatch throws instead.
  void restore(const json::value& snap);

 private:
  std::size_t bin_index(double value) const;

  histogram_config config_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ivc
