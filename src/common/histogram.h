// Log-spaced latency histogram.
//
// The serving layer accounts per-block latency per session and globally;
// a fixed-size log-spaced histogram gives p50/p95/p99 with O(1) record
// cost and exact-count merges, so per-session histograms can be folded
// into a fleet-wide view without storing every sample. Values span
// 100 ns .. 1000 s (anything outside clamps into the edge bins); the
// recorded min/max keep the extreme quantiles exact at the tails.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ivc {

class log_histogram {
 public:
  // Records one non-negative value (seconds, or any unit — the histogram
  // only assumes a positive dynamic range). Negative values clamp to 0.
  void record(double value);

  std::uint64_t count() const { return count_; }
  double min() const;   // 0 when empty
  double max() const;   // 0 when empty
  double mean() const;  // 0 when empty

  // Quantile in [0, 1] (0.5 = median). Returns the geometric midpoint of
  // the bin holding the rank, clamped to the observed [min, max]; exact
  // to within one bin width (~15% with 16 bins per decade). 0 when empty.
  double quantile(double q) const;

  // Folds `other` into this histogram (counts add; min/max/mean merge).
  void merge(const log_histogram& other);

  void reset() { *this = log_histogram{}; }

 private:
  static constexpr double lo_edge_ = 1e-7;   // 100 ns
  static constexpr double hi_edge_ = 1e3;    // 1000 s
  static constexpr std::size_t bins_per_decade_ = 16;
  static constexpr std::size_t num_bins_ = 10 * bins_per_decade_;

  static std::size_t bin_index(double value);

  std::array<std::uint64_t, num_bins_> bins_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ivc
