// Required-field accessors over json_min values — the restore() side of
// the snapshot layer.
//
// Every snapshot consumer wants the same thing: "this object MUST carry
// this field with this type, or the snapshot is corrupt". The json_min
// accessors already throw on type mismatches; these helpers add the
// missing-field case and the two conversions every snapshot uses
// (counters as exact-in-a-double integers, sample vectors as number
// arrays), so restore() bodies read declaratively.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json_min.h"

namespace ivc::json {

inline const value& field(const value& v, const char* key) {
  const value* f = v.find(key);
  if (f == nullptr) {
    throw std::invalid_argument{std::string{"json: missing field '"} + key +
                                "'"};
  }
  return *f;
}

inline double num(const value& v, const char* key) {
  return field(v, key).number();
}

inline bool flag(const value& v, const char* key) {
  return field(v, key).boolean();
}

inline const std::string& str(const value& v, const char* key) {
  return field(v, key).string();
}

inline const array& arr(const value& v, const char* key) {
  return field(v, key).items();
}

// Counters ride in doubles; exact up to 2^53 — far beyond any counter
// this codebase can reach.
inline std::uint64_t u64(const value& v, const char* key) {
  return static_cast<std::uint64_t>(num(v, key));
}

inline value from_samples(const std::vector<double>& samples) {
  array a;
  a.reserve(samples.size());
  for (const double s : samples) {
    a.emplace_back(s);
  }
  return value{std::move(a)};
}

inline std::vector<double> to_samples(const value& v) {
  const array& items = v.items();
  std::vector<double> out;
  out.reserve(items.size());
  for (const value& s : items) {
    out.push_back(s.number());
  }
  return out;
}

}  // namespace ivc::json
