#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace ivc {

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct thread_pool::impl {
  // Joined only by the owning thread (ctor spawns, dtor joins); never
  // touched by the workers themselves.
  std::vector<std::thread> workers;

  ts_mutex mutex;
  std::condition_variable work_cv;  // workers: a new job is posted
  std::condition_variable done_cv;  // caller: all workers left the job
  const std::function<void(std::size_t)>* fn IVC_GUARDED_BY(mutex) = nullptr;
  std::size_t count IVC_GUARDED_BY(mutex) = 0;
  std::atomic<std::size_t> next{0};
  std::size_t busy_workers IVC_GUARDED_BY(mutex) = 0;
  std::uint64_t generation IVC_GUARDED_BY(mutex) = 0;
  bool stopping IVC_GUARDED_BY(mutex) = false;
  // Held by the caller from job setup until it has collected `error`,
  // so a second concurrent parallel_for cannot clear or steal the
  // first job's exception.
  bool job_active IVC_GUARDED_BY(mutex) = false;
  std::exception_ptr error IVC_GUARDED_BY(mutex);

  // Claims indices until the job is exhausted. Runs outside the mutex.
  void drain(const std::function<void(std::size_t)>& job, std::size_t n)
      IVC_EXCLUDES(mutex) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        job(i);
      } catch (...) {
        const ts_lock guard{mutex};
        if (!error) {
          error = std::current_exception();
        }
      }
    }
  }

  void worker_loop() IVC_EXCLUDES(mutex) {
    std::uint64_t seen = 0;
    ts_unique_lock lock{mutex};
    for (;;) {
      // Explicit wait loop: a predicate lambda reading stopping_/
      // generation would look lock-free to the thread-safety analysis.
      while (!stopping && generation == seen) {
        work_cv.wait(lock.native());
      }
      if (stopping) {
        return;
      }
      seen = generation;
      const std::function<void(std::size_t)>* job = fn;
      const std::size_t n = count;
      lock.unlock();
      drain(*job, n);
      lock.lock();
      if (--busy_workers == 0) {
        done_cv.notify_all();
      }
    }
  }
};

thread_pool::thread_pool(std::size_t num_threads) : impl_{new impl} {
  if (num_threads == 0) {
    num_threads = default_thread_count();
  }
  impl_->workers.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    const ts_lock guard{impl_->mutex};
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) {
    worker.join();
  }
}

std::size_t thread_pool::size() const { return impl_->workers.size() + 1; }

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  ts_unique_lock lock{impl_->mutex};
  // Serialize concurrent callers: the previous job stays "active" until
  // its caller has collected the error slot.
  while (impl_->job_active) {
    impl_->done_cv.wait(lock.native());
  }
  impl_->job_active = true;
  impl_->fn = &fn;
  impl_->count = count;
  impl_->next.store(0, std::memory_order_relaxed);
  impl_->error = nullptr;
  impl_->busy_workers = impl_->workers.size();
  ++impl_->generation;
  lock.unlock();
  impl_->work_cv.notify_all();

  impl_->drain(fn, count);

  lock.lock();
  while (impl_->busy_workers != 0) {
    impl_->done_cv.wait(lock.native());
  }
  const std::exception_ptr error = impl_->error;
  impl_->error = nullptr;
  impl_->job_active = false;
  impl_->done_cv.notify_all();  // admit the next waiting caller
  lock.unlock();
  if (error) {
    std::rethrow_exception(error);
  }
}

void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn) {
  thread_pool pool{num_threads};
  pool.parallel_for(count, fn);
}

}  // namespace ivc
