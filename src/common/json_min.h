// Minimal JSON reader/writer.
//
// Just enough of RFC 8259 to parse back what this codebase writes —
// result_table::to_json, the bench json_report, and the sim/runlog
// JSONL records — without an external dependency: null/bool/number/
// string/array/object, string escapes including \uXXXX, full-precision
// numbers via strtod. Object members keep file order (our writers are
// deterministic, so round-trip comparisons stay simple).
//
// write() is the inverse: numbers serialize at max_digits10 precision
// ("%.17g"), so every finite double — denormals, negative zero, the
// extremes of the exponent range — parses back bit-identical. That
// exactness is load-bearing: the serving layer's session snapshots
// carry detector stream positions and histogram sums through this
// round trip, and evict/rehydrate promises bit-identical verdict
// streams afterwards.
//
// to_binary()/from_binary() are a compact tag-length-value encoding of
// the same value tree for the in-memory evicted-session store: doubles
// are memcpy'd (trivially bit-exact), and all-number arrays pack as
// raw 8-byte doubles with a run-length-coded variant for the
// silence-dominated audio residue a snapshot tends to hold. The
// encoding is a same-process format — it makes no cross-endianness
// promise the way the JSON text form does.
#pragma once

#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ivc::json {

class value;
using array = std::vector<value>;
using object = std::vector<std::pair<std::string, value>>;

class value {
 public:
  value() : data_{nullptr} {}
  explicit value(std::nullptr_t) : data_{nullptr} {}
  explicit value(bool b) : data_{b} {}
  explicit value(double n) : data_{n} {}
  explicit value(std::string s) : data_{std::move(s)} {}
  explicit value(array a) : data_{std::move(a)} {}
  explicit value(object o) : data_{std::move(o)} {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<array>(data_); }
  bool is_object() const { return std::holds_alternative<object>(data_); }

  // Typed accessors; throw std::invalid_argument on type mismatch.
  bool boolean() const;
  double number() const;
  const std::string& string() const;
  const array& items() const;
  const object& members() const;

  // Object member lookup (first match); nullptr when absent or when
  // this value is not an object.
  const value* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, array, object> data_;
};

// Parses one JSON document (surrounding whitespace allowed); throws
// std::invalid_argument with a position on malformed input.
value parse(const std::string& text);

// Serializes a value as one compact JSON document (no added
// whitespace). Doubles print at max_digits10 ("%.17g"): parse(write(v))
// reproduces every finite double bit-exactly, including denormals and
// negative zero. Integral values inside the 2^53 window print without
// an exponent, so counters stay greppable. Non-finite numbers have no
// JSON form and throw std::invalid_argument.
std::string write(const value& v);

// Compact binary form of the same tree (see header comment). Bit-exact
// for every double including NaN/Inf payloads; same-process only.
std::string to_binary(const value& v);

// Decodes to_binary() output; throws std::invalid_argument on a
// malformed or truncated buffer.
value from_binary(const std::string& bytes);

}  // namespace ivc::json
