// Contract helpers shared by every ivc module.
//
// Style follows the C++ Core Guidelines (I.5/I.6, E.12): precondition
// violations throw std::invalid_argument, runtime failures throw
// std::runtime_error, and both carry a human-readable message naming the
// violated condition.
#pragma once

#include <stdexcept>
#include <string>

namespace ivc {

// Throws std::invalid_argument when a caller-supplied precondition fails.
inline void expects(bool condition, const std::string& what) {
  if (!condition) {
    throw std::invalid_argument{what};
  }
}

// Throws std::runtime_error when an internal postcondition/invariant fails.
inline void ensures(bool condition, const std::string& what) {
  if (!condition) {
    throw std::runtime_error{what};
  }
}

}  // namespace ivc
