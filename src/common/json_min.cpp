#include "common/json_min.h"

#include <cstdlib>
#include <stdexcept>

namespace ivc::json {
namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument{"json: " + what + " at offset " +
                              std::to_string(pos)};
}

class parser {
 public:
  explicit parser(const std::string& text) : text_{text} {}

  value parse_document() {
    skip_ws();
    value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail(pos_, "trailing characters");
    }
    return v;
  }

 private:
  // Nesting far beyond anything our writers emit; bounds recursion on
  // hostile input.
  static constexpr std::size_t max_depth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string{"expected '"} + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  value parse_value(std::size_t depth) {
    if (depth > max_depth) {
      fail(pos_, "nesting too deep");
    }
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return value{parse_string()};
      case 't':
        if (consume_literal("true")) {
          return value{true};
        }
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) {
          return value{false};
        }
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) {
          return value{nullptr};
        }
        fail(pos_, "bad literal");
      default:
        return value{parse_number()};
    }
  }

  value parse_object(std::size_t depth) {
    expect('{');
    object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value{std::move(members)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value{std::move(members)};
    }
  }

  value parse_array(std::size_t depth) {
    expect('[');
    array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value{std::move(items)};
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value{std::move(items)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail(pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail(pos_, "unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  // \uXXXX, decoded to UTF-8 (no surrogate-pair support: our writers
  // only emit \u00XX control-character escapes).
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) {
      fail(pos_, "truncated \\u escape");
    }
    unsigned code = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const char h = text_[pos_ + i];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail(pos_ + i, "bad \\u digit");
      }
    }
    pos_ += 4;
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
    return out;
  }

  double parse_number() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      fail(pos_, "expected a value");
    }
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* wanted) {
  throw std::invalid_argument{std::string{"json: value is not "} + wanted};
}

}  // namespace

bool value::boolean() const {
  if (!is_bool()) {
    type_error("a bool");
  }
  return std::get<bool>(data_);
}

double value::number() const {
  if (!is_number()) {
    type_error("a number");
  }
  return std::get<double>(data_);
}

const std::string& value::string() const {
  if (!is_string()) {
    type_error("a string");
  }
  return std::get<std::string>(data_);
}

const array& value::items() const {
  if (!is_array()) {
    type_error("an array");
  }
  return std::get<array>(data_);
}

const object& value::members() const {
  if (!is_object()) {
    type_error("an object");
  }
  return std::get<object>(data_);
}

const value* value::find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : std::get<object>(data_)) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

value parse(const std::string& text) {
  return parser{text}.parse_document();
}

}  // namespace ivc::json
