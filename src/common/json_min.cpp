#include "common/json_min.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ivc::json {
namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument{"json: " + what + " at offset " +
                              std::to_string(pos)};
}

class parser {
 public:
  explicit parser(const std::string& text) : text_{text} {}

  value parse_document() {
    skip_ws();
    value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail(pos_, "trailing characters");
    }
    return v;
  }

 private:
  // Nesting far beyond anything our writers emit; bounds recursion on
  // hostile input.
  static constexpr std::size_t max_depth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string{"expected '"} + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  value parse_value(std::size_t depth) {
    if (depth > max_depth) {
      fail(pos_, "nesting too deep");
    }
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return value{parse_string()};
      case 't':
        if (consume_literal("true")) {
          return value{true};
        }
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) {
          return value{false};
        }
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) {
          return value{nullptr};
        }
        fail(pos_, "bad literal");
      default:
        return value{parse_number()};
    }
  }

  value parse_object(std::size_t depth) {
    expect('{');
    object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value{std::move(members)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value{std::move(members)};
    }
  }

  value parse_array(std::size_t depth) {
    expect('[');
    array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value{std::move(items)};
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value{std::move(items)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail(pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail(pos_, "unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  // \uXXXX, decoded to UTF-8 (no surrogate-pair support: our writers
  // only emit \u00XX control-character escapes).
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) {
      fail(pos_, "truncated \\u escape");
    }
    unsigned code = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const char h = text_[pos_ + i];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail(pos_ + i, "bad \\u digit");
      }
    }
    pos_ += 4;
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
    return out;
  }

  double parse_number() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      fail(pos_, "expected a value");
    }
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* wanted) {
  throw std::invalid_argument{std::string{"json: value is not "} + wanted};
}

}  // namespace

bool value::boolean() const {
  if (!is_bool()) {
    type_error("a bool");
  }
  return std::get<bool>(data_);
}

double value::number() const {
  if (!is_number()) {
    type_error("a number");
  }
  return std::get<double>(data_);
}

const std::string& value::string() const {
  if (!is_string()) {
    type_error("a string");
  }
  return std::get<std::string>(data_);
}

const array& value::items() const {
  if (!is_array()) {
    type_error("an array");
  }
  return std::get<array>(data_);
}

const object& value::members() const {
  if (!is_object()) {
    type_error("an object");
  }
  return std::get<object>(data_);
}

const value* value::find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : std::get<object>(data_)) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

value parse(const std::string& text) {
  return parser{text}.parse_document();
}

// ---------------------------------------------------------------------------
// Text writer.

namespace {

void write_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument{
        "json: non-finite numbers have no JSON representation"};
  }
  char buf[32];
  // Counters and ids stay integer-shaped (no exponent) inside the exact
  // window of a double; everything else gets max_digits10 so strtod
  // reproduces the bits.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void write_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_value(const value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.boolean() ? "true" : "false";
  } else if (v.is_number()) {
    write_number(v.number(), out);
  } else if (v.is_string()) {
    write_string(v.string(), out);
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const value& item : v.items()) {
      if (!first) {
        out += ',';
      }
      first = false;
      write_value(item, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, member] : v.members()) {
      if (!first) {
        out += ',';
      }
      first = false;
      write_string(key, out);
      out += ':';
      write_value(member, out);
    }
    out += '}';
  }
}

}  // namespace

std::string write(const value& v) {
  std::string out;
  write_value(v, out);
  return out;
}

// ---------------------------------------------------------------------------
// Binary codec.

namespace {

void put_u32(std::uint32_t n, std::string& out) {
  char buf[4];
  std::memcpy(buf, &n, 4);
  out.append(buf, 4);
}

void put_f64(double v, std::string& out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void encode_value(const value& v, std::string& out) {
  if (v.is_null()) {
    out += 'z';
  } else if (v.is_bool()) {
    out += v.boolean() ? 't' : 'f';
  } else if (v.is_number()) {
    out += 'd';
    put_f64(v.number(), out);
  } else if (v.is_string()) {
    out += 's';
    put_u32(static_cast<std::uint32_t>(v.string().size()), out);
    out += v.string();
  } else if (v.is_array()) {
    const array& items = v.items();
    bool all_numbers = true;
    for (const value& item : items) {
      if (!item.is_number()) {
        all_numbers = false;
        break;
      }
    }
    if (all_numbers && !items.empty()) {
      // Count value runs: the audio residue a session snapshot holds is
      // mostly digital silence, which run-length-codes to almost
      // nothing. Identical-bit comparison, so -0.0 and 0.0 stay
      // distinct and NaN payloads survive.
      std::size_t runs = 1;
      std::uint64_t prev;
      double first = items[0].number();
      std::memcpy(&prev, &first, 8);
      for (std::size_t i = 1; i < items.size(); ++i) {
        std::uint64_t bits;
        const double d = items[i].number();
        std::memcpy(&bits, &d, 8);
        if (bits != prev) {
          ++runs;
          prev = bits;
        }
      }
      if (runs * 12 < items.size() * 8) {
        out += 'R';
        put_u32(static_cast<std::uint32_t>(runs), out);
        std::size_t i = 0;
        while (i < items.size()) {
          std::uint64_t bits;
          const double d = items[i].number();
          std::memcpy(&bits, &d, 8);
          std::size_t j = i + 1;
          while (j < items.size()) {
            std::uint64_t next;
            const double dn = items[j].number();
            std::memcpy(&next, &dn, 8);
            if (next != bits) {
              break;
            }
            ++j;
          }
          put_u32(static_cast<std::uint32_t>(j - i), out);
          put_f64(d, out);
          i = j;
        }
      } else {
        out += 'D';
        put_u32(static_cast<std::uint32_t>(items.size()), out);
        for (const value& item : items) {
          put_f64(item.number(), out);
        }
      }
    } else {
      out += 'a';
      put_u32(static_cast<std::uint32_t>(items.size()), out);
      for (const value& item : items) {
        encode_value(item, out);
      }
    }
  } else {
    const object& members = v.members();
    out += 'o';
    put_u32(static_cast<std::uint32_t>(members.size()), out);
    for (const auto& [key, member] : members) {
      put_u32(static_cast<std::uint32_t>(key.size()), out);
      out += key;
      encode_value(member, out);
    }
  }
}

class binary_reader {
 public:
  explicit binary_reader(const std::string& bytes) : bytes_{bytes} {}

  value decode_document() {
    value v = decode_value();
    if (pos_ != bytes_.size()) {
      throw std::invalid_argument{"json binary: trailing bytes"};
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument{std::string{"json binary: "} + what +
                                " at offset " + std::to_string(pos_)};
  }

  char take_tag() {
    if (pos_ >= bytes_.size()) {
      fail("truncated buffer");
    }
    return bytes_[pos_++];
  }

  std::uint32_t take_u32() {
    if (pos_ + 4 > bytes_.size()) {
      fail("truncated length");
    }
    std::uint32_t n;
    std::memcpy(&n, bytes_.data() + pos_, 4);
    pos_ += 4;
    return n;
  }

  double take_f64() {
    if (pos_ + 8 > bytes_.size()) {
      fail("truncated double");
    }
    double v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  std::string take_string(std::uint32_t len) {
    if (pos_ + len > bytes_.size()) {
      fail("truncated string");
    }
    std::string s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  value decode_value() {
    switch (take_tag()) {
      case 'z':
        return value{nullptr};
      case 't':
        return value{true};
      case 'f':
        return value{false};
      case 'd':
        return value{take_f64()};
      case 's': {
        const std::uint32_t len = take_u32();
        return value{take_string(len)};
      }
      case 'D': {
        const std::uint32_t n = take_u32();
        array items;
        items.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          items.emplace_back(take_f64());
        }
        return value{std::move(items)};
      }
      case 'R': {
        const std::uint32_t runs = take_u32();
        array items;
        for (std::uint32_t r = 0; r < runs; ++r) {
          const std::uint32_t len = take_u32();
          const double v = take_f64();
          for (std::uint32_t i = 0; i < len; ++i) {
            items.emplace_back(v);
          }
        }
        return value{std::move(items)};
      }
      case 'a': {
        const std::uint32_t n = take_u32();
        array items;
        items.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          items.push_back(decode_value());
        }
        return value{std::move(items)};
      }
      case 'o': {
        const std::uint32_t n = take_u32();
        object members;
        members.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint32_t len = take_u32();
          std::string key = take_string(len);
          members.emplace_back(std::move(key), decode_value());
        }
        return value{std::move(members)};
      }
      default:
        --pos_;
        fail("unknown tag");
    }
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_binary(const value& v) {
  std::string out;
  encode_value(v, out);
  return out;
}

value from_binary(const std::string& bytes) {
  return binary_reader{bytes}.decode_document();
}

}  // namespace ivc::json
