// Decibel / sound-pressure unit conversions used across the acoustic chain.
//
// Conventions:
//  * "amplitude dB" (20·log10) is used for signal amplitudes, gains and
//    pressures; "power dB" (10·log10) for powers and energies.
//  * SPL is referenced to 20 µPa RMS: spl_db = 20·log10(p_rms / 20 µPa),
//    so 1 Pa RMS == 93.98 dB SPL.
//  * dBFS is referenced to a full-scale amplitude of 1.0.
#pragma once

#include <cmath>
#include <limits>
#include <numbers>

namespace ivc {

// RMS reference pressure for SPL, in pascal (20 µPa).
inline constexpr double reference_pressure_pa = 20e-6;

// Smallest linear value mapped to a finite dB figure; anything at or below
// maps to -infinity-ish floors chosen by the caller.
inline constexpr double db_epsilon = 1e-300;

// Amplitude ratio -> decibel (20·log10). Non-positive input yields -inf.
inline double amplitude_to_db(double ratio) {
  if (ratio <= db_epsilon) {
    return -std::numeric_limits<double>::infinity();
  }
  return 20.0 * std::log10(ratio);
}

// Decibel -> amplitude ratio (inverse of amplitude_to_db).
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

// Power ratio -> decibel (10·log10). Non-positive input yields -inf.
inline double power_to_db(double ratio) {
  if (ratio <= db_epsilon) {
    return -std::numeric_limits<double>::infinity();
  }
  return 10.0 * std::log10(ratio);
}

// Decibel -> power ratio (inverse of power_to_db).
inline double db_to_power(double db) { return std::pow(10.0, db / 10.0); }

// RMS pressure in pascal -> dB SPL.
inline double pa_to_spl_db(double pa_rms) {
  return amplitude_to_db(pa_rms / reference_pressure_pa);
}

// dB SPL -> RMS pressure in pascal.
inline double spl_db_to_pa(double spl_db) {
  return reference_pressure_pa * db_to_amplitude(spl_db);
}

// Peak amplitude of a sine whose RMS pressure corresponds to `spl_db`.
inline double spl_db_to_sine_peak_pa(double spl_db) {
  return spl_db_to_pa(spl_db) * std::numbers::sqrt2;
}

}  // namespace ivc
