// Deterministic random number generation.
//
// Every stochastic component in ivc takes an explicit `ivc::rng&` so that
// experiments are reproducible from a single seed and trials can be
// de-correlated by splitting seeds. No module touches global RNG state.
#pragma once

#include <cstdint>
#include <random>

#include "common/error.h"

namespace ivc {

// Thin, seedable wrapper around std::mt19937_64 with the handful of
// distributions the library needs.
class rng {
 public:
  explicit rng(std::uint64_t seed = 0x1234'5678'9abc'def0ULL)
      : engine_{seed}, base_seed_{seed} {}

  // Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    expects(lo <= hi, "rng::uniform: lo must be <= hi");
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  // Standard normal scaled to `mean`/`stddev`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    expects(stddev >= 0.0, "rng::normal: stddev must be >= 0");
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    expects(lo <= hi, "rng::uniform_int: lo must be <= hi");
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  // Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    expects(p >= 0.0 && p <= 1.0, "rng::bernoulli: p must be in [0,1]");
    return std::bernoulli_distribution{p}(engine_);
  }

  // Derives an independent child generator; the i-th child of a given seed
  // is stable across runs, which keeps per-trial noise reproducible.
  rng split(std::uint64_t stream) const {
    const std::uint64_t mixed =
        (base_seed_ ^ (stream * 0x9e37'79b9'7f4a'7c15ULL)) + 0xbf58'476d'1ce4'e5b9ULL;
    return rng{mixed};
  }

  std::uint64_t seed() const { return base_seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t base_seed_ = 0;
};

}  // namespace ivc
