#include "serve/fault.h"

#include "common/error.h"

namespace ivc::serve {
namespace {

// splitmix64 finalizer: full-avalanche mixing, stable across platforms.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e37'79b9'7f4a'7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

fault_injector::fault_injector(fault_config config)
    : config_{std::move(config)} {
  const auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  expects(valid_rate(config_.detector_throw_rate) &&
              valid_rate(config_.recognizer_throw_rate) &&
              valid_rate(config_.recognizer_overrun_rate) &&
              valid_rate(config_.corrupt_block_rate) &&
              valid_rate(config_.shard_kill_rate),
          "fault_injector: rates must be in [0, 1]");
}

double fault_injector::rate_of(fault_kind kind) const {
  switch (kind) {
    case fault_kind::detector_throw:
      return config_.detector_throw_rate;
    case fault_kind::recognizer_throw:
      return config_.recognizer_throw_rate;
    case fault_kind::recognizer_overrun:
      return config_.recognizer_overrun_rate;
    case fault_kind::corrupt_block:
      return config_.corrupt_block_rate;
    case fault_kind::shard_kill:
      return config_.shard_kill_rate;
  }
  return 0.0;
}

bool fault_injector::fires(fault_kind kind, std::uint64_t session,
                           std::uint64_t index) const {
  for (const fault_event& e : config_.schedule) {
    if (e.kind == kind && e.session == session && e.index == index) {
      return true;
    }
  }
  const double rate = rate_of(kind);
  if (rate <= 0.0) {
    return false;
  }
  // Chain the coordinates through the mixer instead of XOR-folding them
  // so (session=1, index=2) and (session=2, index=1) draw independently.
  std::uint64_t h =
      mix64(config_.seed ^ (0xfa'0000ULL + static_cast<std::uint64_t>(kind)));
  h = mix64(h ^ session);
  h = mix64(h ^ index);
  return to_unit(h) < rate;
}

}  // namespace ivc::serve
