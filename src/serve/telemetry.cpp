#include "serve/telemetry.h"

namespace ivc::serve {
namespace {

void put(json::object& o, const char* key, double v) {
  o.emplace_back(key, json::value{v});
}

void put_u64(json::object& o, const char* key, std::uint64_t v) {
  o.emplace_back(key, json::value{static_cast<double>(v)});
}

// The shared middle of both probes: fleet totals + eviction layer.
void fill_fleet_fields(json::object& o, const serve_totals& totals,
                       const eviction_stats& evic) {
  put_u64(o, "sessions", totals.num_sessions);
  put_u64(o, "resident", evic.resident);
  put_u64(o, "evictions", evic.evictions);
  put_u64(o, "rehydrations", evic.rehydrations);
  put_u64(o, "frozen_bytes", evic.frozen_bytes);
  const session_stats& st = totals.stats;
  put_u64(o, "blocks_offered", st.blocks_offered);
  put_u64(o, "blocks_processed", st.blocks_processed);
  put_u64(o, "blocks_shed", st.blocks_shed);
  put_u64(o, "blocks_rejected", st.blocks_rejected);
  put(o, "audio_s", st.audio_s_processed);
  put_u64(o, "events", st.events);
  put_u64(o, "attack_events", st.attack_events);
  put_u64(o, "utterances", st.utterances);
  put_u64(o, "commands_executed", st.commands_executed);
  put_u64(o, "commands_blocked", st.commands_blocked);
  put_u64(o, "degraded", totals.sessions_degraded);
  put_u64(o, "recovering", totals.sessions_recovering);
  put_u64(o, "quarantined", totals.sessions_quarantined);
  put_u64(o, "quarantines", st.quarantines);
  put_u64(o, "reopens", st.reopens);
  // Stage-latency quantiles in milliseconds, one pair per stage so a
  // time-series can tell congestion (queue growth) from slow scoring.
  put(o, "queue_p50_ms", st.queue_wait.quantile(0.50) * 1e3);
  put(o, "queue_p95_ms", st.queue_wait.quantile(0.95) * 1e3);
  put(o, "service_p50_ms", st.service.quantile(0.50) * 1e3);
  put(o, "service_p95_ms", st.service.quantile(0.95) * 1e3);
  put(o, "asr_p50_ms", st.asr_service.quantile(0.50) * 1e3);
  put(o, "asr_p95_ms", st.asr_service.quantile(0.95) * 1e3);
}

}  // namespace

json::value telemetry_sample(const session_manager& manager) {
  json::object o;
  fill_fleet_fields(o, manager.aggregate(), manager.eviction());
  return json::value{std::move(o)};
}

json::value telemetry_sample(const shard_manager& front) {
  json::object o;
  fill_fleet_fields(o, front.aggregate(), front.eviction());
  const shard_balance bal = front.balance();
  put_u64(o, "shards", bal.shards.size());
  put_u64(o, "shard_min_sessions", bal.min_sessions);
  put_u64(o, "shard_max_sessions", bal.max_sessions);
  put(o, "shard_mean_sessions", bal.mean_sessions);
  std::uint64_t kills = 0;
  for (const shard_load& s : bal.shards) {
    kills += s.shard_kills;
  }
  put_u64(o, "shard_kills", kills);
  return json::value{std::move(o)};
}

}  // namespace ivc::serve
