// Multi-stream defense serving layer: N concurrent detection sessions
// drained by a shared worker pool.
//
// The manager owns the sessions and offers two drain disciplines over
// the same exclusive-claim contract:
//
//   * Fork-join drain(): every pass fans the common/parallel.h pool out
//     over the sessions that currently have work and barriers on the
//     slowest — the batch-replay shape. Simple, but a fleet that keeps
//     offering audio re-arms the pass forever and every pass pays for
//     its slowest session.
//   * Streaming start(n)/stop(): n long-lived workers block on a
//     condition-variable ready-queue. A session enqueues itself when an
//     offer()/close() gives it work; a worker claims it exclusively,
//     scores its queued blocks back-to-back (the scoring batch — the
//     per-thread caches under feature extraction are hit instead of
//     rebuilt per window), then re-queues it if more work arrived
//     meanwhile. No barriers: latency is per-session, not
//     per-slowest-session, which is what arrival-time-paced workloads
//     need.
//
// Because a session is always drained exclusively and in FIFO order
// under EITHER discipline, per-session verdict streams are bit-identical
// at any worker count and across the two modes; only latency and
// throughput move.
//
// Backpressure is explicit and lives at the session queues: a full ring
// sheds (newest or oldest) or rejects per serve_config::policy, and
// every shed/reject is counted. The aggregate() view merges per-session
// counters and latency histograms into the fleet-wide p50/p95/p99 the
// load bench reports.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "serve/session.h"

namespace ivc::serve {

// Fleet-wide totals: summed session counters plus the merged latency
// histograms (binned per serve_config::latency_bins).
struct serve_totals {
  session_stats stats;            // counters summed over sessions
  std::size_t num_sessions = 0;
  std::size_t sessions_with_attack_events = 0;
  // Fleet health roll-up: sessions currently NOT serving at full
  // capability, by state at snapshot time.
  std::size_t sessions_degraded = 0;     // ASR stage shed
  std::size_t sessions_recovering = 0;   // working off reopen backoff
  std::size_t sessions_quarantined = 0;  // parked after a fault
};

class session_manager {
 public:
  explicit session_manager(defense::classifier_detector detector,
                           serve_config config = {});
  ~session_manager();  // stops streaming workers if still running

  const serve_config& config() const { return config_; }

  // Opens a new session and returns its id (dense, starting at 0).
  // Thread-safe; sessions may be opened mid-stream while streaming
  // workers run (the new session joins the ready-queue on its first
  // offer). Do not call concurrently with fork-join drain().
  std::uint64_t open_session();

  // Opens a session with its OWN config — detector stream windowing,
  // command pipeline (recognizer/segmenter/intent), queue bound and
  // overflow policy may all differ per session. The latency binning
  // must match the fleet config: aggregate() merges per-session
  // histograms, and log_histogram::merge only accepts identical
  // binning, so a divergent config is rejected here instead of
  // corrupting the fleet view later.
  std::uint64_t open_session(const serve_config& config);

  std::size_t num_sessions() const;

  // Producer side: offers one block to session `id`. Thread-safe. While
  // streaming, an accepted offer (or a shed_oldest eviction) enqueues
  // the session on the ready-queue if it is not already queued/claimed.
  offer_status offer(std::uint64_t id, audio::buffer block);

  // Marks a session (or all of them) end-of-stream; the flush happens on
  // the next drain, or — while streaming — as soon as a worker claims
  // the session.
  void close(std::uint64_t id);
  void close_all();

  // Fork-join: runs the worker pool over every session with pending work
  // until all queues are empty (and closed sessions are flushed). Safe
  // to call repeatedly; producers may keep offering concurrently, in
  // which case drain returns once it observes a pass with nothing left
  // to do. Must not be called while streaming workers run.
  void drain();

  // Streaming: spawns `n_workers` long-lived worker threads (0 =
  // default_thread_count()) blocking on the ready-queue, and enqueues
  // every session that already has work. Idempotent: calling start()
  // while streaming is a no-op (the worker count does not change).
  void start(std::size_t n_workers = 0);

  // Streaming: finishes everything on the ready-queue (including work
  // sessions re-queue for themselves while stopping), then joins the
  // workers. Offers that race with stop() may leave queued blocks
  // behind; they are picked up by the next start() or drain().
  // Idempotent: stop() without start() is a no-op.
  void stop();

  // True between start() and stop().
  bool streaming() const;

  // Recovery: reopens a quarantined session (detection_session::reopen)
  // and — while streaming — puts it back on the ready-queue if it has
  // queued blocks waiting. Returns false when the session is not
  // quarantined or a worker still owns it.
  bool reopen(std::uint64_t id);

  // close_all() + flush: in streaming mode stops the workers after the
  // flush; otherwise runs a fork-join drain.
  void finish();

  const detection_session& session(std::uint64_t id) const;

  // Snapshot of one session's verdict stream. Safe at any time, even
  // while streaming workers append.
  std::vector<defense::stream_event> verdicts(std::uint64_t id) const;

  // Snapshot of one session's command-outcome stream (empty unless the
  // session's config carries a pipeline). Same safety contract.
  std::vector<command_outcome> outcomes(std::uint64_t id) const;

  session_stats stats(std::uint64_t id) const;
  serve_totals aggregate() const;

 private:
  // Scheduling state of one session on the streaming ready-queue. A
  // session is enqueued at most once (queued), and claimed by at most
  // one worker (claimed) — the exclusive-claim invariant that keeps
  // verdict streams bit-identical.
  enum class sched_state : std::uint8_t { idle, queued, claimed };

  // Enqueues session `id` if streaming and the session is idle.
  void notify_ready(std::uint64_t id, detection_session* s);
  void worker_loop();

  defense::classifier_detector detector_;
  serve_config config_;
  thread_pool pool_;
  mutable std::mutex sessions_mutex_;  // guards the vector, not sessions
  std::vector<std::unique_ptr<detection_session>> sessions_;

  // Streaming state. Lock order: sched_mutex_ may be taken while no
  // session mutex is held, and a session mutex may be taken under
  // sched_mutex_ (has_work re-check) — never the other way around.
  mutable std::mutex sched_mutex_;
  std::condition_variable sched_cv_;
  std::deque<std::pair<std::uint64_t, detection_session*>> ready_;
  std::vector<sched_state> sched_;  // indexed by session id
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ivc::serve
