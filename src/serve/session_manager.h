// Multi-stream defense serving layer: N concurrent detection sessions
// drained by a shared worker pool.
//
// The manager owns the sessions and offers two drain disciplines over
// the same exclusive-claim contract:
//
//   * Fork-join drain(): every pass fans the common/parallel.h pool out
//     over the sessions that currently have work and barriers on the
//     slowest — the batch-replay shape. Simple, but a fleet that keeps
//     offering audio re-arms the pass forever and every pass pays for
//     its slowest session.
//   * Streaming start(n)/stop(): n long-lived workers block on a
//     condition-variable ready-queue. A session enqueues itself when an
//     offer()/close() gives it work; a worker claims it exclusively,
//     scores its queued blocks back-to-back (the scoring batch — the
//     per-thread caches under feature extraction are hit instead of
//     rebuilt per window), then re-queues it if more work arrived
//     meanwhile. No barriers: latency is per-session, not
//     per-slowest-session, which is what arrival-time-paced workloads
//     need.
//
// Because a session is always drained exclusively and in FIFO order
// under EITHER discipline, per-session verdict streams are bit-identical
// at any worker count and across the two modes; only latency and
// throughput move.
//
// Backpressure is explicit and lives at the session queues: a full ring
// sheds (newest or oldest) or rejects per serve_config::policy, and
// every shed/reject is counted. The aggregate() view merges per-session
// counters and latency histograms into the fleet-wide p50/p95/p99 the
// load bench reports.
//
// ---- Session eviction ---------------------------------------------------
// A voice fleet has far more OPEN sessions than ACTIVE ones: a session
// is a device, and a device speaks for a few seconds an hour. Keeping a
// full detection_session resident per open session (detector window
// state, segmenter buffers, histogram bins) caps the fleet at
// memory/session — the million-session benchmark needs the resident set
// bounded by ACTIVITY instead. When serve_config::max_resident_sessions
// is set, the manager evicts idle least-recently-offered sessions to a
// compact binary snapshot (detection_session::try_snapshot) and rebuilds
// them transparently on their next offer. Because the snapshot is
// bit-exact, eviction is invisible in the verdict/outcome streams — the
// bit-identity contract above extends across any eviction schedule.
// Reads (verdicts/outcomes/stats/aggregate) decode the snapshot in
// place and never rehydrate: observing a session must not change the
// resident set. Only IDLE sessions evict — queued audio is never
// serialized — so eviction can transiently overshoot the bound while
// every candidate is busy; the bound is enforced again at the next
// offer.
//
// Lock order (global): sessions_mutex_ -> sched_mutex_ -> session
// mutex_. offer() holds sessions_mutex_ across the whole call —
// rehydrate + enqueue + residency enforcement — so an offer can never
// race an eviction of the same session and lose its block.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "serve/session.h"

namespace ivc::serve {

// Fleet-wide totals: summed session counters plus the merged latency
// histograms (binned per serve_config::latency_bins).
struct serve_totals {
  session_stats stats;            // counters summed over sessions
  std::size_t num_sessions = 0;
  std::size_t sessions_with_attack_events = 0;
  // Fleet health roll-up: sessions currently NOT serving at full
  // capability, by state at snapshot time.
  std::size_t sessions_degraded = 0;     // ASR stage shed
  std::size_t sessions_recovering = 0;   // working off reopen backoff
  std::size_t sessions_quarantined = 0;  // parked after a fault
  // (session id, last_error()) of every quarantined session — resident
  // or frozen — so an operator sees WHY each parked session parked
  // without touching the resident set.
  std::vector<std::pair<std::uint64_t, std::string>> quarantine_errors;
};

// Eviction-layer counters of one manager (one shard).
struct eviction_stats {
  eviction_stats() = default;
  explicit eviction_stats(const histogram_config& bins)
      : rehydrate_latency{bins} {}

  std::uint64_t evictions = 0;     // sessions frozen to a snapshot
  std::uint64_t rehydrations = 0;  // sessions rebuilt from one
  // Bytes currently held by frozen images (the evicted working set).
  std::uint64_t frozen_bytes = 0;
  std::size_t resident = 0;  // live sessions at snapshot time
  // Wall time of each rehydration (decode + rebuild + restore), seconds.
  log_histogram rehydrate_latency;
};

class session_manager {
 public:
  explicit session_manager(defense::classifier_detector detector,
                           serve_config config = {});
  ~session_manager();  // stops streaming workers if still running

  const serve_config& config() const { return config_; }

  // Opens a new session and returns its id (dense, starting at 0).
  // Thread-safe; sessions may be opened mid-stream while streaming
  // workers run (the new session joins the ready-queue on its first
  // offer). Do not call concurrently with fork-join drain().
  std::uint64_t open_session();

  // Opens a session with its OWN config — detector stream windowing,
  // command pipeline (recognizer/segmenter/intent), queue bound and
  // overflow policy may all differ per session. The latency binning
  // must match the fleet config: aggregate() merges per-session
  // histograms, and log_histogram::merge only accepts identical
  // binning, so a divergent config is rejected here instead of
  // corrupting the fleet view later.
  std::uint64_t open_session(const serve_config& config);

  // Same, sharing one config object across sessions — what a
  // million-session fleet uses so the per-session cost is the session,
  // not a config copy. The pointee must outlive the manager unchanged.
  std::uint64_t open_session(std::shared_ptr<const serve_config> config);

  std::size_t num_sessions() const;

  // Producer side: offers one block to session `id`. Thread-safe.
  // Rehydrates the session first if it was evicted, and enforces the
  // residency bound afterwards. While streaming, an accepted offer (or
  // a shed_oldest eviction) enqueues the session on the ready-queue if
  // it is not already queued/claimed.
  offer_status offer(std::uint64_t id, audio::buffer block);

  // Marks a session (or all of them) end-of-stream; the flush happens on
  // the next drain, or — while streaming — as soon as a worker claims
  // the session. close() on an evicted session rehydrates it so the
  // flush can run (no-op when the snapshot is already closed+flushed);
  // close_all() skips rehydrating those.
  void close(std::uint64_t id);
  void close_all();

  // Fork-join: runs the worker pool over every session with pending work
  // until all queues are empty (and closed sessions are flushed). Safe
  // to call repeatedly; producers may keep offering concurrently, in
  // which case drain returns once it observes a pass with nothing left
  // to do. Must not be called while streaming workers run.
  void drain();

  // Streaming: spawns `n_workers` long-lived worker threads (0 =
  // default_thread_count()) blocking on the ready-queue, and enqueues
  // every session that already has work. Idempotent: calling start()
  // while streaming is a no-op (the worker count does not change).
  void start(std::size_t n_workers = 0);

  // Streaming: finishes everything on the ready-queue (including work
  // sessions re-queue for themselves while stopping), then joins the
  // workers. Offers that race with stop() may leave queued blocks
  // behind; they are picked up by the next start() or drain().
  // Idempotent: stop() without start() is a no-op.
  void stop();

  // True between start() and stop().
  bool streaming() const;

  // Recovery: reopens a quarantined session (detection_session::reopen)
  // and — while streaming — puts it back on the ready-queue if it has
  // queued blocks waiting. Pinned semantics: an unknown id throws
  // std::invalid_argument (it is a caller bug, same as offer), a known
  // session that is NOT quarantined returns false and changes nothing,
  // and an evicted quarantined session is rehydrated first.
  bool reopen(std::uint64_t id);

  // close_all() + flush: in streaming mode stops the workers after the
  // flush; otherwise runs a fork-join drain.
  void finish();

  // Direct access to a RESIDENT session (throws std::invalid_argument
  // when the id is unknown or the session is currently evicted — use
  // the id-keyed accessors below, which transparently read frozen
  // sessions too).
  const detection_session& session(std::uint64_t id) const;

  // True while session `id` is live (not evicted).
  bool resident(std::uint64_t id) const;

  // Evicts session `id` to its snapshot if it is idle; false when it is
  // busy, has queued work, owes a close() flush, or is already evicted.
  bool evict(std::uint64_t id);

  // Evicts every idle session (the shard_kill fault: the shard "loses"
  // its resident state and must serve on from snapshots). Returns how
  // many sessions were evicted.
  std::size_t evict_idle();

  eviction_stats eviction() const;

  // Snapshot of one session's verdict stream. Safe at any time, even
  // while streaming workers append; reads an evicted session's stream
  // out of its frozen snapshot without rehydrating.
  std::vector<defense::stream_event> verdicts(std::uint64_t id) const;

  // Snapshot of one session's command-outcome stream (empty unless the
  // session's config carries a pipeline). Same safety contract.
  std::vector<command_outcome> outcomes(std::uint64_t id) const;

  session_stats stats(std::uint64_t id) const;
  serve_totals aggregate() const;

  // Flight-recorder dump of one session's span trace (oldest → newest).
  // Reads an evicted session's trace out of its frozen snapshot without
  // rehydrating, like the other id-keyed accessors.
  std::vector<obs::span> trace(std::uint64_t id) const;

  // (id, last_error()) of every quarantined session. Cheap: uses the
  // live object or the freeze-time hint, never decodes a frozen image —
  // safe to poll from a sampler thread.
  std::vector<std::pair<std::uint64_t, std::string>> quarantine_errors()
      const;

 private:
  // One session slot: live object while resident, frozen snapshot while
  // evicted (exactly one of the two is set once the session exists).
  struct slot {
    std::shared_ptr<detection_session> live;
    std::string frozen;  // binary try_snapshot() image when evicted
    // Per-session config override; null = the fleet config.
    std::shared_ptr<const serve_config> cfg;
    std::uint64_t touch = 0;  // last-offer stamp (LRU recency)
    // Snapshot was closed+flushed: close_all() need not rehydrate it.
    bool closed_hint = false;
    // State and last_error() at freeze time, cached so the fleet health
    // roll-up (aggregate()) never decodes a frozen image just to ask
    // "is it quarantined, and why".
    session_state state_hint = session_state::serving;
    std::string err_hint;
  };

  // Scheduling state of one session on the streaming ready-queue. A
  // session is enqueued at most once (queued), and claimed by at most
  // one worker (claimed) — the exclusive-claim invariant that keeps
  // verdict streams bit-identical.
  enum class sched_state : std::uint8_t { idle, queued, claimed };

  // Eviction-layer registry handles (no-ops when config_.metrics is
  // null). Eviction/rehydration counts are SCHEDULING events —
  // registered deterministic=false — and the resident/frozen gauges are
  // point-in-time by nature.
  struct metric_handles {
    explicit metric_handles(obs::metrics_registry* reg);
    obs::counter evictions;
    obs::counter rehydrations;
    obs::gauge resident;
    obs::gauge frozen_bytes;
    obs::histogram rehydrate_latency;
  };

  // The slot/eviction helpers run with sessions_mutex_ held — the
  // IVC_REQUIRES makes calling one without it a compile error.
  std::uint64_t open_slot(std::shared_ptr<const serve_config> cfg,
                          const serve_config& effective)
      IVC_REQUIRES(sessions_mutex_) IVC_EXCLUDES(sched_mutex_);
  const std::shared_ptr<detection_session>& ensure_resident(std::uint64_t id)
      IVC_REQUIRES(sessions_mutex_);
  bool evict_locked(std::uint64_t id) IVC_REQUIRES(sessions_mutex_);
  void enforce_residency() IVC_REQUIRES(sessions_mutex_);
  // Enqueues session `id` if streaming and the session is idle. Takes
  // sched_mutex_ itself (always called under sessions_mutex_ — the
  // global lock order).
  void notify_ready(std::uint64_t id,
                    const std::shared_ptr<detection_session>& s)
      IVC_EXCLUDES(sched_mutex_);
  void worker_loop() IVC_EXCLUDES(sessions_mutex_, sched_mutex_);

  defense::classifier_detector detector_;
  serve_config config_;
  metric_handles metrics_;
  thread_pool pool_;
  // Guards slots_ + eviction state; always acquired BEFORE sched_mutex_
  // (offer -> notify_ready). A session mutex may be taken under either —
  // never the other way around.
  mutable ts_mutex sessions_mutex_ IVC_ACQUIRED_BEFORE(sched_mutex_);
  std::vector<slot> slots_ IVC_GUARDED_BY(sessions_mutex_);
  std::size_t resident_count_ IVC_GUARDED_BY(sessions_mutex_) = 0;
  std::uint64_t touch_counter_ IVC_GUARDED_BY(sessions_mutex_) = 0;
  // Lazy LRU min-heap of (touch-at-push, id). Entries go stale when a
  // session is touched again; enforce_residency() skips or refreshes
  // them on pop, so the heap stays O(resident) instead of O(offers).
  std::priority_queue<std::pair<std::uint64_t, std::uint64_t>,
                      std::vector<std::pair<std::uint64_t, std::uint64_t>>,
                      std::greater<>>
      lru_ IVC_GUARDED_BY(sessions_mutex_);
  eviction_stats evic_ IVC_GUARDED_BY(sessions_mutex_);

  // Streaming state, guarded by sched_mutex_ (see lock order above).
  mutable ts_mutex sched_mutex_;
  std::condition_variable sched_cv_;
  std::deque<std::pair<std::uint64_t, std::shared_ptr<detection_session>>>
      ready_ IVC_GUARDED_BY(sched_mutex_);
  std::vector<sched_state> sched_ IVC_GUARDED_BY(sched_mutex_);
  bool stopping_ IVC_GUARDED_BY(sched_mutex_) = false;
  std::vector<std::thread> workers_ IVC_GUARDED_BY(sched_mutex_);
};

}  // namespace ivc::serve
