// Multi-stream defense serving layer: N concurrent detection sessions
// drained by a shared worker pool.
//
// The manager owns the sessions and a common/parallel.h thread pool.
// Producers offer ingest blocks to sessions at any time (thread-safe);
// drain() fans the pool out over every session with pending work, each
// worker claiming one session at a time and scoring its queued windows
// back-to-back — the scoring batch — so the per-thread caches under
// feature extraction (band-filter designs, FFT plans) are hit instead
// of rebuilt per window. Because a session is always drained
// exclusively and in FIFO order, per-session verdict streams are
// bit-identical at any worker count; only latency/throughput move.
//
// Backpressure is explicit and lives at the session queues: a full ring
// sheds (newest or oldest) or rejects per serve_config::policy, and
// every shed/reject is counted. The aggregate() view merges per-session
// counters and latency histograms into the fleet-wide p50/p95/p99 the
// load bench reports.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/parallel.h"
#include "serve/session.h"

namespace ivc::serve {

// Fleet-wide totals: summed session counters plus the merged latency
// histogram.
struct serve_totals {
  session_stats stats;            // counters summed over sessions
  std::size_t num_sessions = 0;
  std::size_t sessions_with_attack_events = 0;
};

class session_manager {
 public:
  explicit session_manager(defense::classifier_detector detector,
                           serve_config config = {});

  const serve_config& config() const { return config_; }

  // Opens a new session and returns its id (dense, starting at 0).
  // Thread-safe with respect to other open_session calls; do not call
  // concurrently with drain().
  std::uint64_t open_session();

  std::size_t num_sessions() const;

  // Producer side: offers one block to session `id`. Thread-safe.
  offer_status offer(std::uint64_t id, audio::buffer block);

  // Marks a session (or all of them) end-of-stream; the next drain
  // flushes partial windows.
  void close(std::uint64_t id);
  void close_all();

  // Runs the worker pool over every session with pending work until all
  // queues are empty (and closed sessions are flushed). Safe to call
  // repeatedly; producers may keep offering concurrently, in which case
  // drain returns once it observes a pass with nothing left to do.
  void drain();

  // close_all() + drain(): end-of-run flush.
  void finish();

  const detection_session& session(std::uint64_t id) const;

  // The verdict stream of one session (stable after drain()).
  const std::vector<defense::stream_event>& verdicts(std::uint64_t id) const;

  session_stats stats(std::uint64_t id) const;
  serve_totals aggregate() const;

 private:
  defense::classifier_detector detector_;
  serve_config config_;
  thread_pool pool_;
  mutable std::mutex sessions_mutex_;  // guards the vector, not sessions
  std::vector<std::unique_ptr<detection_session>> sessions_;
};

}  // namespace ivc::serve
