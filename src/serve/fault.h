// Deterministic fault injection for the serving layer.
//
// The defense only matters if it stays fail-closed when the system
// around it misbehaves: a crashed or stalled pipeline stage that lets an
// inaudible command through is a worse failure than a dropped genuine
// utterance. The chaos harness therefore needs to place faults into the
// serving path in a way that is REPRODUCIBLE — the same fault schedule
// must hit the same sessions at the same stream positions at any worker
// count and in both drain disciplines, or the bit-identity checks that
// pin the layer's determinism would be meaningless under fault load.
//
// The injector achieves that by being a pure function: whether a fault
// fires at an injection site is decided by hashing
// (seed, site, session id, index), where `index` is the session's
// consumed-block counter for block-level sites and its resolved-
// utterance counter for the recognizer site. Both counters advance in
// accepted-block order — the order the serving layer already keeps
// deterministic — so the schedule is identical however work is
// scheduled. No wall clock, no global state, no per-thread streams.
//
// On top of the rate-based draws, an explicit `schedule` pins individual
// faults to exact (kind, session, index) coordinates — what the
// regression tests use to fault exactly one session of a fleet.
#pragma once

#include <cstdint>
#include <vector>

namespace ivc::serve {

// What goes wrong. Each kind fires at one injection site:
//   detector_throw    — stream_detector::feed/finish throws (per block)
//   recognizer_throw  — the ASR stage throws mid-recognition (per
//                       resolved utterance)
//   recognizer_overrun— the modeled recognizer cost blows its deadline
//                       budget (per resolved utterance; deterministic
//                       cost model, never wall clock)
//   corrupt_block     — the queued audio block arrives NaN-poisoned
//                       (per block; exercises the ingest validation)
//   shard_kill        — a whole serving shard "crashes": the shard
//                       front force-evicts every idle session of the
//                       shard to its snapshot and serves on (per shard
//                       offer; coordinates are (shard index, per-shard
//                       offer counter)). Because snapshot/restore is
//                       bit-exact, a kill must be invisible in the
//                       verdict/outcome streams — which is exactly what
//                       the chaos gate checks.
enum class fault_kind : std::uint8_t {
  detector_throw,
  recognizer_throw,
  recognizer_overrun,
  corrupt_block,
  shard_kill,
};

// One pinned fault: fire `kind` in session `session` at per-session
// counter value `index` (blocks for block-level kinds, utterances for
// recognizer kinds).
struct fault_event {
  fault_kind kind = fault_kind::detector_throw;
  std::uint64_t session = 0;
  std::uint64_t index = 0;
};

struct fault_config {
  std::uint64_t seed = 0;
  // Per-site firing probabilities (rate-based chaos sweeps). A rate of
  // 0 disables the kind; the draw is a pure hash of
  // (seed, kind, session, index).
  double detector_throw_rate = 0.0;    // per consumed block
  double recognizer_throw_rate = 0.0;  // per resolved utterance
  double recognizer_overrun_rate = 0.0;  // per resolved utterance
  double corrupt_block_rate = 0.0;     // per consumed block
  double shard_kill_rate = 0.0;        // per shard-front offer
  // Explicitly pinned faults, in addition to the rate draws.
  std::vector<fault_event> schedule;

  bool enabled() const {
    return detector_throw_rate > 0.0 || recognizer_throw_rate > 0.0 ||
           recognizer_overrun_rate > 0.0 || corrupt_block_rate > 0.0 ||
           shard_kill_rate > 0.0 || !schedule.empty();
  }
};

// Const-thread-safe once constructed: fires() touches no mutable state,
// so one injector is shared by every session and every worker — the
// same sharing contract as the recognizer template set.
class fault_injector {
 public:
  explicit fault_injector(fault_config config);

  // True when `kind` fires in `session` at per-session counter `index`.
  // Pure in (config, kind, session, index): identical at any worker
  // count, drain mode, or call order.
  bool fires(fault_kind kind, std::uint64_t session,
             std::uint64_t index) const;

  const fault_config& config() const { return config_; }

 private:
  double rate_of(fault_kind kind) const;

  fault_config config_;
};

}  // namespace ivc::serve
