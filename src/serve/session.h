// One concurrent detection session of the serving layer.
//
// A detection_session wraps a defense::stream_detector behind a bounded
// ring-buffered ingest queue so that producers (capture threads, the
// load generator) and consumers (the session_manager's workers) are
// decoupled. The contract that makes the whole layer testable:
//
//   * the verdict stream is a pure function of the sequence of ACCEPTED
//     blocks — workers drain a session exclusively and in FIFO order, so
//     verdicts are bit-identical at any worker count and any drain
//     schedule (fork-join drain() or streaming start()/stop());
//     scheduling only moves the latency numbers;
//   * overflow is explicit: when the ring is full the configured policy
//     either sheds (newest or oldest, counted per session) or rejects
//     the offer so the producer can apply backpressure and retry.
//
// All shared state — the ring, the counters, AND the verdict stream —
// is guarded by the session mutex; verdicts() hands out a snapshot copy
// so the streaming mode can read a live session's verdicts while a
// worker appends to them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "audio/buffer.h"
#include "common/histogram.h"
#include "defense/detector.h"
#include "defense/stream.h"
#include "serve/pipeline.h"

namespace ivc::serve {

// What happens when a block is offered to a full ingest queue.
enum class overflow_policy {
  shed_newest,  // drop the offered block (default: protect the backlog)
  shed_oldest,  // evict the oldest queued block, accept the new one
  reject,       // accept nothing; the producer must drain and retry
};

struct serve_config {
  defense::stream_config stream;  // per-session sliding-window detector
  // End-to-end command stage behind the verdict stream (segmenter →
  // recognizer → intent). Disengaged when unset: the session serves
  // detector verdicts only, exactly as before. When the pipeline's
  // decision_window_s is 0 it adopts stream.window_s, so the verdict
  // overlap test always matches the detector's actual analysis window.
  std::optional<pipeline_config> pipeline;
  std::size_t queue_capacity = 64;       // blocks per session ring
  overflow_policy policy = overflow_policy::shed_newest;
  // Worker threads draining sessions. For fork-join drain() this sizes
  // the common/parallel.h pool (counts the calling thread; 0 = one per
  // hardware thread). For streaming start() it is the default long-lived
  // worker count when start(0) is called.
  std::size_t worker_threads = 0;
  // Blocks a worker processes per claim of one session (its scoring
  // batch). 0 = drain the session's queue completely per claim.
  std::size_t max_blocks_per_pass = 0;
  // Binning of every latency histogram (total, queue-wait, service).
  // Per-session histograms and the aggregate() fold all use this, so
  // merges always see matching configs.
  histogram_config latency_bins;
};

enum class offer_status {
  accepted,  // enqueued (under shed_oldest, possibly evicting a block)
  shed,      // dropped under shed_newest; counted in blocks_shed
  rejected,  // queue full under reject policy: drain and retry
  closed,    // session is closed: no retry will ever succeed
};

struct session_stats {
  session_stats() = default;
  explicit session_stats(const histogram_config& bins)
      : latency{bins}, queue_wait{bins}, service{bins}, asr_service{bins} {}

  std::uint64_t blocks_offered = 0;
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_processed = 0;
  std::uint64_t blocks_shed = 0;      // dropped or evicted at the queue
  std::uint64_t blocks_rejected = 0;  // bounced back to the producer
  std::uint64_t samples_processed = 0;
  double audio_s_processed = 0.0;
  std::uint64_t events = 0;         // verdicts emitted
  std::uint64_t attack_events = 0;  // verdicts with is_attack
  // Command-pipeline outcome counters (all zero without a pipeline).
  std::uint64_t utterances = 0;          // outcomes emitted
  std::uint64_t commands_blocked = 0;    // vetoed by the defense verdict
  std::uint64_t commands_executed = 0;   // recognized + intent mapped
  std::uint64_t commands_rejected = 0;   // recognizer rejected
  std::uint64_t commands_ignored = 0;    // recognized, intent engine idle
  // Per-block latency decomposition, seconds:
  //   latency    = offer() to scored (end to end)
  //   queue_wait = offer() to claimed by a worker
  //   service    = claimed to scored (detector time)
  // latency ≈ queue_wait + service per block; the histograms bin each
  // part independently so paced replays can tell congestion (queue
  // growth) from slow scoring.
  log_histogram latency;
  log_histogram queue_wait;
  log_histogram service;
  // Recognizer time per resolved utterance (the ASR stage's own service
  // clock, split from the detector's `service`). One sample per outcome
  // that reached the recognizer — blocked utterances never run ASR.
  log_histogram asr_service;
};

class detection_session {
 public:
  detection_session(std::uint64_t id, defense::classifier_detector detector,
                    const serve_config& config);

  std::uint64_t id() const { return id_; }

  // Producer side (thread-safe): offers one ingest block. Blocks are
  // accepted in call order; concurrent producers to the SAME session
  // serialize on the queue lock with no order guarantee between them.
  offer_status offer(audio::buffer block);

  // Marks end-of-stream: later offers return offer_status::closed, and
  // the next drain flushes the detector's partial window
  // (stream_detector::finish).
  void close();
  bool closed() const;

  // True while queued blocks remain or a close() flush is still owed.
  bool has_work() const;

  // Consumer side: processes up to `max_blocks` queued blocks (0 = all
  // currently queued) through the detector, appending verdicts. Only one
  // worker runs a session at a time — concurrent callers return 0
  // immediately instead of blocking. Returns blocks processed.
  std::size_t process(std::size_t max_blocks = 0);

  // Snapshot of the verdict stream so far. Safe to call at any time,
  // including while a worker is appending (streaming mode).
  std::vector<defense::stream_event> verdicts() const;

  // Snapshot of the command-outcome stream (empty when the session has
  // no pipeline configured). Same safety contract as verdicts().
  std::vector<command_outcome> outcomes() const;

  session_stats stats() const;

 private:
  struct queued_block {
    audio::buffer block;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Pops the oldest queued block; false when the queue is empty.
  bool pop(queued_block& out);
  // Folds pipeline outcomes into outcomes_/stats_; caller holds mutex_.
  void record_outcomes(const std::vector<command_outcome>& outcomes);

  const std::uint64_t id_;
  const std::size_t capacity_;
  const overflow_policy policy_;

  mutable std::mutex mutex_;  // guards ring_, stats_, closed_, verdicts_
  std::vector<queued_block> ring_;
  std::size_t head_ = 0;   // oldest queued block
  std::size_t count_ = 0;  // queued blocks
  session_stats stats_;
  bool closed_ = false;
  bool finished_ = false;  // close() flush done
  std::vector<defense::stream_event> verdicts_;
  std::vector<command_outcome> outcomes_;

  std::atomic<bool> busy_{false};  // one worker at a time

  // Touched only by the worker holding busy_.
  defense::stream_detector detector_;
  std::optional<command_pipeline> pipeline_;
};

}  // namespace ivc::serve
