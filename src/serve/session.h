// One concurrent detection session of the serving layer.
//
// A detection_session wraps a defense::stream_detector behind a bounded
// ring-buffered ingest queue so that producers (capture threads, the
// load generator) and consumers (the session_manager's workers) are
// decoupled. The contract that makes the whole layer testable:
//
//   * the verdict stream is a pure function of the sequence of ACCEPTED
//     blocks — workers drain a session exclusively and in FIFO order, so
//     verdicts are bit-identical at any worker count and any drain
//     schedule (fork-join drain() or streaming start()/stop());
//     scheduling only moves the latency numbers;
//   * overflow is explicit: when the ring is full the configured policy
//     either sheds (newest or oldest, counted per session) or rejects
//     the offer so the producer can apply backpressure and retry.
//
// All shared state — the ring, the counters, AND the verdict stream —
// is guarded by the session mutex; verdicts() hands out a snapshot copy
// so the streaming mode can read a live session's verdicts while a
// worker appends to them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audio/buffer.h"
#include "common/histogram.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "common/json_min.h"
#include "defense/detector.h"
#include "defense/stream.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/fault.h"
#include "serve/pipeline.h"

namespace ivc::serve {

// What happens when a block is offered to a full ingest queue.
enum class overflow_policy {
  shed_newest,  // drop the offered block (default: protect the backlog)
  shed_oldest,  // evict the oldest queued block, accept the new one
  reject,       // accept nothing; the producer must drain and retry
};

// Health of one session. Fault containment quarantines a session whose
// scoring stage crashed instead of letting the exception kill the
// worker fleet; recovery (automatic or via reopen()) resets the
// detector/segmenter/pipeline and works off a block-counted backoff
// before scoring resumes. The ladder is strictly fail-closed: a session
// not in `serving`/`degraded` emits no `executed` outcomes, ever.
enum class session_state : std::uint8_t {
  serving,      // healthy, full pipeline
  degraded,     // ASR stage shed (detector-only fail-closed mode)
  recovering,   // reopened after a fault: dropping backoff blocks
  quarantined,  // stage crashed; parked until reopen() (or forever once
                // the bounded retry budget is spent)
};

// Containment + recovery policy of the serving layer.
struct fault_tolerance_config {
  // Reopen a faulted session automatically (bounded by max_reopens).
  // When false the session stays quarantined until a manual reopen().
  bool auto_reopen = true;
  // Retry budget: after this many automatic reopens the next fault
  // parks the session permanently (still fail-closed, still counted).
  std::size_t max_reopens = 3;
  // Block-counted backoff: after the n-th reopen the session consumes
  // and drops `backoff_blocks << n` accepted blocks before scoring
  // resumes. Counted in accepted blocks — never wall clock — so the
  // recovery point is identical at any worker count.
  std::size_t backoff_blocks = 8;
  // Snapshot-based crash recovery: when enabled the session checkpoints
  // its detector + pipeline stream state every `snapshot_every_blocks`
  // scored blocks — only at SAFE points, where the pipeline owes no
  // outcome (pending empty, segmenter idle), so a restore can never
  // re-emit an utterance the fail-closed flush already resolved. A
  // contained fault (and a manual reopen()) then restores the stages
  // from the last good checkpoint instead of cold-resetting: the stream
  // resumes at the checkpoint's position — verdict timestamps continue
  // instead of restarting at t = 0 — losing only the audio between the
  // checkpoint and the fault plus the backoff blocks. Checkpoints are
  // block-counted, so recovery is bit-identical at any worker count.
  bool snapshot_recovery = false;
  std::size_t snapshot_every_blocks = 64;
};

struct serve_config {
  defense::stream_config stream;  // per-session sliding-window detector
  // End-to-end command stage behind the verdict stream (segmenter →
  // recognizer → intent). Disengaged when unset: the session serves
  // detector verdicts only, exactly as before. When the pipeline's
  // decision_window_s is 0 it adopts stream.window_s, so the verdict
  // overlap test always matches the detector's actual analysis window.
  std::optional<pipeline_config> pipeline;
  std::size_t queue_capacity = 64;       // blocks per session ring
  overflow_policy policy = overflow_policy::shed_newest;
  // Worker threads draining sessions. For fork-join drain() this sizes
  // the common/parallel.h pool (counts the calling thread; 0 = one per
  // hardware thread). For streaming start() it is the default long-lived
  // worker count when start(0) is called.
  std::size_t worker_threads = 0;
  // Blocks a worker processes per claim of one session (its scoring
  // batch). 0 = drain the session's queue completely per claim.
  std::size_t max_blocks_per_pass = 0;
  // Binning of every latency histogram (total, queue-wait, service).
  // Per-session histograms and the aggregate() fold all use this, so
  // merges always see matching configs.
  histogram_config latency_bins;
  // Residency bound of the owning session_manager (per manager — each
  // shard of a sharded front gets its own). When more than this many
  // sessions are LIVE, the manager evicts idle least-recently-offered
  // sessions to compact snapshots and rebuilds them on their next
  // offer, bit-identically. 0 = unbounded (no eviction). Ignored by the
  // session itself.
  std::size_t max_resident_sessions = 0;
  // Containment + recovery policy (always on; the knobs bound it).
  fault_tolerance_config fault_tolerance;
  // Deterministic fault injection (chaos harness / tests). Shared and
  // const-thread-safe; null = no injection. The per-session pipeline
  // inherits it for the recognizer sites.
  std::shared_ptr<const fault_injector> faults;
  // ---- Observability -------------------------------------------------
  // Fleet-wide metrics registry, shared by every session/manager/shard
  // of the front; null = no metrics (handles degrade to no-ops). The
  // per-session pipeline inherits it for the utterance counters.
  std::shared_ptr<obs::metrics_registry> metrics;
  // Flight recorder: how many stage spans (ingest -> detector -> ASR ->
  // intent -> outcome) each session retains in its bounded trace ring.
  // 0 disables span tracing entirely.
  std::size_t trace_spans = 64;
  // Notified with the flight-recorder dump on every quarantine entry —
  // retried containment, terminal containment, and force_quarantine
  // alike (the fault span's value field marks retried=1 vs parked=0).
  // Shared and thread-safe; null = dumps only on demand via trace().
  std::shared_ptr<obs::trace_sink> trace_sink;
};

enum class offer_status {
  accepted,     // enqueued (under shed_oldest, possibly evicting a block)
  shed,         // dropped under shed_newest; counted in blocks_shed
  rejected,     // queue full under reject policy: drain and retry
  closed,       // session is closed: no retry will ever succeed
  quarantined,  // session is parked after a fault: only reopen() helps —
                // retrying without one would livelock the backpressure
                // loop, exactly like offering to a closed session
};

struct session_stats {
  session_stats() = default;
  explicit session_stats(const histogram_config& bins)
      : latency{bins}, queue_wait{bins}, service{bins}, asr_service{bins} {}

  std::uint64_t blocks_offered = 0;
  std::uint64_t blocks_accepted = 0;
  std::uint64_t blocks_processed = 0;
  std::uint64_t blocks_shed = 0;      // dropped or evicted at the queue
  std::uint64_t blocks_rejected = 0;  // bounced back to the producer
  std::uint64_t samples_processed = 0;
  double audio_s_processed = 0.0;
  std::uint64_t events = 0;         // verdicts emitted
  std::uint64_t attack_events = 0;  // verdicts with is_attack
  // Command-pipeline outcome counters (all zero without a pipeline).
  std::uint64_t utterances = 0;          // outcomes emitted
  std::uint64_t commands_blocked = 0;    // vetoed by the defense verdict
  std::uint64_t commands_executed = 0;   // recognized + intent mapped
  std::uint64_t commands_rejected = 0;   // recognizer rejected
  std::uint64_t commands_ignored = 0;    // recognized, intent engine idle
  // Per-block latency decomposition, seconds:
  //   latency    = offer() to scored (end to end)
  //   queue_wait = offer() to claimed by a worker
  //   service    = claimed to scored (detector time)
  // latency ≈ queue_wait + service per block; the histograms bin each
  // part independently so paced replays can tell congestion (queue
  // growth) from slow scoring.
  log_histogram latency;
  log_histogram queue_wait;
  log_histogram service;
  // Recognizer time per resolved utterance (the ASR stage's own service
  // clock, split from the detector's `service`). One sample per outcome
  // that reached the recognizer — blocked utterances never run ASR.
  log_histogram asr_service;
  // ---- Health / fault counters (all zero on a healthy session) -------
  std::uint64_t detector_faults = 0;    // contained detector-stage crashes
  std::uint64_t recognizer_faults = 0;  // contained ASR-stage crashes
  std::uint64_t corrupt_blocks = 0;     // non-finite ingest blocks caught
                                        // at the scoring boundary
  std::uint64_t asr_deadline_overruns = 0;  // modeled-cost budget blown
  std::uint64_t utterances_shed_degraded = 0;  // blocked in detector-only
                                               // mode (ASR stage shed)
  std::uint64_t utterances_failed_closed = 0;  // blocked by ANY fault
                                               // path (never executed)
  std::uint64_t quarantines = 0;        // containment events
  std::uint64_t reopens = 0;            // recoveries (auto + manual)
  std::uint64_t blocks_dropped_backoff = 0;  // consumed unscored while
                                             // recovering
  // ---- Snapshot layer (all zero unless snapshot_recovery/eviction) ---
  std::uint64_t stage_snapshots = 0;    // crash-recovery checkpoints taken
  std::uint64_t snapshot_restores = 0;  // recoveries from a checkpoint
                                        // (instead of a cold stage reset)

  // Folds another stats block into this one: counters sum, histograms
  // merge (the binning configs must match). The fleet/shard aggregation
  // primitive.
  void merge(const session_stats& other);
};

class detection_session {
 public:
  detection_session(std::uint64_t id, defense::classifier_detector detector,
                    const serve_config& config);

  std::uint64_t id() const { return id_; }

  // Producer side (thread-safe): offers one ingest block. Blocks are
  // accepted in call order; concurrent producers to the SAME session
  // serialize on the queue lock with no order guarantee between them.
  offer_status offer(audio::buffer block);

  // Marks end-of-stream: later offers return offer_status::closed, and
  // the next drain flushes the detector's partial window
  // (stream_detector::finish).
  //
  // Lifecycle edges (pinned by tests, not left implicit):
  //   * close() is idempotent — a second close() is a no-op;
  //   * offer() after close() returns offer_status::closed and counts
  //     the bounce in blocks_rejected; queued blocks are still scored;
  //   * closing a session that never accepted a block is fine: the next
  //     drain runs the (empty) finish flush exactly once.
  void close();
  bool closed() const;

  // Health of the session (see session_state). Thread-safe snapshot.
  session_state state() const;

  // Message of the last contained fault (empty while healthy).
  std::string last_error() const;

  // Recovery from quarantine: restores the detector/segmenter/pipeline
  // from the last good crash-recovery checkpoint when
  // fault_tolerance.snapshot_recovery is on and one exists, otherwise
  // resets them to fresh-stream state; grants a fresh retry budget and
  // re-enters service through a block-counted backoff (the next
  // fault_tolerance.backoff_blocks accepted blocks are consumed
  // unscored). Returns false when the session is not quarantined or a
  // worker still owns it. Queued blocks survive and are scored — as a
  // resumed stream from the checkpoint, or a NEW stream at t = 0 —
  // once the backoff drains.
  bool reopen();

  // Last-resort containment used by the manager's worker wrappers when
  // an exception escapes process() itself: parks the session
  // immediately (no reset, no backoff) so the fleet keeps serving.
  void force_quarantine(const std::string& what);

  // True while queued blocks remain or a close() flush is still owed.
  bool has_work() const;

  // Consumer side: processes up to `max_blocks` queued blocks (0 = all
  // currently queued) through the detector, appending verdicts. Only one
  // worker runs a session at a time — concurrent callers return 0
  // immediately instead of blocking. Returns blocks processed.
  std::size_t process(std::size_t max_blocks = 0);

  // Snapshot of the verdict stream so far. Safe to call at any time,
  // including while a worker is appending (streaming mode).
  std::vector<defense::stream_event> verdicts() const;

  // Snapshot of the command-outcome stream (empty when the session has
  // no pipeline configured). Same safety contract as verdicts().
  std::vector<command_outcome> outcomes() const;

  // Flight recorder: the retained stage spans, oldest -> newest (empty
  // when serve_config::trace_spans is 0). Same safety contract as
  // verdicts(); every field except span::wall_s is deterministic.
  std::vector<obs::span> trace() const;

  session_stats stats() const;

  // ---- Eviction snapshots ---------------------------------------------
  // Serializes the COMPLETE session — counters, histograms, verdict and
  // outcome streams, fault-ladder position, detector/pipeline stream
  // state, and any crash-recovery checkpoint — so the manager can evict
  // the session and rebuild it later with restore(), bit-identically:
  // the rehydrated session's remaining verdicts/outcomes are the ones
  // this session would have produced. Claims the session exclusively;
  // returns false (and writes nothing) when a worker owns it, blocks
  // are still queued, or a close() flush is owed — only an IDLE session
  // snapshots, because queued audio is not serialized.
  bool try_snapshot(json::value& out);

  // Rebuilds from a try_snapshot() image. Must be called on a freshly
  // constructed session of the SAME config before it is shared with
  // producers or workers; throws on a snapshot/config mismatch (e.g. a
  // pipeline snapshot restored into a pipeline-less session).
  void restore(const json::value& snap);

 private:
  struct queued_block {
    audio::buffer block;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Pops the oldest queued block; false when the queue is empty.
  bool pop(queued_block& out) IVC_EXCLUDES(mutex_);
  // Folds pipeline outcomes into outcomes_/stats_.
  void record_outcomes(const std::vector<command_outcome>& outcomes)
      IVC_REQUIRES(mutex_);
  // Containment: called by process() (holding busy_) when an exception
  // escapes a scoring stage. Flushes the pipeline fail-closed, counts
  // the fault against `counter`, then either auto-reopens (bounded
  // retry, block-counted backoff) or parks the session quarantined.
  void contain_fault(std::uint64_t session_stats::* counter,
                     const std::string& what) IVC_REQUIRES(busy_)
      IVC_EXCLUDES(mutex_);
  // Resets detector/pipeline to fresh-stream state.
  void reset_stages() IVC_REQUIRES(busy_);
  // Crash recovery: restores the stages from the last good checkpoint;
  // falls back to reset_stages() when there is none (or it is corrupt).
  // Counts the restore when it happens.
  void recover_stages() IVC_REQUIRES(busy_) IVC_EXCLUDES(mutex_);
  // Takes a crash-recovery checkpoint when the block count and safety
  // conditions line up.
  void maybe_checkpoint(std::uint64_t block_index) IVC_REQUIRES(busy_)
      IVC_EXCLUDES(mutex_);
  // Serializes everything; the image must be a consistent cut of both
  // the worker-owned stage state and the lock-guarded streams.
  json::value build_snapshot() const IVC_REQUIRES(busy_, mutex_);

  // Fleet-shared metric handles of one session. All hot-path bumps are
  // relaxed atomics on registry cells shared across the fleet (no
  // per-session cardinality); a null registry leaves every handle a
  // no-op. The set mirrors the deterministic counter families of
  // session_stats — scheduling-dependent counts (sheds, rejects) are
  // registered non-deterministic so the telemetry fingerprint stays
  // bit-identical across worker counts.
  struct metric_handles {
    explicit metric_handles(obs::metrics_registry* reg);
    obs::counter blocks_processed;
    obs::counter blocks_shed;      // non-deterministic: drain timing
    obs::counter blocks_rejected;  // non-deterministic: drain timing
    obs::counter events;
    obs::counter attack_events;
    obs::counter faults_ingest;    // corrupt blocks, by stage label
    obs::counter faults_detector;
    obs::counter faults_asr;
    obs::counter quarantines;
    obs::counter reopens;
    obs::counter backoff_drops;
  };

  const std::uint64_t id_;
  const std::size_t capacity_;
  const overflow_policy policy_;
  const fault_tolerance_config fault_tolerance_;
  const std::shared_ptr<const fault_injector> faults_;
  const std::shared_ptr<obs::trace_sink> trace_sink_;
  const metric_handles metrics_;

  // Every piece of stream-visible state is a declared capability target:
  // clang -Wthread-safety proves each access below happens under mutex_.
  mutable ts_mutex mutex_;
  std::vector<queued_block> ring_ IVC_GUARDED_BY(mutex_);
  std::size_t head_ IVC_GUARDED_BY(mutex_) = 0;   // oldest queued block
  std::size_t count_ IVC_GUARDED_BY(mutex_) = 0;  // queued blocks
  session_stats stats_ IVC_GUARDED_BY(mutex_);
  bool closed_ IVC_GUARDED_BY(mutex_) = false;
  bool finished_ IVC_GUARDED_BY(mutex_) = false;  // close() flush done
  session_state state_ IVC_GUARDED_BY(mutex_) = session_state::serving;
  std::string last_error_ IVC_GUARDED_BY(mutex_);
  std::vector<defense::stream_event> verdicts_ IVC_GUARDED_BY(mutex_);
  std::vector<command_outcome> outcomes_ IVC_GUARDED_BY(mutex_);
  // Bounded flight recorder (see obs/trace.h). Guarded by mutex_ like
  // the streams; serialized with the snapshot so eviction preserves it.
  obs::trace_ring trace_ IVC_GUARDED_BY(mutex_);

  // One worker at a time: the exclusive-claim discipline is itself a
  // capability (common/sync.h), so "touched only by the worker holding
  // busy_" is compiler-checked, not a comment.
  claim_flag busy_;

  defense::stream_detector detector_ IVC_GUARDED_BY(busy_);
  std::optional<command_pipeline> pipeline_ IVC_GUARDED_BY(busy_);
  // Fault-schedule coordinate: every block consumed off the ring (scored
  // or dropped), in accepted order. Monotonic forever — reopen() must
  // not rewind it, or a pinned fault would re-fire after every reset.
  // Atomic, NOT busy_-guarded: the busy_ holder is the only writer, but
  // force_quarantine() reads it from the manager's backstop path without
  // claiming the session (the claim may be wedged — that is why the
  // backstop exists), which the thread-safety pass flagged as a race.
  std::atomic<std::uint64_t> consumed_blocks_{0};
  // Automatic-reopen retry budget spent so far.
  std::size_t reopen_count_ IVC_GUARDED_BY(busy_) = 0;
  // Accepted blocks still to drop before scoring resumes (recovering).
  std::uint64_t backoff_remaining_ IVC_GUARDED_BY(busy_) = 0;
  // Last good crash-recovery checkpoint (binary-encoded detector +
  // pipeline stream state; empty = none yet). Binary keeps a resident
  // checkpoint cheap — the pending audio inside it is mostly silence,
  // which the codec run-length-codes away.
  std::string last_good_ IVC_GUARDED_BY(busy_);
};

// ---- Frozen-snapshot readers ------------------------------------------
// Decode one field family out of a try_snapshot() image WITHOUT
// rebuilding the session — how the manager serves stats/verdict/outcome
// reads for EVICTED sessions (reads must not change residency).
session_stats snapshot_stats(const json::value& snap,
                             const histogram_config& bins);
session_state snapshot_state(const json::value& snap);
bool snapshot_closed(const json::value& snap);
std::string snapshot_last_error(const json::value& snap);
std::vector<defense::stream_event> snapshot_verdicts(const json::value& snap);
std::vector<command_outcome> snapshot_outcomes(const json::value& snap);
std::vector<obs::span> snapshot_trace(const json::value& snap);

}  // namespace ivc::serve
