// Sampler probes over the serving fleet: one flat JSON object of
// numeric fields per call, the shape obs::fleet_sampler appends as a
// JSONL time-series line.
//
// These live in serve/ (not obs/) because the dependency points this
// way: the obs layer knows nothing about sessions or shards, it just
// runs any probe on its timer thread. Both probes only call the
// thread-safe fleet views (aggregate() / eviction() / balance() /
// quarantine_errors()), so they are safe to sample while streaming
// workers and producers run.
#pragma once

#include "common/json_min.h"
#include "serve/session_manager.h"
#include "serve/shard.h"

namespace ivc::serve {

// One fleet sample: sessions / resident / eviction counters / summed
// session counters / health roll-up / latency-stage quantiles (ms).
json::value telemetry_sample(const session_manager& manager);

// Same fields fleet-wide, plus the shard spread (num shards, session
// min/max/mean, total shard kills).
json::value telemetry_sample(const shard_manager& front);

}  // namespace ivc::serve
