#include "serve/pipeline.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/json_field.h"
#include "synth/commands.h"

namespace ivc::serve {
namespace {

using clock = std::chrono::steady_clock;

std::vector<intent_rule> default_rules() {
  std::vector<intent_rule> rules;
  for (const synth::command& c : synth::command_bank()) {
    rules.push_back(intent_rule{c.id, "intent/" + c.id});
  }
  return rules;
}

}  // namespace

intent_engine::intent_engine(intent_config config)
    : config_{std::move(config)} {
  expects(config_.timeout_s > 0.0, "intent_engine: timeout_s must be > 0");
  if (config_.rules.empty()) {
    config_.rules = default_rules();
  }
}

bool intent_engine::armed_at(double time_s) const {
  if (config_.wake_command_id.empty()) {
    return true;  // no wake stage configured: always armed
  }
  return armed_ && time_s <= armed_until_s_;
}

std::optional<std::string> intent_engine::on_command(
    const std::string& command_id, double time_s) {
  if (!config_.wake_command_id.empty() &&
      command_id == config_.wake_command_id) {
    armed_ = true;
    armed_until_s_ = time_s + config_.timeout_s;
    return std::nullopt;  // arming is not an intent
  }
  if (!armed_at(time_s)) {
    armed_ = false;  // timed out: back to idle until the next wake
    return std::nullopt;
  }
  for (const intent_rule& r : config_.rules) {
    if (r.command_id == command_id) {
      // An accepted command keeps the session hot (the sln_voice
      // engine re-arms its timeout on every recognized intent).
      if (!config_.wake_command_id.empty()) {
        armed_until_s_ = time_s + config_.timeout_s;
      }
      return r.intent;
    }
  }
  return std::nullopt;  // armed but unmapped
}

void intent_engine::reset() {
  armed_ = false;
  armed_until_s_ = 0.0;
}

json::value intent_engine::snapshot() const {
  json::object o;
  o.emplace_back("armed", json::value{armed_});
  o.emplace_back("until", json::value{armed_until_s_});
  return json::value{std::move(o)};
}

void intent_engine::restore(const json::value& snap) {
  armed_ = json::flag(snap, "armed");
  armed_until_s_ = json::num(snap, "until");
}

command_pipeline::metric_handles::metric_handles(obs::metrics_registry* reg)
    : blocked{reg == nullptr
                  ? obs::counter{}
                  : reg->get_counter("serve_pipeline_outcomes_total",
                                     {{"kind", "blocked"}})},
      executed{reg == nullptr
                   ? obs::counter{}
                   : reg->get_counter("serve_pipeline_outcomes_total",
                                      {{"kind", "executed"}})},
      rejected{reg == nullptr
                   ? obs::counter{}
                   : reg->get_counter("serve_pipeline_outcomes_total",
                                      {{"kind", "rejected_by_asr"}})},
      ignored{reg == nullptr
                  ? obs::counter{}
                  : reg->get_counter("serve_pipeline_outcomes_total",
                                     {{"kind", "ignored"}})},
      deadline_overruns{
          reg == nullptr
              ? obs::counter{}
              : reg->get_counter("serve_pipeline_fault_blocks_total",
                                 {{"fault", "deadline_overrun"}})},
      degraded_sheds{reg == nullptr
                         ? obs::counter{}
                         : reg->get_counter("serve_pipeline_fault_blocks_total",
                                            {{"fault", "degraded_shed"}})},
      stage_fault_flushes{
          reg == nullptr
              ? obs::counter{}
              : reg->get_counter("serve_pipeline_fault_blocks_total",
                                 {{"fault", "stage_fault"}})} {}

command_pipeline::command_pipeline(pipeline_config config)
    : config_{std::move(config)},
      metrics_{config_.metrics.get()},
      segmenter_{config_.segmenter},
      intent_{config_.intent} {
  expects(config_.recognizer != nullptr,
          "command_pipeline: a shared recognizer template set is required");
  expects(config_.decision_window_s >= 0.0,
          "command_pipeline: decision_window_s must be >= 0");
  expects(config_.verdict_guard_s >= 0.0,
          "command_pipeline: verdict_guard_s must be >= 0");
}

void command_pipeline::absorb_verdicts(
    const std::vector<defense::stream_event>& verdicts) {
  for (const defense::stream_event& e : verdicts) {
    if (e.is_attack) {
      attack_windows_.emplace_back(e.time_s,
                                   e.time_s + config_.decision_window_s);
    }
  }
}

std::vector<command_outcome> command_pipeline::feed(
    const audio::buffer& block,
    const std::vector<defense::stream_event>& verdicts) {
  // Verdicts first: any utterance this block completes resolves against
  // every window decided up to and including this block.
  absorb_verdicts(verdicts);
  // Integer sample count, like the segmenter's frame grid: the stream
  // position the gate compares against must not depend on how the
  // stream was chunked into feed() blocks.
  if (rate_ == 0.0) {
    rate_ = block.sample_rate_hz;
  }
  consumed_samples_ += block.samples.size();
  consumed_s_ = static_cast<double>(consumed_samples_) / rate_;
  std::vector<asr::utterance> cut = segmenter_.feed(block);
  for (asr::utterance& u : cut) {
    pending_.push_back(std::move(u));
  }
  std::vector<command_outcome> out;
  resolve_ready(/*flush=*/false, out);
  return out;
}

std::vector<command_outcome> command_pipeline::finish(
    const std::vector<defense::stream_event>& tail_verdicts) {
  absorb_verdicts(tail_verdicts);
  std::vector<asr::utterance> cut = segmenter_.finish();
  for (asr::utterance& u : cut) {
    pending_.push_back(std::move(u));
  }
  std::vector<command_outcome> out;
  resolve_ready(/*flush=*/true, out);
  attack_windows_.clear();
  intent_.reset();
  consumed_samples_ = 0;
  consumed_s_ = 0.0;
  rate_ = 0.0;
  degraded_until_s_ = 0.0;
  return out;
}

std::vector<command_outcome> command_pipeline::fail_closed() {
  // The segmenter may hold an open utterance or pre-roll; adopt whatever
  // it can still cut so those utterances are accounted for — as blocked,
  // never executed. If the segmenter itself is the faulted state, its
  // samples are lost: losing genuine audio is the accepted cost,
  // leaking a command is not.
  try {
    std::vector<asr::utterance> cut = segmenter_.finish();
    for (asr::utterance& u : cut) {
      pending_.push_back(std::move(u));
    }
  } catch (...) {
    segmenter_.reset();
  }
  std::vector<command_outcome> out;
  out.reserve(pending_.size());
  for (const asr::utterance& u : pending_) {
    command_outcome o;
    o.start_s = u.start_s;
    o.end_s = u.end_s;
    o.kind = command_outcome::kind_t::blocked;
    o.fault = command_outcome::fault_t::stage_fault;
    note(o);
    out.push_back(std::move(o));
  }
  reset();
  return out;
}

void command_pipeline::note(const command_outcome& o) {
  switch (o.kind) {
    case command_outcome::kind_t::blocked:
      metrics_.blocked.inc();
      break;
    case command_outcome::kind_t::executed:
      metrics_.executed.inc();
      break;
    case command_outcome::kind_t::rejected_by_asr:
      metrics_.rejected.inc();
      break;
    case command_outcome::kind_t::ignored:
      metrics_.ignored.inc();
      break;
  }
  switch (o.fault) {
    case command_outcome::fault_t::deadline_overrun:
      metrics_.deadline_overruns.inc();
      break;
    case command_outcome::fault_t::degraded_shed:
      metrics_.degraded_sheds.inc();
      break;
    case command_outcome::fault_t::stage_fault:
      metrics_.stage_fault_flushes.inc();
      break;
    case command_outcome::fault_t::none:
    case command_outcome::fault_t::recognizer_throw:
      break;
  }
}

void command_pipeline::resolve_ready(bool flush,
                                     std::vector<command_outcome>& out) {
  while (!pending_.empty()) {
    const asr::utterance& u = pending_.front();
    // resolve() accepts any window starting before end_s +
    // verdict_guard_s, and such a window is only decided once the
    // detector has consumed a full analysis window past its start. So
    // the utterance is decidable only once the stream has been consumed
    // past end_s + verdict_guard_s + decision_window_s — resolving
    // earlier could miss a veto and would break determinism.
    if (!flush && consumed_s_ < u.end_s + config_.verdict_guard_s +
                                    config_.decision_window_s) {
      break;
    }
    out.push_back(resolve(u));
    note(out.back());
    pending_.pop_front();
  }
  // Windows that can no longer overlap anything pending are done. The
  // segmenter may still hold an OPEN utterance (or pre-roll a future
  // one will adopt) reaching back before consumed_s_, so the prune
  // horizon is the earliest point any unresolved utterance can start —
  // not the consumption front.
  double horizon = segmenter_.earliest_start_s();
  if (!pending_.empty()) {
    horizon = std::min(horizon, pending_.front().start_s);
  }
  std::erase_if(attack_windows_, [&](const std::pair<double, double>& w) {
    return w.second + config_.verdict_guard_s < horizon;
  });
}

command_outcome command_pipeline::resolve(const asr::utterance& u) {
  // Fault-schedule coordinate for this utterance: advances in
  // accepted-block order and is never rewound (not even by reset()), so
  // a reopened session never replays already-fired coordinates.
  const std::uint64_t utterance_index = utterance_index_++;
  command_outcome o;
  o.start_s = u.start_s;
  o.end_s = u.end_s;

  // Defense veto: a flagged window that overlaps the utterance (grown
  // by the guard) blocks it before any recognition runs — the deployed
  // defense sits AHEAD of the assistant's ASR.
  for (const std::pair<double, double>& w : attack_windows_) {
    if (w.first < u.end_s + config_.verdict_guard_s &&
        w.second > u.start_s - config_.verdict_guard_s) {
      o.kind = command_outcome::kind_t::blocked;
      return o;
    }
  }

  // Degradation ladder, first rung: while the ASR stage is shed the
  // utterance resolves fail-closed without recognition. The comparison
  // uses the utterance's resolution-eligibility time — a pure function
  // of its bounds — not consumed_s_, which depends on block chunking.
  const double eligible_s =
      u.end_s + config_.verdict_guard_s + config_.decision_window_s;
  if (eligible_s < degraded_until_s_) {
    o.kind = command_outcome::kind_t::blocked;
    o.fault = command_outcome::fault_t::degraded_shed;
    return o;
  }

  // ASR deadline: the MODELED recognizer cost (deterministic, never wall
  // clock) against the budget. An injected overrun stalls the model past
  // any budget. Overruns resolve fail-closed and shed the ASR stage for
  // the degrade window.
  const bool injected_overrun =
      config_.faults != nullptr &&
      config_.faults->fires(fault_kind::recognizer_overrun,
                            config_.fault_session_id, utterance_index);
  if (injected_overrun ||
      (config_.asr_deadline_s > 0.0 &&
       u.samples.duration_s() * config_.asr_cost_rtf >
           config_.asr_deadline_s)) {
    o.kind = command_outcome::kind_t::blocked;
    o.fault = command_outcome::fault_t::deadline_overrun;
    degraded_until_s_ = eligible_s + config_.degrade_window_s;
    return o;
  }

  if (config_.faults != nullptr &&
      config_.faults->fires(fault_kind::recognizer_throw,
                            config_.fault_session_id, utterance_index)) {
    // Escapes to the session's containment: the session quarantines and
    // this utterance (still pending) is flushed fail-closed.
    throw std::runtime_error{"injected fault: recognizer throw"};
  }

  const clock::time_point t0 = clock::now();
  const asr::recognition_result r = config_.recognizer->recognize(u.samples);
  o.asr_s = std::chrono::duration<double>(clock::now() - t0).count();
  o.asr_distance = r.best_distance;
  o.asr_margin = r.margin;
  if (!r.accepted()) {
    o.kind = command_outcome::kind_t::rejected_by_asr;
    return o;
  }
  o.command_id = *r.command_id;
  const std::optional<std::string> intent =
      intent_.on_command(o.command_id, u.end_s);
  if (intent.has_value()) {
    o.kind = command_outcome::kind_t::executed;
    o.intent = *intent;
  } else {
    o.kind = command_outcome::kind_t::ignored;
  }
  return o;
}

json::value command_pipeline::snapshot() const {
  json::object o;
  o.emplace_back("seg", segmenter_.snapshot());
  o.emplace_back("int", intent_.snapshot());
  json::array windows;
  windows.reserve(attack_windows_.size() * 2);
  for (const std::pair<double, double>& w : attack_windows_) {
    windows.emplace_back(w.first);
    windows.emplace_back(w.second);
  }
  o.emplace_back("aw", json::value{std::move(windows)});
  json::array pending;
  pending.reserve(pending_.size());
  for (const asr::utterance& u : pending_) {
    json::object uo;
    uo.emplace_back("s", json::value{u.start_s});
    uo.emplace_back("e", json::value{u.end_s});
    uo.emplace_back("r", json::value{u.samples.sample_rate_hz});
    uo.emplace_back("x", json::from_samples(u.samples.samples));
    pending.emplace_back(std::move(uo));
  }
  o.emplace_back("pend", json::value{std::move(pending)});
  o.emplace_back("csamp", json::value{static_cast<double>(consumed_samples_)});
  o.emplace_back("rate", json::value{rate_});
  o.emplace_back("ui", json::value{static_cast<double>(utterance_index_)});
  o.emplace_back("dg", json::value{degraded_until_s_});
  return json::value{std::move(o)};
}

void command_pipeline::restore(const json::value& snap) {
  segmenter_.restore(json::field(snap, "seg"));
  intent_.restore(json::field(snap, "int"));
  attack_windows_.clear();
  const json::array& windows = json::arr(snap, "aw");
  for (std::size_t i = 0; i + 1 < windows.size(); i += 2) {
    attack_windows_.emplace_back(windows[i].number(), windows[i + 1].number());
  }
  pending_.clear();
  for (const json::value& uo : json::arr(snap, "pend")) {
    asr::utterance u;
    u.start_s = json::num(uo, "s");
    u.end_s = json::num(uo, "e");
    u.samples = audio::buffer{json::to_samples(json::field(uo, "x")),
                              json::num(uo, "r")};
    pending_.push_back(std::move(u));
  }
  consumed_samples_ = json::u64(snap, "csamp");
  rate_ = json::num(snap, "rate");
  // Derived exactly as feed() derives it, so the resolution gate
  // compares the same double it would have without the round trip.
  consumed_s_ =
      rate_ > 0.0 ? static_cast<double>(consumed_samples_) / rate_ : 0.0;
  utterance_index_ = json::u64(snap, "ui");
  degraded_until_s_ = json::num(snap, "dg");
}

void command_pipeline::reset() {
  segmenter_.reset();
  intent_.reset();
  attack_windows_.clear();
  pending_.clear();
  consumed_samples_ = 0;
  consumed_s_ = 0.0;
  rate_ = 0.0;
  degraded_until_s_ = 0.0;
  // utterance_index_ is deliberately NOT reset: it is a fault-schedule
  // coordinate, and rewinding it would replay fired faults after reopen.
}

}  // namespace ivc::serve
