#include "serve/shard.h"

#include <thread>
#include <utility>

#include "common/error.h"

namespace ivc::serve {

namespace {

// splitmix64 finalizer — the same mixer the fault injector uses, so the
// shard assignment is stable across platforms and sessions spread
// uniformly even when ids are dense (0, 1, 2, ...).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e37'79b9'7f4a'7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return x ^ (x >> 31);
}

}  // namespace

shard_manager::shard_manager(defense::classifier_detector detector,
                             serve_config config, std::size_t num_shards)
    : config_{config}, faults_{config.faults} {
  expects(num_shards >= 1, "shard_manager: need at least one shard");
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<session_manager>(detector, config));
  }
  offers_.assign(num_shards, 0);
  shard_kills_.assign(num_shards, 0);
}

shard_manager::route shard_manager::route_of(std::uint64_t id) const {
  const ts_lock lock{routes_mutex_};
  expects(id < routes_.size(), "shard_manager: unknown session id");
  return routes_[id];
}

std::uint64_t shard_manager::open_session() {
  const ts_lock lock{routes_mutex_};
  const auto id = static_cast<std::uint64_t>(routes_.size());
  const auto sh = static_cast<std::uint32_t>(mix64(id) % shards_.size());
  const std::uint64_t local = shards_[sh]->open_session();
  routes_.push_back(route{sh, local});
  return id;
}

std::uint64_t shard_manager::open_session(const serve_config& config) {
  const ts_lock lock{routes_mutex_};
  const auto id = static_cast<std::uint64_t>(routes_.size());
  const auto sh = static_cast<std::uint32_t>(mix64(id) % shards_.size());
  const std::uint64_t local = shards_[sh]->open_session(config);
  routes_.push_back(route{sh, local});
  return id;
}

std::uint64_t shard_manager::open_session(
    std::shared_ptr<const serve_config> config) {
  const ts_lock lock{routes_mutex_};
  const auto id = static_cast<std::uint64_t>(routes_.size());
  const auto sh = static_cast<std::uint32_t>(mix64(id) % shards_.size());
  const std::uint64_t local = shards_[sh]->open_session(std::move(config));
  routes_.push_back(route{sh, local});
  return id;
}

std::size_t shard_manager::num_sessions() const {
  const ts_lock lock{routes_mutex_};
  return routes_.size();
}

std::size_t shard_manager::shard_of(std::uint64_t id) const {
  return route_of(id).shard;
}

session_manager& shard_manager::shard(std::size_t i) {
  expects(i < shards_.size(), "shard_manager: shard index out of range");
  return *shards_[i];
}

const session_manager& shard_manager::shard(std::size_t i) const {
  expects(i < shards_.size(), "shard_manager: shard index out of range");
  return *shards_[i];
}

offer_status shard_manager::offer(std::uint64_t id, audio::buffer block) {
  route r;
  std::uint64_t offer_index = 0;
  {
    const ts_lock lock{routes_mutex_};
    expects(id < routes_.size(), "shard_manager: unknown session id");
    r = routes_[id];
    offer_index = offers_[r.shard]++;
  }
  const offer_status status = shards_[r.shard]->offer(r.local, std::move(block));
  // shard_kill draw AFTER delivery: the offered session has queued work
  // now, so it survives the kill resident — the rest of the shard's
  // idle sessions drop to their snapshots.
  if (faults_ != nullptr &&
      faults_->fires(fault_kind::shard_kill, r.shard, offer_index)) {
    shards_[r.shard]->evict_idle();
    const ts_lock lock{routes_mutex_};
    ++shard_kills_[r.shard];
  }
  return status;
}

void shard_manager::close(std::uint64_t id) {
  const route r = route_of(id);
  shards_[r.shard]->close(r.local);
}

void shard_manager::close_all() {
  for (const std::unique_ptr<session_manager>& sh : shards_) {
    sh->close_all();
  }
}

void shard_manager::drain() {
  // Shards are independent lock domains: drain them concurrently, one
  // thread each driving that shard's own fork-join pool.
  std::vector<std::thread> drivers;
  drivers.reserve(shards_.size());
  for (const std::unique_ptr<session_manager>& sh : shards_) {
    drivers.emplace_back([&sh] { sh->drain(); });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
}

void shard_manager::start(std::size_t workers_per_shard) {
  for (const std::unique_ptr<session_manager>& sh : shards_) {
    sh->start(workers_per_shard);
  }
}

void shard_manager::stop() {
  for (const std::unique_ptr<session_manager>& sh : shards_) {
    sh->stop();
  }
}

bool shard_manager::streaming() const {
  for (const std::unique_ptr<session_manager>& sh : shards_) {
    if (sh->streaming()) {
      return true;
    }
  }
  return false;
}

void shard_manager::finish() {
  if (streaming()) {
    close_all();
    stop();
    drain();
    return;
  }
  close_all();
  drain();
}

bool shard_manager::reopen(std::uint64_t id) {
  const route r = route_of(id);
  return shards_[r.shard]->reopen(r.local);
}

bool shard_manager::resident(std::uint64_t id) const {
  const route r = route_of(id);
  return shards_[r.shard]->resident(r.local);
}

std::vector<defense::stream_event> shard_manager::verdicts(
    std::uint64_t id) const {
  const route r = route_of(id);
  return shards_[r.shard]->verdicts(r.local);
}

std::vector<command_outcome> shard_manager::outcomes(std::uint64_t id) const {
  const route r = route_of(id);
  return shards_[r.shard]->outcomes(r.local);
}

session_stats shard_manager::stats(std::uint64_t id) const {
  const route r = route_of(id);
  return shards_[r.shard]->stats(r.local);
}

std::vector<obs::span> shard_manager::trace(std::uint64_t id) const {
  const route r = route_of(id);
  return shards_[r.shard]->trace(r.local);
}

std::vector<std::vector<std::uint64_t>> shard_manager::global_ids() const {
  std::vector<std::vector<std::uint64_t>> to_global(shards_.size());
  const ts_lock lock{routes_mutex_};
  for (std::uint64_t gid = 0; gid < routes_.size(); ++gid) {
    // open_session hands out local ids densely in global-id order, so
    // this scan appends each shard's table already in local-id order.
    to_global[routes_[gid].shard].push_back(gid);
  }
  return to_global;
}

serve_totals shard_manager::aggregate() const {
  const std::vector<std::vector<std::uint64_t>> to_global = global_ids();
  serve_totals totals;
  totals.stats = session_stats{config_.latency_bins};
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const serve_totals t = shards_[i]->aggregate();
    totals.stats.merge(t.stats);
    totals.num_sessions += t.num_sessions;
    totals.sessions_with_attack_events += t.sessions_with_attack_events;
    totals.sessions_degraded += t.sessions_degraded;
    totals.sessions_recovering += t.sessions_recovering;
    totals.sessions_quarantined += t.sessions_quarantined;
    for (const auto& [local, err] : t.quarantine_errors) {
      totals.quarantine_errors.emplace_back(to_global[i][local], err);
    }
  }
  return totals;
}

eviction_stats shard_manager::eviction() const {
  eviction_stats totals{config_.latency_bins};
  for (const std::unique_ptr<session_manager>& sh : shards_) {
    const eviction_stats e = sh->eviction();
    totals.evictions += e.evictions;
    totals.rehydrations += e.rehydrations;
    totals.frozen_bytes += e.frozen_bytes;
    totals.resident += e.resident;
    totals.rehydrate_latency.merge(e.rehydrate_latency);
  }
  return totals;
}

shard_balance shard_manager::balance() const {
  shard_balance out;
  out.shards.reserve(shards_.size());
  std::vector<std::uint64_t> offers;
  std::vector<std::uint64_t> kills;
  {
    const ts_lock lock{routes_mutex_};
    offers = offers_;
    kills = shard_kills_;
  }
  const std::vector<std::vector<std::uint64_t>> to_global = global_ids();
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_load load;
    load.sessions = shards_[i]->num_sessions();
    const eviction_stats e = shards_[i]->eviction();
    load.resident = e.resident;
    load.evictions = e.evictions;
    load.rehydrations = e.rehydrations;
    load.offers = offers[i];
    load.shard_kills = kills[i];
    const std::vector<std::pair<std::uint64_t, std::string>> parked =
        shards_[i]->quarantine_errors();
    load.quarantined = parked.size();
    for (const auto& [local, err] : parked) {
      out.quarantine_errors.emplace_back(to_global[i][local], err);
    }
    if (i == 0 || load.sessions < out.min_sessions) {
      out.min_sessions = load.sessions;
    }
    if (load.sessions > out.max_sessions) {
      out.max_sessions = load.sessions;
    }
    total += load.sessions;
    out.shards.push_back(load);
  }
  out.mean_sessions = shards_.empty()
                          ? 0.0
                          : static_cast<double>(total) /
                                static_cast<double>(shards_.size());
  return out;
}

}  // namespace ivc::serve
