#include "serve/session_manager.h"

#include <utility>

#include "common/error.h"

namespace ivc::serve {

session_manager::session_manager(defense::classifier_detector detector,
                                 serve_config config)
    : detector_{std::move(detector)},
      config_{config},
      pool_{config.worker_threads} {}

session_manager::~session_manager() { stop(); }

std::uint64_t session_manager::open_session() { return open_session(config_); }

std::uint64_t session_manager::open_session(const serve_config& config) {
  expects(config.latency_bins == config_.latency_bins,
          "session_manager: a per-session config must keep the fleet's "
          "latency binning — aggregate() merges histograms config-checked");
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  const auto id = static_cast<std::uint64_t>(sessions_.size());
  sessions_.push_back(
      std::make_unique<detection_session>(id, detector_, config));
  {
    std::lock_guard<std::mutex> sched_lock{sched_mutex_};
    sched_.push_back(sched_state::idle);
  }
  return id;
}

std::size_t session_manager::num_sessions() const {
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  return sessions_.size();
}

const detection_session& session_manager::session(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  expects(id < sessions_.size(), "session_manager: unknown session id");
  return *sessions_[id];
}

offer_status session_manager::offer(std::uint64_t id, audio::buffer block) {
  detection_session* s = nullptr;
  {
    std::lock_guard<std::mutex> lock{sessions_mutex_};
    expects(id < sessions_.size(), "session_manager: unknown session id");
    s = sessions_[id].get();
  }
  const offer_status status = s->offer(std::move(block));
  if (status == offer_status::accepted) {
    notify_ready(id, s);
  }
  return status;
}

void session_manager::close(std::uint64_t id) {
  detection_session* s = nullptr;
  {
    std::lock_guard<std::mutex> lock{sessions_mutex_};
    expects(id < sessions_.size(), "session_manager: unknown session id");
    s = sessions_[id].get();
  }
  s->close();
  notify_ready(id, s);  // the close() flush is work
}

void session_manager::close_all() {
  std::vector<detection_session*> all;
  {
    std::lock_guard<std::mutex> lock{sessions_mutex_};
    all.reserve(sessions_.size());
    for (const std::unique_ptr<detection_session>& s : sessions_) {
      all.push_back(s.get());
    }
  }
  for (detection_session* s : all) {
    s->close();
    notify_ready(s->id(), s);
  }
}

void session_manager::drain() {
  expects(!streaming(),
          "session_manager: drain() must not run while streaming workers "
          "are live — call stop() first");
  for (;;) {
    std::vector<detection_session*> ready;
    {
      std::lock_guard<std::mutex> lock{sessions_mutex_};
      ready.reserve(sessions_.size());
      for (const std::unique_ptr<detection_session>& s : sessions_) {
        if (s->has_work()) {
          ready.push_back(s.get());
        }
      }
    }
    if (ready.empty()) {
      return;
    }
    // One task per ready session: a session is drained by exactly one
    // worker (process() claims it), so verdict order never depends on
    // the pool size. The backstop catch is the fleet's containment of
    // last resort — process() contains stage faults itself, but if an
    // exception ever escapes it, that session is parked and the OTHER
    // sessions keep draining instead of the whole process dying in
    // std::terminate.
    pool_.parallel_for(ready.size(), [&](std::size_t i) {
      try {
        ready[i]->process(config_.max_blocks_per_pass);
      } catch (const std::exception& e) {
        ready[i]->force_quarantine(e.what());
      } catch (...) {
        ready[i]->force_quarantine("unknown exception escaped process()");
      }
    });
  }
}

void session_manager::start(std::size_t n_workers) {
  const std::size_t count =
      n_workers == 0 ? default_thread_count() : n_workers;
  {
    // Hold BOTH locks (sessions, then sched — the global order) across
    // seeding and worker spawn: an open_session + offer racing start()
    // then either lands before (and the seed scan below sees its work)
    // or after (and notify_ready sees live workers and enqueues it) —
    // never in a gap where both miss it.
    std::lock_guard<std::mutex> sessions_lock{sessions_mutex_};
    std::lock_guard<std::mutex> lock{sched_mutex_};
    if (!workers_.empty()) {
      return;  // idempotent: already streaming
    }
    stopping_ = false;
    // Seed the ready-queue with everything offered before start(): those
    // offers saw no live workers and did not enqueue.
    for (const std::unique_ptr<detection_session>& s : sessions_) {
      const std::uint64_t id = s->id();
      if (sched_[id] == sched_state::idle && s->has_work()) {
        sched_[id] = sched_state::queued;
        ready_.emplace_back(id, s.get());
      }
    }
    workers_.reserve(count);
    for (std::size_t w = 0; w < count; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  sched_cv_.notify_all();
}

void session_manager::stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock{sched_mutex_};
    if (workers_.empty()) {
      return;  // idempotent: not streaming
    }
    stopping_ = true;
    workers.swap(workers_);
  }
  sched_cv_.notify_all();
  for (std::thread& t : workers) {
    t.join();
  }
  std::lock_guard<std::mutex> lock{sched_mutex_};
  // Offers racing with stop() can strand entries after the last worker
  // exits; reset the schedule — the blocks themselves are still queued
  // in their sessions and the next start()/drain() picks them up.
  ready_.clear();
  for (sched_state& st : sched_) {
    st = sched_state::idle;
  }
}

bool session_manager::streaming() const {
  std::lock_guard<std::mutex> lock{sched_mutex_};
  return !workers_.empty();
}

bool session_manager::reopen(std::uint64_t id) {
  detection_session* s = nullptr;
  {
    std::lock_guard<std::mutex> lock{sessions_mutex_};
    expects(id < sessions_.size(), "session_manager: unknown session id");
    s = sessions_[id].get();
  }
  if (!s->reopen()) {
    return false;
  }
  // While quarantined the session refused the ready-queue via
  // has_work() == false; blocks that were already queued (or a pending
  // close() flush) are work again now.
  if (s->has_work()) {
    notify_ready(id, s);
  }
  return true;
}

void session_manager::notify_ready(std::uint64_t id, detection_session* s) {
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock{sched_mutex_};
    if (workers_.empty()) {
      return;  // not streaming: drain() discovers work by scanning
    }
    if (sched_[id] == sched_state::idle) {
      sched_[id] = sched_state::queued;
      ready_.emplace_back(id, s);
      enqueued = true;
    }
  }
  if (enqueued) {
    sched_cv_.notify_one();
  }
}

void session_manager::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock{sched_mutex_};
    sched_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      return;  // stopping_ and nothing left to do
    }
    const auto [id, s] = ready_.front();
    ready_.pop_front();
    sched_[id] = sched_state::claimed;
    lock.unlock();

    // Same backstop as drain(): a streaming worker thread that lets an
    // exception escape dies in std::terminate and takes the process with
    // it. Park the session instead; the worker survives to serve the
    // rest of the fleet.
    try {
      s->process(config_.max_blocks_per_pass);
    } catch (const std::exception& e) {
      s->force_quarantine(e.what());
    } catch (...) {
      s->force_quarantine("unknown exception escaped process()");
    }

    lock.lock();
    // Re-check under the scheduler lock: an offer that arrived while we
    // were processing saw state `claimed` and did not enqueue — it is
    // our job to re-queue. Conversely an offer that lands after this
    // check sees `idle` and enqueues itself. Either way no block is
    // stranded.
    if (s->has_work()) {
      sched_[id] = sched_state::queued;
      ready_.emplace_back(id, s);
      lock.unlock();
      sched_cv_.notify_one();
    } else {
      sched_[id] = sched_state::idle;
    }
  }
}

void session_manager::finish() {
  close_all();
  // stop() is a no-op when not streaming; when streaming it flushes
  // everything enqueued, and the scan-based drain sweeps any block a
  // racing offer left behind.
  stop();
  drain();
}

std::vector<defense::stream_event> session_manager::verdicts(
    std::uint64_t id) const {
  return session(id).verdicts();
}

std::vector<command_outcome> session_manager::outcomes(
    std::uint64_t id) const {
  return session(id).outcomes();
}

session_stats session_manager::stats(std::uint64_t id) const {
  return session(id).stats();
}

serve_totals session_manager::aggregate() const {
  std::vector<detection_session*> all;
  {
    std::lock_guard<std::mutex> lock{sessions_mutex_};
    all.reserve(sessions_.size());
    for (const std::unique_ptr<detection_session>& s : sessions_) {
      all.push_back(s.get());
    }
  }
  // The fleet histograms must use the same binning as the per-session
  // ones: log_histogram::merge requires matching configs.
  serve_totals totals;
  totals.stats = session_stats{config_.latency_bins};
  totals.num_sessions = all.size();
  for (const detection_session* s : all) {
    const session_stats st = s->stats();
    totals.stats.blocks_offered += st.blocks_offered;
    totals.stats.blocks_accepted += st.blocks_accepted;
    totals.stats.blocks_processed += st.blocks_processed;
    totals.stats.blocks_shed += st.blocks_shed;
    totals.stats.blocks_rejected += st.blocks_rejected;
    totals.stats.samples_processed += st.samples_processed;
    totals.stats.audio_s_processed += st.audio_s_processed;
    totals.stats.events += st.events;
    totals.stats.attack_events += st.attack_events;
    totals.stats.utterances += st.utterances;
    totals.stats.commands_blocked += st.commands_blocked;
    totals.stats.commands_executed += st.commands_executed;
    totals.stats.commands_rejected += st.commands_rejected;
    totals.stats.commands_ignored += st.commands_ignored;
    totals.stats.latency.merge(st.latency);
    totals.stats.queue_wait.merge(st.queue_wait);
    totals.stats.service.merge(st.service);
    totals.stats.asr_service.merge(st.asr_service);
    totals.stats.detector_faults += st.detector_faults;
    totals.stats.recognizer_faults += st.recognizer_faults;
    totals.stats.corrupt_blocks += st.corrupt_blocks;
    totals.stats.asr_deadline_overruns += st.asr_deadline_overruns;
    totals.stats.utterances_shed_degraded += st.utterances_shed_degraded;
    totals.stats.utterances_failed_closed += st.utterances_failed_closed;
    totals.stats.quarantines += st.quarantines;
    totals.stats.reopens += st.reopens;
    totals.stats.blocks_dropped_backoff += st.blocks_dropped_backoff;
    totals.sessions_with_attack_events += st.attack_events > 0 ? 1 : 0;
    switch (s->state()) {
      case session_state::serving:
        break;
      case session_state::degraded:
        ++totals.sessions_degraded;
        break;
      case session_state::recovering:
        ++totals.sessions_recovering;
        break;
      case session_state::quarantined:
        ++totals.sessions_quarantined;
        break;
    }
  }
  return totals;
}

}  // namespace ivc::serve
