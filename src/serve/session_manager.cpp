#include "serve/session_manager.h"

#include <utility>

#include "common/error.h"

namespace ivc::serve {

session_manager::session_manager(defense::classifier_detector detector,
                                 serve_config config)
    : detector_{std::move(detector)},
      config_{config},
      pool_{config.worker_threads} {}

std::uint64_t session_manager::open_session() {
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  const auto id = static_cast<std::uint64_t>(sessions_.size());
  sessions_.push_back(
      std::make_unique<detection_session>(id, detector_, config_));
  return id;
}

std::size_t session_manager::num_sessions() const {
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  return sessions_.size();
}

const detection_session& session_manager::session(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  expects(id < sessions_.size(), "session_manager: unknown session id");
  return *sessions_[id];
}

offer_status session_manager::offer(std::uint64_t id, audio::buffer block) {
  detection_session* s = nullptr;
  {
    std::lock_guard<std::mutex> lock{sessions_mutex_};
    expects(id < sessions_.size(), "session_manager: unknown session id");
    s = sessions_[id].get();
  }
  return s->offer(std::move(block));
}

void session_manager::close(std::uint64_t id) {
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  expects(id < sessions_.size(), "session_manager: unknown session id");
  sessions_[id]->close();
}

void session_manager::close_all() {
  std::lock_guard<std::mutex> lock{sessions_mutex_};
  for (const std::unique_ptr<detection_session>& s : sessions_) {
    s->close();
  }
}

void session_manager::drain() {
  for (;;) {
    std::vector<detection_session*> ready;
    {
      std::lock_guard<std::mutex> lock{sessions_mutex_};
      ready.reserve(sessions_.size());
      for (const std::unique_ptr<detection_session>& s : sessions_) {
        if (s->has_work()) {
          ready.push_back(s.get());
        }
      }
    }
    if (ready.empty()) {
      return;
    }
    // One task per ready session: a session is drained by exactly one
    // worker (process() claims it), so verdict order never depends on
    // the pool size.
    pool_.parallel_for(ready.size(), [&](std::size_t i) {
      ready[i]->process(config_.max_blocks_per_pass);
    });
  }
}

void session_manager::finish() {
  close_all();
  drain();
}

const std::vector<defense::stream_event>& session_manager::verdicts(
    std::uint64_t id) const {
  return session(id).verdicts();
}

session_stats session_manager::stats(std::uint64_t id) const {
  return session(id).stats();
}

serve_totals session_manager::aggregate() const {
  std::vector<detection_session*> all;
  {
    std::lock_guard<std::mutex> lock{sessions_mutex_};
    all.reserve(sessions_.size());
    for (const std::unique_ptr<detection_session>& s : sessions_) {
      all.push_back(s.get());
    }
  }
  serve_totals totals;
  totals.num_sessions = all.size();
  for (const detection_session* s : all) {
    const session_stats st = s->stats();
    totals.stats.blocks_offered += st.blocks_offered;
    totals.stats.blocks_accepted += st.blocks_accepted;
    totals.stats.blocks_processed += st.blocks_processed;
    totals.stats.blocks_shed += st.blocks_shed;
    totals.stats.blocks_rejected += st.blocks_rejected;
    totals.stats.samples_processed += st.samples_processed;
    totals.stats.audio_s_processed += st.audio_s_processed;
    totals.stats.events += st.events;
    totals.stats.attack_events += st.attack_events;
    totals.stats.latency.merge(st.latency);
    totals.sessions_with_attack_events += st.attack_events > 0 ? 1 : 0;
  }
  return totals;
}

}  // namespace ivc::serve
