#include "serve/session_manager.h"

#include <chrono>
#include <utility>

#include "common/error.h"

namespace ivc::serve {

session_manager::metric_handles::metric_handles(obs::metrics_registry* reg)
    : evictions{reg == nullptr
                    ? obs::counter{}
                    : reg->get_counter("serve_evictions_total", {},
                                       /*deterministic=*/false)},
      rehydrations{reg == nullptr
                       ? obs::counter{}
                       : reg->get_counter("serve_rehydrations_total", {},
                                          /*deterministic=*/false)},
      resident{reg == nullptr ? obs::gauge{}
                              : reg->get_gauge("serve_resident_sessions")},
      frozen_bytes{reg == nullptr ? obs::gauge{}
                                  : reg->get_gauge("serve_frozen_bytes")},
      rehydrate_latency{
          reg == nullptr
              ? obs::histogram{}
              : reg->get_histogram("serve_rehydrate_latency_seconds")} {}

session_manager::session_manager(defense::classifier_detector detector,
                                 serve_config config)
    : detector_{std::move(detector)},
      config_{config},
      metrics_{config.metrics.get()},
      pool_{config.worker_threads},
      evic_{config.latency_bins} {}

session_manager::~session_manager() { stop(); }

std::uint64_t session_manager::open_session() {
  const ts_lock lock{sessions_mutex_};
  return open_slot(nullptr, config_);
}

std::uint64_t session_manager::open_session(const serve_config& config) {
  const ts_lock lock{sessions_mutex_};
  return open_slot(std::make_shared<const serve_config>(config), config);
}

std::uint64_t session_manager::open_session(
    std::shared_ptr<const serve_config> config) {
  expects(config != nullptr, "session_manager: null shared config");
  const ts_lock lock{sessions_mutex_};
  const serve_config& effective = *config;
  return open_slot(std::move(config), effective);
}

std::uint64_t session_manager::open_slot(
    std::shared_ptr<const serve_config> cfg, const serve_config& effective) {
  expects(effective.latency_bins == config_.latency_bins,
          "session_manager: a per-session config must keep the fleet's "
          "latency binning — aggregate() merges histograms config-checked");
  const auto id = static_cast<std::uint64_t>(slots_.size());
  slot sl;
  sl.live = std::make_shared<detection_session>(id, detector_, effective);
  sl.cfg = std::move(cfg);
  sl.touch = ++touch_counter_;
  slots_.push_back(std::move(sl));
  ++resident_count_;
  metrics_.resident.set(static_cast<double>(resident_count_));
  if (config_.max_resident_sessions > 0) {
    lru_.emplace(slots_.back().touch, id);
  }
  {
    const ts_lock sched_lock{sched_mutex_};
    sched_.push_back(sched_state::idle);
  }
  enforce_residency();
  return id;
}

std::size_t session_manager::num_sessions() const {
  const ts_lock lock{sessions_mutex_};
  return slots_.size();
}

const detection_session& session_manager::session(std::uint64_t id) const {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  expects(slots_[id].live != nullptr,
          "session_manager: session is evicted — use the id-keyed "
          "accessors, which read frozen sessions in place");
  return *slots_[id].live;
}

bool session_manager::resident(std::uint64_t id) const {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  return slots_[id].live != nullptr;
}

// Rebuilds an evicted session from its frozen snapshot. Caller holds
// sessions_mutex_ — rehydration and eviction are fully serialized.
const std::shared_ptr<detection_session>& session_manager::ensure_resident(
    std::uint64_t id) {
  slot& sl = slots_[id];
  if (sl.live != nullptr) {
    return sl.live;
  }
  ensures(!sl.frozen.empty(),
          "session_manager: slot has neither a live session nor a snapshot");
  const auto t0 = std::chrono::steady_clock::now();
  const serve_config& cfg = sl.cfg != nullptr ? *sl.cfg : config_;
  auto s = std::make_shared<detection_session>(id, detector_, cfg);
  s->restore(json::from_binary(sl.frozen));
  evic_.frozen_bytes -= sl.frozen.size();
  sl.frozen.clear();
  sl.frozen.shrink_to_fit();
  sl.live = std::move(s);
  sl.touch = ++touch_counter_;
  ++resident_count_;
  ++evic_.rehydrations;
  if (config_.max_resident_sessions > 0) {
    lru_.emplace(sl.touch, id);
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  evic_.rehydrate_latency.record(dt);
  metrics_.rehydrations.inc();
  metrics_.rehydrate_latency.record(dt);
  metrics_.resident.set(static_cast<double>(resident_count_));
  metrics_.frozen_bytes.set(static_cast<double>(evic_.frozen_bytes));
  return sl.live;
}

// Freezes session `id` if it is idle. Caller holds sessions_mutex_.
bool session_manager::evict_locked(std::uint64_t id) {
  slot& sl = slots_[id];
  if (sl.live == nullptr) {
    return false;  // already evicted
  }
  json::value snap;
  if (!sl.live->try_snapshot(snap)) {
    return false;  // busy, queued work, or a close() flush owed
  }
  sl.closed_hint = snapshot_closed(snap);
  // Cache the health facts aggregate() needs, so the fleet roll-up
  // never decodes frozen images just to count quarantined sessions.
  sl.state_hint = snapshot_state(snap);
  sl.err_hint = snapshot_last_error(snap);
  sl.frozen = json::to_binary(snap);
  evic_.frozen_bytes += sl.frozen.size();
  sl.live.reset();
  --resident_count_;
  ++evic_.evictions;
  metrics_.evictions.inc();
  metrics_.resident.set(static_cast<double>(resident_count_));
  metrics_.frozen_bytes.set(static_cast<double>(evic_.frozen_bytes));
  return true;
}

// Evicts least-recently-offered idle sessions until the resident count
// is back under the bound (or no candidate can be frozen — busy/queued
// sessions stay, and the bound is enforced again on the next offer).
// Caller holds sessions_mutex_.
void session_manager::enforce_residency() {
  const std::size_t bound = config_.max_resident_sessions;
  if (bound == 0) {
    return;
  }
  // Candidates that refused to freeze go back on the heap AFTER the
  // loop, or the loop would pop them forever.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> busy;
  while (resident_count_ > bound && !lru_.empty()) {
    const auto [touch, id] = lru_.top();
    lru_.pop();
    const slot& sl = slots_[id];
    if (sl.live == nullptr) {
      continue;  // dead entry: session was evicted through another path
    }
    if (sl.touch != touch) {
      // Stale: the session was offered again since this entry was
      // pushed. Re-file it under its real recency and keep looking.
      lru_.emplace(sl.touch, id);
      continue;
    }
    if (!evict_locked(id)) {
      busy.emplace_back(touch, id);
    }
  }
  for (const auto& e : busy) {
    lru_.push(e);
  }
}

bool session_manager::evict(std::uint64_t id) {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  return evict_locked(id);
}

std::size_t session_manager::evict_idle() {
  const ts_lock lock{sessions_mutex_};
  std::size_t evicted = 0;
  for (std::uint64_t id = 0; id < slots_.size(); ++id) {
    evicted += evict_locked(id) ? 1 : 0;
  }
  return evicted;
}

eviction_stats session_manager::eviction() const {
  const ts_lock lock{sessions_mutex_};
  eviction_stats out = evic_;
  out.resident = resident_count_;
  return out;
}

offer_status session_manager::offer(std::uint64_t id, audio::buffer block) {
  // One critical section for rehydrate + offer + LRU touch + residency
  // enforcement: an eviction can never interleave with an offer to the
  // same session and drop its block.
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  const std::shared_ptr<detection_session> s = ensure_resident(id);
  const offer_status status = s->offer(std::move(block));
  slots_[id].touch = ++touch_counter_;
  if (status == offer_status::accepted) {
    notify_ready(id, s);
  }
  enforce_residency();
  return status;
}

void session_manager::close(std::uint64_t id) {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  slot& sl = slots_[id];
  if (sl.live == nullptr && sl.closed_hint) {
    return;  // frozen image is already closed + flushed: nothing owed
  }
  const std::shared_ptr<detection_session> s = ensure_resident(id);
  s->close();
  notify_ready(id, s);  // the close() flush is work
}

void session_manager::close_all() {
  const ts_lock lock{sessions_mutex_};
  for (std::uint64_t id = 0; id < slots_.size(); ++id) {
    slot& sl = slots_[id];
    if (sl.live == nullptr && sl.closed_hint) {
      continue;  // already closed + flushed when it was frozen
    }
    // Rehydrating to flush can overshoot the residency bound; the
    // freshly closed sessions become evictable again once drained.
    const std::shared_ptr<detection_session> s = ensure_resident(id);
    s->close();
    notify_ready(id, s);
  }
}

void session_manager::drain() {
  expects(!streaming(),
          "session_manager: drain() must not run while streaming workers "
          "are live — call stop() first");
  for (;;) {
    std::vector<std::shared_ptr<detection_session>> ready;
    {
      const ts_lock lock{sessions_mutex_};
      ready.reserve(slots_.size());
      for (const slot& sl : slots_) {
        // Evicted sessions are idle by construction: only live ones can
        // hold work.
        if (sl.live != nullptr && sl.live->has_work()) {
          ready.push_back(sl.live);
        }
      }
    }
    if (ready.empty()) {
      return;
    }
    // One task per ready session: a session is drained by exactly one
    // worker (process() claims it), so verdict order never depends on
    // the pool size. The backstop catch is the fleet's containment of
    // last resort — process() contains stage faults itself, but if an
    // exception ever escapes it, that session is parked and the OTHER
    // sessions keep draining instead of the whole process dying in
    // std::terminate.
    pool_.parallel_for(ready.size(), [&](std::size_t i) {
      try {
        ready[i]->process(config_.max_blocks_per_pass);
      } catch (const std::exception& e) {
        ready[i]->force_quarantine(e.what());
      } catch (...) {
        ready[i]->force_quarantine("unknown exception escaped process()");
      }
    });
  }
}

void session_manager::start(std::size_t n_workers) {
  const std::size_t count =
      n_workers == 0 ? default_thread_count() : n_workers;
  {
    // Hold BOTH locks (sessions, then sched — the global order) across
    // seeding and worker spawn: an open_session + offer racing start()
    // then either lands before (and the seed scan below sees its work)
    // or after (and notify_ready sees live workers and enqueues it) —
    // never in a gap where both miss it.
    const ts_lock sessions_lock{sessions_mutex_};
    const ts_lock lock{sched_mutex_};
    if (!workers_.empty()) {
      return;  // idempotent: already streaming
    }
    stopping_ = false;
    // Seed the ready-queue with everything offered before start(): those
    // offers saw no live workers and did not enqueue.
    for (std::uint64_t id = 0; id < slots_.size(); ++id) {
      const slot& sl = slots_[id];
      if (sl.live != nullptr && sched_[id] == sched_state::idle &&
          sl.live->has_work()) {
        sched_[id] = sched_state::queued;
        ready_.emplace_back(id, sl.live);
      }
    }
    workers_.reserve(count);
    for (std::size_t w = 0; w < count; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  sched_cv_.notify_all();
}

void session_manager::stop() {
  std::vector<std::thread> workers;
  {
    const ts_lock lock{sched_mutex_};
    if (workers_.empty()) {
      return;  // idempotent: not streaming
    }
    stopping_ = true;
    workers.swap(workers_);
  }
  sched_cv_.notify_all();
  for (std::thread& t : workers) {
    t.join();
  }
  const ts_lock lock{sched_mutex_};
  // Offers racing with stop() can strand entries after the last worker
  // exits; reset the schedule — the blocks themselves are still queued
  // in their sessions and the next start()/drain() picks them up.
  ready_.clear();
  for (sched_state& st : sched_) {
    st = sched_state::idle;
  }
}

bool session_manager::streaming() const {
  const ts_lock lock{sched_mutex_};
  return !workers_.empty();
}

bool session_manager::reopen(std::uint64_t id) {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  slot& sl = slots_[id];
  if (sl.live == nullptr) {
    // Peek at the frozen state first: reopening is only meaningful for
    // a quarantined session, and a plain `false` must not change the
    // resident set.
    if (snapshot_state(json::from_binary(sl.frozen)) !=
        session_state::quarantined) {
      return false;
    }
  }
  const std::shared_ptr<detection_session> s = ensure_resident(id);
  if (!s->reopen()) {
    return false;
  }
  // While quarantined the session refused the ready-queue via
  // has_work() == false; blocks that were already queued (or a pending
  // close() flush) are work again now.
  if (s->has_work()) {
    notify_ready(id, s);
  }
  return true;
}

void session_manager::notify_ready(std::uint64_t id,
                                   const std::shared_ptr<detection_session>& s) {
  bool enqueued = false;
  {
    const ts_lock lock{sched_mutex_};
    if (workers_.empty()) {
      return;  // not streaming: drain() discovers work by scanning
    }
    if (sched_[id] == sched_state::idle) {
      sched_[id] = sched_state::queued;
      ready_.emplace_back(id, s);
      enqueued = true;
    }
  }
  if (enqueued) {
    sched_cv_.notify_one();
  }
}

void session_manager::worker_loop() {
  for (;;) {
    ts_unique_lock lock{sched_mutex_};
    // Explicit wait loop (not the predicate overload): the predicate
    // would be a lambda reading stopping_/ready_, which the analysis
    // treats as a separate function with no lock held. The semantics
    // are identical — wait() re-acquires before the predicate re-check.
    while (!stopping_ && ready_.empty()) {
      sched_cv_.wait(lock.native());
    }
    if (ready_.empty()) {
      return;  // stopping_ and nothing left to do
    }
    const auto [id, s] = ready_.front();
    ready_.pop_front();
    sched_[id] = sched_state::claimed;
    lock.unlock();

    // Same backstop as drain(): a streaming worker thread that lets an
    // exception escape dies in std::terminate and takes the process with
    // it. Park the session instead; the worker survives to serve the
    // rest of the fleet.
    try {
      s->process(config_.max_blocks_per_pass);
    } catch (const std::exception& e) {
      s->force_quarantine(e.what());
    } catch (...) {
      s->force_quarantine("unknown exception escaped process()");
    }

    lock.lock();
    // Re-check under the scheduler lock: an offer that arrived while we
    // were processing saw state `claimed` and did not enqueue — it is
    // our job to re-queue. Conversely an offer that lands after this
    // check sees `idle` and enqueues itself. Either way no block is
    // stranded.
    bool renotify = false;
    if (s->has_work()) {
      sched_[id] = sched_state::queued;
      ready_.emplace_back(id, s);
      renotify = true;
    } else {
      sched_[id] = sched_state::idle;
    }
    lock.unlock();
    if (renotify) {
      sched_cv_.notify_one();
    }
  }
}

void session_manager::finish() {
  close_all();
  // stop() is a no-op when not streaming; when streaming it flushes
  // everything enqueued, and the scan-based drain sweeps any block a
  // racing offer left behind.
  stop();
  drain();
}

std::vector<defense::stream_event> session_manager::verdicts(
    std::uint64_t id) const {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  const slot& sl = slots_[id];
  if (sl.live != nullptr) {
    return sl.live->verdicts();
  }
  return snapshot_verdicts(json::from_binary(sl.frozen));
}

std::vector<command_outcome> session_manager::outcomes(
    std::uint64_t id) const {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  const slot& sl = slots_[id];
  if (sl.live != nullptr) {
    return sl.live->outcomes();
  }
  return snapshot_outcomes(json::from_binary(sl.frozen));
}

session_stats session_manager::stats(std::uint64_t id) const {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  const slot& sl = slots_[id];
  if (sl.live != nullptr) {
    return sl.live->stats();
  }
  return snapshot_stats(json::from_binary(sl.frozen), config_.latency_bins);
}

serve_totals session_manager::aggregate() const {
  const ts_lock lock{sessions_mutex_};
  // The fleet histograms must use the same binning as the per-session
  // ones: log_histogram::merge requires matching configs.
  serve_totals totals;
  totals.stats = session_stats{config_.latency_bins};
  totals.num_sessions = slots_.size();
  for (std::uint64_t id = 0; id < slots_.size(); ++id) {
    const slot& sl = slots_[id];
    session_stats st{config_.latency_bins};
    session_state state = session_state::serving;
    std::string error;
    if (sl.live != nullptr) {
      st = sl.live->stats();
      state = sl.live->state();
      if (state == session_state::quarantined) {
        error = sl.live->last_error();
      }
    } else {
      // Frozen sessions aggregate from their snapshot in place —
      // observing the fleet must not change the resident set. The
      // health facts come from the freeze-time hints, not a decode.
      st = snapshot_stats(json::from_binary(sl.frozen),
                          config_.latency_bins);
      state = sl.state_hint;
      error = sl.err_hint;
    }
    totals.stats.merge(st);
    totals.sessions_with_attack_events += st.attack_events > 0 ? 1 : 0;
    switch (state) {
      case session_state::serving:
        break;
      case session_state::degraded:
        ++totals.sessions_degraded;
        break;
      case session_state::recovering:
        ++totals.sessions_recovering;
        break;
      case session_state::quarantined:
        ++totals.sessions_quarantined;
        totals.quarantine_errors.emplace_back(id, std::move(error));
        break;
    }
  }
  return totals;
}

std::vector<std::pair<std::uint64_t, std::string>>
session_manager::quarantine_errors() const {
  const ts_lock lock{sessions_mutex_};
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (std::uint64_t id = 0; id < slots_.size(); ++id) {
    const slot& sl = slots_[id];
    if (sl.live != nullptr) {
      if (sl.live->state() == session_state::quarantined) {
        out.emplace_back(id, sl.live->last_error());
      }
    } else if (sl.state_hint == session_state::quarantined) {
      out.emplace_back(id, sl.err_hint);
    }
  }
  return out;
}

std::vector<obs::span> session_manager::trace(std::uint64_t id) const {
  const ts_lock lock{sessions_mutex_};
  expects(id < slots_.size(), "session_manager: unknown session id");
  const slot& sl = slots_[id];
  if (sl.live != nullptr) {
    return sl.live->trace();
  }
  return snapshot_trace(json::from_binary(sl.frozen));
}

}  // namespace ivc::serve
