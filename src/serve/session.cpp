#include "serve/session.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"

namespace ivc::serve {

namespace {
using clock = std::chrono::steady_clock;

// Releases the session's exclusive claim on every exit path — including
// an exception escaping process() itself. Containment must never leave
// busy_ stuck true, or the session would be unclaimable forever.
class busy_guard {
 public:
  explicit busy_guard(std::atomic<bool>& flag) : flag_{flag} {}
  ~busy_guard() { flag_.store(false); }
  busy_guard(const busy_guard&) = delete;
  busy_guard& operator=(const busy_guard&) = delete;

 private:
  std::atomic<bool>& flag_;
};

bool all_finite(const audio::buffer& b) {
  for (const double s : b.samples) {
    if (!std::isfinite(s)) {
      return false;
    }
  }
  return true;
}

}  // namespace

detection_session::detection_session(std::uint64_t id,
                                     defense::classifier_detector detector,
                                     const serve_config& config)
    : id_{id},
      capacity_{config.queue_capacity},
      policy_{config.policy},
      fault_tolerance_{config.fault_tolerance},
      faults_{config.faults},
      ring_(config.queue_capacity),
      stats_{config.latency_bins},
      detector_{std::move(detector), config.stream} {
  expects(capacity_ >= 1, "detection_session: queue capacity must be >= 1");
  if (config.pipeline.has_value()) {
    pipeline_config pc = *config.pipeline;
    if (pc.decision_window_s == 0.0) {
      // The pipeline defers utterance resolution by the detector's
      // actual analysis window; anything else would resolve before
      // every overlapping verdict is decided.
      pc.decision_window_s = config.stream.window_s;
    }
    // The recognizer-site fault coordinates are (kind, session id,
    // utterance index); the stage inherits the session's injector.
    if (pc.faults == nullptr) {
      pc.faults = faults_;
    }
    pc.fault_session_id = id_;
    pipeline_.emplace(std::move(pc));
  }
}

offer_status detection_session::offer(audio::buffer block) {
  audio::validate(block, "detection_session::offer");
  const clock::time_point now = clock::now();
  std::lock_guard<std::mutex> lock{mutex_};
  ++stats_.blocks_offered;
  if (closed_) {
    // Distinct from `rejected`: a rejected offer succeeds after a
    // drain, a closed session never accepts again — conflating the two
    // would livelock the drain-and-retry backpressure loop.
    ++stats_.blocks_rejected;
    return offer_status::closed;
  }
  if (state_ == session_state::quarantined) {
    // Same shape as closed: no amount of draining helps, only reopen().
    ++stats_.blocks_rejected;
    return offer_status::quarantined;
  }
  if (count_ == capacity_) {
    switch (policy_) {
      case overflow_policy::shed_newest:
        ++stats_.blocks_shed;
        return offer_status::shed;
      case overflow_policy::reject:
        ++stats_.blocks_rejected;
        return offer_status::rejected;
      case overflow_policy::shed_oldest:
        // Evict the head slot and fall through to enqueue. NOTE: evicting
        // mid-stream drops audio the detector never sees, so later
        // windows slide over a splice — that is the cost of shedding, and
        // exactly what the shed counters exist to expose.
        head_ = (head_ + 1) % capacity_;
        --count_;
        ++stats_.blocks_shed;
        break;
    }
  }
  const std::size_t slot = (head_ + count_) % capacity_;
  ring_[slot] = queued_block{std::move(block), now};
  ++count_;
  ++stats_.blocks_accepted;
  return offer_status::accepted;
}

void detection_session::close() {
  std::lock_guard<std::mutex> lock{mutex_};
  closed_ = true;
}

bool detection_session::closed() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return closed_;
}

session_state detection_session::state() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return state_;
}

std::string detection_session::last_error() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return last_error_;
}

bool detection_session::has_work() const {
  std::lock_guard<std::mutex> lock{mutex_};
  if (state_ == session_state::quarantined) {
    return false;  // nothing can be scored until reopen()
  }
  return count_ > 0 || (closed_ && !finished_);
}

bool detection_session::pop(queued_block& out) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (count_ == 0) {
    return false;
  }
  out = std::move(ring_[head_]);
  head_ = (head_ + 1) % capacity_;
  --count_;
  return true;
}

void detection_session::reset_stages() {
  detector_.reset();
  if (pipeline_.has_value()) {
    pipeline_->reset();
  }
}

bool detection_session::reopen() {
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true)) {
    return false;  // a worker owns the session (mid-containment)
  }
  const busy_guard guard{busy_};
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (state_ != session_state::quarantined) {
      return false;
    }
    state_ = session_state::recovering;
    last_error_.clear();
    ++stats_.reopens;
  }
  // A manual reopen grants a fresh retry budget and restarts the backoff
  // ladder at its first rung.
  reopen_count_ = 0;
  backoff_remaining_ = fault_tolerance_.backoff_blocks;
  reset_stages();
  return true;
}

void detection_session::force_quarantine(const std::string& what) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (state_ == session_state::quarantined) {
    return;
  }
  state_ = session_state::quarantined;
  last_error_ = what;
  ++stats_.quarantines;
}

// Containment: the calling worker holds busy_; an exception just escaped
// a scoring stage. Quarantine THIS session fail-closed and either
// auto-reopen (bounded retry + block-counted backoff) or park it.
void detection_session::contain_fault(std::uint64_t session_stats::* counter,
                                      const std::string& what) {
  // Flush the pipeline fail-closed FIRST: every utterance it still holds
  // resolves as blocked — a faulted stage must never leave an utterance
  // in a state where a later code path could execute it.
  std::vector<command_outcome> flushed;
  if (pipeline_.has_value()) {
    flushed = pipeline_->fail_closed();
  }
  const bool retry = fault_tolerance_.auto_reopen &&
                     reopen_count_ < fault_tolerance_.max_reopens;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stats_.*counter += 1;
    ++stats_.quarantines;
    record_outcomes(flushed);
    last_error_ = what;
    if (retry) {
      state_ = session_state::recovering;
      ++stats_.reopens;
    } else {
      state_ = session_state::quarantined;
    }
  }
  if (retry) {
    // Exponential block-counted backoff: 8, 16, 32, ... accepted blocks
    // consumed unscored before the stream restarts. Counted in blocks —
    // never wall clock — so recovery lands at the same stream position
    // at any worker count.
    backoff_remaining_ = static_cast<std::uint64_t>(
                             fault_tolerance_.backoff_blocks)
                         << reopen_count_;
    ++reopen_count_;
    reset_stages();
  }
}

std::size_t detection_session::process(std::size_t max_blocks) {
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true)) {
    return 0;  // another worker owns this session right now
  }
  const busy_guard guard{busy_};
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (state_ == session_state::quarantined) {
      return 0;  // parked: only reopen() restores service
    }
  }
  std::size_t processed = 0;
  queued_block item;
  while (max_blocks == 0 || processed < max_blocks) {
    {
      // Re-check per block: contain_fault() may have parked the session
      // mid-drain. Parked = stop scoring; queued blocks survive for a
      // potential reopen().
      std::lock_guard<std::mutex> lock{mutex_};
      if (state_ == session_state::quarantined) {
        return processed;
      }
    }
    if (!pop(item)) {
      break;
    }
    ++processed;
    // Fault-schedule coordinate of this block (accepted order).
    const std::uint64_t block_index = consumed_blocks_++;
    if (backoff_remaining_ > 0) {
      // Recovering: consume-and-drop until the backoff window passes,
      // then resume scoring with the fresh stages.
      --backoff_remaining_;
      std::lock_guard<std::mutex> lock{mutex_};
      ++stats_.blocks_dropped_backoff;
      if (backoff_remaining_ == 0 && state_ == session_state::recovering) {
        state_ = session_state::serving;
      }
      continue;
    }
    if (faults_ != nullptr &&
        faults_->fires(fault_kind::corrupt_block, id_, block_index)) {
      // Poison the queued audio the way a DMA/driver bug would; the
      // scoring boundary below must catch it.
      for (double& s : item.block.samples) {
        s = std::numeric_limits<double>::quiet_NaN();
      }
    }
    // Feed outside the queue lock: scoring is the expensive part and
    // producers must be able to keep enqueueing meanwhile. Only the
    // detector itself lives outside the lock — verdict/stat appends go
    // back under it so concurrent readers (streaming mode) are safe.
    const clock::time_point claimed = clock::now();
    const double rate = item.block.sample_rate_hz;
    const std::size_t samples = item.block.size();
    // Ingest validation: a non-finite block would turn every feature
    // downstream into NaN and the verdict stream into silent garbage —
    // worse than a crash. Treat it as a contained fault instead.
    if (!all_finite(item.block)) {
      contain_fault(&session_stats::corrupt_blocks,
                    "corrupt audio block: non-finite sample at block " +
                        std::to_string(block_index));
      continue;  // recovering (backoff) or parked; loop re-checks
    }
    std::vector<defense::stream_event> events;
    try {
      if (faults_ != nullptr &&
          faults_->fires(fault_kind::detector_throw, id_, block_index)) {
        throw std::runtime_error{"injected fault: detector throw"};
      }
      events = detector_.feed(item.block);
    } catch (const std::exception& e) {
      contain_fault(&session_stats::detector_faults, e.what());
      continue;
    } catch (...) {
      contain_fault(&session_stats::detector_faults,
                    "detector fault: unknown exception");
      continue;
    }
    const clock::time_point scored = clock::now();
    // The command stage runs after the detector on the same block, so
    // its outcomes inherit the accepted-block-order determinism. Its
    // time is the pipeline's own bill, not the detector's: `service`
    // stays detector-only and the per-utterance recognizer time lands
    // in `asr_service`; the end-to-end `latency` covers both.
    std::vector<command_outcome> outcomes;
    if (pipeline_.has_value()) {
      try {
        outcomes = pipeline_->feed(item.block, events);
      } catch (const std::exception& e) {
        // The detector's verdicts for this block are still valid — keep
        // them — but the command stage is now suspect: contain it. Its
        // pending utterances flush fail-closed inside contain_fault.
        {
          std::lock_guard<std::mutex> lock{mutex_};
          verdicts_.insert(verdicts_.end(), events.begin(), events.end());
          stats_.events += events.size();
          for (const defense::stream_event& ev : events) {
            stats_.attack_events += ev.is_attack ? 1 : 0;
          }
        }
        contain_fault(&session_stats::recognizer_faults, e.what());
        continue;
      } catch (...) {
        contain_fault(&session_stats::recognizer_faults,
                      "recognizer fault: unknown exception");
        continue;
      }
    }
    const clock::time_point piped = clock::now();
    const double queue_wait_s =
        std::chrono::duration<double>(claimed - item.enqueued).count();
    const double service_s =
        std::chrono::duration<double>(scored - claimed).count();
    const double latency_s =
        std::chrono::duration<double>(piped - item.enqueued).count();
    std::lock_guard<std::mutex> lock{mutex_};
    verdicts_.insert(verdicts_.end(), events.begin(), events.end());
    ++stats_.blocks_processed;
    stats_.samples_processed += samples;
    stats_.audio_s_processed += static_cast<double>(samples) / rate;
    stats_.events += events.size();
    for (const defense::stream_event& e : events) {
      stats_.attack_events += e.is_attack ? 1 : 0;
    }
    stats_.latency.record(latency_s);
    stats_.queue_wait.record(queue_wait_s);
    stats_.service.record(service_s);
    record_outcomes(outcomes);
    // Surface the pipeline's degradation ladder as session health.
    if (state_ == session_state::serving && pipeline_.has_value() &&
        pipeline_->degraded()) {
      state_ = session_state::degraded;
    } else if (state_ == session_state::degraded &&
               (!pipeline_.has_value() || !pipeline_->degraded())) {
      state_ = session_state::serving;
    }
  }
  // End-of-stream flush: once the producer closed the session and the
  // queue is empty, flush the partial window exactly once.
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (closed_ && !finished_ && count_ == 0 &&
        state_ != session_state::quarantined) {
      finished_ = true;
    } else {
      return processed;
    }
  }
  // The flush is owed exactly once (finished_ is already set); a fault
  // here quarantines like any other — the tail resolves fail-closed.
  // Two separate catch scopes so the fault is attributed to the stage
  // that actually threw (the command stage's final resolutions run the
  // recognizer, not the detector).
  std::vector<defense::stream_event> tail;
  try {
    tail = detector_.finish();
  } catch (const std::exception& e) {
    contain_fault(&session_stats::detector_faults, e.what());
    return processed;
  } catch (...) {
    contain_fault(&session_stats::detector_faults,
                  "detector fault: unknown exception in finish");
    return processed;
  }
  std::vector<command_outcome> tail_outcomes;
  bool pipeline_ok = true;
  std::string pipeline_error;
  if (pipeline_.has_value()) {
    try {
      // The flush tail can still veto (or contain) the final utterances.
      tail_outcomes = pipeline_->finish(tail);
    } catch (const std::exception& e) {
      pipeline_ok = false;
      pipeline_error = e.what();
    } catch (...) {
      pipeline_ok = false;
      pipeline_error = "recognizer fault: unknown exception in finish";
    }
  }
  {
    std::lock_guard<std::mutex> lock{mutex_};
    verdicts_.insert(verdicts_.end(), tail.begin(), tail.end());
    stats_.events += tail.size();
    for (const defense::stream_event& e : tail) {
      stats_.attack_events += e.is_attack ? 1 : 0;
    }
    record_outcomes(tail_outcomes);
  }
  if (!pipeline_ok) {
    contain_fault(&session_stats::recognizer_faults, pipeline_error);
  }
  return processed;
}

// Appends pipeline outcomes and folds them into the counters and the
// ASR latency histogram. Caller holds mutex_.
void detection_session::record_outcomes(
    const std::vector<command_outcome>& outcomes) {
  for (const command_outcome& o : outcomes) {
    ++stats_.utterances;
    switch (o.kind) {
      case command_outcome::kind_t::blocked:
        ++stats_.commands_blocked;
        break;
      case command_outcome::kind_t::executed:
        ++stats_.commands_executed;
        break;
      case command_outcome::kind_t::rejected_by_asr:
        ++stats_.commands_rejected;
        break;
      case command_outcome::kind_t::ignored:
        ++stats_.commands_ignored;
        break;
    }
    switch (o.fault) {
      case command_outcome::fault_t::none:
        break;
      case command_outcome::fault_t::deadline_overrun:
        ++stats_.asr_deadline_overruns;
        ++stats_.utterances_failed_closed;
        break;
      case command_outcome::fault_t::degraded_shed:
        ++stats_.utterances_shed_degraded;
        ++stats_.utterances_failed_closed;
        break;
      case command_outcome::fault_t::recognizer_throw:
      case command_outcome::fault_t::stage_fault:
        ++stats_.utterances_failed_closed;
        break;
    }
    if (o.kind != command_outcome::kind_t::blocked) {
      stats_.asr_service.record(o.asr_s);
    }
  }
  outcomes_.insert(outcomes_.end(), outcomes.begin(), outcomes.end());
}

std::vector<defense::stream_event> detection_session::verdicts() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return verdicts_;
}

std::vector<command_outcome> detection_session::outcomes() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return outcomes_;
}

session_stats detection_session::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

}  // namespace ivc::serve
