#include "serve/session.h"

#include <utility>

#include "common/error.h"

namespace ivc::serve {

namespace {
using clock = std::chrono::steady_clock;
}  // namespace

detection_session::detection_session(std::uint64_t id,
                                     defense::classifier_detector detector,
                                     const serve_config& config)
    : id_{id},
      capacity_{config.queue_capacity},
      policy_{config.policy},
      ring_(config.queue_capacity),
      stats_{config.latency_bins},
      detector_{std::move(detector), config.stream} {
  expects(capacity_ >= 1, "detection_session: queue capacity must be >= 1");
  if (config.pipeline.has_value()) {
    pipeline_config pc = *config.pipeline;
    if (pc.decision_window_s == 0.0) {
      // The pipeline defers utterance resolution by the detector's
      // actual analysis window; anything else would resolve before
      // every overlapping verdict is decided.
      pc.decision_window_s = config.stream.window_s;
    }
    pipeline_.emplace(std::move(pc));
  }
}

offer_status detection_session::offer(audio::buffer block) {
  audio::validate(block, "detection_session::offer");
  const clock::time_point now = clock::now();
  std::lock_guard<std::mutex> lock{mutex_};
  ++stats_.blocks_offered;
  if (closed_) {
    // Distinct from `rejected`: a rejected offer succeeds after a
    // drain, a closed session never accepts again — conflating the two
    // would livelock the drain-and-retry backpressure loop.
    ++stats_.blocks_rejected;
    return offer_status::closed;
  }
  if (count_ == capacity_) {
    switch (policy_) {
      case overflow_policy::shed_newest:
        ++stats_.blocks_shed;
        return offer_status::shed;
      case overflow_policy::reject:
        ++stats_.blocks_rejected;
        return offer_status::rejected;
      case overflow_policy::shed_oldest:
        // Evict the head slot and fall through to enqueue. NOTE: evicting
        // mid-stream drops audio the detector never sees, so later
        // windows slide over a splice — that is the cost of shedding, and
        // exactly what the shed counters exist to expose.
        head_ = (head_ + 1) % capacity_;
        --count_;
        ++stats_.blocks_shed;
        break;
    }
  }
  const std::size_t slot = (head_ + count_) % capacity_;
  ring_[slot] = queued_block{std::move(block), now};
  ++count_;
  ++stats_.blocks_accepted;
  return offer_status::accepted;
}

void detection_session::close() {
  std::lock_guard<std::mutex> lock{mutex_};
  closed_ = true;
}

bool detection_session::closed() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return closed_;
}

bool detection_session::has_work() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return count_ > 0 || (closed_ && !finished_);
}

bool detection_session::pop(queued_block& out) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (count_ == 0) {
    return false;
  }
  out = std::move(ring_[head_]);
  head_ = (head_ + 1) % capacity_;
  --count_;
  return true;
}

std::size_t detection_session::process(std::size_t max_blocks) {
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true)) {
    return 0;  // another worker owns this session right now
  }
  std::size_t processed = 0;
  queued_block item;
  while ((max_blocks == 0 || processed < max_blocks) && pop(item)) {
    // Feed outside the queue lock: scoring is the expensive part and
    // producers must be able to keep enqueueing meanwhile. Only the
    // detector itself lives outside the lock — verdict/stat appends go
    // back under it so concurrent readers (streaming mode) are safe.
    const clock::time_point claimed = clock::now();
    const double rate = item.block.sample_rate_hz;
    const std::size_t samples = item.block.size();
    const std::vector<defense::stream_event> events =
        detector_.feed(item.block);
    const clock::time_point scored = clock::now();
    // The command stage runs after the detector on the same block, so
    // its outcomes inherit the accepted-block-order determinism. Its
    // time is the pipeline's own bill, not the detector's: `service`
    // stays detector-only and the per-utterance recognizer time lands
    // in `asr_service`; the end-to-end `latency` covers both.
    std::vector<command_outcome> outcomes;
    if (pipeline_.has_value()) {
      outcomes = pipeline_->feed(item.block, events);
    }
    const clock::time_point piped = clock::now();
    const double queue_wait_s =
        std::chrono::duration<double>(claimed - item.enqueued).count();
    const double service_s =
        std::chrono::duration<double>(scored - claimed).count();
    const double latency_s =
        std::chrono::duration<double>(piped - item.enqueued).count();
    std::lock_guard<std::mutex> lock{mutex_};
    verdicts_.insert(verdicts_.end(), events.begin(), events.end());
    ++stats_.blocks_processed;
    stats_.samples_processed += samples;
    stats_.audio_s_processed += static_cast<double>(samples) / rate;
    stats_.events += events.size();
    for (const defense::stream_event& e : events) {
      stats_.attack_events += e.is_attack ? 1 : 0;
    }
    stats_.latency.record(latency_s);
    stats_.queue_wait.record(queue_wait_s);
    stats_.service.record(service_s);
    record_outcomes(outcomes);
    ++processed;
  }
  // End-of-stream flush: once the producer closed the session and the
  // queue is empty, flush the partial window exactly once.
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (closed_ && !finished_ && count_ == 0) {
      finished_ = true;
    } else {
      busy_.store(false);
      return processed;
    }
  }
  const std::vector<defense::stream_event> tail = detector_.finish();
  std::vector<command_outcome> tail_outcomes;
  if (pipeline_.has_value()) {
    // The flush tail can still veto (or contain) the final utterances.
    tail_outcomes = pipeline_->finish(tail);
  }
  {
    std::lock_guard<std::mutex> lock{mutex_};
    verdicts_.insert(verdicts_.end(), tail.begin(), tail.end());
    stats_.events += tail.size();
    for (const defense::stream_event& e : tail) {
      stats_.attack_events += e.is_attack ? 1 : 0;
    }
    record_outcomes(tail_outcomes);
  }
  busy_.store(false);
  return processed;
}

// Appends pipeline outcomes and folds them into the counters and the
// ASR latency histogram. Caller holds mutex_.
void detection_session::record_outcomes(
    const std::vector<command_outcome>& outcomes) {
  for (const command_outcome& o : outcomes) {
    ++stats_.utterances;
    switch (o.kind) {
      case command_outcome::kind_t::blocked:
        ++stats_.commands_blocked;
        break;
      case command_outcome::kind_t::executed:
        ++stats_.commands_executed;
        break;
      case command_outcome::kind_t::rejected_by_asr:
        ++stats_.commands_rejected;
        break;
      case command_outcome::kind_t::ignored:
        ++stats_.commands_ignored;
        break;
    }
    if (o.kind != command_outcome::kind_t::blocked) {
      stats_.asr_service.record(o.asr_s);
    }
  }
  outcomes_.insert(outcomes_.end(), outcomes.begin(), outcomes.end());
}

std::vector<defense::stream_event> detection_session::verdicts() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return verdicts_;
}

std::vector<command_outcome> detection_session::outcomes() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return outcomes_;
}

session_stats detection_session::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

}  // namespace ivc::serve
