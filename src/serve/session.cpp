#include "serve/session.h"

#include <cmath>
#include <limits>
#include <type_traits>
#include <utility>

#include "common/error.h"
#include "common/json_field.h"

namespace ivc::serve {

namespace {
using clock = std::chrono::steady_clock;

// The exclusive claim is released by ivc::claim_guard (common/sync.h) on
// every exit path — including an exception escaping process() itself.
// Containment must never leave busy_ stuck true, or the session would be
// unclaimable forever.

bool all_finite(const audio::buffer& b) {
  for (const double s : b.samples) {
    if (!std::isfinite(s)) {
      return false;
    }
  }
  return true;
}

// ---- Snapshot codecs ---------------------------------------------------
// The counter block serializes as one flat number array; encode and
// decode share this single member walk so the order can never drift.
// Appending a counter to session_stats means appending it HERE (at the
// end — the array length is part of the v1 schema).
template <typename Stats, typename F>
void for_each_counter(Stats& st, F&& f) {
  f(st.blocks_offered);
  f(st.blocks_accepted);
  f(st.blocks_processed);
  f(st.blocks_shed);
  f(st.blocks_rejected);
  f(st.samples_processed);
  f(st.audio_s_processed);
  f(st.events);
  f(st.attack_events);
  f(st.utterances);
  f(st.commands_blocked);
  f(st.commands_executed);
  f(st.commands_rejected);
  f(st.commands_ignored);
  f(st.detector_faults);
  f(st.recognizer_faults);
  f(st.corrupt_blocks);
  f(st.asr_deadline_overruns);
  f(st.utterances_shed_degraded);
  f(st.utterances_failed_closed);
  f(st.quarantines);
  f(st.reopens);
  f(st.blocks_dropped_backoff);
  f(st.stage_snapshots);
  f(st.snapshot_restores);
}
constexpr std::size_t counter_fields = 25;

json::value encode_counters(const session_stats& st) {
  json::array a;
  a.reserve(counter_fields);
  for_each_counter(st,
                   [&a](auto v) { a.emplace_back(static_cast<double>(v)); });
  return json::value{std::move(a)};
}

void decode_counters(const json::value& v, session_stats& st) {
  const json::array& a = v.items();
  expects(a.size() == counter_fields,
          "session snapshot: counter block size mismatch");
  std::size_t i = 0;
  for_each_counter(st, [&](auto& slot) {
    slot = static_cast<std::decay_t<decltype(slot)>>(a[i++].number());
  });
}

// Verdicts pack as flat (time, score, is_attack) triples — an all-number
// array, which the binary codec stores as packed 8-byte doubles.
json::value encode_verdicts(const std::vector<defense::stream_event>& ve) {
  json::array a;
  a.reserve(ve.size() * 3);
  for (const defense::stream_event& e : ve) {
    a.emplace_back(e.time_s);
    a.emplace_back(e.score);
    a.emplace_back(e.is_attack ? 1.0 : 0.0);
  }
  return json::value{std::move(a)};
}

std::vector<defense::stream_event> decode_verdicts(const json::value& v) {
  const json::array& a = v.items();
  expects(a.size() % 3 == 0, "session snapshot: verdict block not triples");
  std::vector<defense::stream_event> out;
  out.reserve(a.size() / 3);
  for (std::size_t i = 0; i < a.size(); i += 3) {
    defense::stream_event e;
    e.time_s = a[i].number();
    e.score = a[i + 1].number();
    e.is_attack = a[i + 2].number() != 0.0;
    out.push_back(e);
  }
  return out;
}

// One outcome per row: [start, end, kind, fault, command, intent,
// distance, margin, asr_s].
json::value encode_outcomes(const std::vector<command_outcome>& oc) {
  json::array all;
  all.reserve(oc.size());
  for (const command_outcome& o : oc) {
    json::array row;
    row.reserve(9);
    row.emplace_back(o.start_s);
    row.emplace_back(o.end_s);
    row.emplace_back(static_cast<double>(o.kind));
    row.emplace_back(static_cast<double>(o.fault));
    row.emplace_back(o.command_id);
    row.emplace_back(o.intent);
    row.emplace_back(o.asr_distance);
    row.emplace_back(o.asr_margin);
    row.emplace_back(o.asr_s);
    all.emplace_back(std::move(row));
  }
  return json::value{std::move(all)};
}

std::vector<command_outcome> decode_outcomes(const json::value& v) {
  std::vector<command_outcome> out;
  out.reserve(v.items().size());
  for (const json::value& rv : v.items()) {
    const json::array& row = rv.items();
    expects(row.size() == 9, "session snapshot: outcome row size mismatch");
    command_outcome o;
    o.start_s = row[0].number();
    o.end_s = row[1].number();
    const int kind = static_cast<int>(row[2].number());
    const int fault = static_cast<int>(row[3].number());
    expects(kind >= 0 && kind <= 3 && fault >= 0 && fault <= 4,
            "session snapshot: outcome enum out of range");
    o.kind = static_cast<command_outcome::kind_t>(kind);
    o.fault = static_cast<command_outcome::fault_t>(fault);
    o.command_id = row[4].string();
    o.intent = row[5].string();
    o.asr_distance = row[6].number();
    o.asr_margin = row[7].number();
    o.asr_s = row[8].number();
    out.push_back(std::move(o));
  }
  return out;
}

// Maps a fault counter to the pipeline stage a flight-recorder span
// attributes the fault to.
obs::trace_stage fault_stage(std::uint64_t session_stats::* counter) {
  if (counter == &session_stats::detector_faults) {
    return obs::trace_stage::detector;
  }
  if (counter == &session_stats::recognizer_faults) {
    return obs::trace_stage::asr;
  }
  return obs::trace_stage::ingest;  // corrupt_blocks
}

const char* outcome_kind_name(command_outcome::kind_t kind) {
  switch (kind) {
    case command_outcome::kind_t::blocked:
      return "blocked";
    case command_outcome::kind_t::executed:
      return "executed";
    case command_outcome::kind_t::rejected_by_asr:
      return "rejected_by_asr";
    case command_outcome::kind_t::ignored:
      return "ignored";
  }
  return "unknown";
}

}  // namespace

void session_stats::merge(const session_stats& other) {
  // Zip the two structs through the shared counter walk: read `other`'s
  // counters into a flat buffer, then add them slot-by-slot.
  std::vector<double> vals;
  vals.reserve(counter_fields);
  for_each_counter(other,
                   [&vals](auto v) { vals.push_back(static_cast<double>(v)); });
  std::size_t i = 0;
  for_each_counter(*this, [&](auto& slot) {
    slot += static_cast<std::decay_t<decltype(slot)>>(vals[i++]);
  });
  latency.merge(other.latency);
  queue_wait.merge(other.queue_wait);
  service.merge(other.service);
  asr_service.merge(other.asr_service);
}

// Registers the fleet-shared cells once per session; every handle
// degrades to a no-op when the registry is null (telemetry off).
detection_session::metric_handles::metric_handles(obs::metrics_registry* reg) {
  if (reg == nullptr) {
    return;
  }
  blocks_processed = reg->get_counter("serve_blocks_processed_total");
  // Shed/reject counts depend on drain timing (a streaming fleet drains
  // while producers offer; a fork-join fleet queues first), so they are
  // excluded from the deterministic fingerprint.
  blocks_shed = reg->get_counter("serve_blocks_shed_total", {}, false);
  blocks_rejected = reg->get_counter("serve_blocks_rejected_total", {}, false);
  events = reg->get_counter("serve_verdicts_total");
  attack_events = reg->get_counter("serve_attack_verdicts_total");
  faults_ingest =
      reg->get_counter("serve_stage_faults_total", {{"stage", "ingest"}});
  faults_detector =
      reg->get_counter("serve_stage_faults_total", {{"stage", "detector"}});
  faults_asr = reg->get_counter("serve_stage_faults_total", {{"stage", "asr"}});
  quarantines = reg->get_counter("serve_quarantines_total");
  reopens = reg->get_counter("serve_reopens_total");
  backoff_drops = reg->get_counter("serve_backoff_dropped_blocks_total");
}

detection_session::detection_session(std::uint64_t id,
                                     defense::classifier_detector detector,
                                     const serve_config& config)
    : id_{id},
      capacity_{config.queue_capacity},
      policy_{config.policy},
      fault_tolerance_{config.fault_tolerance},
      faults_{config.faults},
      trace_sink_{config.trace_sink},
      metrics_{config.metrics.get()},
      ring_(config.queue_capacity),
      stats_{config.latency_bins},
      trace_{config.trace_spans},
      detector_{std::move(detector), config.stream} {
  expects(capacity_ >= 1, "detection_session: queue capacity must be >= 1");
  if (config.pipeline.has_value()) {
    pipeline_config pc = *config.pipeline;
    if (pc.decision_window_s == 0.0) {
      // The pipeline defers utterance resolution by the detector's
      // actual analysis window; anything else would resolve before
      // every overlapping verdict is decided.
      pc.decision_window_s = config.stream.window_s;
    }
    // The recognizer-site fault coordinates are (kind, session id,
    // utterance index); the stage inherits the session's injector —
    // and the fleet metrics registry for its utterance counters.
    if (pc.faults == nullptr) {
      pc.faults = faults_;
    }
    if (pc.metrics == nullptr) {
      pc.metrics = config.metrics;
    }
    pc.fault_session_id = id_;
    pipeline_.emplace(std::move(pc));
  }
}

offer_status detection_session::offer(audio::buffer block) {
  audio::validate(block, "detection_session::offer");
  const clock::time_point now = clock::now();
  const ts_lock lock{mutex_};
  ++stats_.blocks_offered;
  if (closed_) {
    // Distinct from `rejected`: a rejected offer succeeds after a
    // drain, a closed session never accepts again — conflating the two
    // would livelock the drain-and-retry backpressure loop.
    ++stats_.blocks_rejected;
    return offer_status::closed;
  }
  if (state_ == session_state::quarantined) {
    // Same shape as closed: no amount of draining helps, only reopen().
    ++stats_.blocks_rejected;
    return offer_status::quarantined;
  }
  if (count_ == capacity_) {
    switch (policy_) {
      case overflow_policy::shed_newest:
        ++stats_.blocks_shed;
        metrics_.blocks_shed.inc();
        return offer_status::shed;
      case overflow_policy::reject:
        ++stats_.blocks_rejected;
        metrics_.blocks_rejected.inc();
        return offer_status::rejected;
      case overflow_policy::shed_oldest:
        // Evict the head slot and fall through to enqueue. NOTE: evicting
        // mid-stream drops audio the detector never sees, so later
        // windows slide over a splice — that is the cost of shedding, and
        // exactly what the shed counters exist to expose.
        head_ = (head_ + 1) % capacity_;
        --count_;
        ++stats_.blocks_shed;
        metrics_.blocks_shed.inc();
        break;
    }
  }
  const std::size_t slot = (head_ + count_) % capacity_;
  ring_[slot] = queued_block{std::move(block), now};
  ++count_;
  ++stats_.blocks_accepted;
  return offer_status::accepted;
}

void detection_session::close() {
  const ts_lock lock{mutex_};
  closed_ = true;
}

bool detection_session::closed() const {
  const ts_lock lock{mutex_};
  return closed_;
}

session_state detection_session::state() const {
  const ts_lock lock{mutex_};
  return state_;
}

std::string detection_session::last_error() const {
  const ts_lock lock{mutex_};
  return last_error_;
}

bool detection_session::has_work() const {
  const ts_lock lock{mutex_};
  if (state_ == session_state::quarantined) {
    return false;  // nothing can be scored until reopen()
  }
  return count_ > 0 || (closed_ && !finished_);
}

bool detection_session::pop(queued_block& out) {
  const ts_lock lock{mutex_};
  if (count_ == 0) {
    return false;
  }
  out = std::move(ring_[head_]);
  head_ = (head_ + 1) % capacity_;
  --count_;
  return true;
}

void detection_session::reset_stages() {
  detector_.reset();
  if (pipeline_.has_value()) {
    pipeline_->reset();
  }
}

// Crash recovery: resume the stages from the last good checkpoint when
// snapshot recovery is on and one exists; otherwise (or when the
// checkpoint fails to decode) cold-reset to a fresh stream. Caller holds
// busy_ and NOT mutex_.
void detection_session::recover_stages() {
  if (fault_tolerance_.snapshot_recovery && !last_good_.empty()) {
    try {
      const json::value chk = json::from_binary(last_good_);
      detector_.restore(json::field(chk, "det"));
      if (pipeline_.has_value()) {
        pipeline_->restore(json::field(chk, "pl"));
      }
      const ts_lock lock{mutex_};
      ++stats_.snapshot_restores;
      return;
    } catch (...) {
      // A corrupt checkpoint must not wedge recovery — and the detector
      // may be half-restored by now, so fall through to the full reset.
      last_good_.clear();
    }
  }
  reset_stages();
}

// Crash-recovery checkpoint, taken by the worker that just scored block
// `block_index` (holding busy_, not mutex_). Only at SAFE points: the
// block count lines up AND the pipeline owes no outcome — restoring a
// stage that still held a pending utterance would emit it twice (once
// fail-closed at the fault, once again after the restore).
void detection_session::maybe_checkpoint(std::uint64_t block_index) {
  if (!fault_tolerance_.snapshot_recovery ||
      fault_tolerance_.snapshot_every_blocks == 0 ||
      (block_index + 1) % fault_tolerance_.snapshot_every_blocks != 0) {
    return;
  }
  if (pipeline_.has_value() && !pipeline_->snapshot_safe()) {
    return;
  }
  json::object chk;
  chk.emplace_back("det", detector_.snapshot());
  chk.emplace_back("pl", pipeline_.has_value() ? pipeline_->snapshot()
                                               : json::value{});
  last_good_ = json::to_binary(json::value{std::move(chk)});
  const ts_lock lock{mutex_};
  ++stats_.stage_snapshots;
}

bool detection_session::reopen() {
  if (!busy_.try_claim()) {
    return false;  // a worker owns the session (mid-containment)
  }
  const claim_guard guard{busy_};
  {
    const ts_lock lock{mutex_};
    if (state_ != session_state::quarantined) {
      return false;
    }
    state_ = session_state::recovering;
    last_error_.clear();
    ++stats_.reopens;
    metrics_.reopens.inc();
  }
  // A manual reopen grants a fresh retry budget and restarts the backoff
  // ladder at its first rung.
  reopen_count_ = 0;
  backoff_remaining_ = fault_tolerance_.backoff_blocks;
  recover_stages();
  return true;
}

void detection_session::force_quarantine(const std::string& what) {
  std::vector<obs::span> dump;
  bool dumped = false;
  {
    const ts_lock lock{mutex_};
    if (state_ == session_state::quarantined) {
      return;
    }
    state_ = session_state::quarantined;
    last_error_ = what;
    ++stats_.quarantines;
    // Final flight-recorder span: no stage attribution (the exception
    // escaped process() itself), but the error message rides along.
    // consumed_blocks_ is atomic exactly for this read: the backstop
    // does NOT hold busy_ (the claim may be wedged in the dying worker).
    const std::uint64_t consumed = consumed_blocks_.load();
    trace_.record({obs::trace_stage::quarantine,
                   consumed > 0 ? consumed - 1 : 0, stats_.audio_s_processed,
                   0.0, 0.0, what});
    if (trace_sink_ != nullptr) {
      dump = trace_.spans();
      dumped = true;
    }
  }
  metrics_.quarantines.inc();
  if (dumped) {
    // Outside mutex_: the sink serializes on its own lock and may do IO.
    trace_sink_->on_quarantine(id_, what, dump);
  }
}

// Containment: the calling worker holds busy_; an exception just escaped
// a scoring stage. Quarantine THIS session fail-closed and either
// auto-reopen (bounded retry + block-counted backoff) or park it.
void detection_session::contain_fault(std::uint64_t session_stats::* counter,
                                      const std::string& what) {
  // Flush the pipeline fail-closed FIRST: every utterance it still holds
  // resolves as blocked — a faulted stage must never leave an utterance
  // in a state where a later code path could execute it.
  std::vector<command_outcome> flushed;
  if (pipeline_.has_value()) {
    flushed = pipeline_->fail_closed();
  }
  const bool retry = fault_tolerance_.auto_reopen &&
                     reopen_count_ < fault_tolerance_.max_reopens;
  const obs::trace_stage stage = fault_stage(counter);
  std::vector<obs::span> dump;
  bool dumped = false;
  {
    const ts_lock lock{mutex_};
    stats_.*counter += 1;
    ++stats_.quarantines;
    record_outcomes(flushed);
    last_error_ = what;
    // Flight recorder: the fault span carries the FAULTING stage plus
    // the error message. When the retry budget is spent this is the
    // ring's final span — the quarantine dump ends with what killed the
    // session, attributed to the stage that threw.
    const std::uint64_t consumed = consumed_blocks_.load();
    trace_.record({stage, consumed > 0 ? consumed - 1 : 0,
                   stats_.audio_s_processed, retry ? 1.0 : 0.0, 0.0, what});
    if (retry) {
      state_ = session_state::recovering;
      ++stats_.reopens;
    } else {
      state_ = session_state::quarantined;
    }
    // A flight recorder dumps on EVERY quarantine entry, recovered or
    // parked — the crash the ladder papers over is exactly the one the
    // black box exists to explain. The fault span's value field (1 =
    // retried, 0 = parked) tells the two apart in the dump.
    if (trace_sink_ != nullptr) {
      dump = trace_.spans();
      dumped = true;
    }
  }
  switch (stage) {
    case obs::trace_stage::detector:
      metrics_.faults_detector.inc();
      break;
    case obs::trace_stage::asr:
      metrics_.faults_asr.inc();
      break;
    default:
      metrics_.faults_ingest.inc();
      break;
  }
  metrics_.quarantines.inc();
  if (retry) {
    metrics_.reopens.inc();
  }
  if (dumped) {
    trace_sink_->on_quarantine(id_, what, dump);
  }
  if (retry) {
    // Exponential block-counted backoff: 8, 16, 32, ... accepted blocks
    // consumed unscored before the stream restarts. Counted in blocks —
    // never wall clock — so recovery lands at the same stream position
    // at any worker count.
    backoff_remaining_ = static_cast<std::uint64_t>(
                             fault_tolerance_.backoff_blocks)
                         << reopen_count_;
    ++reopen_count_;
    recover_stages();
  }
}

std::size_t detection_session::process(std::size_t max_blocks) {
  if (!busy_.try_claim()) {
    return 0;  // another worker owns this session right now
  }
  const claim_guard guard{busy_};
  {
    const ts_lock lock{mutex_};
    if (state_ == session_state::quarantined) {
      return 0;  // parked: only reopen() restores service
    }
  }
  std::size_t processed = 0;
  queued_block item;
  while (max_blocks == 0 || processed < max_blocks) {
    {
      // Re-check per block: contain_fault() may have parked the session
      // mid-drain. Parked = stop scoring; queued blocks survive for a
      // potential reopen().
      const ts_lock lock{mutex_};
      if (state_ == session_state::quarantined) {
        return processed;
      }
    }
    if (!pop(item)) {
      break;
    }
    ++processed;
    // Fault-schedule coordinate of this block (accepted order).
    const std::uint64_t block_index = consumed_blocks_++;
    if (backoff_remaining_ > 0) {
      // Recovering: consume-and-drop until the backoff window passes,
      // then resume scoring with the fresh stages.
      --backoff_remaining_;
      metrics_.backoff_drops.inc();
      const ts_lock lock{mutex_};
      ++stats_.blocks_dropped_backoff;
      if (backoff_remaining_ == 0 && state_ == session_state::recovering) {
        state_ = session_state::serving;
      }
      continue;
    }
    if (faults_ != nullptr &&
        faults_->fires(fault_kind::corrupt_block, id_, block_index)) {
      // Poison the queued audio the way a DMA/driver bug would; the
      // scoring boundary below must catch it.
      for (double& s : item.block.samples) {
        s = std::numeric_limits<double>::quiet_NaN();
      }
    }
    // Feed outside the queue lock: scoring is the expensive part and
    // producers must be able to keep enqueueing meanwhile. Only the
    // detector itself lives outside the lock — verdict/stat appends go
    // back under it so concurrent readers (streaming mode) are safe.
    const clock::time_point claimed = clock::now();
    const double rate = item.block.sample_rate_hz;
    const std::size_t samples = item.block.size();
    // Ingest validation: a non-finite block would turn every feature
    // downstream into NaN and the verdict stream into silent garbage —
    // worse than a crash. Treat it as a contained fault instead.
    if (!all_finite(item.block)) {
      contain_fault(&session_stats::corrupt_blocks,
                    "corrupt audio block: non-finite sample at block " +
                        std::to_string(block_index));
      continue;  // recovering (backoff) or parked; loop re-checks
    }
    std::vector<defense::stream_event> events;
    try {
      if (faults_ != nullptr &&
          faults_->fires(fault_kind::detector_throw, id_, block_index)) {
        throw std::runtime_error{"injected fault: detector throw"};
      }
      events = detector_.feed(item.block);
    } catch (const std::exception& e) {
      contain_fault(&session_stats::detector_faults, e.what());
      continue;
    } catch (...) {
      contain_fault(&session_stats::detector_faults,
                    "detector fault: unknown exception");
      continue;
    }
    const clock::time_point scored = clock::now();
    // The command stage runs after the detector on the same block, so
    // its outcomes inherit the accepted-block-order determinism. Its
    // time is the pipeline's own bill, not the detector's: `service`
    // stays detector-only and the per-utterance recognizer time lands
    // in `asr_service`; the end-to-end `latency` covers both.
    std::vector<command_outcome> outcomes;
    if (pipeline_.has_value()) {
      try {
        outcomes = pipeline_->feed(item.block, events);
      } catch (const std::exception& e) {
        // The detector's verdicts for this block are still valid — keep
        // them — but the command stage is now suspect: contain it. Its
        // pending utterances flush fail-closed inside contain_fault.
        {
          const ts_lock lock{mutex_};
          verdicts_.insert(verdicts_.end(), events.begin(), events.end());
          stats_.events += events.size();
          std::uint64_t attacks = 0;
          for (const defense::stream_event& ev : events) {
            attacks += ev.is_attack ? 1 : 0;
          }
          stats_.attack_events += attacks;
          metrics_.events.inc(events.size());
          metrics_.attack_events.inc(attacks);
        }
        contain_fault(&session_stats::recognizer_faults, e.what());
        continue;
      } catch (...) {
        contain_fault(&session_stats::recognizer_faults,
                      "recognizer fault: unknown exception");
        continue;
      }
    }
    const clock::time_point piped = clock::now();
    const double queue_wait_s =
        std::chrono::duration<double>(claimed - item.enqueued).count();
    const double service_s =
        std::chrono::duration<double>(scored - claimed).count();
    const double latency_s =
        std::chrono::duration<double>(piped - item.enqueued).count();
    {
      const ts_lock lock{mutex_};
      verdicts_.insert(verdicts_.end(), events.begin(), events.end());
      ++stats_.blocks_processed;
      stats_.samples_processed += samples;
      stats_.audio_s_processed += static_cast<double>(samples) / rate;
      stats_.events += events.size();
      std::uint64_t attacks = 0;
      for (const defense::stream_event& e : events) {
        attacks += e.is_attack ? 1 : 0;
      }
      stats_.attack_events += attacks;
      metrics_.blocks_processed.inc();
      metrics_.events.inc(events.size());
      metrics_.attack_events.inc(attacks);
      stats_.latency.record(latency_s);
      stats_.queue_wait.record(queue_wait_s);
      stats_.service.record(service_s);
      if (trace_.enabled()) {
        // Ingest + detector spans of this block, keyed by its accepted-
        // order index; t_s is the stream position AFTER the block. Only
        // wall_s (queue wait / detector service time) is non-
        // deterministic — everything else is a pure function of the
        // accepted-block order.
        trace_.record({obs::trace_stage::ingest, block_index,
                       stats_.audio_s_processed,
                       static_cast<double>(samples), queue_wait_s, {}});
        trace_.record({obs::trace_stage::detector, block_index,
                       stats_.audio_s_processed,
                       static_cast<double>(events.size()), service_s, {}});
      }
      record_outcomes(outcomes);
      // Surface the pipeline's degradation ladder as session health.
      if (state_ == session_state::serving && pipeline_.has_value() &&
          pipeline_->degraded()) {
        state_ = session_state::degraded;
      } else if (state_ == session_state::degraded &&
                 (!pipeline_.has_value() || !pipeline_->degraded())) {
        state_ = session_state::serving;
      }
    }
    // Crash-recovery checkpoint AFTER the block's effects are recorded:
    // a restore resumes from a stream position whose verdicts/outcomes
    // are already in the streams, never before it.
    maybe_checkpoint(block_index);
  }
  // End-of-stream flush: once the producer closed the session and the
  // queue is empty, flush the partial window exactly once.
  {
    const ts_lock lock{mutex_};
    if (closed_ && !finished_ && count_ == 0 &&
        state_ != session_state::quarantined) {
      finished_ = true;
    } else {
      return processed;
    }
  }
  // The flush is owed exactly once (finished_ is already set); a fault
  // here quarantines like any other — the tail resolves fail-closed.
  // Two separate catch scopes so the fault is attributed to the stage
  // that actually threw (the command stage's final resolutions run the
  // recognizer, not the detector).
  std::vector<defense::stream_event> tail;
  try {
    tail = detector_.finish();
  } catch (const std::exception& e) {
    contain_fault(&session_stats::detector_faults, e.what());
    return processed;
  } catch (...) {
    contain_fault(&session_stats::detector_faults,
                  "detector fault: unknown exception in finish");
    return processed;
  }
  std::vector<command_outcome> tail_outcomes;
  bool pipeline_ok = true;
  std::string pipeline_error;
  if (pipeline_.has_value()) {
    try {
      // The flush tail can still veto (or contain) the final utterances.
      tail_outcomes = pipeline_->finish(tail);
    } catch (const std::exception& e) {
      pipeline_ok = false;
      pipeline_error = e.what();
    } catch (...) {
      pipeline_ok = false;
      pipeline_error = "recognizer fault: unknown exception in finish";
    }
  }
  {
    const ts_lock lock{mutex_};
    verdicts_.insert(verdicts_.end(), tail.begin(), tail.end());
    stats_.events += tail.size();
    std::uint64_t attacks = 0;
    for (const defense::stream_event& e : tail) {
      attacks += e.is_attack ? 1 : 0;
    }
    stats_.attack_events += attacks;
    metrics_.events.inc(tail.size());
    metrics_.attack_events.inc(attacks);
    record_outcomes(tail_outcomes);
  }
  if (!pipeline_ok) {
    contain_fault(&session_stats::recognizer_faults, pipeline_error);
  }
  return processed;
}

// Appends pipeline outcomes and folds them into the counters and the
// ASR latency histogram. Caller holds mutex_.
void detection_session::record_outcomes(
    const std::vector<command_outcome>& outcomes) {
  for (const command_outcome& o : outcomes) {
    // Utterance coordinate of the spans below: the position of this
    // outcome in the session's resolved-utterance order (deterministic,
    // like everything in the outcome stream).
    const std::uint64_t uidx = stats_.utterances;
    ++stats_.utterances;
    switch (o.kind) {
      case command_outcome::kind_t::blocked:
        ++stats_.commands_blocked;
        break;
      case command_outcome::kind_t::executed:
        ++stats_.commands_executed;
        break;
      case command_outcome::kind_t::rejected_by_asr:
        ++stats_.commands_rejected;
        break;
      case command_outcome::kind_t::ignored:
        ++stats_.commands_ignored;
        break;
    }
    switch (o.fault) {
      case command_outcome::fault_t::none:
        break;
      case command_outcome::fault_t::deadline_overrun:
        ++stats_.asr_deadline_overruns;
        ++stats_.utterances_failed_closed;
        break;
      case command_outcome::fault_t::degraded_shed:
        ++stats_.utterances_shed_degraded;
        ++stats_.utterances_failed_closed;
        break;
      case command_outcome::fault_t::recognizer_throw:
      case command_outcome::fault_t::stage_fault:
        ++stats_.utterances_failed_closed;
        break;
    }
    if (o.kind != command_outcome::kind_t::blocked) {
      stats_.asr_service.record(o.asr_s);
    }
    if (trace_.enabled()) {
      // ASR span only when the recognizer actually ran (blocked
      // utterances never reach it); intent span only when an intent was
      // mapped; outcome span always. All keyed by the utterance index —
      // wall_s (the recognizer time) is the only non-deterministic
      // field.
      if (o.kind != command_outcome::kind_t::blocked) {
        trace_.record({obs::trace_stage::asr, uidx, o.end_s, o.asr_distance,
                       o.asr_s, o.command_id});
      }
      if (o.kind == command_outcome::kind_t::executed) {
        trace_.record(
            {obs::trace_stage::intent, uidx, o.end_s, 1.0, 0.0, o.intent});
      }
      trace_.record({obs::trace_stage::outcome, uidx, o.end_s,
                     static_cast<double>(o.kind), 0.0,
                     outcome_kind_name(o.kind)});
    }
  }
  outcomes_.insert(outcomes_.end(), outcomes.begin(), outcomes.end());
}

std::vector<defense::stream_event> detection_session::verdicts() const {
  const ts_lock lock{mutex_};
  return verdicts_;
}

std::vector<command_outcome> detection_session::outcomes() const {
  const ts_lock lock{mutex_};
  return outcomes_;
}

std::vector<obs::span> detection_session::trace() const {
  const ts_lock lock{mutex_};
  return trace_.spans();
}

session_stats detection_session::stats() const {
  const ts_lock lock{mutex_};
  return stats_;
}

// Serializes the complete session. Caller holds busy_ AND mutex_ — the
// image must be a consistent cut of both the worker-owned stage state
// and the lock-guarded streams/counters.
json::value detection_session::build_snapshot() const {
  json::object o;
  o.emplace_back("v", json::value{1.0});
  o.emplace_back("cl", json::value{closed_});
  o.emplace_back("fi", json::value{finished_});
  o.emplace_back("st", json::value{static_cast<double>(state_)});
  o.emplace_back("err", json::value{last_error_});
  o.emplace_back("cb",
                 json::value{static_cast<double>(consumed_blocks_.load())});
  o.emplace_back("rc", json::value{static_cast<double>(reopen_count_)});
  o.emplace_back("bo", json::value{static_cast<double>(backoff_remaining_)});
  o.emplace_back("ctr", encode_counters(stats_));
  o.emplace_back("lh", stats_.latency.snapshot());
  o.emplace_back("qh", stats_.queue_wait.snapshot());
  o.emplace_back("sh", stats_.service.snapshot());
  o.emplace_back("ah", stats_.asr_service.snapshot());
  o.emplace_back("ve", encode_verdicts(verdicts_));
  o.emplace_back("oc", encode_outcomes(outcomes_));
  o.emplace_back("det", detector_.snapshot());
  o.emplace_back("pl", pipeline_.has_value() ? pipeline_->snapshot()
                                             : json::value{});
  o.emplace_back("lg",
                 last_good_.empty() ? json::value{} : json::value{last_good_});
  o.emplace_back("tr", trace_.snapshot());
  return json::value{std::move(o)};
}

bool detection_session::try_snapshot(json::value& out) {
  if (!busy_.try_claim()) {
    return false;  // a worker owns the session
  }
  const claim_guard guard{busy_};
  const ts_lock lock{mutex_};
  if (count_ > 0 || (closed_ && !finished_)) {
    // Queued audio is NOT serialized, and a pending close() flush still
    // mutates the streams — only an idle session snapshots.
    return false;
  }
  out = build_snapshot();
  return true;
}

void detection_session::restore(const json::value& snap) {
  // Structured as a branch (not expects()) so the analysis sees the
  // try-acquire succeed on the fall-through path.
  if (!busy_.try_claim()) {
    throw std::invalid_argument{
        "detection_session::restore: session is already shared"};
  }
  const claim_guard guard{busy_};
  const ts_lock lock{mutex_};
  expects(count_ == 0 && stats_.blocks_offered == 0,
          "detection_session::restore: session must be freshly constructed");
  expects(static_cast<int>(json::num(snap, "v")) == 1,
          "session snapshot: unknown schema version");
  const json::value& pl = json::field(snap, "pl");
  expects(pl.is_null() != pipeline_.has_value(),
          "session snapshot: pipeline presence mismatch");
  closed_ = json::flag(snap, "cl");
  finished_ = json::flag(snap, "fi");
  const int st = static_cast<int>(json::num(snap, "st"));
  expects(st >= 0 && st <= 3, "session snapshot: state out of range");
  state_ = static_cast<session_state>(st);
  last_error_ = json::str(snap, "err");
  consumed_blocks_ = json::u64(snap, "cb");
  reopen_count_ = static_cast<std::size_t>(json::num(snap, "rc"));
  backoff_remaining_ = json::u64(snap, "bo");
  decode_counters(json::field(snap, "ctr"), stats_);
  stats_.latency.restore(json::field(snap, "lh"));
  stats_.queue_wait.restore(json::field(snap, "qh"));
  stats_.service.restore(json::field(snap, "sh"));
  stats_.asr_service.restore(json::field(snap, "ah"));
  verdicts_ = decode_verdicts(json::field(snap, "ve"));
  outcomes_ = decode_outcomes(json::field(snap, "oc"));
  detector_.restore(json::field(snap, "det"));
  if (pipeline_.has_value()) {
    pipeline_->restore(pl);
  }
  const json::value& lg = json::field(snap, "lg");
  last_good_ = lg.is_null() ? std::string{} : lg.string();
  // Older images (pre-flight-recorder) carry no "tr" field; an empty
  // ring is the right rehydration for them.
  const json::value* tr = snap.find("tr");
  if (tr != nullptr) {
    trace_.restore(*tr);
  }
}

// ---- Frozen-snapshot readers ------------------------------------------

session_stats snapshot_stats(const json::value& snap,
                             const histogram_config& bins) {
  session_stats st{bins};
  decode_counters(json::field(snap, "ctr"), st);
  st.latency.restore(json::field(snap, "lh"));
  st.queue_wait.restore(json::field(snap, "qh"));
  st.service.restore(json::field(snap, "sh"));
  st.asr_service.restore(json::field(snap, "ah"));
  return st;
}

session_state snapshot_state(const json::value& snap) {
  const int st = static_cast<int>(json::num(snap, "st"));
  expects(st >= 0 && st <= 3, "session snapshot: state out of range");
  return static_cast<session_state>(st);
}

bool snapshot_closed(const json::value& snap) {
  return json::flag(snap, "cl");
}

std::string snapshot_last_error(const json::value& snap) {
  return json::str(snap, "err");
}

std::vector<defense::stream_event> snapshot_verdicts(const json::value& snap) {
  return decode_verdicts(json::field(snap, "ve"));
}

std::vector<command_outcome> snapshot_outcomes(const json::value& snap) {
  return decode_outcomes(json::field(snap, "oc"));
}

std::vector<obs::span> snapshot_trace(const json::value& snap) {
  const json::value* tr = snap.find("tr");
  if (tr == nullptr) {
    return {};  // pre-flight-recorder image
  }
  return obs::decode_spans(json::field(*tr, "sp"));
}

}  // namespace ivc::serve
