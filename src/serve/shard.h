// Sharded serving front: session ids hashed across M independent
// session_manager shards.
//
// One session_manager scales to a worker pool, but its scheduler state
// (ready-queue, session table, eviction heap) is one lock domain — at
// fleet scale the front needs to PARTITION, not just parallelize. The
// shard_manager keeps the session_manager untouched and puts a thin
// router in front: a global session id hashes (splitmix64, the same
// mixer the fault injector uses) onto one of M shards, each a complete
// session_manager with its own workers, ready-queue, residency bound,
// and histograms. Shards share the detector weights and (optionally)
// one serve_config object, nothing else — no cross-shard locks on the
// offer path.
//
// The determinism contract survives sharding by construction: a
// session lives entirely on one shard, sessions never interact, and
// each shard preserves the exclusive-claim FIFO drain — so per-session
// verdict/outcome streams are bit-identical at ANY shard count, worker
// count, drain discipline, and eviction schedule. The shard test pins
// exactly that.
//
// shard_kill fault: when the shared fault_config's shard_kill_rate is
// set (or a pinned schedule entry names a shard), the front
// deterministically "crashes" a shard — every idle session of that
// shard is force-evicted to its snapshot (evict_idle) and service
// continues from cold. The draw coordinates are (shard index,
// per-shard offer counter), so with a single producer the kill
// schedule is reproducible; because snapshots are bit-exact, a kill
// must be invisible in the streams — which is what the chaos gate
// checks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "serve/session_manager.h"

namespace ivc::serve {

// Per-shard load/eviction view, plus the fleet spread the bench reports.
struct shard_load {
  std::size_t sessions = 0;   // open on this shard (live + frozen)
  std::size_t resident = 0;   // live right now
  std::uint64_t offers = 0;   // blocks routed through this shard
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
  std::uint64_t shard_kills = 0;   // shard_kill faults fired here
  std::size_t quarantined = 0;     // sessions parked on this shard
};

struct shard_balance {
  std::vector<shard_load> shards;
  std::size_t min_sessions = 0;
  std::size_t max_sessions = 0;
  double mean_sessions = 0.0;
  // (GLOBAL session id, last_error()) of every quarantined session in
  // the fleet — the shard-local ids from each session_manager are
  // mapped back through the routing table.
  std::vector<std::pair<std::uint64_t, std::string>> quarantine_errors;
};

class shard_manager {
 public:
  // `config` applies to every shard (worker pool, residency bound and
  // fault injector are PER SHARD). `num_shards` >= 1.
  shard_manager(defense::classifier_detector detector, serve_config config,
                std::size_t num_shards);

  std::size_t num_shards() const { return shards_.size(); }
  const serve_config& config() const { return config_; }

  // Opens a session and returns its GLOBAL id (dense, starting at 0).
  // The id is hashed onto a shard; the mapping is fixed for the
  // session's lifetime. Same overloads as session_manager — the shared-
  // config form is what a million-session fleet uses.
  std::uint64_t open_session();
  std::uint64_t open_session(const serve_config& config);
  std::uint64_t open_session(std::shared_ptr<const serve_config> config);

  std::size_t num_sessions() const;

  // Which shard serves global session `id` (for tests and the bench's
  // balance report).
  std::size_t shard_of(std::uint64_t id) const;

  // The shard fronts themselves, for drills that poke one shard (the
  // chaos bench kills shard i directly via shard(i).evict_idle()).
  session_manager& shard(std::size_t i);
  const session_manager& shard(std::size_t i) const;

  // Producer side: routes the block to the session's shard. Thread-safe;
  // the shard_kill draw below uses this shard's offer counter, so a
  // DETERMINISTIC kill schedule needs a single producer (the paced
  // bench's timeline loop), like every other stream-order contract.
  offer_status offer(std::uint64_t id, audio::buffer block);

  void close(std::uint64_t id);
  void close_all();

  // Fork-join drain, all shards concurrently (each uses its own pool).
  void drain();

  // Streaming: starts `workers_per_shard` long-lived workers on EVERY
  // shard (0 = each shard's default) — total workers = M x per-shard.
  void start(std::size_t workers_per_shard = 0);
  void stop();
  bool streaming() const;

  // close_all + flush on every shard.
  void finish();

  bool reopen(std::uint64_t id);
  bool resident(std::uint64_t id) const;

  std::vector<defense::stream_event> verdicts(std::uint64_t id) const;
  std::vector<command_outcome> outcomes(std::uint64_t id) const;
  session_stats stats(std::uint64_t id) const;

  // Flight-recorder dump of one session's span trace, routed to its
  // shard (reads frozen sessions in place, like the other accessors).
  std::vector<obs::span> trace(std::uint64_t id) const;

  // Cross-shard fleet totals: per-shard aggregates summed, histograms
  // merged (same binning everywhere by construction).
  serve_totals aggregate() const;

  // Eviction counters summed across shards.
  eviction_stats eviction() const;

  // Per-shard load plus the session spread (the hash-balance check).
  shard_balance balance() const;

 private:
  struct route {
    std::uint32_t shard = 0;
    std::uint64_t local = 0;  // id inside the shard's session_manager
  };

  route route_of(std::uint64_t id) const IVC_EXCLUDES(routes_mutex_);
  std::uint64_t open_routed(std::uint64_t* shard_out)
      IVC_EXCLUDES(routes_mutex_);
  // Per-shard local-id -> global-id tables (one routes_ scan; local ids
  // are dense in open order, so the tables build by append).
  std::vector<std::vector<std::uint64_t>> global_ids() const
      IVC_EXCLUDES(routes_mutex_);

  // shards_, faults_, config_ are immutable after construction — shared
  // reads need no lock; only the routing table and counters mutate.
  serve_config config_;
  std::vector<std::unique_ptr<session_manager>> shards_;
  std::shared_ptr<const fault_injector> faults_;

  mutable ts_mutex routes_mutex_;
  // global id -> (shard, local id)
  std::vector<route> routes_ IVC_GUARDED_BY(routes_mutex_);
  // per-shard offer counters
  std::vector<std::uint64_t> offers_ IVC_GUARDED_BY(routes_mutex_);
  // per-shard kill counts
  std::vector<std::uint64_t> shard_kills_ IVC_GUARDED_BY(routes_mutex_);
};

}  // namespace ivc::serve
