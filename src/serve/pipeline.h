// Second pipeline stage of the serving layer: recognition + intent
// behind the defense verdict.
//
// The detection stage (session.h) stops at attack/genuine verdicts, but
// the papers score attacker success as COMMAND EXECUTION on a real
// assistant — an attack that the detector misses still fails if the
// recognizer rejects its demodulated audio, and a genuine request that
// the detector falsely flags is a real denial of service. This stage
// closes that gap per session:
//
//   accepted blocks ─► utterance segmenter (duration-gate VAD)
//                  ─► defense verdict overlap: flagged ⇒ BLOCKED
//                  ─► asr::recognizer over the shared template set
//                  ─► keyword→intent state machine (wake/arm/timeout)
//                  ─► outcome stream: blocked / executed(intent) /
//                     rejected_by_asr / ignored
//
// The outcome stream is a pure function of the accepted-block order —
// the same contract as the verdict stream — so it is bit-identical at
// any worker count, in both drain disciplines, and under any block
// chunking. An utterance only resolves once the detector has consumed
// past its end by the verdict guard plus a full analysis window, i.e.
// once every defense window that the guard-grown overlap test could
// match has been decided; scheduling moves when a resolution happens,
// never what it says.
//
// The intent machine follows the sln_voice intent-engine shape: an
// optional wake command arms the engine for `timeout_s`; while armed,
// recognized commands map through the keyword→intent table; a timeout
// disarms back to idle. With no wake command configured the engine is
// always armed (the serving default — fleet streams carry bare
// commands).
//
// Thread safety: command_pipeline holds NO lock by design. It is a
// single-consumer stage owned by detection_session and only ever
// touched by the worker holding the session's busy_ claim — the
// exclusive-claim capability (see session.h: pipeline_ is
// IVC_GUARDED_BY(busy_)) is the synchronization, so adding a mutex
// here would be pure overhead on the scoring hot path.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asr/recognizer.h"
#include "asr/segmenter.h"
#include "audio/buffer.h"
#include "defense/stream.h"
#include "obs/registry.h"
#include "serve/fault.h"

namespace ivc::serve {

struct intent_rule {
  std::string command_id;
  std::string intent;
};

struct intent_config {
  // Keyword → intent table; empty = identity over synth::command_bank()
  // ("open_door" → "intent/open_door").
  std::vector<intent_rule> rules;
  // Non-empty: the two-stage machine — this command arms the engine,
  // and only an armed engine maps commands. Empty: always armed.
  std::string wake_command_id;
  // Seconds the engine stays armed after the wake (and after each
  // accepted command — a command chain keeps the session hot).
  double timeout_s = 5.0;
};

// Keyword → intent state machine with wake/arm/timeout handling.
class intent_engine {
 public:
  explicit intent_engine(intent_config config = {});

  // A recognized command at stream time `time_s`. Returns the mapped
  // intent when the engine is armed and the table maps the command;
  // nullopt when the command is the wake word (arming, not an intent),
  // the engine is idle, or the command is unmapped.
  std::optional<std::string> on_command(const std::string& command_id,
                                        double time_s);

  bool armed_at(double time_s) const;
  void reset();

  // Serializable arm state; restore(snapshot()) resumes the wake
  // machine bit-exactly (the rules table rides in the config).
  json::value snapshot() const;
  void restore(const json::value& snap);

  const intent_config& config() const { return config_; }

 private:
  intent_config config_;
  bool armed_ = false;
  double armed_until_s_ = 0.0;
};

// Per-utterance outcome of the end-to-end pipeline.
struct command_outcome {
  enum class kind_t {
    blocked,          // defense flagged an overlapping window: no ASR ran
    executed,         // recognized and mapped to an intent — attacker
                      // success / genuine task completion
    rejected_by_asr,  // survived the defense but the recognizer rejected
    ignored,          // recognized, but the intent engine was idle (wake
                      // machine) or the command is unmapped / a wake word
  };

  // Why a `blocked` outcome was blocked when the cause was a FAULT, not
  // a defense verdict. Fail-closed is the contract: a faulted stage can
  // only ever widen `blocked`, never produce `executed` — an attacker
  // who crashes or stalls the pipeline gains nothing.
  enum class fault_t {
    none,              // blocked by a verdict, or not blocked at all
    recognizer_throw,  // the ASR stage threw mid-recognition
    deadline_overrun,  // modeled recognizer cost blew the deadline budget
    degraded_shed,     // session in detector-only mode: ASR stage shed
    stage_fault,       // containment flushed it after a stage crash
  };

  double start_s = 0.0;  // utterance bounds on the session stream
  double end_s = 0.0;
  kind_t kind = kind_t::rejected_by_asr;
  fault_t fault = fault_t::none;
  std::string command_id;  // recognized command (empty when none ran/matched)
  std::string intent;      // mapped intent when executed
  double asr_distance = 0.0;
  double asr_margin = 0.0;
  // Recognizer wall time for this utterance, seconds. Timing, not
  // content: excluded from determinism comparisons.
  double asr_s = 0.0;
};

struct pipeline_config {
  asr::segmenter_config segmenter;
  intent_config intent;
  // Shared enrolled template set. recognize() is const-thread-safe (see
  // asr/recognizer.h), so ONE recognizer serves every session and every
  // worker; sim::shared_enrolled_recognizer is the canonical provider.
  std::shared_ptr<const asr::recognizer> recognizer;
  // Defense analysis window length: an utterance resolves only once the
  // stream has been consumed this far (plus the verdict guard) past its
  // end, so every verdict window that could overlap it has been
  // decided. 0 = adopt the session's stream_config::window_s (what
  // detection_session does).
  double decision_window_s = 0.0;
  // Attack windows are grown by this on both sides before the overlap
  // test — a verdict just outside the utterance bounds still vetoes it.
  double verdict_guard_s = 0.1;
  // ---- Fault tolerance / graceful degradation ------------------------
  // Deadline budget for the MODELED recognizer cost of one utterance
  // (asr_cost_rtf × utterance duration, plus any injected penalty). The
  // budget is a deterministic cost model, never wall clock, so an
  // overrun fires at the same utterance at any worker count. An
  // utterance that overruns resolves fail-closed (`blocked`,
  // fault=deadline_overrun) and trips the degradation ladder below.
  // 0 disables the deadline.
  double asr_deadline_s = 0.0;
  // Modeled recognizer cost per second of utterance audio.
  double asr_cost_rtf = 0.05;
  // Degradation ladder, first rung: after a deadline overrun the session
  // sheds its ASR stage and serves detector-only fail-closed for this
  // much stream time — every utterance resolving inside the window is
  // `blocked` (fault=degraded_shed) without running ASR. Shedding the
  // ASR stage comes BEFORE shedding detector blocks (the queue's
  // overflow policy stays the last rung). Stream-time-windowed, so the
  // ladder is chunking-invariant like everything else in the stage.
  double degrade_window_s = 2.0;
  // Deterministic fault injection (chaos harness / tests). The injector
  // is shared and const-thread-safe; null = no injection. The session
  // that owns this pipeline stamps `fault_session_id` so recognizer
  // faults key on (kind, session, utterance index).
  std::shared_ptr<const fault_injector> faults;
  std::uint64_t fault_session_id = 0;
  // Fleet metrics registry for the stage's utterance-outcome counters;
  // null = no metrics. detection_session propagates its own registry
  // here so a fleet needs to be wired exactly once.
  std::shared_ptr<obs::metrics_registry> metrics;
};

// The per-session stage. Single-consumer, like the stream_detector it
// sits behind: the session's exclusive-claim contract means only one
// worker feeds it at a time.
class command_pipeline {
 public:
  explicit command_pipeline(pipeline_config config);

  // Feeds the block the detector just scored plus the verdicts that
  // scoring emitted; returns every outcome resolved by it.
  std::vector<command_outcome> feed(
      const audio::buffer& block,
      const std::vector<defense::stream_event>& verdicts);

  // End of stream: absorbs the detector's finish() tail verdicts,
  // flushes the segmenter, resolves everything pending, and resets.
  std::vector<command_outcome> finish(
      const std::vector<defense::stream_event>& tail_verdicts = {});

  // Fault containment: resolves EVERY pending utterance as `blocked`
  // (fault=stage_fault) without running ASR, flushes whatever the
  // segmenter still holds the same way, and resets the stage. Called by
  // the session when an exception escapes a pipeline stage — the
  // fail-closed guarantee that a crashed stage can never leak an
  // `executed` outcome.
  std::vector<command_outcome> fail_closed();

  // True while the degradation ladder has the ASR stage shed
  // (detector-only fail-closed mode).
  bool degraded() const { return consumed_s_ < degraded_until_s_; }

  // True when the stage holds no unresolved utterance — no pending
  // deque entry and no open utterance in the segmenter. The session's
  // crash-recovery checkpoints only capture at safe points: restoring
  // a stage that still owed outcomes would emit them twice (once
  // fail-closed at the fault, once again after the restore).
  bool snapshot_safe() const {
    return pending_.empty() && segmenter_.idle();
  }

  // Serializable stage state: segmenter + intent machine + decided
  // attack windows + pending utterances + the stream position and
  // degradation ladder. utterance_index_ rides along — it is a fault
  // coordinate and must survive eviction like it survives reset().
  json::value snapshot() const;
  void restore(const json::value& snap);

  void reset();

  const pipeline_config& config() const { return config_; }

 private:
  // Fleet-wide counter handles, registered once per stage construction.
  // Outcome counts are pure functions of the accepted-block order, so
  // they stay in the deterministic fingerprint.
  struct metric_handles {
    explicit metric_handles(obs::metrics_registry* reg);
    obs::counter blocked;
    obs::counter executed;
    obs::counter rejected;
    obs::counter ignored;
    obs::counter deadline_overruns;
    obs::counter degraded_sheds;
    obs::counter stage_fault_flushes;
  };

  void absorb_verdicts(const std::vector<defense::stream_event>& verdicts);
  // Resolves pending utterances that are decidable at stream time
  // `consumed_s` (all of them when `flush` is set).
  void resolve_ready(bool flush, std::vector<command_outcome>& out);
  command_outcome resolve(const asr::utterance& u);
  // Bumps the outcome/fault counters for one resolved utterance.
  void note(const command_outcome& o);

  pipeline_config config_;
  metric_handles metrics_;
  asr::utterance_segmenter segmenter_;
  intent_engine intent_;
  // Decided attack windows, as [start, end] intervals on the stream.
  std::vector<std::pair<double, double>> attack_windows_;
  std::deque<asr::utterance> pending_;
  // Stream position, tracked as an exact sample count (consumed_s_ is
  // derived) so the resolution gate and window pruning compare the same
  // values under any block chunking.
  std::uint64_t consumed_samples_ = 0;
  double consumed_s_ = 0.0;
  double rate_ = 0.0;
  // Monotonic per-session resolved-utterance counter — the `index` the
  // fault injector keys recognizer faults on. Advances in accepted-block
  // order; survives finish() so a reopened stream never replays the
  // same schedule coordinates.
  std::uint64_t utterance_index_ = 0;
  // Degradation ladder: stream time until which the ASR stage is shed.
  double degraded_until_s_ = 0.0;
};

}  // namespace ivc::serve
