// Elementwise and structural buffer operations.
#pragma once

#include <span>

#include "audio/buffer.h"

namespace ivc::audio {

// Scales by a linear gain.
buffer gain(const buffer& b, double linear_gain);

// Scales by a decibel gain.
buffer gain_db(const buffer& b, double db);

// Scales so the absolute peak equals `target_peak` (no-op on silence).
buffer normalize_peak(const buffer& b, double target_peak = 1.0);

// Scales so the RMS equals `target_rms` (no-op on silence).
buffer normalize_rms(const buffer& b, double target_rms);

// Sample-wise sum; the shorter input is zero-padded. Rates must match.
buffer mix(const buffer& a, const buffer& b);

// Adds `src` into `dst` in place over dst's FULL length, repeating src
// cyclically when it is shorter — a noise bed one rounding-sample short
// must not leave a noiseless tail. Rates must match; src must be
// non-empty.
void mix_into(buffer& dst, const buffer& src);

// Sum of b into a starting at `offset_s` seconds.
buffer mix_at(const buffer& a, const buffer& b, double offset_s);

// Removes the mean.
buffer remove_dc(const buffer& b);

// Linear fade-in/out over the given durations.
buffer fade(const buffer& b, double fade_in_s, double fade_out_s);

// Pads with silence before/after.
buffer pad(const buffer& b, double before_s, double after_s);

// Hard-clips samples to [-limit, limit].
buffer hard_clip(const buffer& b, double limit = 1.0);

}  // namespace ivc::audio
