#include "audio/ops.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace ivc::audio {

buffer gain(const buffer& b, double linear_gain) {
  validate(b, "gain");
  buffer out = b;
  for (double& s : out.samples) {
    s *= linear_gain;
  }
  return out;
}

buffer gain_db(const buffer& b, double db) {
  return gain(b, ivc::db_to_amplitude(db));
}

buffer normalize_peak(const buffer& b, double target_peak) {
  validate(b, "normalize_peak");
  expects(target_peak > 0.0, "normalize_peak: target must be > 0");
  double peak = 0.0;
  for (const double s : b.samples) {
    peak = std::max(peak, std::abs(s));
  }
  if (peak <= 1e-300) {
    return b;
  }
  return gain(b, target_peak / peak);
}

buffer normalize_rms(const buffer& b, double target_rms) {
  validate(b, "normalize_rms");
  expects(target_rms > 0.0, "normalize_rms: target must be > 0");
  double acc = 0.0;
  for (const double s : b.samples) {
    acc += s * s;
  }
  const double rms = std::sqrt(acc / static_cast<double>(b.size()));
  if (rms <= 1e-300) {
    return b;
  }
  return gain(b, target_rms / rms);
}

buffer mix(const buffer& a, const buffer& b) {
  validate(a, "mix");
  validate(b, "mix");
  expects(a.sample_rate_hz == b.sample_rate_hz, "mix: sample-rate mismatch");
  buffer out = a.size() >= b.size() ? a : b;
  const buffer& shorter = a.size() >= b.size() ? b : a;
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    out.samples[i] += shorter.samples[i];
  }
  return out;
}

void mix_into(buffer& dst, const buffer& src) {
  validate(dst, "mix_into");
  validate(src, "mix_into");
  expects(dst.sample_rate_hz == src.sample_rate_hz,
          "mix_into: sample-rate mismatch");
  std::size_t j = 0;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst.samples[i] += src.samples[j];
    if (++j == src.size()) {
      j = 0;
    }
  }
}

buffer mix_at(const buffer& a, const buffer& b, double offset_s) {
  validate(a, "mix_at");
  validate(b, "mix_at");
  expects(a.sample_rate_hz == b.sample_rate_hz, "mix_at: sample-rate mismatch");
  expects(offset_s >= 0.0, "mix_at: offset must be >= 0");
  const auto offset =
      static_cast<std::size_t>(std::llround(offset_s * a.sample_rate_hz));
  buffer out = a;
  if (offset + b.size() > out.size()) {
    out.samples.resize(offset + b.size(), 0.0);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    out.samples[offset + i] += b.samples[i];
  }
  return out;
}

buffer remove_dc(const buffer& b) {
  validate(b, "remove_dc");
  double mean = 0.0;
  for (const double s : b.samples) {
    mean += s;
  }
  mean /= static_cast<double>(b.size());
  buffer out = b;
  for (double& s : out.samples) {
    s -= mean;
  }
  return out;
}

buffer fade(const buffer& b, double fade_in_s, double fade_out_s) {
  validate(b, "fade");
  expects(fade_in_s >= 0.0 && fade_out_s >= 0.0,
          "fade: durations must be >= 0");
  buffer out = b;
  const auto n_in = std::min(
      out.size(),
      static_cast<std::size_t>(std::llround(fade_in_s * b.sample_rate_hz)));
  const auto n_out = std::min(
      out.size(),
      static_cast<std::size_t>(std::llround(fade_out_s * b.sample_rate_hz)));
  for (std::size_t i = 0; i < n_in; ++i) {
    out.samples[i] *= static_cast<double>(i) / static_cast<double>(n_in);
  }
  for (std::size_t i = 0; i < n_out; ++i) {
    out.samples[out.size() - 1 - i] *=
        static_cast<double>(i) / static_cast<double>(n_out);
  }
  return out;
}

buffer pad(const buffer& b, double before_s, double after_s) {
  validate(b, "pad");
  expects(before_s >= 0.0 && after_s >= 0.0, "pad: durations must be >= 0");
  const auto n_before =
      static_cast<std::size_t>(std::llround(before_s * b.sample_rate_hz));
  const auto n_after =
      static_cast<std::size_t>(std::llround(after_s * b.sample_rate_hz));
  std::vector<double> out(n_before + b.size() + n_after, 0.0);
  std::copy(b.samples.begin(), b.samples.end(),
            out.begin() + static_cast<std::ptrdiff_t>(n_before));
  return buffer{std::move(out), b.sample_rate_hz};
}

buffer hard_clip(const buffer& b, double limit) {
  validate(b, "hard_clip");
  expects(limit > 0.0, "hard_clip: limit must be > 0");
  buffer out = b;
  for (double& s : out.samples) {
    s = std::clamp(s, -limit, limit);
  }
  return out;
}

}  // namespace ivc::audio
