// Mono audio buffer: samples plus sample rate.
//
// A deliberate plain struct (Core Guidelines C.2): the only invariant a
// valid buffer carries is sample_rate_hz > 0, which constructors and the
// validate() helper enforce at API boundaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace ivc::audio {

struct buffer {
  std::vector<double> samples;
  double sample_rate_hz = 48'000.0;

  buffer() = default;
  buffer(std::vector<double> s, double rate)
      : samples{std::move(s)}, sample_rate_hz{rate} {
    expects(rate > 0.0, "buffer: sample rate must be > 0");
  }

  std::size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }
  double duration_s() const {
    return static_cast<double>(samples.size()) / sample_rate_hz;
  }
  std::span<const double> view() const { return samples; }
};

// Throws unless the buffer has a positive rate and at least one sample.
void validate(const buffer& b, const char* context);

// Buffer of `duration_s` seconds of silence.
buffer silence(double duration_s, double sample_rate_hz);

// Concatenates parts (all must share a sample rate).
buffer concat(std::span<const buffer> parts);

// Sub-range [start_s, start_s + length_s) clamped to the buffer.
buffer slice(const buffer& b, double start_s, double length_s);

}  // namespace ivc::audio
