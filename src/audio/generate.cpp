#include "audio/generate.h"

#include <array>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/fir.h"

namespace ivc::audio {
namespace {

std::size_t sample_count(double duration_s, double sample_rate_hz) {
  expects(duration_s > 0.0, "generator: duration must be > 0");
  expects(sample_rate_hz > 0.0, "generator: sample rate must be > 0");
  return static_cast<std::size_t>(std::llround(duration_s * sample_rate_hz));
}

double rms_of(std::span<const double> x) {
  double acc = 0.0;
  for (const double v : x) {
    acc += v * v;
  }
  return std::sqrt(acc / static_cast<double>(x.size()));
}

void scale_to_rms(std::vector<double>& x, double target_rms) {
  const double current = rms_of(x);
  if (current <= 1e-300) {
    return;
  }
  const double g = target_rms / current;
  for (double& v : x) {
    v *= g;
  }
}

}  // namespace

buffer tone(double freq_hz, double duration_s, double sample_rate_hz,
            double amplitude, double phase_rad) {
  expects(freq_hz >= 0.0 && freq_hz <= sample_rate_hz / 2.0,
          "tone: frequency must be in [0, fs/2]");
  const std::size_t n = sample_count(duration_s, sample_rate_hz);
  std::vector<double> out(n);
  const double w = two_pi * freq_hz / sample_rate_hz;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amplitude * std::sin(w * static_cast<double>(i) + phase_rad);
  }
  return buffer{std::move(out), sample_rate_hz};
}

buffer multi_tone(std::span<const double> freqs_hz, double duration_s,
                  double sample_rate_hz, double amplitude_each) {
  expects(!freqs_hz.empty(), "multi_tone: need at least one frequency");
  const std::size_t n = sample_count(duration_s, sample_rate_hz);
  std::vector<double> out(n, 0.0);
  for (const double f : freqs_hz) {
    expects(f >= 0.0 && f <= sample_rate_hz / 2.0,
            "multi_tone: frequency must be in [0, fs/2]");
    const double w = two_pi * f / sample_rate_hz;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += amplitude_each * std::sin(w * static_cast<double>(i));
    }
  }
  return buffer{std::move(out), sample_rate_hz};
}

buffer chirp(double f0_hz, double f1_hz, double duration_s,
             double sample_rate_hz, double amplitude) {
  expects(f0_hz >= 0.0 && f1_hz >= 0.0, "chirp: frequencies must be >= 0");
  const std::size_t n = sample_count(duration_s, sample_rate_hz);
  std::vector<double> out(n);
  const double k = (f1_hz - f0_hz) / duration_s;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    out[i] = amplitude * std::sin(two_pi * (f0_hz * t + 0.5 * k * t * t));
  }
  return buffer{std::move(out), sample_rate_hz};
}

buffer white_noise(double duration_s, double sample_rate_hz, double rms,
                   ivc::rng& rng) {
  expects(rms >= 0.0, "white_noise: rms must be >= 0");
  const std::size_t n = sample_count(duration_s, sample_rate_hz);
  std::vector<double> out(n);
  for (double& v : out) {
    v = rng.normal(0.0, 1.0);
  }
  scale_to_rms(out, rms);
  return buffer{std::move(out), sample_rate_hz};
}

buffer pink_noise(double duration_s, double sample_rate_hz, double rms,
                  ivc::rng& rng) {
  expects(rms >= 0.0, "pink_noise: rms must be >= 0");
  const std::size_t n = sample_count(duration_s, sample_rate_hz);
  // Voss–McCartney: sum of progressively slower random rows.
  constexpr std::size_t rows = 16;
  std::array<double, rows> row{};
  for (double& r : row) {
    r = rng.normal(0.0, 1.0);
  }
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Update the row selected by the number of trailing zeros of i.
    std::size_t idx = 0;
    std::size_t v = i;
    while (idx + 1 < rows && (v & 1u) == 0u && v != 0u) {
      v >>= 1u;
      ++idx;
    }
    row[idx] = rng.normal(0.0, 1.0);
    double acc = 0.0;
    for (const double r : row) {
      acc += r;
    }
    out[i] = acc;
  }
  scale_to_rms(out, rms);
  return buffer{std::move(out), sample_rate_hz};
}

buffer speech_shaped_noise(double duration_s, double sample_rate_hz,
                           double rms, ivc::rng& rng) {
  buffer white = white_noise(duration_s, sample_rate_hz, 1.0, rng);
  // Long-term speech spectrum approximation: flat below 500 Hz, then
  // -6 dB/octave (amplitude ~ 500/f).
  std::vector<double> shaped = ivc::dsp::apply_magnitude_response(
      white.samples, sample_rate_hz, [](double f) {
        if (f <= 500.0) {
          return 1.0;
        }
        return 500.0 / f;
      });
  scale_to_rms(shaped, rms);
  return buffer{std::move(shaped), sample_rate_hz};
}

}  // namespace ivc::audio
