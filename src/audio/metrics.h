// Signal measurements: RMS, peaks, SNR.
#pragma once

#include <span>

#include "audio/buffer.h"

namespace ivc::audio {

double rms(std::span<const double> x);
double peak(std::span<const double> x);

// RMS level relative to digital full scale (amplitude 1.0), in dB.
double rms_dbfs(const buffer& b);

// Peak level in dBFS.
double peak_dbfs(const buffer& b);

// Crest factor (peak / RMS), in dB.
double crest_factor_db(const buffer& b);

// SNR in dB given the clean reference and the degraded signal
// (noise = degraded − clean after optimal scaling of clean).
double snr_db(std::span<const double> clean, std::span<const double> degraded);

// Third standardized moment of the amplitude distribution. The defense
// uses this: a +v² component skews an otherwise symmetric voice waveform.
double amplitude_skewness(std::span<const double> x);

}  // namespace ivc::audio
