#include "audio/buffer.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace ivc::audio {

void validate(const buffer& b, const char* context) {
  expects(b.sample_rate_hz > 0.0,
          std::string{context} + ": buffer sample rate must be > 0");
  expects(!b.samples.empty(),
          std::string{context} + ": buffer must be non-empty");
}

buffer silence(double duration_s, double sample_rate_hz) {
  expects(duration_s >= 0.0, "silence: duration must be >= 0");
  expects(sample_rate_hz > 0.0, "silence: sample rate must be > 0");
  const auto n = static_cast<std::size_t>(std::llround(duration_s * sample_rate_hz));
  return buffer{std::vector<double>(n, 0.0), sample_rate_hz};
}

buffer concat(std::span<const buffer> parts) {
  expects(!parts.empty(), "concat: need at least one part");
  const double rate = parts.front().sample_rate_hz;
  std::size_t total = 0;
  for (const buffer& p : parts) {
    expects(p.sample_rate_hz == rate, "concat: sample-rate mismatch");
    total += p.size();
  }
  std::vector<double> out;
  out.reserve(total);
  for (const buffer& p : parts) {
    out.insert(out.end(), p.samples.begin(), p.samples.end());
  }
  return buffer{std::move(out), rate};
}

buffer slice(const buffer& b, double start_s, double length_s) {
  validate(b, "slice");
  expects(start_s >= 0.0 && length_s >= 0.0,
          "slice: start and length must be >= 0");
  const auto start = std::min(
      b.size(), static_cast<std::size_t>(std::llround(start_s * b.sample_rate_hz)));
  const auto want =
      static_cast<std::size_t>(std::llround(length_s * b.sample_rate_hz));
  const auto len = std::min(want, b.size() - start);
  std::vector<double> out(b.samples.begin() + static_cast<std::ptrdiff_t>(start),
                          b.samples.begin() + static_cast<std::ptrdiff_t>(start + len));
  return buffer{std::move(out), b.sample_rate_hz};
}

}  // namespace ivc::audio
