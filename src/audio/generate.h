// Deterministic and stochastic test-signal generators.
#pragma once

#include <span>
#include <vector>

#include "audio/buffer.h"
#include "common/rng.h"

namespace ivc::audio {

// Pure sine: amplitude · sin(2π f t + phase).
buffer tone(double freq_hz, double duration_s, double sample_rate_hz,
            double amplitude = 1.0, double phase_rad = 0.0);

// Sum of equal-amplitude sines at the given frequencies; total peak is not
// normalized (callers scale as needed).
buffer multi_tone(std::span<const double> freqs_hz, double duration_s,
                  double sample_rate_hz, double amplitude_each = 1.0);

// Linear chirp from f0 to f1 over the duration.
buffer chirp(double f0_hz, double f1_hz, double duration_s,
             double sample_rate_hz, double amplitude = 1.0);

// Gaussian white noise with the given RMS.
buffer white_noise(double duration_s, double sample_rate_hz, double rms,
                   ivc::rng& rng);

// Pink (1/f) noise with the given RMS, via the Voss–McCartney algorithm.
buffer pink_noise(double duration_s, double sample_rate_hz, double rms,
                  ivc::rng& rng);

// Noise shaped like the long-term average speech spectrum (flat up to
// 500 Hz, −6 dB/octave above; a standard approximation), given RMS.
buffer speech_shaped_noise(double duration_s, double sample_rate_hz,
                           double rms, ivc::rng& rng);

}  // namespace ivc::audio
