#include "audio/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace ivc::audio {

double rms(std::span<const double> x) {
  expects(!x.empty(), "rms: input must be non-empty");
  double acc = 0.0;
  for (const double v : x) {
    acc += v * v;
  }
  return std::sqrt(acc / static_cast<double>(x.size()));
}

double peak(std::span<const double> x) {
  expects(!x.empty(), "peak: input must be non-empty");
  double p = 0.0;
  for (const double v : x) {
    p = std::max(p, std::abs(v));
  }
  return p;
}

double rms_dbfs(const buffer& b) {
  validate(b, "rms_dbfs");
  return ivc::amplitude_to_db(rms(b.samples));
}

double peak_dbfs(const buffer& b) {
  validate(b, "peak_dbfs");
  return ivc::amplitude_to_db(peak(b.samples));
}

double crest_factor_db(const buffer& b) {
  validate(b, "crest_factor_db");
  const double r = rms(b.samples);
  if (r <= 1e-300) {
    return 0.0;
  }
  return ivc::amplitude_to_db(peak(b.samples) / r);
}

double snr_db(std::span<const double> clean, std::span<const double> degraded) {
  expects(clean.size() == degraded.size() && !clean.empty(),
          "snr_db: inputs must match and be non-empty");
  // Project degraded onto clean to remove the unknown gain, then measure
  // residual power.
  double cc = 0.0;
  double cd = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    cc += clean[i] * clean[i];
    cd += clean[i] * degraded[i];
  }
  if (cc <= 1e-300) {
    return 0.0;
  }
  const double g = cd / cc;
  double signal_power = 0.0;
  double noise_power = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const double s = g * clean[i];
    const double n = degraded[i] - s;
    signal_power += s * s;
    noise_power += n * n;
  }
  if (noise_power <= 1e-300) {
    return 200.0;  // effectively noiseless
  }
  return ivc::power_to_db(signal_power / noise_power);
}

double amplitude_skewness(std::span<const double> x) {
  expects(x.size() >= 3, "amplitude_skewness: need at least 3 samples");
  double mean = 0.0;
  for (const double v : x) {
    mean += v;
  }
  mean /= static_cast<double>(x.size());
  double m2 = 0.0;
  double m3 = 0.0;
  for (const double v : x) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(x.size());
  m3 /= static_cast<double>(x.size());
  if (m2 <= 1e-300) {
    return 0.0;
  }
  return m3 / std::pow(m2, 1.5);
}

}  // namespace ivc::audio
