// Minimal RIFF/WAVE reader and writer.
//
// Supports PCM 16/24/32-bit integer and IEEE float 32/64-bit, mono or
// multi-channel (multi-channel input is averaged down to mono, matching
// how every pipeline in this library consumes audio). Written files are
// mono PCM16 or float32.
#pragma once

#include <cstdint>
#include <string>

#include "audio/buffer.h"

namespace ivc::audio {

enum class wav_format : std::uint16_t {
  pcm16,
  float32,
};

// Reads a WAV file into a mono buffer. Throws std::runtime_error on
// malformed files and unsupported encodings.
buffer read_wav(const std::string& path);

// Writes a mono buffer. Samples are clipped to [-1, 1] for pcm16.
void write_wav(const std::string& path, const buffer& b,
               wav_format format = wav_format::pcm16);

}  // namespace ivc::audio
