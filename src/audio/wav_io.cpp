#include "audio/wav_io.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.h"

namespace ivc::audio {
namespace {

constexpr std::uint16_t format_pcm = 1;
constexpr std::uint16_t format_ieee_float = 3;

// All RIFF fields are little-endian; this code assumes a little-endian
// host (checked at runtime on first use).
bool host_is_little_endian() {
  const std::uint16_t probe = 0x0102;
  std::array<unsigned char, 2> bytes{};
  std::memcpy(bytes.data(), &probe, 2);
  return bytes[0] == 0x02;
}

template <typename T>
T read_le(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  ensures(in.good(), "read_wav: unexpected end of file");
  return value;
}

template <typename T>
void write_le(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

double decode_sample(const unsigned char* p, std::uint16_t bits,
                     std::uint16_t fmt) {
  if (fmt == format_ieee_float) {
    if (bits == 32) {
      float f = 0.0F;
      std::memcpy(&f, p, 4);
      return static_cast<double>(f);
    }
    double d = 0.0;
    std::memcpy(&d, p, 8);
    return d;
  }
  switch (bits) {
    case 16: {
      std::int16_t v = 0;
      std::memcpy(&v, p, 2);
      return static_cast<double>(v) / 32768.0;
    }
    case 24: {
      std::int32_t v = (p[0] << 8) | (p[1] << 16) |
                       (static_cast<std::int32_t>(p[2]) << 24);
      return static_cast<double>(v >> 8) / 8388608.0;
    }
    case 32: {
      std::int32_t v = 0;
      std::memcpy(&v, p, 4);
      return static_cast<double>(v) / 2147483648.0;
    }
    default:
      throw std::runtime_error{"read_wav: unsupported PCM bit depth"};
  }
}

}  // namespace

buffer read_wav(const std::string& path) {
  ensures(host_is_little_endian(), "read_wav: big-endian hosts unsupported");
  std::ifstream in{path, std::ios::binary};
  ensures(in.good(), "read_wav: cannot open " + path);
  // Total file size up front: every declared chunk size is validated
  // against the bytes that actually exist, so a garbage size field (a
  // truncated upload, a fuzzed header) fails with a clean error instead
  // of a multi-gigabyte allocation or a silent mis-parse.
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  std::array<char, 4> tag{};
  in.read(tag.data(), 4);
  ensures(in.good() && std::memcmp(tag.data(), "RIFF", 4) == 0,
          "read_wav: missing RIFF header in " + path);
  (void)read_le<std::uint32_t>(in);  // riff size (advisory; not trusted)
  in.read(tag.data(), 4);
  ensures(in.good() && std::memcmp(tag.data(), "WAVE", 4) == 0,
          "read_wav: missing WAVE tag in " + path);

  std::uint16_t fmt = 0;
  std::uint16_t channels = 0;
  std::uint32_t rate = 0;
  std::uint16_t bits = 0;
  bool have_fmt = false;
  std::vector<unsigned char> data;
  bool have_data = false;

  while (in.peek() != EOF) {
    in.read(tag.data(), 4);
    if (!in.good()) {
      break;
    }
    const auto chunk_size = read_le<std::uint32_t>(in);
    const auto body_start = static_cast<std::uint64_t>(in.tellg());
    ensures(body_start + chunk_size <= file_bytes,
            "read_wav: chunk size overruns the file in " + path);
    if (std::memcmp(tag.data(), "fmt ", 4) == 0) {
      // A fmt body shorter than the 16 fixed bytes would make the reads
      // below swallow the next chunk's header as format fields.
      ensures(chunk_size >= 16, "read_wav: malformed fmt chunk in " + path);
      fmt = read_le<std::uint16_t>(in);
      channels = read_le<std::uint16_t>(in);
      rate = read_le<std::uint32_t>(in);
      (void)read_le<std::uint32_t>(in);  // byte rate
      (void)read_le<std::uint16_t>(in);  // block align
      bits = read_le<std::uint16_t>(in);
      if (chunk_size > 16) {
        in.ignore(chunk_size - 16);
      }
      have_fmt = true;
    } else if (std::memcmp(tag.data(), "data", 4) == 0) {
      data.resize(chunk_size);  // safe: bounded by file_bytes above
      in.read(reinterpret_cast<char*>(data.data()), chunk_size);
      ensures(in.good(), "read_wav: truncated data chunk in " + path);
      have_data = true;
    } else {
      in.ignore(chunk_size + (chunk_size % 2));  // chunks are word-aligned
    }
  }
  ensures(have_fmt && have_data, "read_wav: missing fmt/data chunk in " + path);
  ensures(fmt == format_pcm || fmt == format_ieee_float,
          "read_wav: unsupported format code in " + path);
  ensures(channels >= 1, "read_wav: zero channels in " + path);
  ensures(rate > 0, "read_wav: zero sample rate in " + path);
  ensures(fmt == format_pcm ? (bits == 16 || bits == 24 || bits == 32)
                            : (bits == 32 || bits == 64),
          "read_wav: unsupported bit depth in " + path);
  const std::size_t bytes_per_sample = bits / 8;
  ensures(bytes_per_sample > 0, "read_wav: zero bit depth in " + path);
  const std::size_t frame_bytes = bytes_per_sample * channels;
  const std::size_t frames = data.size() / frame_bytes;

  std::vector<double> mono(frames, 0.0);
  for (std::size_t f = 0; f < frames; ++f) {
    double acc = 0.0;
    for (std::size_t c = 0; c < channels; ++c) {
      acc += decode_sample(data.data() + f * frame_bytes + c * bytes_per_sample,
                           bits, fmt);
    }
    mono[f] = acc / channels;
  }
  return buffer{std::move(mono), static_cast<double>(rate)};
}

void write_wav(const std::string& path, const buffer& b, wav_format format) {
  validate(b, "write_wav");
  ensures(host_is_little_endian(), "write_wav: big-endian hosts unsupported");
  std::ofstream out{path, std::ios::binary};
  ensures(out.good(), "write_wav: cannot open " + path);

  const std::uint16_t channels = 1;
  const std::uint16_t bits = format == wav_format::pcm16 ? 16 : 32;
  const std::uint16_t fmt_code =
      format == wav_format::pcm16 ? format_pcm : format_ieee_float;
  const auto rate = static_cast<std::uint32_t>(std::llround(b.sample_rate_hz));
  const std::uint32_t data_bytes =
      static_cast<std::uint32_t>(b.size()) * (bits / 8);

  out.write("RIFF", 4);
  write_le<std::uint32_t>(out, 36 + data_bytes);
  out.write("WAVE", 4);
  out.write("fmt ", 4);
  write_le<std::uint32_t>(out, 16);
  write_le<std::uint16_t>(out, fmt_code);
  write_le<std::uint16_t>(out, channels);
  write_le<std::uint32_t>(out, rate);
  write_le<std::uint32_t>(out, rate * channels * (bits / 8));
  write_le<std::uint16_t>(out, channels * (bits / 8));
  write_le<std::uint16_t>(out, bits);
  out.write("data", 4);
  write_le<std::uint32_t>(out, data_bytes);

  if (format == wav_format::pcm16) {
    for (const double s : b.samples) {
      // Same 32768 scale as the reader, clamped to the int16 range, so a
      // round trip quantizes symmetrically (error <= 1/65536 of span).
      const double scaled = std::clamp(std::round(s * 32768.0), -32768.0,
                                       32767.0);
      write_le<std::int16_t>(out, static_cast<std::int16_t>(scaled));
    }
  } else {
    for (const double s : b.samples) {
      write_le<float>(out, static_cast<float>(s));
    }
  }
  ensures(out.good(), "write_wav: write failed for " + path);
}

}  // namespace ivc::audio
