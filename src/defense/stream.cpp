#include "defense/stream.h"

#include <algorithm>
#include <cmath>

#include "audio/metrics.h"
#include "common/error.h"
#include "common/json_field.h"

namespace ivc::defense {

stream_detector::stream_detector(classifier_detector detector,
                                 stream_config config)
    : detector_{std::move(detector)}, config_{config} {
  expects(config_.window_s > 0.0 && config_.hop_s > 0.0 &&
              config_.hop_s <= config_.window_s,
          "stream_detector: need 0 < hop <= window");
}

std::vector<stream_event> stream_detector::feed(const audio::buffer& block) {
  audio::validate(block, "stream_detector::feed");
  if (rate_ == 0.0) {
    rate_ = block.sample_rate_hz;
  }
  expects(block.sample_rate_hz == rate_,
          "stream_detector: sample rate changed mid-stream");
  pending_.insert(pending_.end(), block.samples.begin(), block.samples.end());
  return drain(/*flush=*/false);
}

std::vector<stream_event> stream_detector::finish() {
  std::vector<stream_event> events = drain(/*flush=*/true);
  // A finished stream is over: leaving pending_/rate_/consumed_s_ intact
  // would let a later feed() silently continue it with spliced
  // timestamps (and leak the sub-half-window residue into the next
  // stream). Reset so feeding again starts a fresh stream at t = 0 —
  // identical to an explicit reset().
  reset();
  return events;
}

void stream_detector::reset() {
  pending_.clear();
  rate_ = 0.0;
  consumed_s_ = 0.0;
}

json::value stream_detector::snapshot() const {
  json::object o;
  o.emplace_back("rate", json::value{rate_});
  // consumed_s_ is ACCUMULATED (+= hop/rate per window), not derived
  // from a sample count, so the double itself must ride along — recomputing
  // it would round differently and shift every future verdict timestamp.
  o.emplace_back("cs", json::value{consumed_s_});
  o.emplace_back("pend", json::from_samples(pending_));
  return json::value{std::move(o)};
}

void stream_detector::restore(const json::value& snap) {
  rate_ = json::num(snap, "rate");
  consumed_s_ = json::num(snap, "cs");
  pending_ = json::to_samples(json::field(snap, "pend"));
}

std::vector<stream_event> stream_detector::drain(bool flush) {
  std::vector<stream_event> events;
  if (rate_ == 0.0) {
    return events;
  }
  const auto window = static_cast<std::size_t>(config_.window_s * rate_);
  const auto hop = static_cast<std::size_t>(config_.hop_s * rate_);

  while (pending_.size() >= window ||
         (flush && pending_.size() >= window / 2)) {
    const std::size_t take = std::min(window, pending_.size());
    audio::buffer win{{pending_.begin(),
                       pending_.begin() + static_cast<std::ptrdiff_t>(take)},
                      rate_};
    if (audio::peak(win.samples) >= config_.min_peak) {
      const detection d = detector_.detect(win, config_.features);
      events.push_back(stream_event{consumed_s_, d.score, d.is_attack});
    }
    const std::size_t advance = std::min(hop, pending_.size());
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(advance));
    consumed_s_ += static_cast<double>(advance) / rate_;
    if (flush && take < window) {
      break;
    }
  }
  return events;
}

}  // namespace ivc::defense
