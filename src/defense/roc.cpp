#include "defense/roc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace ivc::defense {

roc_curve compute_roc(std::span<const double> scores,
                      std::span<const int> labels) {
  expects(scores.size() == labels.size() && !scores.empty(),
          "compute_roc: scores/labels must match and be non-empty");
  const auto num_pos = static_cast<double>(
      std::count(labels.begin(), labels.end(), 1));
  const auto num_neg = static_cast<double>(labels.size()) - num_pos;
  expects(num_pos > 0 && num_neg > 0,
          "compute_roc: need both classes present");

  // Sort by score descending; sweep thresholds at every distinct score.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  roc_curve curve;
  double tp = 0.0;
  double fp = 0.0;
  double prev_fpr = 0.0;
  double prev_tpr = 0.0;
  curve.points.push_back(
      roc_point{scores[order.front()] + 1.0, 0.0, 0.0});

  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] == 1) {
      tp += 1.0;
    } else {
      fp += 1.0;
    }
    // Emit a point when the next score differs (threshold boundary).
    if (i + 1 == order.size() || scores[order[i + 1]] != scores[order[i]]) {
      const double tpr = tp / num_pos;
      const double fpr = fp / num_neg;
      curve.points.push_back(roc_point{scores[order[i]], tpr, fpr});
      curve.auc += (fpr - prev_fpr) * (tpr + prev_tpr) / 2.0;  // trapezoid

      const double accuracy = (tp + (num_neg - fp)) /
                              (num_pos + num_neg);
      if (accuracy > curve.best_accuracy) {
        curve.best_accuracy = accuracy;
        curve.best_threshold = scores[order[i]];
      }
      prev_fpr = fpr;
      prev_tpr = tpr;
    }
  }

  // EER via a second pass: minimize |FPR - (1 - TPR)|.
  double best_gap = 2.0;
  for (const roc_point& p : curve.points) {
    const double gap = std::abs(p.false_positive_rate -
                                (1.0 - p.true_positive_rate));
    if (gap < best_gap) {
      best_gap = gap;
      curve.equal_error_rate =
          (p.false_positive_rate + (1.0 - p.true_positive_rate)) / 2.0;
    }
  }
  return curve;
}

}  // namespace ivc::defense
