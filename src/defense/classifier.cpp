#include "defense/classifier.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace ivc::defense {
namespace {

double sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void logistic_classifier::train(const labelled_features& data,
                                const training_config& config) {
  expects(data.size() >= 8, "logistic_classifier: need at least 8 samples");
  expects(data.x.size() == data.y.size(),
          "logistic_classifier: feature/label count mismatch");
  const bool has_pos = std::any_of(data.y.begin(), data.y.end(),
                                   [](int v) { return v == 1; });
  const bool has_neg = std::any_of(data.y.begin(), data.y.end(),
                                   [](int v) { return v == 0; });
  expects(has_pos && has_neg,
          "logistic_classifier: need both classes in training data");

  // Standardization statistics.
  const double n = static_cast<double>(data.size());
  mean_.fill(0.0);
  stddev_.fill(0.0);
  for (const auto& x : data.x) {
    for (std::size_t k = 0; k < num_trace_features; ++k) {
      mean_[k] += x[k];
    }
  }
  for (double& m : mean_) {
    m /= n;
  }
  for (const auto& x : data.x) {
    for (std::size_t k = 0; k < num_trace_features; ++k) {
      const double d = x[k] - mean_[k];
      stddev_[k] += d * d;
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / n);
    if (s < 1e-9) {
      s = 1.0;  // constant feature; leaves it centered at zero
    }
  }

  // Batch gradient descent on the regularized log-loss.
  weights_.fill(0.0);
  bias_ = 0.0;
  trained_ = true;  // standardize() is usable from here on
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::array<double, num_trace_features> grad{};
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto xs = standardize(data.x[i]);
      double z = bias_;
      for (std::size_t k = 0; k < num_trace_features; ++k) {
        z += weights_[k] * xs[k];
      }
      const double err = sigmoid(z) - static_cast<double>(data.y[i]);
      for (std::size_t k = 0; k < num_trace_features; ++k) {
        grad[k] += err * xs[k];
      }
      grad_bias += err;
    }
    for (std::size_t k = 0; k < num_trace_features; ++k) {
      weights_[k] -= config.learning_rate *
                     (grad[k] / n + config.l2 * weights_[k]);
    }
    bias_ -= config.learning_rate * grad_bias / n;
  }
}

std::array<double, num_trace_features> logistic_classifier::standardize(
    const std::array<double, num_trace_features>& x) const {
  std::array<double, num_trace_features> out{};
  for (std::size_t k = 0; k < num_trace_features; ++k) {
    out[k] = (x[k] - mean_[k]) / stddev_[k];
  }
  return out;
}

double logistic_classifier::predict_probability(
    const std::array<double, num_trace_features>& x) const {
  expects(trained_, "logistic_classifier: not trained");
  const auto xs = standardize(x);
  double z = bias_;
  for (std::size_t k = 0; k < num_trace_features; ++k) {
    z += weights_[k] * xs[k];
  }
  return sigmoid(z);
}

std::string logistic_classifier::to_text() const {
  expects(trained_, "logistic_classifier::to_text: not trained");
  std::ostringstream out;
  out << std::setprecision(17);
  out << "ivc-logistic-v1 " << num_trace_features << "\n";
  out << bias_ << "\n";
  for (std::size_t k = 0; k < num_trace_features; ++k) {
    out << weights_[k] << " " << mean_[k] << " " << stddev_[k] << "\n";
  }
  return out.str();
}

logistic_classifier logistic_classifier::from_text(const std::string& text) {
  std::istringstream in{text};
  std::string magic;
  std::size_t dims = 0;
  in >> magic >> dims;
  ensures(in.good() && magic == "ivc-logistic-v1",
          "logistic_classifier::from_text: bad header");
  ensures(dims == num_trace_features,
          "logistic_classifier::from_text: feature-count mismatch");
  logistic_classifier clf;
  in >> clf.bias_;
  for (std::size_t k = 0; k < num_trace_features; ++k) {
    in >> clf.weights_[k] >> clf.mean_[k] >> clf.stddev_[k];
  }
  ensures(!in.fail(), "logistic_classifier::from_text: truncated model");
  clf.trained_ = true;
  return clf;
}

void logistic_classifier::save(const std::string& path) const {
  std::ofstream out{path};
  ensures(out.good(), "logistic_classifier::save: cannot open " + path);
  out << to_text();
  ensures(out.good(), "logistic_classifier::save: write failed for " + path);
}

logistic_classifier logistic_classifier::load(const std::string& path) {
  std::ifstream in{path};
  ensures(in.good(), "logistic_classifier::load: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

double logistic_classifier::accuracy(const labelled_features& data,
                                     double threshold) const {
  expects(data.size() > 0, "logistic_classifier::accuracy: empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool predicted = predict_probability(data.x[i]) >= threshold;
    if (predicted == (data.y[i] == 1)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace ivc::defense
