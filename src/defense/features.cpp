#include "defense/features.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "asr/vad.h"
#include "audio/metrics.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/biquad.h"
#include "dsp/correlate.h"
#include "dsp/hilbert.h"
#include "dsp/spectrum.h"

namespace ivc::defense {
namespace {

// Per-frame mean power of a waveform.
std::vector<double> frame_power(std::span<const double> x, std::size_t frame) {
  std::vector<double> out;
  for (std::size_t start = 0; start + frame <= x.size(); start += frame) {
    double acc = 0.0;
    for (std::size_t i = start; i < start + frame; ++i) {
      acc += x[i] * x[i];
    }
    out.push_back(acc / static_cast<double>(frame));
  }
  return out;
}

// Per-thread cache of designed band filters. The serving layer scores
// thousands of windows with one (config, rate) pair per thread, and the
// Butterworth design (pole placement + bilinear transform) was being
// redone three times per window. Thread-local storage keeps the cache
// lock-free; the hit returns a copy (a few biquad coefficients — cheap
// next to the design) so eviction can never invalidate a filter a
// caller still holds. Bounded small: a process only ever sees a
// handful of distinct band designs.
ivc::dsp::iir_cascade cached_bandpass(std::size_t order, double lo_hz,
                                      double hi_hz, double fs) {
  struct entry {
    std::size_t order;
    double lo_hz, hi_hz, fs;
    ivc::dsp::iir_cascade filter;
  };
  thread_local std::deque<entry> cache;
  for (const entry& e : cache) {
    if (e.order == order && e.lo_hz == lo_hz && e.hi_hz == hi_hz &&
        e.fs == fs) {
      return e.filter;
    }
  }
  if (cache.size() >= 16) {
    cache.pop_front();  // oldest design; never hot in practice
  }
  cache.push_back(entry{order, lo_hz, hi_hz, fs,
                        ivc::dsp::butterworth_bandpass(order, lo_hz, hi_hz,
                                                       fs)});
  return cache.back().filter;
}

// Voice-active interior of the capture: VAD region shrunk by the margin,
// so burst edges / carrier-pedestal transitions stay out of the analysis.
audio::buffer active_interior(const audio::buffer& capture,
                              const feature_config& config) {
  asr::vad_config vad;
  vad.margin_s = 0.0;
  const asr::vad_result act = asr::detect_activity(capture, vad);
  if (!act.any_activity) {
    return capture;
  }
  const double start = act.start_s + config.active_margin_s;
  const double length = (act.end_s - config.active_margin_s) - start;
  if (length < 0.25) {
    return capture;  // too short to trim; analyze as-is
  }
  return audio::slice(capture, start, length);
}

}  // namespace

const std::array<const char*, num_trace_features>& trace_features::names() {
  static const std::array<const char*, num_trace_features> n = {
      "low_band_envelope_corr", "low_band_ratio_db", "amplitude_skew",
      "high_band_ratio_db", "low_band_waveform_corr"};
  return n;
}

trace_features extract_trace_features(const audio::buffer& capture,
                                      const feature_config& config) {
  audio::validate(capture, "extract_trace_features");
  const double fs = capture.sample_rate_hz;
  expects(fs >= 8'000.0, "extract_trace_features: rate must be >= 8 kHz");
  expects(config.low_band_lo_hz < config.low_band_hi_hz &&
              config.low_band_hi_hz < config.voice_band_lo_hz,
          "extract_trace_features: bands must be ordered low < voice");
  expects(config.band_filter_order >= 1,
          "extract_trace_features: filter order must be >= 1");

  trace_features f;
  if (capture.duration_s() < 0.2 || audio::peak(capture.samples) < 1e-6) {
    return f;  // nothing to analyze; all-zero features read as genuine
  }

  const audio::buffer interior = active_interior(capture, config);
  if (interior.duration_s() < 0.2) {
    return f;
  }

  // Band decomposition. Zero-phase filtering keeps the low-band trace
  // time-aligned with the voice envelope and squares the stop-band slope
  // (the low band must be isolated against a voice band 40+ dB hotter).
  const ivc::dsp::iir_cascade low_band = cached_bandpass(
      config.band_filter_order, config.low_band_lo_hz, config.low_band_hi_hz,
      fs);
  const ivc::dsp::iir_cascade voice_band = cached_bandpass(
      config.band_filter_order, config.voice_band_lo_hz,
      std::min(config.voice_band_hi_hz, 0.45 * fs), fs);
  const std::vector<double> low =
      low_band.process_zero_phase(interior.samples);
  const std::vector<double> voice =
      voice_band.process_zero_phase(interior.samples);

  // f0/f4 need the squared voice envelope and the low-band trace.
  const std::vector<double> env =
      ivc::dsp::smoothed_envelope(voice, fs, config.envelope_smooth_hz);
  std::vector<double> env_sq(env.size());
  for (std::size_t i = 0; i < env.size(); ++i) {
    env_sq[i] = env[i] * env[i];
  }

  const auto frame =
      static_cast<std::size_t>(std::max(8.0, config.frame_s * fs));
  const std::vector<double> low_trace = frame_power(low, frame);
  const std::vector<double> env_sq_trace = frame_power(env_sq, frame);
  if (low_trace.size() >= 8) {
    f.low_band_envelope_corr =
        ivc::dsp::pearson_correlation(low_trace, env_sq_trace);
  }

  // f4: waveform-level correlation between the low band and the squared
  // voice band restricted to the same low band.
  std::vector<double> voice_sq(voice.size());
  for (std::size_t i = 0; i < voice.size(); ++i) {
    voice_sq[i] = voice[i] * voice[i];
  }
  const std::vector<double> voice_sq_low =
      low_band.process_zero_phase(voice_sq);
  if (voice.size() >= 16) {
    f.low_band_waveform_corr = std::abs(ivc::dsp::aligned_correlation(
        low, voice_sq_low, static_cast<std::size_t>(0.02 * fs)));
  }

  // f1: band power ratio, measured on the isolated bands directly.
  const double low_power = audio::rms(low) * audio::rms(low);
  const double voice_power = audio::rms(voice) * audio::rms(voice);
  f.low_band_ratio_db =
      ivc::power_to_db((low_power + 1e-300) / (voice_power + 1e-300));

  // f2: amplitude skewness over the voice-active region (threshold at
  // 10% of peak envelope keeps remaining quiet frames from diluting it).
  const double env_peak = *std::max_element(env.begin(), env.end());
  std::vector<double> active;
  active.reserve(interior.size());
  for (std::size_t i = 0; i < interior.size(); ++i) {
    if (env[i] > 0.1 * env_peak) {
      active.push_back(interior.samples[i]);
    }
  }
  if (active.size() >= 64) {
    f.amplitude_skew = audio::amplitude_skewness(active);
  }

  // f3: high-band deficit.
  if (fs > 2.0 * 7'200.0) {
    f.high_band_ratio_db = ivc::dsp::band_power_ratio_db(
        interior.samples, fs, 4'500.0, 7'000.0, 300.0, 3'400.0);
  } else {
    f.high_band_ratio_db = 0.0;
  }
  return f;
}

}  // namespace ivc::defense
