#include "defense/detector.h"

#include "common/error.h"

namespace ivc::defense {

feature_detector::feature_detector(std::size_t feature_index, double threshold,
                                   double sign)
    : index_{feature_index}, threshold_{threshold}, sign_{sign} {
  expects(feature_index < num_trace_features,
          "feature_detector: feature index out of range");
  expects(sign == 1.0 || sign == -1.0, "feature_detector: sign must be ±1");
}

double feature_detector::score(const trace_features& f) const {
  return sign_ * f.as_array()[index_];
}

detection feature_detector::detect(const audio::buffer& capture,
                                   const feature_config& config) const {
  const trace_features f = extract_trace_features(capture, config);
  const double s = score(f);
  return detection{s >= threshold_, s};
}

classifier_detector::classifier_detector(logistic_classifier classifier,
                                         double threshold)
    : classifier_{std::move(classifier)}, threshold_{threshold} {
  expects(classifier_.trained(), "classifier_detector: classifier untrained");
  expects(threshold > 0.0 && threshold < 1.0,
          "classifier_detector: threshold must be in (0, 1)");
}

detection classifier_detector::detect(const audio::buffer& capture,
                                      const feature_config& config) const {
  const trace_features f = extract_trace_features(capture, config);
  const double p = classifier_.predict_probability(f);
  return detection{p >= threshold_, p};
}

}  // namespace ivc::defense
