// Streaming defense: sliding-window detection over a live capture feed,
// gated by voice activity — the deployable form of the defense (runs
// ahead of the wake-word engine and vetoes suspicious audio).
#pragma once

#include <vector>

#include "asr/vad.h"
#include "common/json_min.h"
#include "defense/detector.h"

namespace ivc::defense {

struct stream_config {
  double window_s = 1.0;
  double hop_s = 0.5;
  // Windows quieter than this peak are skipped (no decision).
  double min_peak = 1e-4;
  feature_config features;
};

struct stream_event {
  double time_s = 0.0;   // window start
  double score = 0.0;
  bool is_attack = false;
};

class stream_detector {
 public:
  stream_detector(classifier_detector detector, stream_config config = {});

  // Feeds a block of samples; returns any decisions completed by it.
  std::vector<stream_event> feed(const audio::buffer& block);

  // Flushes buffered samples shorter than a full window, then resets:
  // the stream is over, and a subsequent feed() starts a NEW stream at
  // t = 0 (equivalent to calling reset()) rather than silently splicing
  // onto the finished one.
  std::vector<stream_event> finish();

  void reset();

  // Serializable stream state (pending samples, stream position, rate —
  // NOT the detector weights or config, which the owner reconstructs).
  // restore(snapshot()) on a detector of the same config resumes the
  // stream bit-exactly: the evicted/rehydrated session's remaining
  // verdicts are identical to never having been evicted.
  json::value snapshot() const;
  void restore(const json::value& snap);

 private:
  std::vector<stream_event> drain(bool flush);

  classifier_detector detector_;
  stream_config config_;
  std::vector<double> pending_;
  double rate_ = 0.0;
  double consumed_s_ = 0.0;
};

}  // namespace ivc::defense
