// Logistic-regression classifier over trace features, trained in-repo on
// simulated genuine/injected corpora (no external model files).
#pragma once

#include <array>
#include <string>

#include "defense/features.h"

namespace ivc::defense {

struct training_config {
  std::size_t epochs = 400;
  double learning_rate = 0.15;
  double l2 = 1e-3;
};

class logistic_classifier {
 public:
  // Trains on the dataset (features are standardized internally).
  void train(const labelled_features& data, const training_config& config = {});

  // P(attack | features), in [0, 1].
  double predict_probability(
      const std::array<double, num_trace_features>& x) const;
  double predict_probability(const trace_features& f) const {
    return predict_probability(f.as_array());
  }

  // Hard decision at the given probability threshold.
  bool predict(const trace_features& f, double threshold = 0.5) const {
    return predict_probability(f) >= threshold;
  }

  // Accuracy over a labelled set at the given threshold.
  double accuracy(const labelled_features& data, double threshold = 0.5) const;

  bool trained() const { return trained_; }

  // Trained weight for feature i (standardized space) — exposed so the
  // feature-importance experiment can report it.
  double weight(std::size_t i) const { return weights_.at(i); }
  double bias() const { return bias_; }

  // Text serialization of the trained model (weights, bias,
  // standardization statistics) — lets a deployment train once offline
  // and ship the model. Round-trips exactly.
  std::string to_text() const;
  static logistic_classifier from_text(const std::string& text);
  void save(const std::string& path) const;
  static logistic_classifier load(const std::string& path);

 private:
  std::array<double, num_trace_features> standardize(
      const std::array<double, num_trace_features>& x) const;

  std::array<double, num_trace_features> weights_{};
  std::array<double, num_trace_features> mean_{};
  std::array<double, num_trace_features> stddev_{};
  double bias_ = 0.0;
  bool trained_ = false;
};

}  // namespace ivc::defense
