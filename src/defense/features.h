// Non-linearity trace features (the defense's signal analysis).
//
// A demodulated injection arrives at the capture as
//     r(t) ≈ α·v(t) + β·v²(t) + noise,
// because the same a₂x² term that recreates v(t) also squares it. The
// v² term betrays the attack three ways:
//
//  1. its spectrum piles up *below the voice band* (the square of a
//     band-pass signal has a baseband image: the squared envelope), so
//     attacked captures show sub-bass power that genuine speech — which
//     microphones high-pass and vocal tracts do not produce — lacks;
//  2. that low-band power trace rises and falls **with the square of the
//     voice envelope**, frame by frame, so it correlates with (env v̂)²;
//  3. v² ≥ 0 biases the waveform upward, skewing the amplitude
//     distribution.
//
// Each effect becomes one feature; a linear classifier on the feature
// vector is the paper's software-only defense.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "audio/buffer.h"

namespace ivc::defense {

inline constexpr std::size_t num_trace_features = 5;

struct trace_features {
  // f0: correlation of the sub-voice low-band power trace with the
  //     squared voice-band envelope (the headline trace).
  double low_band_envelope_corr = 0.0;
  // f1: power ratio, low band (15–60 Hz) over voice band (150–4000 Hz), dB.
  double low_band_ratio_db = 0.0;
  // f2: amplitude skewness of the voice-active region.
  double amplitude_skew = 0.0;
  // f3: high-band ratio (4.5–7 kHz over 300–3400 Hz), dB — band-limited
  //     injections lack natural fricative energy.
  double high_band_ratio_db = 0.0;
  // f4: correlation of the low-band *waveform* with the squared
  //     voice-band waveform (phase-sensitive variant of f0).
  double low_band_waveform_corr = 0.0;

  std::array<double, num_trace_features> as_array() const {
    return {low_band_envelope_corr, low_band_ratio_db, amplitude_skew,
            high_band_ratio_db, low_band_waveform_corr};
  }
  static const std::array<const char*, num_trace_features>& names();
};

struct feature_config {
  // The sub-50 Hz trace band: genuine speech (fundamental >= ~80 Hz,
  // onset ramps >= ~20 ms) leaves it empty; the demodulated v² term
  // fills it.
  double low_band_lo_hz = 15.0;
  double low_band_hi_hz = 50.0;
  double voice_band_lo_hz = 150.0;
  double voice_band_hi_hz = 4'000.0;
  double frame_s = 0.04;
  double envelope_smooth_hz = 30.0;
  // Band-isolation filter order (zero-phase, so the effective stop-band
  // slope doubles). The low band sits 40+ dB below the voice band in a
  // genuine capture; shallow filters would let voice-band leakage
  // masquerade as a trace.
  std::size_t band_filter_order = 4;
  // Analyze only the voice-active interior: the attack's carrier produces
  // a DC pedestal whose on/off edges splatter broadband low-frequency
  // energy that is *not* the trace (and genuine recordings start/stop
  // with handling transients). Margin trimmed inside the active region.
  double active_margin_s = 0.12;
};

// Extracts the trace features from a capture (device rate, e.g. 16 kHz).
// The capture should contain the (suspected) utterance; leading/trailing
// silence is tolerated.
trace_features extract_trace_features(const audio::buffer& capture,
                                      const feature_config& config = {});

// A labelled dataset of feature vectors.
struct labelled_features {
  std::vector<std::array<double, num_trace_features>> x;
  std::vector<int> y;  // 1 == attack, 0 == genuine

  void add(const trace_features& f, int label) {
    x.push_back(f.as_array());
    y.push_back(label);
  }
  std::size_t size() const { return y.size(); }
};

}  // namespace ivc::defense
