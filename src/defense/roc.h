// ROC analysis for detectors: curve points, AUC, EER, best accuracy.
#pragma once

#include <span>
#include <vector>

namespace ivc::defense {

struct roc_point {
  double threshold = 0.0;
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
};

struct roc_curve {
  std::vector<roc_point> points;  // sorted by threshold descending
  double auc = 0.0;
  double equal_error_rate = 1.0;
  double best_accuracy = 0.0;
  double best_threshold = 0.0;
};

// Builds the ROC from detector scores (higher == more attack-like) and
// binary labels (1 == attack). Requires both classes present.
roc_curve compute_roc(std::span<const double> scores,
                      std::span<const int> labels);

}  // namespace ivc::defense
