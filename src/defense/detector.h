// Detector interfaces: single-feature threshold detectors (the ablation
// baselines) and the combined classifier detector.
#pragma once

#include <memory>
#include <string>

#include "defense/classifier.h"
#include "defense/features.h"

namespace ivc::defense {

struct detection {
  bool is_attack = false;
  double score = 0.0;  // higher == more attack-like
};

// Scores a capture by a single trace feature (by index into
// trace_features::as_array()). sign=+1 when larger values indicate
// attack.
class feature_detector {
 public:
  feature_detector(std::size_t feature_index, double threshold,
                   double sign = 1.0);

  detection detect(const audio::buffer& capture,
                   const feature_config& config = {}) const;
  double score(const trace_features& f) const;

  std::size_t feature_index() const { return index_; }

 private:
  std::size_t index_;
  double threshold_;
  double sign_;
};

// Combined detector: classifier probability against a threshold.
class classifier_detector {
 public:
  classifier_detector(logistic_classifier classifier, double threshold = 0.5);

  detection detect(const audio::buffer& capture,
                   const feature_config& config = {}) const;

  const logistic_classifier& classifier() const { return classifier_; }
  double threshold() const { return threshold_; }

 private:
  logistic_classifier classifier_;
  double threshold_;
};

}  // namespace ivc::defense
