#include "acoustics/speaker.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/units.h"
#include "dsp/fir.h"

namespace ivc::acoustics {
namespace {

// x^(2·order) by repeated squaring: the response is evaluated once per
// spectrum bin (hundreds of thousands of times per array render), where
// generic std::pow dominates the whole loop.
double even_ipow(double x, std::size_t order) {
  double r = 1.0;
  double p = x * x;
  for (std::size_t e = order; e != 0; e >>= 1) {
    if (e & 1u) {
      r *= p;
    }
    p *= p;
  }
  return r;
}

// Butterworth-shaped magnitude for a band-pass response built from the
// product of a high-pass edge at f_lo and a low-pass edge at f_hi.
double bandpass_magnitude(double f, double f_lo, double f_hi,
                          std::size_t order) {
  if (f <= 0.0) {
    return 0.0;
  }
  const double hp = 1.0 / std::sqrt(1.0 + even_ipow(f_lo / f, order));
  const double lp = 1.0 / std::sqrt(1.0 + even_ipow(f / f_hi, order));
  return hp * lp;
}

}  // namespace

speaker_params wideband_speaker() {
  speaker_params p;
  p.sensitivity_db_spl = 104.0;
  p.rated_power_w = 40.0;
  p.band_low_hz = 60.0;
  p.band_high_hz = 20'000.0;
  p.rolloff_order = 2;
  p.nonlin_a2 = 0.02;
  p.nonlin_a3 = 0.004;
  p.max_power_w = 80.0;
  return p;
}

speaker_params ultrasonic_tweeter() {
  speaker_params p;
  // High-efficiency piezo horn / 40 kHz transducer stack: ~124 dB SPL at
  // 1 m when driven at rated power (dedicated ultrasonic emitters reach
  // 120+ dB at far lower power than hi-fi tweeters).
  p.sensitivity_db_spl = 124.0;
  p.rated_power_w = 25.0;
  p.band_low_hz = 16'000.0;
  p.band_high_hz = 64'000.0;
  p.rolloff_order = 2;
  p.nonlin_a2 = 0.06;
  p.nonlin_a3 = 0.012;
  p.max_power_w = 60.0;
  return p;
}

speaker_params hifi_horn_tweeter() {
  speaker_params p;
  p.sensitivity_db_spl = 121.0;
  p.rated_power_w = 30.0;
  p.band_low_hz = 3'500.0;
  p.band_high_hz = 38'000.0;
  // Horn loading: steep acoustic high-pass below the horn cutoff.
  p.rolloff_order = 3;
  // Compression-driver distortion ~0.3% second order at rated power:
  // low enough that the demodulated shadow stays below the hearing
  // threshold at low drive, loud enough to cross it as power rises —
  // the measured trade-off the long-range paper starts from.
  p.nonlin_a2 = 0.003;
  p.nonlin_a3 = 0.0008;
  p.max_power_w = 75.0;
  return p;
}

speaker::speaker(speaker_params params) : params_{params} {
  expects(params_.rated_power_w > 0.0, "speaker: rated power must be > 0");
  expects(params_.max_power_w >= params_.rated_power_w,
          "speaker: max power must be >= rated power");
  expects(params_.band_low_hz > 0.0 &&
              params_.band_high_hz > params_.band_low_hz,
          "speaker: need 0 < band_low < band_high");
  expects(params_.rolloff_order >= 1, "speaker: rolloff order must be >= 1");
}

double speaker::response_at(double freq_hz) const {
  return bandpass_magnitude(freq_hz, params_.band_low_hz, params_.band_high_hz,
                            params_.rolloff_order);
}

audio::buffer speaker::render(const audio::buffer& drive, double input_power_w,
                              bool with_nonlinearity) const {
  audio::validate(drive, "speaker::emit");
  expects(input_power_w > 0.0, "speaker::emit: power must be > 0");
  expects(input_power_w <= params_.max_power_w,
          "speaker::emit: power exceeds the driver's rating");

  // Electrical power scales drive amplitude by sqrt(P / P_rated).
  const double gain = std::sqrt(input_power_w / params_.rated_power_w);

  std::vector<double> x(drive.size());
  for (std::size_t i = 0; i < drive.size(); ++i) {
    // Amplifier rail: hard clip at full scale.
    x[i] = std::clamp(gain * drive.samples[i], -1.0, 1.0);
  }

  if (with_nonlinearity) {
    const double a2 = params_.nonlin_a2;
    const double a3 = params_.nonlin_a3;
    for (double& v : x) {
      v = v + a2 * v * v + a3 * v * v * v;
    }
  }

  // Radiation response, then scale to pascal: a full-scale in-band sine
  // maps to the rated sensitivity SPL at 1 m.
  std::vector<double> radiated = ivc::dsp::apply_magnitude_response(
      x, drive.sample_rate_hz, [this](double f) { return response_at(f); });

  const double peak_pa =
      ivc::spl_db_to_pa(params_.sensitivity_db_spl) * std::numbers::sqrt2;
  for (double& v : radiated) {
    v *= peak_pa;
  }
  return audio::buffer{std::move(radiated), drive.sample_rate_hz};
}

audio::buffer speaker::emit(const audio::buffer& drive,
                            double input_power_w) const {
  return render(drive, input_power_w, /*with_nonlinearity=*/true);
}

audio::buffer speaker::emit_linear(const audio::buffer& drive,
                                   double input_power_w) const {
  return render(drive, input_power_w, /*with_nonlinearity=*/false);
}

}  // namespace ivc::acoustics
