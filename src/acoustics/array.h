// Speaker array: several drivers with individual drive signals and
// positions, rendered coherently at a receiver point. This is the
// attacker's rig — one carrier speaker plus N sideband-chunk speakers.
#pragma once

#include <vector>

#include "acoustics/geometry.h"
#include "acoustics/propagation.h"
#include "acoustics/speaker.h"
#include "audio/buffer.h"

namespace ivc::acoustics {

struct array_element {
  speaker_params speaker;
  audio::buffer drive;
  double input_power_w = 1.0;
  vec3 position;
};

class speaker_array {
 public:
  speaker_array() = default;

  void add_element(array_element element);

  std::size_t size() const { return elements_.size(); }
  const std::vector<array_element>& elements() const { return elements_; }

  // Total electrical input power across the array, W.
  double total_power_w() const;

  // Rescales every element's input power by `factor` (> 0). Lets power
  // sweeps reuse the (expensive to build) drive signals. Throws if any
  // element would exceed its driver rating.
  void scale_power(double factor);

  // Rigidly translates every element by `offset`.
  void translate(const vec3& offset);

  // Coherent pressure field at `listener` (Pa): each element is emitted
  // through its speaker model, propagated over its own distance (with
  // per-element delay, spreading, absorption) and summed.
  audio::buffer render_at(const vec3& listener, const air_model& air) const;

  // Same, but with every speaker model linearized — isolates how much of
  // the received audible content is produced by speaker non-linearity.
  audio::buffer render_at_linear(const vec3& listener,
                                 const air_model& air) const;

 private:
  audio::buffer render(const vec3& listener, const air_model& air,
                       bool with_nonlinearity) const;

  std::vector<array_element> elements_;
};

}  // namespace ivc::acoustics
