#include "acoustics/air.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace ivc::acoustics {
namespace {

constexpr double reference_pressure_kpa = 101.325;
constexpr double reference_temperature_k = 293.15;   // 20 °C
constexpr double triple_point_k = 273.16;

}  // namespace

double air_model::speed_of_sound() const {
  expects(temperature_c > -100.0 && temperature_c < 100.0,
          "air_model: temperature out of plausible range");
  // Ideal-gas approximation: c = 331.3 · sqrt(1 + T/273.15).
  return 331.3 * std::sqrt(1.0 + temperature_c / 273.15);
}

absorption_model air_model::absorption() const {
  expects(relative_humidity_percent >= 0.0 &&
              relative_humidity_percent <= 100.0,
          "air_model: humidity must be in [0, 100] %");
  expects(pressure_kpa > 0.0, "air_model: pressure must be > 0");

  const double t_k = temperature_c + 273.15;
  const double p_rel = pressure_kpa / reference_pressure_kpa;
  const double t_rel = t_k / reference_temperature_k;

  // Molar concentration of water vapour (%), ISO 9613-1 Annex B.
  const double c_sat =
      -6.8346 * std::pow(triple_point_k / t_k, 1.261) + 4.6151;
  const double p_sat_rel = std::pow(10.0, c_sat);
  const double h = relative_humidity_percent * p_sat_rel / p_rel;

  absorption_model m;
  // Relaxation frequencies of O2 and N2, Hz.
  m.fr_o = p_rel * (24.0 + 4.04e4 * h * (0.02 + h) / (0.391 + h));
  m.fr_n =
      p_rel * std::pow(t_rel, -0.5) *
      (9.0 + 280.0 * h * std::exp(-4.170 * (std::pow(t_rel, -1.0 / 3.0) - 1.0)));
  m.classical = 1.84e-11 / p_rel * std::sqrt(t_rel);
  m.vib_scale = std::pow(t_rel, -2.5);
  m.vib_o_num = 0.01275 * std::exp(-2239.1 / t_k);
  m.vib_n_num = 0.1068 * std::exp(-3352.0 / t_k);
  return m;
}

double absorption_model::db_per_m(double freq_hz) const {
  if (freq_hz == 0.0) {
    return 0.0;
  }
  const double f2 = freq_hz * freq_hz;
  const double vib_o = vib_o_num / (fr_o + f2 / fr_o);
  const double vib_n = vib_n_num / (fr_n + f2 / fr_n);
  return 8.686 * f2 * (classical + vib_scale * (vib_o + vib_n));
}

double absorption_model::gain(double freq_hz, double dist_m) const {
  // exp(ln(10)/20 · dB) — one exp per bin instead of a generic pow.
  constexpr double ln10_over_20 = 0.11512925464970228;
  return std::exp(-db_per_m(freq_hz) * dist_m * ln10_over_20);
}

double air_model::absorption_db_per_m(double freq_hz) const {
  expects(freq_hz >= 0.0, "absorption: frequency must be >= 0");
  return absorption().db_per_m(freq_hz);
}

double air_model::absorption_gain(double freq_hz, double dist_m) const {
  expects(dist_m >= 0.0, "absorption_gain: distance must be >= 0");
  return ivc::db_to_amplitude(-absorption_db_per_m(freq_hz) * dist_m);
}

}  // namespace ivc::acoustics
