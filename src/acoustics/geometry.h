// Minimal 3-D geometry for source/receiver placement.
#pragma once

#include <cmath>

namespace ivc::acoustics {

struct vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend vec3 operator+(const vec3& a, const vec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend vec3 operator-(const vec3& a, const vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend vec3 operator*(double s, const vec3& v) {
    return {s * v.x, s * v.y, s * v.z};
  }
};

inline double norm(const vec3& v) {
  return std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
}

inline double distance(const vec3& a, const vec3& b) { return norm(a - b); }

}  // namespace ivc::acoustics
