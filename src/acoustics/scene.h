// Scene assembly: point pressure sources plus ambient noise, evaluated at
// a listening position. The sim module composes attack rigs and genuine
// talkers into scenes; the defense corpora are rendered through the same
// path so genuine and injected recordings share identical channel physics.
#pragma once

#include <optional>
#include <vector>

#include "acoustics/air.h"
#include "acoustics/geometry.h"
#include "acoustics/noise.h"
#include "acoustics/propagation.h"
#include "audio/buffer.h"
#include "common/rng.h"

namespace ivc::acoustics {

// A source described directly by its radiated pressure at 1 m.
struct pressure_source {
  audio::buffer pressure_at_1m;
  vec3 position;
  // Optional obstruction between this source and the listener, dB.
  double extra_loss_db = 0.0;
};

struct ambient_config {
  double spl_db = 40.0;
  noise_kind kind = noise_kind::speech_shaped;
};

class scene {
 public:
  explicit scene(air_model air) : air_{air} {}

  void add_source(pressure_source source);
  void set_ambient(ambient_config ambient) { ambient_ = ambient; }

  const air_model& air() const { return air_; }

  // Pressure waveform at `listener` (Pa). Length covers the longest
  // propagated source; ambient noise fills the whole window. `rng` drives
  // the ambient realization only.
  audio::buffer render_at(const vec3& listener, ivc::rng& rng) const;

 private:
  air_model air_;
  std::vector<pressure_source> sources_;
  std::optional<ambient_config> ambient_;
};

}  // namespace ivc::acoustics
