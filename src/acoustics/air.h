// Atmospheric model: speed of sound and frequency-dependent absorption.
//
// Absorption follows ISO 9613-1 (classical + rotational losses plus the
// O2 and N2 vibrational relaxation terms). Absorption is the quantity
// that makes the long-range ultrasonic attack hard: at 40 kHz air eats
// roughly 1.2 dB/m while the voice band loses almost nothing, so every
// extra meter costs the attacker more than it costs a genuine talker.
#pragma once

namespace ivc::acoustics {

struct absorption_model;

struct air_model {
  double temperature_c = 20.0;
  double relative_humidity_percent = 50.0;
  double pressure_kpa = 101.325;

  // Speed of sound, m/s, for the configured temperature.
  double speed_of_sound() const;

  // Atmospheric absorption coefficient at `freq_hz`, in dB per meter.
  double absorption_db_per_m(double freq_hz) const;

  // Linear amplitude factor after `dist_m` meters at `freq_hz`
  // (absorption only, no spreading).
  double absorption_gain(double freq_hz, double dist_m) const;

  // Precomputes every frequency-independent term of the ISO 9613-1
  // chain. Per-bin loops over large spectra (array render, propagation,
  // room responses) hoist one of these instead of re-deriving the
  // relaxation frequencies hundreds of thousands of times.
  absorption_model absorption() const;
};

struct absorption_model {
  // ISO 9613-1 intermediates (see air_model::absorption_db_per_m).
  double fr_o = 0.0;        // O2 relaxation frequency, Hz
  double fr_n = 0.0;        // N2 relaxation frequency, Hz
  double classical = 0.0;   // classical + rotational term
  double vib_scale = 0.0;   // pow(t_rel, -2.5)
  double vib_o_num = 0.0;   // 0.01275 · exp(-2239.1 / T)
  double vib_n_num = 0.0;   // 0.1068 · exp(-3352.0 / T)

  // Same value as air_model::absorption_db_per_m(freq_hz) — identical
  // arithmetic, just with the f-independent factors precomputed.
  double db_per_m(double freq_hz) const;
  // Linear amplitude factor after dist_m meters. Evaluated as
  // exp(ln(10)/20 · dB) rather than pow(10, dB/20), so it can differ
  // from air_model::absorption_gain in the last ulps.
  double gain(double freq_hz, double dist_m) const;
};

}  // namespace ivc::acoustics
