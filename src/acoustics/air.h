// Atmospheric model: speed of sound and frequency-dependent absorption.
//
// Absorption follows ISO 9613-1 (classical + rotational losses plus the
// O2 and N2 vibrational relaxation terms). Absorption is the quantity
// that makes the long-range ultrasonic attack hard: at 40 kHz air eats
// roughly 1.2 dB/m while the voice band loses almost nothing, so every
// extra meter costs the attacker more than it costs a genuine talker.
#pragma once

namespace ivc::acoustics {

struct air_model {
  double temperature_c = 20.0;
  double relative_humidity_percent = 50.0;
  double pressure_kpa = 101.325;

  // Speed of sound, m/s, for the configured temperature.
  double speed_of_sound() const;

  // Atmospheric absorption coefficient at `freq_hz`, in dB per meter.
  double absorption_db_per_m(double freq_hz) const;

  // Linear amplitude factor after `dist_m` meters at `freq_hz`
  // (absorption only, no spreading).
  double absorption_gain(double freq_hz, double dist_m) const;
};

}  // namespace ivc::acoustics
