#include "acoustics/room.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/fft_plan.h"

namespace ivc::acoustics {
namespace {

void check_room(const room_model& room, const vec3& p, const char* what) {
  expects(room.width_m > 0.0 && room.depth_m > 0.0 && room.height_m > 0.0,
          "room_model: dimensions must be > 0");
  expects(room.wall_absorption > 0.0 && room.wall_absorption < 1.0,
          "room_model: wall absorption must be in (0, 1)");
  expects(p.x >= 0.0 && p.x <= room.width_m && p.y >= 0.0 &&
              p.y <= room.depth_m && p.z >= 0.0 && p.z <= room.height_m,
          std::string{what} + " must lie inside the room");
}

// 1-D image coordinates along one axis: value and bounce count for
// mirror index k and parity s.
struct axis_image {
  double coordinate;
  std::size_t reflections;
};

std::vector<axis_image> axis_images(double position, double extent,
                                    std::size_t max_order) {
  std::vector<axis_image> images;
  const auto k_max = static_cast<std::ptrdiff_t>(max_order / 2 + 1);
  for (std::ptrdiff_t k = -k_max; k <= k_max; ++k) {
    // Even image: 2kL + x, crosses 2|k| walls.
    const auto even_refl = static_cast<std::size_t>(2 * std::abs(k));
    if (even_refl <= max_order) {
      images.push_back(
          {2.0 * static_cast<double>(k) * extent + position, even_refl});
    }
    // Odd image: 2kL - x, crosses |2k - 1| walls.
    const auto odd_refl = static_cast<std::size_t>(std::abs(2 * k - 1));
    if (odd_refl <= max_order) {
      images.push_back(
          {2.0 * static_cast<double>(k) * extent - position, odd_refl});
    }
  }
  return images;
}

}  // namespace

std::vector<image_source> compute_image_sources(const room_model& room,
                                                const vec3& source) {
  check_room(room, source, "compute_image_sources: source");
  const auto xs = axis_images(source.x, room.width_m, room.max_reflection_order);
  const auto ys = axis_images(source.y, room.depth_m, room.max_reflection_order);
  const auto zs = axis_images(source.z, room.height_m, room.max_reflection_order);

  std::vector<image_source> images;
  for (const axis_image& x : xs) {
    for (const axis_image& y : ys) {
      for (const axis_image& z : zs) {
        const std::size_t total = x.reflections + y.reflections + z.reflections;
        if (total <= room.max_reflection_order) {
          images.push_back(image_source{
              vec3{x.coordinate, y.coordinate, z.coordinate}, total});
        }
      }
    }
  }
  return images;
}

double reflection_gain(const room_model& room, double freq_hz,
                       std::size_t reflections) {
  if (reflections == 0) {
    return 1.0;
  }
  const double base = std::sqrt(1.0 - room.wall_absorption);
  double gain = std::pow(base, static_cast<double>(reflections));
  if (freq_hz > 20'000.0) {
    gain *= ivc::db_to_amplitude(-room.ultrasound_extra_loss_db *
                                 static_cast<double>(reflections));
  }
  return gain;
}

audio::buffer render_in_room(const audio::buffer& pressure_at_1m,
                             const vec3& source, const vec3& listener,
                             const room_model& room, const air_model& air) {
  audio::validate(pressure_at_1m, "render_in_room");
  check_room(room, source, "render_in_room: source");
  check_room(room, listener, "render_in_room: listener");

  const std::vector<image_source> images =
      compute_image_sources(room, source);
  const double rate = pressure_at_1m.sample_rate_hz;
  const double c = air.speed_of_sound();

  double max_dist = 0.0;
  for (const image_source& img : images) {
    max_dist = std::max(max_dist, distance(img.position, listener));
  }
  const auto max_delay =
      static_cast<std::size_t>(std::ceil(max_dist / c * rate));
  const std::size_t out_len = pressure_at_1m.size() + max_delay + 64;
  const std::size_t n = ivc::dsp::next_pow2(out_len);

  // One forward half-spectrum FFT of the source; accumulate every
  // image's (conjugate-symmetric) frequency response; one inverse.
  const auto plan = ivc::dsp::get_fft_plan(n);
  const std::size_t bins = plan->num_real_bins();
  std::vector<double> time(n, 0.0);
  for (std::size_t i = 0; i < pressure_at_1m.size(); ++i) {
    time[i] = pressure_at_1m.samples[i];
  }
  std::vector<ivc::dsp::cplx> src(bins);
  plan->rfft(time, src);

  const absorption_model absorb = air.absorption();
  std::vector<ivc::dsp::cplx> total(bins, ivc::dsp::cplx{0.0, 0.0});
  for (const image_source& img : images) {
    const double dist = std::max(distance(img.position, listener), 1e-2);
    const double delay_s = dist / c;
    const double spreading = 1.0 / dist;
    const double absorb_dist = std::max(0.0, dist - 1.0);
    for (std::size_t k = 0; k < bins; ++k) {
      const double f =
          static_cast<double>(k) * rate / static_cast<double>(n);
      const double mag = spreading *
                         absorb.gain(f, absorb_dist) *
                         reflection_gain(room, f, img.reflections);
      const double phase = -two_pi * f * delay_s;
      total[k] += src[k] * (mag * ivc::dsp::cplx{std::cos(phase),
                                                 std::sin(phase)});
    }
  }
  std::vector<ivc::dsp::cplx> work(plan->workspace_size());
  plan->irfft(total, time, work);

  audio::buffer out{std::vector<double>(out_len - 64, 0.0), rate};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.samples[i] = time[i];
  }
  return out;
}

}  // namespace ivc::acoustics
