#include "acoustics/array.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/fft_plan.h"

namespace ivc::acoustics {

void speaker_array::add_element(array_element element) {
  audio::validate(element.drive, "speaker_array::add_element");
  if (!elements_.empty()) {
    expects(element.drive.sample_rate_hz ==
                elements_.front().drive.sample_rate_hz,
            "speaker_array: all elements must share a sample rate");
  }
  elements_.push_back(std::move(element));
}

double speaker_array::total_power_w() const {
  double total = 0.0;
  for (const array_element& e : elements_) {
    total += e.input_power_w;
  }
  return total;
}

void speaker_array::scale_power(double factor) {
  expects(factor > 0.0, "speaker_array::scale_power: factor must be > 0");
  for (array_element& e : elements_) {
    const double scaled = e.input_power_w * factor;
    expects(scaled <= e.speaker.max_power_w,
            "speaker_array::scale_power: element would exceed its rating");
    e.input_power_w = scaled;
  }
}

void speaker_array::translate(const vec3& offset) {
  for (array_element& e : elements_) {
    e.position = e.position + offset;
  }
}

// Fused rendering: the per-element non-linearity is applied in the time
// domain (it is memoryless), after which the element's radiation response,
// sensitivity scaling, spreading, absorption, and delay are all linear and
// time-invariant — so they compose into one frequency response per
// element. All element spectra are accumulated and a single inverse FFT
// produces the superposed field, instead of 4 transforms per element.
//
// Drives and field are real and every element response is conjugate-
// symmetric (real magnitude, delay phase), so the whole superposition
// runs on the planned half spectrum: half the butterfly work AND half
// the per-bin response evaluations, which dominate for large arrays.
audio::buffer speaker_array::render(const vec3& listener, const air_model& air,
                                    bool with_nonlinearity) const {
  expects(!elements_.empty(), "speaker_array::render: array is empty");
  const double rate = elements_.front().drive.sample_rate_hz;
  const double c = air.speed_of_sound();
  const absorption_model absorb = air.absorption();

  std::size_t max_len = 0;
  double max_dist = 0.0;
  for (const array_element& e : elements_) {
    max_len = std::max(max_len, e.drive.size());
    max_dist = std::max(max_dist, distance(e.position, listener));
  }
  const auto max_delay =
      static_cast<std::size_t>(std::ceil(max_dist / c * rate));
  const std::size_t n = ivc::dsp::next_pow2(max_len + max_delay + 64);
  const auto plan = ivc::dsp::get_fft_plan(n);
  const std::size_t bins = plan->num_real_bins();

  std::vector<ivc::dsp::cplx> total(bins, ivc::dsp::cplx{0.0, 0.0});
  std::vector<ivc::dsp::cplx> spec(bins);
  std::vector<double> driven(n);
  for (const array_element& e : elements_) {
    const speaker spk{e.speaker};
    expects(e.input_power_w > 0.0 &&
                e.input_power_w <= e.speaker.max_power_w,
            "speaker_array: element power outside the driver's rating");
    const double gain = std::sqrt(e.input_power_w / e.speaker.rated_power_w);
    const double a2 = with_nonlinearity ? e.speaker.nonlin_a2 : 0.0;
    const double a3 = with_nonlinearity ? e.speaker.nonlin_a3 : 0.0;

    std::fill(driven.begin(), driven.end(), 0.0);
    for (std::size_t i = 0; i < e.drive.size(); ++i) {
      double v = std::clamp(gain * e.drive.samples[i], -1.0, 1.0);
      driven[i] = v + a2 * v * v + a3 * v * v * v;
    }
    plan->rfft(driven, spec);

    const double dist = std::max(distance(e.position, listener), 1e-2);
    const double delay_s = dist / c;
    const double spreading = 1.0 / dist;
    const double absorb_dist = std::max(0.0, dist - 1.0);
    const double peak_pa =
        ivc::spl_db_to_pa(e.speaker.sensitivity_db_spl) * std::numbers::sqrt2;

    // Delay phase advances by a constant per bin, so the rotator is a
    // complex recurrence, re-anchored with exact trig every block to
    // keep accumulated rounding far below the response tolerances.
    const double bin_hz = rate / static_cast<double>(n);
    const double dphi = -two_pi * bin_hz * delay_s;
    const ivc::dsp::cplx step{std::cos(dphi), std::sin(dphi)};
    ivc::dsp::cplx rot{1.0, 0.0};
    constexpr std::size_t resync = 512;
    for (std::size_t k = 0; k < bins; ++k) {
      if (k % resync == 0) {
        const double phase = dphi * static_cast<double>(k);
        rot = ivc::dsp::cplx{std::cos(phase), std::sin(phase)};
      }
      const double f = static_cast<double>(k) * bin_hz;
      // Radiation response × sensitivity × spreading × absorption.
      const double mag = spk.response_at(f) * peak_pa * spreading *
                         absorb.gain(f, absorb_dist);
      total[k] += spec[k] * (mag * rot);
      rot *= step;
    }
  }
  std::vector<ivc::dsp::cplx> work(plan->workspace_size());
  plan->irfft(total, driven, work);

  audio::buffer out{std::vector<double>(max_len + max_delay, 0.0), rate};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.samples[i] = driven[i];
  }
  return out;
}

audio::buffer speaker_array::render_at(const vec3& listener,
                                       const air_model& air) const {
  return render(listener, air, /*with_nonlinearity=*/true);
}

audio::buffer speaker_array::render_at_linear(const vec3& listener,
                                              const air_model& air) const {
  return render(listener, air, /*with_nonlinearity=*/false);
}

}  // namespace ivc::acoustics
