#include "acoustics/array.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/fft.h"

namespace ivc::acoustics {

void speaker_array::add_element(array_element element) {
  audio::validate(element.drive, "speaker_array::add_element");
  if (!elements_.empty()) {
    expects(element.drive.sample_rate_hz ==
                elements_.front().drive.sample_rate_hz,
            "speaker_array: all elements must share a sample rate");
  }
  elements_.push_back(std::move(element));
}

double speaker_array::total_power_w() const {
  double total = 0.0;
  for (const array_element& e : elements_) {
    total += e.input_power_w;
  }
  return total;
}

void speaker_array::scale_power(double factor) {
  expects(factor > 0.0, "speaker_array::scale_power: factor must be > 0");
  for (array_element& e : elements_) {
    const double scaled = e.input_power_w * factor;
    expects(scaled <= e.speaker.max_power_w,
            "speaker_array::scale_power: element would exceed its rating");
    e.input_power_w = scaled;
  }
}

void speaker_array::translate(const vec3& offset) {
  for (array_element& e : elements_) {
    e.position = e.position + offset;
  }
}

// Fused rendering: the per-element non-linearity is applied in the time
// domain (it is memoryless), after which the element's radiation response,
// sensitivity scaling, spreading, absorption, and delay are all linear and
// time-invariant — so they compose into one frequency response per
// element. All element spectra are accumulated and a single inverse FFT
// produces the superposed field, instead of 4 transforms per element.
audio::buffer speaker_array::render(const vec3& listener, const air_model& air,
                                    bool with_nonlinearity) const {
  expects(!elements_.empty(), "speaker_array::render: array is empty");
  const double rate = elements_.front().drive.sample_rate_hz;
  const double c = air.speed_of_sound();

  std::size_t max_len = 0;
  double max_dist = 0.0;
  for (const array_element& e : elements_) {
    max_len = std::max(max_len, e.drive.size());
    max_dist = std::max(max_dist, distance(e.position, listener));
  }
  const auto max_delay =
      static_cast<std::size_t>(std::ceil(max_dist / c * rate));
  const std::size_t n = ivc::dsp::next_pow2(max_len + max_delay + 64);

  std::vector<ivc::dsp::cplx> total(n, ivc::dsp::cplx{0.0, 0.0});
  std::vector<ivc::dsp::cplx> spec(n);
  for (const array_element& e : elements_) {
    const speaker spk{e.speaker};
    expects(e.input_power_w > 0.0 &&
                e.input_power_w <= e.speaker.max_power_w,
            "speaker_array: element power outside the driver's rating");
    const double gain = std::sqrt(e.input_power_w / e.speaker.rated_power_w);
    const double a2 = with_nonlinearity ? e.speaker.nonlin_a2 : 0.0;
    const double a3 = with_nonlinearity ? e.speaker.nonlin_a3 : 0.0;

    std::fill(spec.begin(), spec.end(), ivc::dsp::cplx{0.0, 0.0});
    for (std::size_t i = 0; i < e.drive.size(); ++i) {
      double v = std::clamp(gain * e.drive.samples[i], -1.0, 1.0);
      v = v + a2 * v * v + a3 * v * v * v;
      spec[i] = ivc::dsp::cplx{v, 0.0};
    }
    ivc::dsp::fft_pow2_inplace(spec, /*inverse=*/false);

    const double dist = std::max(distance(e.position, listener), 1e-2);
    const double delay_s = dist / c;
    const double spreading = 1.0 / dist;
    const double absorb_dist = std::max(0.0, dist - 1.0);
    const double peak_pa =
        ivc::spl_db_to_pa(e.speaker.sensitivity_db_spl) * std::numbers::sqrt2;

    for (std::size_t k = 0; k < n; ++k) {
      const double f = ivc::dsp::bin_frequency_hz(k, n, rate);
      const double af = std::abs(f);
      // Radiation response × sensitivity × spreading × absorption.
      const double mag = spk.response_at(af) * peak_pa * spreading *
                         air.absorption_gain(af, absorb_dist);
      const double phase = -two_pi * f * delay_s;
      total[k] += spec[k] * (mag * ivc::dsp::cplx{std::cos(phase),
                                                  std::sin(phase)});
    }
  }
  ivc::dsp::fft_pow2_inplace(total, /*inverse=*/true);

  audio::buffer out{std::vector<double>(max_len + max_delay, 0.0), rate};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.samples[i] = total[i].real();
  }
  return out;
}

audio::buffer speaker_array::render_at(const vec3& listener,
                                       const air_model& air) const {
  return render(listener, air, /*with_nonlinearity=*/true);
}

audio::buffer speaker_array::render_at_linear(const vec3& listener,
                                              const air_model& air) const {
  return render(listener, air, /*with_nonlinearity=*/false);
}

}  // namespace ivc::acoustics
