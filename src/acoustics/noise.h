// Ambient acoustic noise fields, in pascal at the receiver.
#pragma once

#include "audio/buffer.h"
#include "common/rng.h"

namespace ivc::acoustics {

enum class noise_kind {
  white,
  pink,
  speech_shaped,  // babble-like long-term spectrum
};

// Noise with the given A-unweighted SPL (RMS referenced to 20 µPa).
audio::buffer ambient_noise(double duration_s, double sample_rate_hz,
                            double spl_db, noise_kind kind, ivc::rng& rng);

}  // namespace ivc::acoustics
