// Free-field propagation of a pressure signal.
//
// The channel from a source (referenced at 1 m) to a receiver at distance
// r applies, per frequency: spherical spreading 1/r, atmospheric
// absorption 10^(−α(f)·(r−1)/20), and the propagation delay r/c. All
// three are applied in one pass in the frequency domain, which makes the
// absorption filter exact for every bin rather than an FIR approximation.
#pragma once

#include <span>
#include <vector>

#include "acoustics/air.h"

namespace ivc::acoustics {

struct propagation_config {
  double distance_m = 1.0;
  air_model air;
  bool include_delay = true;
  // Extra frequency-independent insertion loss (dB), e.g. an obstruction.
  double extra_loss_db = 0.0;
};

// Propagates `pressure_at_1m` (Pa, sampled at `sample_rate_hz`) to the
// configured distance. Output has the same length; energy arriving past
// the end of the window is dropped (windows are padded by callers that
// care, and the sim module always leaves tail margin).
std::vector<double> propagate(std::span<const double> pressure_at_1m,
                              double sample_rate_hz,
                              const propagation_config& config);

// Analytic received SPL for a pure tone: source_spl − 20·log10(r) −
// α(f)·(r−1) − extra_loss. Used for fast sweeps and validation tests.
double received_spl_db(double source_spl_at_1m_db, double freq_hz,
                       double distance_m, const air_model& air,
                       double extra_loss_db = 0.0);

}  // namespace ivc::acoustics
