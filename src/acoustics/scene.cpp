#include "acoustics/scene.h"

#include <algorithm>

#include "common/error.h"

namespace ivc::acoustics {

void scene::add_source(pressure_source source) {
  audio::validate(source.pressure_at_1m, "scene::add_source");
  if (!sources_.empty()) {
    expects(source.pressure_at_1m.sample_rate_hz ==
                sources_.front().pressure_at_1m.sample_rate_hz,
            "scene: all sources must share a sample rate");
  }
  sources_.push_back(std::move(source));
}

audio::buffer scene::render_at(const vec3& listener, ivc::rng& rng) const {
  expects(!sources_.empty() || ambient_.has_value(),
          "scene::render_at: nothing to render");

  double rate = 0.0;
  std::size_t max_len = 0;
  for (const pressure_source& s : sources_) {
    rate = s.pressure_at_1m.sample_rate_hz;
    max_len = std::max(max_len, s.pressure_at_1m.size());
  }
  if (sources_.empty()) {
    rate = 48'000.0;
    max_len = static_cast<std::size_t>(rate);  // 1 s of pure ambient
  }

  audio::buffer out{std::vector<double>(max_len, 0.0), rate};
  for (const pressure_source& s : sources_) {
    propagation_config cfg;
    cfg.distance_m = std::max(distance(s.position, listener), 1e-2);
    cfg.air = air_;
    cfg.extra_loss_db = s.extra_loss_db;
    const std::vector<double> received =
        propagate(s.pressure_at_1m.samples, rate, cfg);
    for (std::size_t i = 0; i < received.size(); ++i) {
      out.samples[i] += received[i];
    }
  }

  if (ambient_.has_value()) {
    const audio::buffer noise =
        ambient_noise(out.duration_s(), rate, ambient_->spl_db,
                      ambient_->kind, rng);
    const std::size_t n = std::min(noise.size(), out.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.samples[i] += noise.samples[i];
    }
  }
  return out;
}

}  // namespace ivc::acoustics
