#include "acoustics/propagation.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/fft.h"

namespace ivc::acoustics {

std::vector<double> propagate(std::span<const double> pressure_at_1m,
                              double sample_rate_hz,
                              const propagation_config& config) {
  expects(!pressure_at_1m.empty(), "propagate: signal must be non-empty");
  expects(sample_rate_hz > 0.0, "propagate: sample rate must be > 0");
  expects(config.distance_m > 0.0, "propagate: distance must be > 0");

  const double c = config.air.speed_of_sound();
  const double delay_s = config.include_delay ? config.distance_m / c : 0.0;
  const auto delay_samples =
      static_cast<std::size_t>(std::ceil(delay_s * sample_rate_hz));

  // Zero-pad past the delayed content so the circular FFT shift cannot
  // wrap energy back to the start.
  const std::size_t padded = pressure_at_1m.size() + delay_samples + 64;
  const std::size_t n = ivc::dsp::next_pow2(padded);
  std::vector<ivc::dsp::cplx> spec(n, ivc::dsp::cplx{0.0, 0.0});
  for (std::size_t i = 0; i < pressure_at_1m.size(); ++i) {
    spec[i] = ivc::dsp::cplx{pressure_at_1m[i], 0.0};
  }
  ivc::dsp::fft_pow2_inplace(spec, /*inverse=*/false);

  const double spreading = 1.0 / std::max(config.distance_m, 1e-3);
  const double extra = ivc::db_to_amplitude(-config.extra_loss_db);
  const double absorb_dist = std::max(0.0, config.distance_m - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = ivc::dsp::bin_frequency_hz(i, n, sample_rate_hz);
    const double mag = spreading * extra *
                       config.air.absorption_gain(std::abs(f), absorb_dist);
    const double phase = -two_pi * f * delay_s;
    spec[i] *= mag * ivc::dsp::cplx{std::cos(phase), std::sin(phase)};
  }
  ivc::dsp::fft_pow2_inplace(spec, /*inverse=*/true);

  std::vector<double> out(pressure_at_1m.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = spec[i].real();
  }
  return out;
}

double received_spl_db(double source_spl_at_1m_db, double freq_hz,
                       double distance_m, const air_model& air,
                       double extra_loss_db) {
  expects(distance_m > 0.0, "received_spl_db: distance must be > 0");
  const double spreading_db = 20.0 * std::log10(std::max(distance_m, 1e-3));
  const double absorb_db =
      air.absorption_db_per_m(freq_hz) * std::max(0.0, distance_m - 1.0);
  return source_spl_at_1m_db - spreading_db - absorb_db - extra_loss_db;
}

}  // namespace ivc::acoustics
