#include "acoustics/propagation.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/fft_plan.h"

namespace ivc::acoustics {

std::vector<double> propagate(std::span<const double> pressure_at_1m,
                              double sample_rate_hz,
                              const propagation_config& config) {
  expects(!pressure_at_1m.empty(), "propagate: signal must be non-empty");
  expects(sample_rate_hz > 0.0, "propagate: sample rate must be > 0");
  expects(config.distance_m > 0.0, "propagate: distance must be > 0");

  const double c = config.air.speed_of_sound();
  const double delay_s = config.include_delay ? config.distance_m / c : 0.0;
  const auto delay_samples =
      static_cast<std::size_t>(std::ceil(delay_s * sample_rate_hz));

  // Zero-pad past the delayed content so the circular FFT shift cannot
  // wrap energy back to the start. The channel response (real magnitude,
  // delay phase) is conjugate-symmetric, so the planned half-spectrum
  // round trip carries the whole filter.
  const std::size_t padded = pressure_at_1m.size() + delay_samples + 64;
  const std::size_t n = ivc::dsp::next_pow2(padded);
  const auto plan = ivc::dsp::get_fft_plan(n);
  const std::size_t bins = plan->num_real_bins();
  std::vector<double> time(n, 0.0);
  for (std::size_t i = 0; i < pressure_at_1m.size(); ++i) {
    time[i] = pressure_at_1m[i];
  }
  std::vector<ivc::dsp::cplx> spec(bins);
  plan->rfft(time, spec);

  const double spreading = 1.0 / std::max(config.distance_m, 1e-3);
  const double extra = ivc::db_to_amplitude(-config.extra_loss_db);
  const double absorb_dist = std::max(0.0, config.distance_m - 1.0);
  const absorption_model absorb = config.air.absorption();
  for (std::size_t i = 0; i < bins; ++i) {
    const double f =
        static_cast<double>(i) * sample_rate_hz / static_cast<double>(n);
    const double mag = spreading * extra * absorb.gain(f, absorb_dist);
    const double phase = -two_pi * f * delay_s;
    spec[i] *= mag * ivc::dsp::cplx{std::cos(phase), std::sin(phase)};
  }
  std::vector<ivc::dsp::cplx> work(plan->workspace_size());
  plan->irfft(spec, time, work);

  std::vector<double> out(pressure_at_1m.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = time[i];
  }
  return out;
}

double received_spl_db(double source_spl_at_1m_db, double freq_hz,
                       double distance_m, const air_model& air,
                       double extra_loss_db) {
  expects(distance_m > 0.0, "received_spl_db: distance must be > 0");
  const double spreading_db = 20.0 * std::log10(std::max(distance_m, 1e-3));
  const double absorb_db =
      air.absorption_db_per_m(freq_hz) * std::max(0.0, distance_m - 1.0);
  return source_spl_at_1m_db - spreading_db - absorb_db - extra_loss_db;
}

}  // namespace ivc::acoustics
