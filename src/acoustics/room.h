// Shoebox-room acoustics via the image-source method.
//
// The papers' experiments run in closed meeting rooms, not anechoic
// space. Reflections matter to both sides: multipath smears the
// demodulated command (attack quality) and adds reverberant tails the
// defense must tolerate. The model mirrors the source across the walls
// up to a configurable reflection order; each image radiates through the
// same frequency-dependent air model, attenuated by the wall reflection
// loss per bounce.
#pragma once

#include <vector>

#include "acoustics/air.h"
#include "acoustics/geometry.h"
#include "audio/buffer.h"

namespace ivc::acoustics {

struct room_model {
  // The short paper's meeting room: 6.5 m × 4 m × 2.5 m.
  double width_m = 6.5;   // x extent
  double depth_m = 4.0;   // y extent
  double height_m = 2.5;  // z extent
  // Energy absorption per wall bounce (0.3–0.5 for a furnished office;
  // drywall + carpet absorb ultrasound strongly).
  double wall_absorption = 0.4;
  // Extra per-bounce loss applied above 20 kHz: walls are much more
  // absorptive (and more diffusing) at ultrasonic wavelengths.
  double ultrasound_extra_loss_db = 6.0;
  std::size_t max_reflection_order = 1;
};

struct image_source {
  vec3 position;
  std::size_t reflections = 0;  // number of wall bounces
};

// All image sources of `source` up to room.max_reflection_order,
// including the direct path (reflections == 0). Positions must lie
// inside the room.
std::vector<image_source> compute_image_sources(const room_model& room,
                                                const vec3& source);

// Per-bounce amplitude reflection coefficient at `freq_hz`.
double reflection_gain(const room_model& room, double freq_hz,
                       std::size_t reflections);

// Renders `pressure_at_1m` from `source` to `listener` inside the room:
// direct path plus reflections, each with its own delay, spreading and
// absorption. With max_reflection_order == 0 this equals free-field
// propagation.
audio::buffer render_in_room(const audio::buffer& pressure_at_1m,
                             const vec3& source, const vec3& listener,
                             const room_model& room, const air_model& air);

}  // namespace ivc::acoustics
