// Loudspeaker model: electrical drive → radiated pressure at 1 m.
//
// The model is the key substrate for the paper's central trade-off: the
// diaphragm non-linearity partially demodulates a high-power AM
// ultrasound signal *at the speaker*, radiating an audible "shadow" of
// the hidden command. The chain is:
//
//   drive d(t) ∈ [-1,1] · gain(power) → diaphragm non-linearity
//   (x + a₂x² + a₃x³) → radiation frequency response → pressure at 1 m.
//
// Because the radiation response is applied after the non-linearity, a
// piezo tweeter's poor low-frequency efficiency attenuates — but does not
// eliminate — the demodulated audible leakage, exactly as measured in
// practice.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/buffer.h"

namespace ivc::acoustics {

struct speaker_params {
  // SPL at 1 m produced by a full-scale (amplitude 1.0) sine at the
  // response reference frequency when driven at rated power.
  double sensitivity_db_spl = 115.0;
  double rated_power_w = 25.0;

  // Radiation band edges; outside them the response rolls off with the
  // given per-edge Butterworth order (in poles).
  double band_low_hz = 16'000.0;
  double band_high_hz = 64'000.0;
  std::size_t rolloff_order = 2;

  // Diaphragm non-linearity coefficients (normalized excursion units).
  double nonlin_a2 = 0.06;
  double nonlin_a3 = 0.012;

  // Ceiling on drive power the hardware tolerates.
  double max_power_w = 60.0;
};

// A wide-band "ordinary" speaker, used to play genuine voice in
// experiments and as the baseline audible player.
speaker_params wideband_speaker();

// A narrow-band ultrasonic piezo tweeter, the attack rig's element.
speaker_params ultrasonic_tweeter();

// A hi-fi horn tweeter driven by a consumer amplifier — the prior work's
// single-speaker setup. Radiates the voice band well (which is why its
// demodulated leakage is so audible) but is several dB weaker than a
// dedicated ultrasonic transducer at 30–40 kHz.
speaker_params hifi_horn_tweeter();

class speaker {
 public:
  explicit speaker(speaker_params params);

  // Radiated pressure (Pa, referenced at 1 m) for `drive` played at
  // `input_power_w` electrical power. Drive samples beyond [-1, 1] are
  // hard-clipped (amplifier rail), which itself adds distortion — as in
  // real hardware. Throws if input_power_w exceeds max_power_w.
  audio::buffer emit(const audio::buffer& drive, double input_power_w) const;

  // Same chain but bypassing the non-linearity; the difference between
  // emit() and emit_linear() isolates the speaker's self-demodulated
  // leakage for the attack-design analysis.
  audio::buffer emit_linear(const audio::buffer& drive,
                            double input_power_w) const;

  // Magnitude of the radiation response at `freq_hz` (1.0 in band).
  double response_at(double freq_hz) const;

  const speaker_params& params() const { return params_; }

 private:
  audio::buffer render(const audio::buffer& drive, double input_power_w,
                       bool with_nonlinearity) const;

  speaker_params params_;
};

}  // namespace ivc::acoustics
