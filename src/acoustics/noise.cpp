#include "acoustics/noise.h"

#include "audio/generate.h"
#include "common/error.h"
#include "common/units.h"

namespace ivc::acoustics {

audio::buffer ambient_noise(double duration_s, double sample_rate_hz,
                            double spl_db, noise_kind kind, ivc::rng& rng) {
  const double rms_pa = ivc::spl_db_to_pa(spl_db);
  switch (kind) {
    case noise_kind::white:
      return audio::white_noise(duration_s, sample_rate_hz, rms_pa, rng);
    case noise_kind::pink:
      return audio::pink_noise(duration_s, sample_rate_hz, rms_pa, rng);
    case noise_kind::speech_shaped:
      return audio::speech_shaped_noise(duration_s, sample_rate_hz, rms_pa, rng);
  }
  throw std::invalid_argument{"ambient_noise: unknown noise kind"};
}

}  // namespace ivc::acoustics
