#include "synth/phoneme.h"

#include <unordered_map>

#include "common/error.h"

namespace ivc::synth {
namespace {

formant_frame vowel_frame(double f1, double f2, double f3) {
  formant_frame f;
  f.freq_hz = {f1, f2, f3, 3'500.0};
  f.bandwidth_hz = {70.0, 100.0, 140.0, 220.0};
  return f;
}

phoneme make_vowel(std::string symbol, double f1, double f2, double f3,
                   double dur_ms = 120.0) {
  phoneme p;
  p.symbol = std::move(symbol);
  p.kind = phoneme_kind::vowel;
  p.voiced = true;
  p.formants = vowel_frame(f1, f2, f3);
  p.duration_ms = dur_ms;
  p.amplitude = 1.0;
  return p;
}

phoneme make_nasal(std::string symbol, double f1, double f2, double f3) {
  phoneme p;
  p.symbol = std::move(symbol);
  p.kind = phoneme_kind::nasal;
  p.voiced = true;
  p.formants = vowel_frame(f1, f2, f3);
  p.formants.bandwidth_hz = {120.0, 180.0, 240.0, 300.0};  // damped murmur
  p.duration_ms = 70.0;
  p.amplitude = 0.5;
  return p;
}

phoneme make_glide(std::string symbol, double f1, double f2, double f3) {
  phoneme p;
  p.symbol = std::move(symbol);
  p.kind = phoneme_kind::glide;
  p.voiced = true;
  p.formants = vowel_frame(f1, f2, f3);
  p.duration_ms = 70.0;
  p.amplitude = 0.7;
  return p;
}

phoneme make_fricative(std::string symbol, bool voiced, double center_hz,
                       double bw_hz, double amp, double dur_ms = 100.0) {
  phoneme p;
  p.symbol = std::move(symbol);
  p.kind = phoneme_kind::fricative;
  p.voiced = voiced;
  p.noise_center_hz = center_hz;
  p.noise_bandwidth_hz = bw_hz;
  // Voiced fricatives keep a weak formant structure under the noise.
  p.formants = vowel_frame(400.0, 1'600.0, 2'500.0);
  p.duration_ms = dur_ms;
  p.amplitude = amp;
  return p;
}

phoneme make_plosive(std::string symbol, bool voiced, double burst_hz,
                     double bw_hz) {
  phoneme p;
  p.symbol = std::move(symbol);
  p.kind = phoneme_kind::plosive;
  p.voiced = voiced;
  p.noise_center_hz = burst_hz;
  p.noise_bandwidth_hz = bw_hz;
  p.formants = vowel_frame(300.0, 1'500.0, 2'500.0);
  p.duration_ms = 60.0;  // closure + burst
  p.amplitude = 0.9;
  return p;
}

std::vector<phoneme> build_inventory() {
  std::vector<phoneme> inv;
  // Vowels (Peterson–Barney male averages, Hz).
  inv.push_back(make_vowel("IY", 270, 2290, 3010));
  inv.push_back(make_vowel("IH", 390, 1990, 2550, 90.0));
  inv.push_back(make_vowel("EH", 530, 1840, 2480, 100.0));
  inv.push_back(make_vowel("AE", 660, 1720, 2410, 140.0));
  inv.push_back(make_vowel("AH", 520, 1190, 2390, 90.0));
  inv.push_back(make_vowel("AA", 730, 1090, 2440, 140.0));
  inv.push_back(make_vowel("AO", 570, 840, 2410, 130.0));
  inv.push_back(make_vowel("UH", 440, 1020, 2240, 90.0));
  inv.push_back(make_vowel("UW", 300, 870, 2240, 120.0));
  inv.push_back(make_vowel("ER", 490, 1350, 1690, 110.0));
  inv.push_back(make_vowel("OW", 570, 900, 2400, 130.0));
  inv.push_back(make_vowel("EY", 480, 2000, 2600, 130.0));
  inv.push_back(make_vowel("AY", 660, 1400, 2500, 150.0));
  inv.push_back(make_vowel("AW", 680, 1100, 2500, 150.0));
  // Nasals.
  inv.push_back(make_nasal("M", 280, 900, 2200));
  inv.push_back(make_nasal("N", 280, 1700, 2600));
  inv.push_back(make_nasal("NG", 280, 2300, 2750));
  // Glides and liquids.
  inv.push_back(make_glide("W", 300, 610, 2200));
  inv.push_back(make_glide("Y", 280, 2250, 3000));
  inv.push_back(make_glide("L", 360, 1300, 2700));
  inv.push_back(make_glide("R", 310, 1060, 1380));
  // Fricatives.
  inv.push_back(make_fricative("S", false, 6'300.0, 2'800.0, 0.5));
  inv.push_back(make_fricative("SH", false, 3'600.0, 2'200.0, 0.55));
  inv.push_back(make_fricative("F", false, 4'500.0, 3'600.0, 0.25, 90.0));
  inv.push_back(make_fricative("TH", false, 5'400.0, 3'200.0, 0.2, 90.0));
  inv.push_back(make_fricative("Z", true, 6'300.0, 2'800.0, 0.4));
  inv.push_back(make_fricative("V", true, 4'200.0, 3'200.0, 0.3, 80.0));
  inv.push_back(make_fricative("HH", false, 1'200.0, 1'800.0, 0.2, 70.0));
  // Plosives.
  inv.push_back(make_plosive("P", false, 900.0, 1'600.0));
  inv.push_back(make_plosive("B", true, 700.0, 1'400.0));
  inv.push_back(make_plosive("T", false, 4'200.0, 2'600.0));
  inv.push_back(make_plosive("D", true, 3'600.0, 2'400.0));
  inv.push_back(make_plosive("K", false, 2'200.0, 1'600.0));
  inv.push_back(make_plosive("G", true, 1'900.0, 1'400.0));
  // Affricates approximated as plosive with fricative-like longer burst.
  phoneme ch = make_plosive("CH", false, 3'400.0, 2'400.0);
  ch.duration_ms = 110.0;
  inv.push_back(ch);
  phoneme jh = make_plosive("JH", true, 3'000.0, 2'200.0);
  jh.duration_ms = 110.0;
  inv.push_back(jh);
  // Pauses.
  phoneme sil;
  sil.symbol = "SIL";
  sil.kind = phoneme_kind::silence;
  sil.duration_ms = 120.0;
  sil.amplitude = 0.0;
  inv.push_back(sil);
  phoneme pau = sil;
  pau.symbol = "PAU";
  pau.duration_ms = 60.0;
  inv.push_back(pau);
  return inv;
}

}  // namespace

const std::vector<phoneme>& phoneme_inventory() {
  static const std::vector<phoneme> inventory = build_inventory();
  return inventory;
}

const phoneme& phoneme_by_symbol(const std::string& symbol) {
  static const std::unordered_map<std::string, std::size_t> index = [] {
    std::unordered_map<std::string, std::size_t> m;
    const auto& inv = phoneme_inventory();
    for (std::size_t i = 0; i < inv.size(); ++i) {
      m.emplace(inv[i].symbol, i);
    }
    return m;
  }();
  const auto it = index.find(symbol);
  expects(it != index.end(), "phoneme_by_symbol: unknown symbol " + symbol);
  return phoneme_inventory()[it->second];
}

}  // namespace ivc::synth
