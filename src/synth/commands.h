// The command bank: the voice commands the papers inject, plus genuine
// phrases for the defense's negative corpus.
#pragma once

#include <string>
#include <vector>

#include "audio/buffer.h"
#include "common/rng.h"
#include "synth/synthesizer.h"

namespace ivc::synth {

struct command {
  std::string id;      // short stable identifier, e.g. "take_picture"
  std::string text;    // the spoken phrase
  bool is_attack = true;  // attack payload vs. benign conversational phrase
};

// Commands used across the evaluation (wake word + action), mirroring the
// papers' targets.
const std::vector<command>& command_bank();

// Benign conversational phrases for genuine-speech corpora.
const std::vector<command>& benign_bank();

// Lookup by id; throws for unknown ids.
const command& command_by_id(const std::string& id);

// Renders a command with the given voice at `sample_rate_hz`.
audio::buffer render_command(const command& cmd, const voice_params& voice,
                             ivc::rng& rng, double sample_rate_hz = 16'000.0);

}  // namespace ivc::synth
