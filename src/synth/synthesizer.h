// Formant speech synthesizer: phoneme sequence → waveform.
//
// This is the library's TTS stand-in. It produces pitched, formant-shaped,
// envelope-modulated speech that MFCC/DTW recognition treats like voice,
// which is all the attack/defense pipelines require of it.
#pragma once

#include <string>
#include <vector>

#include "audio/buffer.h"
#include "common/rng.h"
#include "synth/glottal.h"
#include "synth/phoneme.h"

namespace ivc::synth {

struct voice_params {
  double pitch_hz = 120.0;        // utterance-initial f0
  double pitch_drop = 0.25;       // fractional declination across phrase
  double speed = 1.0;             // duration scale (>1 == faster)
  double breathiness = 0.06;      // aspiration noise mixed into voicing
  glottal_config glottal;
};

// Natural-variation presets for corpus building.
voice_params male_voice();
voice_params female_voice();
// Randomly perturbed voice around a base (pitch ±15%, speed ±12%).
voice_params perturbed_voice(const voice_params& base, ivc::rng& rng);

// Synthesizes the phoneme-symbol sequence at `sample_rate_hz`
// (16 kHz default covers the full voice band used by the pipelines).
// Output is peak-normalized to 0.5.
audio::buffer synthesize(const std::vector<std::string>& phoneme_symbols,
                         const voice_params& voice, ivc::rng& rng,
                         double sample_rate_hz = 16'000.0);

}  // namespace ivc::synth
