// Glottal excitation source for the formant synthesizer.
//
// Rosenberg-model pulse train with per-period jitter (pitch perturbation)
// and shimmer (amplitude perturbation); both are what make synthetic
// voices read as "voiced" to MFCC front-ends and give the defense's
// genuine corpus natural low-frequency variability.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"

namespace ivc::synth {

struct glottal_config {
  // Fraction of each period spent opening (Rosenberg t_p).
  double open_quotient = 0.4;
  // Fraction spent closing (Rosenberg t_n).
  double close_quotient = 0.16;
  // Standard deviation of per-period pitch perturbation, fraction of f0.
  double jitter = 0.008;
  // Standard deviation of per-period amplitude perturbation, fraction.
  double shimmer = 0.04;
};

// Renders a glottal pulse train following the instantaneous pitch contour
// `f0_hz` (one value per output sample; zero or negative entries yield
// silence). Output length matches f0_hz.
std::vector<double> glottal_source(std::span<const double> f0_hz,
                                   double sample_rate_hz,
                                   const glottal_config& config, ivc::rng& rng);

// Linear pitch contour from `start_hz` to `end_hz` over n samples: the
// standard declination of a declarative utterance.
std::vector<double> pitch_contour(double start_hz, double end_hz,
                                  std::size_t n);

}  // namespace ivc::synth
