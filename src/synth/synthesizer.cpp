#include "synth/synthesizer.h"

#include <algorithm>
#include <cmath>

#include "audio/generate.h"
#include "audio/ops.h"
#include "common/error.h"
#include "dsp/biquad.h"

namespace ivc::synth {
namespace {

struct segment {
  const phoneme* ph = nullptr;
  std::size_t start = 0;   // sample index
  std::size_t length = 0;  // samples
};

// Builds the per-sample formant track with linear transitions across
// segment boundaries (coarticulation ~30 ms or half a segment).
std::vector<formant_frame> formant_track(const std::vector<segment>& segments,
                                         std::size_t total,
                                         double sample_rate_hz) {
  std::vector<formant_frame> track(total);
  const auto transition =
      static_cast<std::size_t>(0.030 * sample_rate_hz);  // 30 ms
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const segment& seg = segments[s];
    const formant_frame& target = seg.ph->formants;
    const formant_frame& prev_target =
        s > 0 ? segments[s - 1].ph->formants : target;
    const std::size_t ramp =
        std::min({transition, seg.length / 2, seg.length});
    for (std::size_t i = 0; i < seg.length; ++i) {
      const std::size_t n = seg.start + i;
      if (n >= total) {
        break;
      }
      if (i < ramp && ramp > 0) {
        const double t = static_cast<double>(i) / static_cast<double>(ramp);
        track[n] = lerp(prev_target, target, t);
      } else {
        track[n] = target;
      }
    }
  }
  return track;
}

// Amplitude envelope per segment. Natural phoneme onsets take 20-50 ms;
// the 25 ms ramps both avoid clicks and keep the envelope's modulation
// sidebands of the glottal fundamental above the sub-50 Hz band (real
// speech has no energy there — a property the defense relies on).
std::vector<double> amplitude_track(const std::vector<segment>& segments,
                                    std::size_t total,
                                    double sample_rate_hz) {
  std::vector<double> amp(total, 0.0);
  const auto ramp = static_cast<std::size_t>(0.025 * sample_rate_hz);
  for (const segment& seg : segments) {
    for (std::size_t i = 0; i < seg.length; ++i) {
      const std::size_t n = seg.start + i;
      if (n >= total) {
        break;
      }
      double g = seg.ph->amplitude;
      if (i < ramp && ramp > 0) {
        g *= static_cast<double>(i) / static_cast<double>(ramp);
      }
      const std::size_t remaining = seg.length - 1 - i;
      if (remaining < ramp && ramp > 0) {
        g *= static_cast<double>(remaining) / static_cast<double>(ramp);
      }
      amp[n] = g;
    }
  }
  return amp;
}

}  // namespace

voice_params male_voice() {
  voice_params v;
  v.pitch_hz = 115.0;
  return v;
}

voice_params female_voice() {
  voice_params v;
  v.pitch_hz = 210.0;
  v.pitch_drop = 0.22;
  return v;
}

voice_params perturbed_voice(const voice_params& base, ivc::rng& rng) {
  voice_params v = base;
  v.pitch_hz *= 1.0 + rng.uniform(-0.15, 0.15);
  v.speed *= 1.0 + rng.uniform(-0.12, 0.12);
  v.breathiness = std::max(0.0, base.breathiness + rng.uniform(-0.02, 0.04));
  return v;
}

audio::buffer synthesize(const std::vector<std::string>& phoneme_symbols,
                         const voice_params& voice, ivc::rng& rng,
                         double sample_rate_hz) {
  expects(!phoneme_symbols.empty(), "synthesize: need at least one phoneme");
  expects(sample_rate_hz >= 8'000.0,
          "synthesize: sample rate must be >= 8 kHz");
  expects(voice.speed > 0.1 && voice.speed < 4.0,
          "synthesize: speed out of range");

  // Lay out segments.
  std::vector<segment> segments;
  std::size_t cursor = 0;
  for (const std::string& sym : phoneme_symbols) {
    const phoneme& ph = phoneme_by_symbol(sym);
    const double dur_s = ph.duration_ms / 1'000.0 / voice.speed;
    segment seg;
    seg.ph = &ph;
    seg.start = cursor;
    seg.length = std::max<std::size_t>(
        8, static_cast<std::size_t>(std::llround(dur_s * sample_rate_hz)));
    cursor += seg.length;
    segments.push_back(seg);
  }
  const std::size_t total = cursor;

  // Pitch contour with declination, voiced gating per segment.
  std::vector<double> f0(total, 0.0);
  const double f0_start = voice.pitch_hz;
  const double f0_end = voice.pitch_hz * (1.0 - voice.pitch_drop);
  for (const segment& seg : segments) {
    if (!seg.ph->voiced) {
      continue;
    }
    for (std::size_t i = 0; i < seg.length && seg.start + i < total; ++i) {
      const std::size_t n = seg.start + i;
      const double t = static_cast<double>(n) / static_cast<double>(total);
      f0[n] = f0_start + (f0_end - f0_start) * t;
    }
  }

  // Sources.
  const std::vector<double> voiced_src =
      glottal_source(f0, sample_rate_hz, voice.glottal, rng);
  audio::buffer noise = audio::white_noise(
      static_cast<double>(total) / sample_rate_hz, sample_rate_hz, 0.3, rng);
  noise.samples.resize(total, 0.0);

  // Per-segment excitation assembly.
  std::vector<double> excitation(total, 0.0);
  for (const segment& seg : segments) {
    const phoneme& ph = *seg.ph;
    switch (ph.kind) {
      case phoneme_kind::silence:
        break;
      case phoneme_kind::vowel:
      case phoneme_kind::nasal:
      case phoneme_kind::glide: {
        for (std::size_t i = 0; i < seg.length && seg.start + i < total; ++i) {
          const std::size_t n = seg.start + i;
          excitation[n] = voiced_src[n] + voice.breathiness * noise.samples[n];
        }
        break;
      }
      case phoneme_kind::fricative: {
        // Band-shaped noise; voiced fricatives add the glottal source.
        const double lo =
            std::max(100.0, ph.noise_center_hz - ph.noise_bandwidth_hz / 2.0);
        const double hi = std::min(0.47 * sample_rate_hz,
                                   ph.noise_center_hz + ph.noise_bandwidth_hz / 2.0);
        std::vector<double> seg_noise(seg.length);
        for (std::size_t i = 0; i < seg.length; ++i) {
          seg_noise[i] = seg.start + i < total ? noise.samples[seg.start + i] : 0.0;
        }
        if (hi > lo + 50.0) {
          const ivc::dsp::iir_cascade bp =
              ivc::dsp::butterworth_bandpass(2, lo, hi, sample_rate_hz);
          seg_noise = bp.process(seg_noise);
        }
        for (std::size_t i = 0; i < seg.length && seg.start + i < total; ++i) {
          const std::size_t n = seg.start + i;
          excitation[n] = 3.0 * seg_noise[i] +
                          (ph.voiced ? 0.6 * voiced_src[n] : 0.0);
        }
        break;
      }
      case phoneme_kind::plosive: {
        // First 60%: closure (silence, or voice bar if voiced); then a
        // noise burst.
        const auto closure = static_cast<std::size_t>(0.6 * seg.length);
        const double lo =
            std::max(100.0, ph.noise_center_hz - ph.noise_bandwidth_hz / 2.0);
        const double hi = std::min(0.47 * sample_rate_hz,
                                   ph.noise_center_hz + ph.noise_bandwidth_hz / 2.0);
        std::vector<double> burst(seg.length - closure);
        for (std::size_t i = 0; i < burst.size(); ++i) {
          const std::size_t n = seg.start + closure + i;
          burst[i] = n < total ? noise.samples[n] : 0.0;
        }
        if (!burst.empty() && hi > lo + 50.0) {
          const ivc::dsp::iir_cascade bp =
              ivc::dsp::butterworth_bandpass(2, lo, hi, sample_rate_hz);
          burst = bp.process(burst);
        }
        for (std::size_t i = 0; i < seg.length && seg.start + i < total; ++i) {
          const std::size_t n = seg.start + i;
          if (i < closure) {
            excitation[n] = ph.voiced ? 0.25 * voiced_src[n] : 0.0;
          } else {
            // Burst decays exponentially.
            const double k = static_cast<double>(i - closure);
            const double decay = std::exp(-k / (0.012 * sample_rate_hz));
            excitation[n] = 4.0 * burst[i - closure] * decay +
                            (ph.voiced ? 0.3 * voiced_src[n] : 0.0);
          }
        }
        break;
      }
    }
  }

  // Vocal-tract filtering and amplitude envelope.
  const std::vector<formant_frame> track =
      formant_track(segments, total, sample_rate_hz);
  std::vector<double> speech =
      apply_formant_cascade(excitation, track, sample_rate_hz);
  const std::vector<double> amp = amplitude_track(segments, total, sample_rate_hz);
  for (std::size_t n = 0; n < total; ++n) {
    speech[n] *= amp[n];
  }

  audio::buffer out{std::move(speech), sample_rate_hz};
  out = audio::remove_dc(out);
  return audio::normalize_peak(out, 0.5);
}

}  // namespace ivc::synth
