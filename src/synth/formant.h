// Time-varying formant resonators (digital resonator bank).
//
// Each resonator is the classic two-pole section used in Klatt-style
// synthesizers: poles at radius exp(−πBT), angle 2πFT, gain-normalized
// to unity at the resonance. Coefficients are recomputed per sample from
// interpolated formant tracks, which is what produces smooth
// coarticulation between phonemes.
#pragma once

#include <array>
#include <span>
#include <vector>

namespace ivc::synth {

inline constexpr std::size_t num_formants = 4;

struct formant_frame {
  std::array<double, num_formants> freq_hz{500.0, 1500.0, 2500.0, 3500.0};
  std::array<double, num_formants> bandwidth_hz{60.0, 90.0, 120.0, 180.0};
};

// Linear interpolation between two formant frames, t in [0, 1].
formant_frame lerp(const formant_frame& a, const formant_frame& b, double t);

// One time-varying digital resonator.
class resonator {
 public:
  // Processes one sample with the given instantaneous frequency/bandwidth.
  double process(double x, double freq_hz, double bandwidth_hz,
                 double sample_rate_hz);
  void reset();

 private:
  double y1_ = 0.0;
  double y2_ = 0.0;
};

// Runs excitation through a cascade of num_formants resonators whose
// targets follow `frames` (one frame per sample).
std::vector<double> apply_formant_cascade(std::span<const double> excitation,
                                          std::span<const formant_frame> frames,
                                          double sample_rate_hz);

}  // namespace ivc::synth
