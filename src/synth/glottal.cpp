#include "synth/glottal.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace ivc::synth {

std::vector<double> glottal_source(std::span<const double> f0_hz,
                                   double sample_rate_hz,
                                   const glottal_config& config,
                                   ivc::rng& rng) {
  expects(!f0_hz.empty(), "glottal_source: contour must be non-empty");
  expects(sample_rate_hz > 0.0, "glottal_source: sample rate must be > 0");
  expects(config.open_quotient > 0.0 && config.close_quotient > 0.0 &&
              config.open_quotient + config.close_quotient <= 1.0,
          "glottal_source: open+close quotients must fit in one period");

  std::vector<double> out(f0_hz.size(), 0.0);
  std::size_t i = 0;
  while (i < out.size()) {
    const double f0 = f0_hz[i];
    if (f0 <= 0.0) {
      ++i;
      continue;
    }
    // One period with jitter/shimmer applied.
    const double f0_jittered =
        std::max(30.0, f0 * (1.0 + rng.normal(0.0, config.jitter)));
    const auto period =
        std::max<std::size_t>(2, static_cast<std::size_t>(
                                     std::llround(sample_rate_hz / f0_jittered)));
    const double amp = std::max(0.0, 1.0 + rng.normal(0.0, config.shimmer));
    const auto n1 =
        static_cast<std::size_t>(config.open_quotient * static_cast<double>(period));
    const auto n2 = n1 + static_cast<std::size_t>(config.close_quotient *
                                                  static_cast<double>(period));
    for (std::size_t k = 0; k < period && i + k < out.size(); ++k) {
      double g = 0.0;
      if (k < n1 && n1 > 0) {
        g = 0.5 * (1.0 - std::cos(pi * static_cast<double>(k) /
                                  static_cast<double>(n1)));
      } else if (k < n2 && n2 > n1) {
        g = std::cos(0.5 * pi * static_cast<double>(k - n1) /
                     static_cast<double>(n2 - n1));
      }
      out[i + k] = amp * g;
    }
    i += period;
  }

  // Differentiate: the radiated glottal flow derivative is what excites
  // the vocal tract (removes the DC pedestal, brightens the spectrum).
  double prev = 0.0;
  for (double& v : out) {
    const double cur = v;
    v = cur - prev;
    prev = cur;
  }
  return out;
}

std::vector<double> pitch_contour(double start_hz, double end_hz,
                                  std::size_t n) {
  expects(n > 0, "pitch_contour: need at least one sample");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1)
                           : 0.0;
    out[i] = start_hz + (end_hz - start_hz) * t;
  }
  return out;
}

}  // namespace ivc::synth
