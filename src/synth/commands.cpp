#include "synth/commands.h"

#include "common/error.h"
#include "synth/lexicon.h"

namespace ivc::synth {

const std::vector<command>& command_bank() {
  static const std::vector<command> bank = {
      {"take_picture", "ok google take a picture", true},
      {"airplane_mode", "ok google turn on airplane mode", true},
      {"add_milk", "alexa add milk to my shopping list", true},
      {"mute_yourself", "alexa mute yourself", true},
      {"open_door", "alexa open the front door", true},
      {"turn_off_lights", "alexa turn off the lights", true},
      {"send_message", "ok google send a message", true},
      {"call_nine_one_one", "hey siri call nine one one", true},
  };
  return bank;
}

const std::vector<command>& benign_bank() {
  static const std::vector<command> bank = {
      {"hello_how", "hello how are you", false},
      {"weather_today", "what is the weather today", false},
      {"play_music", "please play music", false},
      {"good_morning", "good morning thanks", false},
      {"what_time", "what time is it", false},
      {"volume_up", "turn the volume up please", false},
      {"read_email", "please read my email", false},
      {"open_window", "open the window please", false},
      {"stop_music", "stop the music", false},
  };
  return bank;
}

const command& command_by_id(const std::string& id) {
  for (const command& c : command_bank()) {
    if (c.id == id) {
      return c;
    }
  }
  for (const command& c : benign_bank()) {
    if (c.id == id) {
      return c;
    }
  }
  throw std::invalid_argument{"command_by_id: unknown id '" + id + "'"};
}

audio::buffer render_command(const command& cmd, const voice_params& voice,
                             ivc::rng& rng, double sample_rate_hz) {
  const std::vector<std::string> symbols = pronounce_phrase(cmd.text);
  return synthesize(symbols, voice, rng, sample_rate_hz);
}

}  // namespace ivc::synth
