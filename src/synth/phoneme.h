// Phoneme inventory (ARPAbet-style symbols) for the command synthesizer.
#pragma once

#include <string>
#include <vector>

#include "synth/formant.h"

namespace ivc::synth {

enum class phoneme_kind {
  vowel,
  nasal,
  glide,     // approximants and liquids
  fricative,
  plosive,
  silence,
};

struct phoneme {
  std::string symbol;
  phoneme_kind kind = phoneme_kind::silence;
  bool voiced = false;
  // Formant targets (meaningful for vowel/nasal/glide and voiced context).
  formant_frame formants;
  // Frication noise band (meaningful for fricative/plosive bursts).
  double noise_center_hz = 0.0;
  double noise_bandwidth_hz = 0.0;
  // Nominal duration, ms (speed scaling applies on top).
  double duration_ms = 80.0;
  // Relative amplitude, linear.
  double amplitude = 1.0;
};

// Looks up a phoneme by its symbol; throws std::invalid_argument for
// unknown symbols.
const phoneme& phoneme_by_symbol(const std::string& symbol);

// The full inventory (for tests and documentation dumps).
const std::vector<phoneme>& phoneme_inventory();

}  // namespace ivc::synth
