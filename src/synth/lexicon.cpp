#include "synth/lexicon.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/error.h"

namespace ivc::synth {
namespace {

// ARPAbet-ish pronunciations over the library's phoneme inventory.
// Voiced "th" (DH) is approximated by D, which the inventory lacks and
// the recognizer never needs to distinguish.
const std::map<std::string, std::vector<std::string>>& lexicon() {
  static const std::map<std::string, std::vector<std::string>> table = {
      {"a", {"AH"}},
      {"add", {"AE", "D"}},
      {"airplane", {"EH", "R", "P", "L", "EY", "N"}},
      {"alexa", {"AH", "L", "EH", "K", "S", "AH"}},
      {"are", {"AA", "R"}},
      {"buy", {"B", "AY"}},
      {"call", {"K", "AO", "L"}},
      {"camera", {"K", "AE", "M", "ER", "AH"}},
      {"door", {"D", "AO", "R"}},
      {"down", {"D", "AW", "N"}},
      {"email", {"IY", "M", "EY", "L"}},
      {"front", {"F", "R", "AH", "N", "T"}},
      {"good", {"G", "UH", "D"}},
      {"google", {"G", "UW", "G", "AH", "L"}},
      {"hello", {"HH", "EH", "L", "OW"}},
      {"hey", {"HH", "EY"}},
      {"how", {"HH", "AW"}},
      {"is", {"IH", "Z"}},
      {"it", {"IH", "T"}},
      {"lights", {"L", "AY", "T", "S"}},
      {"list", {"L", "IH", "S", "T"}},
      {"message", {"M", "EH", "S", "IH", "JH"}},
      {"milk", {"M", "IH", "L", "K"}},
      {"mode", {"M", "OW", "D"}},
      {"morning", {"M", "AO", "R", "N", "IH", "NG"}},
      {"music", {"M", "Y", "UW", "Z", "IH", "K"}},
      {"mute", {"M", "Y", "UW", "T"}},
      {"my", {"M", "AY"}},
      {"nine", {"N", "AY", "N"}},
      {"off", {"AO", "F"}},
      {"ok", {"OW", "K", "EY"}},
      {"on", {"AA", "N"}},
      {"one", {"W", "AH", "N"}},
      {"open", {"OW", "P", "AH", "N"}},
      {"order", {"AO", "R", "D", "ER"}},
      {"picture", {"P", "IH", "K", "CH", "ER"}},
      {"play", {"P", "L", "EY"}},
      {"please", {"P", "L", "IY", "Z"}},
      {"read", {"R", "IY", "D"}},
      {"send", {"S", "EH", "N", "D"}},
      {"shopping", {"SH", "AA", "P", "IH", "NG"}},
      {"siri", {"S", "IH", "R", "IY"}},
      {"stop", {"S", "T", "AA", "P"}},
      {"take", {"T", "EY", "K"}},
      {"thanks", {"TH", "AE", "NG", "K", "S"}},
      {"the", {"D", "AH"}},
      {"time", {"T", "AY", "M"}},
      {"to", {"T", "UW"}},
      {"today", {"T", "UH", "D", "EY"}},
      {"turn", {"T", "ER", "N"}},
      {"unlock", {"AH", "N", "L", "AA", "K"}},
      {"up", {"AH", "P"}},
      {"volume", {"V", "AA", "L", "Y", "UW", "M"}},
      {"weather", {"W", "EH", "TH", "ER"}},
      {"what", {"W", "AH", "T"}},
      {"window", {"W", "IH", "N", "D", "OW"}},
      {"you", {"Y", "UW"}},
      {"yourself", {"Y", "ER", "S", "EH", "L", "F"}},
  };
  return table;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::vector<std::string> split_words(const std::string& phrase) {
  std::istringstream in{phrase};
  std::vector<std::string> words;
  std::string w;
  while (in >> w) {
    words.push_back(to_lower(w));
  }
  return words;
}

}  // namespace

std::vector<std::string> pronounce(const std::string& word) {
  const auto it = lexicon().find(to_lower(word));
  expects(it != lexicon().end(), "pronounce: out-of-vocabulary word '" + word + "'");
  return it->second;
}

std::vector<std::string> pronounce_phrase(const std::string& phrase) {
  const std::vector<std::string> words = split_words(phrase);
  expects(!words.empty(), "pronounce_phrase: empty phrase");
  std::vector<std::string> symbols;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::vector<std::string> ph = pronounce(words[i]);
    symbols.insert(symbols.end(), ph.begin(), ph.end());
    if (i + 1 < words.size()) {
      symbols.emplace_back("PAU");
    }
  }
  return symbols;
}

bool phrase_in_vocabulary(const std::string& phrase) {
  for (const std::string& w : split_words(phrase)) {
    if (lexicon().find(w) == lexicon().end()) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> vocabulary() {
  std::vector<std::string> words;
  words.reserve(lexicon().size());
  for (const auto& [word, _] : lexicon()) {
    words.push_back(word);
  }
  return words;
}

}  // namespace ivc::synth
