// Word → phoneme pronunciations for the command vocabulary.
#pragma once

#include <string>
#include <vector>

namespace ivc::synth {

// Phoneme symbols for a (lower-case) word; throws std::invalid_argument
// for out-of-vocabulary words. The vocabulary covers every word used by
// the command bank plus common filler words for genuine-speech corpora.
std::vector<std::string> pronounce(const std::string& word);

// Phoneme symbols for a whole phrase (space-separated words), with a
// short inter-word pause between words.
std::vector<std::string> pronounce_phrase(const std::string& phrase);

// True when every word of the phrase is in the lexicon.
bool phrase_in_vocabulary(const std::string& phrase);

// All known words (sorted), for documentation and tests.
std::vector<std::string> vocabulary();

}  // namespace ivc::synth
