#include "synth/formant.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace ivc::synth {

formant_frame lerp(const formant_frame& a, const formant_frame& b, double t) {
  formant_frame out;
  for (std::size_t i = 0; i < num_formants; ++i) {
    out.freq_hz[i] = a.freq_hz[i] + (b.freq_hz[i] - a.freq_hz[i]) * t;
    out.bandwidth_hz[i] =
        a.bandwidth_hz[i] + (b.bandwidth_hz[i] - a.bandwidth_hz[i]) * t;
  }
  return out;
}

double resonator::process(double x, double freq_hz, double bandwidth_hz,
                          double sample_rate_hz) {
  const double t = 1.0 / sample_rate_hz;
  const double r = std::exp(-pi * bandwidth_hz * t);
  const double theta = two_pi * freq_hz * t;
  const double b1 = 2.0 * r * std::cos(theta);
  const double b2 = -r * r;
  // Unity gain at DC-independent resonance: a = 1 - b1 - b2 keeps overall
  // level stable as formants move (Klatt's normalization).
  const double a = 1.0 - b1 - b2;
  const double y = a * x + b1 * y1_ + b2 * y2_;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void resonator::reset() {
  y1_ = 0.0;
  y2_ = 0.0;
}

std::vector<double> apply_formant_cascade(std::span<const double> excitation,
                                          std::span<const formant_frame> frames,
                                          double sample_rate_hz) {
  expects(excitation.size() == frames.size(),
          "apply_formant_cascade: excitation/frames size mismatch");
  expects(sample_rate_hz > 0.0,
          "apply_formant_cascade: sample rate must be > 0");

  std::array<resonator, num_formants> bank;
  std::vector<double> out(excitation.size());
  for (std::size_t n = 0; n < excitation.size(); ++n) {
    double v = excitation[n];
    const formant_frame& f = frames[n];
    for (std::size_t k = 0; k < num_formants; ++k) {
      // Skip resonators parked above Nyquist (narrow-band capture rates).
      if (f.freq_hz[k] < 0.49 * sample_rate_hz) {
        v = bank[k].process(v, f.freq_hz[k], f.bandwidth_hz[k], sample_rate_hz);
      }
    }
    out[n] = v;
  }
  return out;
}

}  // namespace ivc::synth
