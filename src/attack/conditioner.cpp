#include "attack/conditioner.h"

#include <algorithm>

#include "audio/ops.h"
#include "common/error.h"
#include "dsp/biquad.h"
#include "dsp/fir.h"
#include "dsp/resample.h"
#include "dsp/window.h"

namespace ivc::attack {

audio::buffer condition_command(const audio::buffer& command,
                                const conditioner_config& config) {
  audio::validate(command, "condition_command");
  expects(config.voice_bandwidth_hz > 200.0,
          "condition_command: bandwidth must exceed 200 Hz");
  expects(config.voice_bandwidth_hz < command.sample_rate_hz / 2.0,
          "condition_command: bandwidth must be below the input Nyquist");
  expects(config.output_rate_hz >= command.sample_rate_hz,
          "condition_command: output rate must be >= input rate");

  // Low-pass to the attack bandwidth (sharp linear-phase FIR).
  const std::size_t taps = ivc::dsp::kaiser_length_for_design(
      70.0, 0.15 * config.voice_bandwidth_hz, command.sample_rate_hz);
  const std::vector<double> lp = ivc::dsp::design_fir_lowpass(
      taps, config.voice_bandwidth_hz, command.sample_rate_hz,
      ivc::dsp::window_kind::kaiser,
      ivc::dsp::kaiser_beta_for_attenuation(70.0));
  std::vector<double> filtered =
      ivc::dsp::filter_zero_delay(command.samples, lp);

  // High-pass rumble removal (4th order: rumble wastes modulation depth
  // and must be well under the voice floor).
  if (config.highpass_hz > 0.0) {
    const ivc::dsp::iir_cascade hp = ivc::dsp::butterworth_highpass(
        4, config.highpass_hz, command.sample_rate_hz);
    filtered = hp.process(filtered);
  }

  // Upsample to the ultrasound synthesis rate. The signal is already
  // band-limited to voice_bandwidth, so the interpolation filter can use
  // the whole gap up to Nyquist as transition band (much shorter filter).
  const double nyquist = command.sample_rate_hz / 2.0;
  const double transition_fraction = std::clamp(
      0.85 * (nyquist - config.voice_bandwidth_hz) / nyquist, 0.05, 0.6);
  audio::buffer up{
      ivc::dsp::resample(filtered, command.sample_rate_hz,
                         config.output_rate_hz, 80.0, transition_fraction),
      config.output_rate_hz};
  return audio::normalize_peak(up, config.target_peak);
}

}  // namespace ivc::attack
