#include "attack/modulator.h"

#include <cmath>

#include "audio/ops.h"
#include "common/constants.h"
#include "common/error.h"
#include "dsp/biquad.h"
#include "dsp/resample.h"

namespace ivc::attack {
namespace {

void check_modulator(const audio::buffer& baseband,
                     const modulator_config& config) {
  audio::validate(baseband, "modulator");
  expects(config.carrier_hz > 20'000.0,
          "modulator: carrier must be ultrasonic (> 20 kHz)");
  expects(config.carrier_hz < baseband.sample_rate_hz / 2.0,
          "modulator: carrier must be below Nyquist");
  expects(config.carrier_level >= 0.0 && config.depth_level > 0.0 &&
              config.carrier_level + config.depth_level <= 1.0 + 1e-9,
          "modulator: carrier_level + depth_level must be in (0, 1]");
}

}  // namespace

audio::buffer am_modulate(const audio::buffer& baseband,
                          const modulator_config& config) {
  check_modulator(baseband, config);
  const double w = two_pi * config.carrier_hz / baseband.sample_rate_hz;
  std::vector<double> out(baseband.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double envelope =
        config.carrier_level + config.depth_level * baseband.samples[i];
    out[i] = envelope * std::cos(w * static_cast<double>(i));
  }
  return audio::buffer{std::move(out), baseband.sample_rate_hz};
}

audio::buffer dsb_sc_modulate(const audio::buffer& baseband,
                              const modulator_config& config) {
  check_modulator(baseband, config);
  const double w = two_pi * config.carrier_hz / baseband.sample_rate_hz;
  std::vector<double> out(baseband.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = config.depth_level * baseband.samples[i] *
             std::cos(w * static_cast<double>(i));
  }
  return audio::buffer{std::move(out), baseband.sample_rate_hz};
}

audio::buffer carrier_tone(const audio::buffer& like,
                           const modulator_config& config) {
  check_modulator(like, config);
  const double w = two_pi * config.carrier_hz / like.sample_rate_hz;
  std::vector<double> out(like.size());
  const double level = config.carrier_level > 0.0 ? config.carrier_level : 1.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = level * std::cos(w * static_cast<double>(i));
  }
  return audio::buffer{std::move(out), like.sample_rate_hz};
}

audio::buffer square_law_demodulate(const audio::buffer& drive,
                                    double voice_bandwidth_hz,
                                    double capture_rate_hz) {
  audio::validate(drive, "square_law_demodulate");
  expects(voice_bandwidth_hz > 0.0 &&
              voice_bandwidth_hz < capture_rate_hz / 2.0,
          "square_law_demodulate: bandwidth must be in (0, capture/2)");
  expects(capture_rate_hz <= drive.sample_rate_hz,
          "square_law_demodulate: capture rate must be <= drive rate");

  std::vector<double> squared(drive.size());
  for (std::size_t i = 0; i < drive.size(); ++i) {
    squared[i] = drive.samples[i] * drive.samples[i];
  }
  const ivc::dsp::iir_cascade lp = ivc::dsp::butterworth_lowpass(
      6, voice_bandwidth_hz, drive.sample_rate_hz);
  std::vector<double> filtered = lp.process(squared);
  if (capture_rate_hz != drive.sample_rate_hz) {
    filtered =
        ivc::dsp::resample(filtered, drive.sample_rate_hz, capture_rate_hz);
  }
  audio::buffer out{std::move(filtered), capture_rate_hz};
  return audio::remove_dc(out);
}

}  // namespace ivc::attack
