// Ultrasound modulation (the attack algorithm's "Ultrasound Modulation"
// and "Carrier Wave Addition" steps).
//
// Monolithic AM, one speaker:  s(t) = n₂·(depth·m(t) + 1)·cos(2πf_c t)
// — the short-range attack of the prior work. The victim microphone's
// a₂·s² term demodulates this to depth·m(t) (+ DC + m² trace + ≥2f_c
// terms the anti-alias filter removes).
#pragma once

#include "audio/buffer.h"

namespace ivc::attack {

struct modulator_config {
  double carrier_hz = 40'000.0;
  // Fraction of full scale given to the carrier vs. the sideband;
  // carrier_level + depth_level must be <= 1 to avoid clipping.
  double carrier_level = 0.5;
  double depth_level = 0.5;
};

// Full AM drive signal (carrier + modulated sidebands), peak <= 1.
// `baseband` must be a conditioned command (|m| <= 1, high rate).
audio::buffer am_modulate(const audio::buffer& baseband,
                          const modulator_config& config = {});

// Double-sideband suppressed-carrier: only m(t)·cos(2πf_c t). The split
// rig transmits the carrier from a separate speaker, so its sideband
// speakers use suppressed-carrier chunks.
audio::buffer dsb_sc_modulate(const audio::buffer& baseband,
                              const modulator_config& config = {});

// A bare carrier tone at the modulator's level, same length/rate as
// `like` — the dedicated carrier-speaker drive of the split rig.
audio::buffer carrier_tone(const audio::buffer& like,
                           const modulator_config& config = {});

// Software demodulation reference: what an ideal square-law receiver
// recovers from `drive` (square, low-pass at `voice_bandwidth_hz`,
// decimate to `capture_rate_hz`, DC-removed). Useful for analyzing attack
// signals without a microphone model in the loop.
audio::buffer square_law_demodulate(const audio::buffer& drive,
                                    double voice_bandwidth_hz,
                                    double capture_rate_hz);

}  // namespace ivc::attack
