#include "attack/planner.h"

#include <cmath>

#include "audio/ops.h"
#include "common/error.h"
#include "dsp/biquad.h"

namespace ivc::attack {
namespace {

// Drives ramp in/out over 40 ms: an abruptly keyed carrier splatters
// broadband energy across the audible range (a click), defeating the
// whole point of the rig. Real attack hardware ramps for the same reason.
constexpr double drive_fade_s = 0.04;

audio::buffer faded(audio::buffer drive) {
  return audio::fade(drive, drive_fade_s, drive_fade_s);
}

}  // namespace

audio::buffer apply_trace_cancellation(const audio::buffer& baseband,
                                       const modulator_config& modulator,
                                       const cancellation_config& cancel) {
  audio::validate(baseband, "apply_trace_cancellation");
  expects(cancel.accuracy >= 0.0 && cancel.accuracy <= 1.0,
          "trace cancellation: accuracy must be in [0, 1]");
  expects(modulator.carrier_level > 0.0,
          "trace cancellation: needs a nonzero carrier level");
  if (cancel.accuracy == 0.0) {
    return baseband;
  }

  // The microphone will demodulate a₂A²(c·d·m + d²m²/2). Everything that
  // lands in the trace band B (sub-~120 Hz) incriminates the attacker:
  // the (d/2c)·B(m²) squared-envelope term *and* the command's own
  // residual B(m) content. A perfectly informed attacker transmits
  //   m' = m − B(m) − (d/2c)·B(m²),
  // zeroing the band to first order; `accuracy` scales how much of that
  // correction the attacker gets right (channel/phase knowledge).
  const double d = modulator.depth_level;
  const double c = modulator.carrier_level;
  std::vector<double> m2(baseband.size());
  for (std::size_t i = 0; i < baseband.size(); ++i) {
    m2[i] = baseband.samples[i] * baseband.samples[i];
  }
  // Zero-phase extraction: the correction must subtract *in phase* with
  // the content it cancels.
  const ivc::dsp::iir_cascade lp = ivc::dsp::butterworth_lowpass(
      2, cancel.trace_band_hz, baseband.sample_rate_hz);
  const std::vector<double> trace_sq = lp.process_zero_phase(m2);
  const std::vector<double> trace_lin = lp.process_zero_phase(baseband.samples);

  audio::buffer out = baseband;
  const double k = cancel.accuracy * d / (2.0 * c);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.samples[i] -=
        cancel.accuracy * trace_lin[i] + k * trace_sq[i];
  }
  return out;
}

rig_config long_range_rig() {
  rig_config cfg;
  cfg.mode = rig_mode::split_array;
  cfg.modulator.carrier_hz = 40'000.0;
  cfg.splitter.num_chunks = 16;
  cfg.transducers_per_element = 3;
  cfg.total_power_w = 120.0;
  cfg.carrier_power_fraction = 0.4;
  return cfg;
}

rig_config monolithic_rig(double power_w) {
  rig_config cfg;
  cfg.mode = rig_mode::monolithic;
  cfg.modulator.carrier_hz = 30'000.0;
  cfg.element = acoustics::hifi_horn_tweeter();
  cfg.total_power_w = power_w;
  return cfg;
}

rig_config portable_rig() {
  rig_config cfg;
  cfg.mode = rig_mode::monolithic;
  cfg.modulator.carrier_hz = 25'000.0;
  acoustics::speaker_params element;
  element.sensitivity_db_spl = 102.0;  // coin-sized 25 kHz transducer
  element.rated_power_w = 2.0;
  element.max_power_w = 3.0;
  element.band_low_hz = 20'000.0;
  element.band_high_hz = 45'000.0;
  element.nonlin_a2 = 0.05;
  element.nonlin_a3 = 0.01;
  cfg.element = element;
  cfg.total_power_w = 1.5;
  return cfg;
}

audio::buffer condition_for_rig(const audio::buffer& command,
                                const rig_config& config) {
  return condition_command(command, config.conditioner);
}

attack_rig build_attack_rig(const audio::buffer& command,
                            const rig_config& config,
                            const acoustics::vec3& origin) {
  return assemble_attack_rig(condition_for_rig(command, config), config,
                             origin);
}

attack_rig assemble_attack_rig(const audio::buffer& conditioned,
                               const rig_config& config,
                               const acoustics::vec3& origin) {
  expects(config.total_power_w > 0.0,
          "build_attack_rig: total power must be > 0");
  expects(config.carrier_power_fraction > 0.0 &&
              config.carrier_power_fraction < 1.0,
          "build_attack_rig: carrier power fraction must be in (0, 1)");
  expects(config.transducers_per_element >= 1,
          "build_attack_rig: need at least one transducer per element");

  attack_rig rig;
  rig.config = config;

  // Optionally pre-distort the conditioned baseband for trace
  // cancellation.
  audio::buffer baseband = conditioned;
  if (config.cancellation.has_value() &&
      config.cancellation->accuracy > 0.0) {
    baseband = apply_trace_cancellation(baseband, config.modulator,
                                        *config.cancellation);
  }
  rig.conditioned_baseband = baseband;

  // A stack of n coherently driven transducers behaves like one element
  // with +20·log10(n) sensitivity at n-fold power ratings.
  acoustics::speaker_params element = config.element;
  if (config.transducers_per_element > 1) {
    const auto n = static_cast<double>(config.transducers_per_element);
    element.sensitivity_db_spl += 20.0 * std::log10(n);
    element.rated_power_w *= n;
    element.max_power_w *= n;
  }

  if (config.mode == rig_mode::monolithic) {
    expects(config.total_power_w <= element.max_power_w,
            "build_attack_rig: monolithic power exceeds the driver rating");
    acoustics::array_element el;
    el.speaker = element;
    el.drive = faded(am_modulate(baseband, config.modulator));
    el.input_power_w = config.total_power_w;
    el.position = origin;
    rig.array.add_element(std::move(el));
    rig.num_speakers = 1;
    return rig;
  }

  // Split array: carrier speaker + one speaker per chunk, in a line
  // centered on the origin.
  splitter_config split_cfg = config.splitter;
  split_cfg.carrier_hz = config.modulator.carrier_hz;
  const split_plan plan = split_spectrum(baseband, split_cfg);

  const std::size_t n_elements = plan.chunk_drives.size() + 1;
  const double carrier_power =
      config.total_power_w * config.carrier_power_fraction;
  const double chunk_power =
      config.total_power_w * (1.0 - config.carrier_power_fraction) /
      static_cast<double>(plan.chunk_drives.size());
  expects(carrier_power <= element.max_power_w &&
              chunk_power <= element.max_power_w,
          "build_attack_rig: per-element power exceeds the driver rating");

  auto element_position = [&](std::size_t index) {
    const double offset =
        (static_cast<double>(index) -
         static_cast<double>(n_elements - 1) / 2.0) *
        config.element_spacing_m;
    return acoustics::vec3{origin.x + offset, origin.y, origin.z};
  };

  acoustics::array_element carrier_el;
  carrier_el.speaker = element;
  carrier_el.drive = faded(plan.carrier_drive);
  carrier_el.input_power_w = carrier_power;
  carrier_el.position = element_position(0);
  rig.array.add_element(std::move(carrier_el));

  for (std::size_t k = 0; k < plan.chunk_drives.size(); ++k) {
    acoustics::array_element el;
    el.speaker = element;
    el.drive = faded(plan.chunk_drives[k]);
    el.input_power_w = chunk_power;
    el.position = element_position(k + 1);
    rig.array.add_element(std::move(el));
  }
  rig.num_speakers = n_elements;
  return rig;
}

}  // namespace ivc::attack
