// Spectrum splitting — the long-range attack's core idea.
//
// A monolithic AM transmission leaks because the *speaker's* non-linearity
// cross-multiplies the carrier with the full 4 kHz-wide sideband,
// radiating an audible shadow of the command right at the rig. The
// splitter removes every wideband cross-product from each driver:
//
//   * the carrier tone goes to its own speaker (a pure tone squares to DC
//     and 2f_c only — nothing audible);
//   * the voice baseband is partitioned into N narrow chunks; chunk k
//     (bandwidth W = B/N) is single-sideband-modulated to
//     [f_c + lo_k, f_c + hi_k] and played by speaker k alone. Squaring a
//     lone chunk produces difference products confined to [0, W] —
//     infrasonic or deep-bass content that sits far under the hearing
//     threshold (and under a tweeter's low-frequency response).
//
// Only in the air at the victim's microphone do carrier and chunks
// superpose; the mic's own a₂x² term then multiplies carrier × chunk and
// reassembles every chunk at its original voice frequency.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/buffer.h"

namespace ivc::attack {

struct chunk_band {
  double low_hz = 0.0;   // in baseband (voice) frequency
  double high_hz = 0.0;
};

struct splitter_config {
  std::size_t num_chunks = 16;
  double carrier_hz = 40'000.0;
  double voice_low_hz = 100.0;      // bottom of the split band
  double voice_high_hz = 4'000.0;   // top of the split band
  // Raised-cosine transition between adjacent chunks, as a fraction of
  // the chunk width (adjacent chunks crossfade, so the sum reconstructs
  // the full band).
  double transition_fraction = 0.15;
};

struct split_plan {
  // One drive per chunk speaker (single-sideband at the carrier), peak-
  // normalized jointly so relative chunk levels are preserved.
  std::vector<audio::buffer> chunk_drives;
  // The dedicated carrier drive (pure tone, full scale).
  audio::buffer carrier_drive;
  std::vector<chunk_band> bands;
  double carrier_hz = 0.0;
};

// Splits a conditioned baseband (|m| <= 1, high rate) into the plan.
// Chunks partition [voice_low_hz, voice_high_hz] equally.
split_plan split_spectrum(const audio::buffer& baseband,
                          const splitter_config& config = {});

// Reconstruction check: sums the chunk basebands (before modulation) and
// returns them as one buffer — tests verify this matches the band-passed
// input. Exposed mainly for validation.
audio::buffer sum_of_chunks_baseband(const audio::buffer& baseband,
                                     const splitter_config& config = {});

}  // namespace ivc::attack
