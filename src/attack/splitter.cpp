#include "attack/splitter.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft_plan.h"

namespace ivc::attack {
namespace {

void check_config(const audio::buffer& baseband,
                  const splitter_config& config) {
  audio::validate(baseband, "split_spectrum");
  expects(config.num_chunks >= 1, "split_spectrum: need at least one chunk");
  expects(config.voice_low_hz >= 0.0 &&
              config.voice_high_hz > config.voice_low_hz,
          "split_spectrum: need 0 <= low < high");
  expects(config.carrier_hz > 20'000.0,
          "split_spectrum: carrier must be ultrasonic");
  expects(config.carrier_hz + config.voice_high_hz <
              baseband.sample_rate_hz / 2.0,
          "split_spectrum: carrier + bandwidth must fit below Nyquist");
  expects(config.transition_fraction >= 0.0 &&
              config.transition_fraction < 0.5,
          "split_spectrum: transition fraction must be in [0, 0.5)");
}

// Crossfading chunk mask: adjacent masks sum to 1 across the shared
// transition, so the chunk ensemble reconstructs the band exactly.
double chunk_mask(double f, double lo, double hi, double tw) {
  if (tw <= 0.0) {
    return (f >= lo && f < hi) ? 1.0 : 0.0;
  }
  // Rising edge centered at lo, falling edge centered at hi.
  if (f < lo - tw / 2.0 || f >= hi + tw / 2.0) {
    return 0.0;
  }
  if (f < lo + tw / 2.0) {
    const double t = (f - (lo - tw / 2.0)) / tw;
    return 0.5 * (1.0 - std::cos(pi * t));
  }
  if (f >= hi - tw / 2.0) {
    const double t = ((hi + tw / 2.0) - f) / tw;
    return 0.5 * (1.0 - std::cos(pi * t));
  }
  return 1.0;
}

std::vector<chunk_band> make_bands(const splitter_config& config) {
  std::vector<chunk_band> bands(config.num_chunks);
  const double width = (config.voice_high_hz - config.voice_low_hz) /
                       static_cast<double>(config.num_chunks);
  for (std::size_t k = 0; k < config.num_chunks; ++k) {
    bands[k].low_hz = config.voice_low_hz + width * static_cast<double>(k);
    bands[k].high_hz = bands[k].low_hz + width;
  }
  return bands;
}

}  // namespace

split_plan split_spectrum(const audio::buffer& baseband,
                          const splitter_config& config) {
  check_config(baseband, config);
  const double fs = baseband.sample_rate_hz;
  const std::size_t len = baseband.size();
  const std::size_t n = ivc::dsp::next_pow2(len);

  // Analytic spectrum of the baseband (positive frequencies doubled):
  // the forward transform only needs the nonnegative half, which the
  // planned packed real FFT computes directly.
  const auto fft = ivc::dsp::get_fft_plan(n);
  std::vector<ivc::dsp::cplx> spec(n, ivc::dsp::cplx{0.0, 0.0});
  std::vector<double> padded(n, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    padded[i] = baseband.samples[i];
  }
  fft->rfft(padded, spec);
  for (std::size_t i = 1; i < n / 2; ++i) {
    spec[i] *= 2.0;
  }

  const std::vector<chunk_band> bands = make_bands(config);
  const double chunk_width = bands.front().high_hz - bands.front().low_hz;
  const double tw = config.transition_fraction * chunk_width;
  const double w_carrier = two_pi * config.carrier_hz / fs;

  split_plan plan;
  plan.bands = bands;
  plan.carrier_hz = config.carrier_hz;

  std::vector<ivc::dsp::cplx> chunk_spec(n);
  double global_peak = 0.0;
  for (const chunk_band& band : bands) {
    for (std::size_t i = 0; i <= n / 2; ++i) {
      const double f = ivc::dsp::bin_frequency_hz(i, n, fs);
      chunk_spec[i] = spec[i] * chunk_mask(f, band.low_hz, band.high_hz, tw);
    }
    std::fill(chunk_spec.begin() + static_cast<std::ptrdiff_t>(n / 2 + 1),
              chunk_spec.end(), ivc::dsp::cplx{0.0, 0.0});
    std::vector<ivc::dsp::cplx> analytic = chunk_spec;
    fft->inverse(analytic);

    // Single-sideband shift to the carrier: Re{ã(t)·e^{jω_c t}}.
    std::vector<double> drive(len);
    for (std::size_t i = 0; i < len; ++i) {
      const double phase = w_carrier * static_cast<double>(i);
      drive[i] = analytic[i].real() * std::cos(phase) -
                 analytic[i].imag() * std::sin(phase);
      global_peak = std::max(global_peak, std::abs(drive[i]));
    }
    plan.chunk_drives.emplace_back(std::move(drive), fs);
  }

  // Joint normalization preserves relative chunk levels.
  if (global_peak > 1e-12) {
    const double g = 0.95 / global_peak;
    for (audio::buffer& b : plan.chunk_drives) {
      for (double& v : b.samples) {
        v *= g;
      }
    }
  }

  // Dedicated carrier drive, full scale.
  std::vector<double> carrier(len);
  for (std::size_t i = 0; i < len; ++i) {
    carrier[i] = std::cos(w_carrier * static_cast<double>(i));
  }
  plan.carrier_drive = audio::buffer{std::move(carrier), fs};
  return plan;
}

audio::buffer sum_of_chunks_baseband(const audio::buffer& baseband,
                                     const splitter_config& config) {
  check_config(baseband, config);
  const double fs = baseband.sample_rate_hz;
  const std::size_t len = baseband.size();
  const std::size_t n = ivc::dsp::next_pow2(len);

  // The mask is real and even in frequency, so the filtered signal stays
  // real: run the planned half-spectrum round trip.
  const auto plan = ivc::dsp::get_fft_plan(n);
  const std::size_t bins = plan->num_real_bins();
  std::vector<double> padded(n, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    padded[i] = baseband.samples[i];
  }
  std::vector<ivc::dsp::cplx> spec(bins);
  plan->rfft(padded, spec);

  const std::vector<chunk_band> bands = make_bands(config);
  const double chunk_width = bands.front().high_hz - bands.front().low_hz;
  const double tw = config.transition_fraction * chunk_width;

  for (std::size_t i = 0; i < bins; ++i) {
    const double f = static_cast<double>(i) * fs / static_cast<double>(n);
    double mask = 0.0;
    for (const chunk_band& band : bands) {
      mask += chunk_mask(f, band.low_hz, band.high_hz, tw);
    }
    spec[i] *= std::min(mask, 1.0);
  }
  std::vector<ivc::dsp::cplx> work(plan->workspace_size());
  plan->irfft(spec, padded, work);
  std::vector<double> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = padded[i];
  }
  return audio::buffer{std::move(out), fs};
}

}  // namespace ivc::attack
