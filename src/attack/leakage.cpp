#include "attack/leakage.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "dsp/spectrum.h"

namespace ivc::attack {
namespace {

double band_spl_db(const audio::buffer& pressure, double lo, double hi) {
  const double nyquist = pressure.sample_rate_hz / 2.0;
  const double power = ivc::dsp::band_power(
      pressure.samples, pressure.sample_rate_hz, lo, std::min(hi, nyquist));
  const double p0_sq = ivc::reference_pressure_pa * ivc::reference_pressure_pa;
  return ivc::power_to_db(power / p0_sq);
}

}  // namespace

leakage_report measure_leakage(const acoustics::speaker_array& rig,
                               const acoustics::vec3& bystander,
                               const acoustics::air_model& air) {
  const audio::buffer field = rig.render_at(bystander, air);
  const audio::buffer field_linear = rig.render_at_linear(bystander, air);

  leakage_report report;
  report.audibility = analyze_audibility(field);
  report.voice_band_spl_db = band_spl_db(field, 300.0, 3'400.0);
  report.low_band_spl_db = band_spl_db(field, 10.0, 120.0);
  report.ultrasound_spl_db =
      band_spl_db(field, 20'000.0, field.sample_rate_hz / 2.0);

  const double audible_nl = band_spl_db(field, 20.0, 16'000.0);
  const double audible_lin = band_spl_db(field_linear, 20.0, 16'000.0);
  report.nonlinear_excess_db = audible_nl - audible_lin;
  return report;
}

chunk_band predicted_chunk_leakage_band(const chunk_band& band) {
  return chunk_band{0.0, band.high_hz - band.low_hz};
}

}  // namespace ivc::attack
