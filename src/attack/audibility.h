// Human-audibility analysis of a pressure field.
//
// This is the referee for the paper's "inaudible" claim: a signal is
// inaudible when, in every third-octave band of the audible range, its
// band SPL stays below the absolute threshold of hearing in quiet
// (Terhardt's approximation of the ISO 226 curve). The attack planner
// uses the worst-band margin as its leakage budget.
#pragma once

#include <vector>

#include "audio/buffer.h"

namespace ivc::attack {

// Absolute threshold of hearing in quiet at `freq_hz`, dB SPL
// (Terhardt 1979). Returns +inf outside [20 Hz, 20 kHz]: ultrasound and
// infrasound count as inaudible at any modelled level.
double hearing_threshold_db_spl(double freq_hz);

// IEC A-weighting at `freq_hz`, dB (0 dB at 1 kHz).
double a_weighting_db(double freq_hz);

struct band_level {
  double center_hz = 0.0;
  double spl_db = 0.0;
  double threshold_db = 0.0;
  double margin_db = 0.0;  // spl - threshold; > 0 means audible
};

struct audibility_report {
  std::vector<band_level> bands;   // third-octave bands, 25 Hz .. 16 kHz
  double worst_margin_db = 0.0;    // max over bands (audibility headroom)
  double worst_band_hz = 0.0;
  double a_weighted_spl_db = 0.0;  // overall dBA of the audible content
  bool audible = false;            // worst_margin_db > 0
};

// Analyzes a pressure waveform (Pa) for audible content. Ultrasonic
// energy is excluded by the per-band thresholds.
audibility_report analyze_audibility(const audio::buffer& pressure_pa);

// Standard third-octave band centers from 25 Hz to 16 kHz.
const std::vector<double>& third_octave_centers_hz();

}  // namespace ivc::attack
