// Command conditioning: voice recording → modulation-ready baseband.
//
// Steps (the attack algorithm's "Low-Pass Filtering" and "Upsampling"):
// band-limit the command to the attack bandwidth (speech stays
// intelligible at 4 kHz; keeping the band narrow also keeps the modulated
// sidebands inside the speaker's response), then resample to the
// ultrasound synthesis rate and normalize.
#pragma once

#include "audio/buffer.h"

namespace ivc::attack {

struct conditioner_config {
  double voice_bandwidth_hz = 4'000.0;
  double output_rate_hz = 192'000.0;
  // Keep a little headroom below 1.0 so modulation cannot clip.
  double target_peak = 0.95;
  // Remove content below this (rumble does not help recognition but
  // wastes modulation depth).
  double highpass_hz = 80.0;
};

// Returns the conditioned baseband m(t) at the output rate, peak-
// normalized. Throws when the bandwidth exceeds the input's Nyquist.
audio::buffer condition_command(const audio::buffer& command,
                                const conditioner_config& config = {});

}  // namespace ivc::attack
