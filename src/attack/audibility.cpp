#include "attack/audibility.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/units.h"
#include "dsp/spectrum.h"

namespace ivc::attack {

double hearing_threshold_db_spl(double freq_hz) {
  if (freq_hz < 20.0 || freq_hz > 20'000.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double khz = freq_hz / 1'000.0;
  return 3.64 * std::pow(khz, -0.8) -
         6.5 * std::exp(-0.6 * (khz - 3.3) * (khz - 3.3)) +
         1e-3 * std::pow(khz, 4.0);
}

double a_weighting_db(double freq_hz) {
  expects(freq_hz > 0.0, "a_weighting_db: frequency must be > 0");
  const double f2 = freq_hz * freq_hz;
  const double num = 12194.0 * 12194.0 * f2 * f2;
  const double den = (f2 + 20.6 * 20.6) *
                     std::sqrt((f2 + 107.7 * 107.7) * (f2 + 737.9 * 737.9)) *
                     (f2 + 12194.0 * 12194.0);
  return 20.0 * std::log10(num / den) + 2.0;
}

const std::vector<double>& third_octave_centers_hz() {
  static const std::vector<double> centers = [] {
    std::vector<double> c;
    // Preferred numbers from 25 Hz to 16 kHz (ISO 266).
    const double base[] = {25.0, 31.5, 40.0, 50.0, 63.0, 80.0, 100.0, 125.0,
                           160.0, 200.0, 250.0, 315.0, 400.0, 500.0, 630.0,
                           800.0, 1000.0, 1250.0, 1600.0, 2000.0, 2500.0,
                           3150.0, 4000.0, 5000.0, 6300.0, 8000.0, 10000.0,
                           12500.0, 16000.0};
    c.assign(std::begin(base), std::end(base));
    return c;
  }();
  return centers;
}

audibility_report analyze_audibility(const audio::buffer& pressure_pa) {
  audio::validate(pressure_pa, "analyze_audibility");
  const ivc::dsp::psd_estimate psd =
      ivc::dsp::welch_psd(pressure_pa.samples, pressure_pa.sample_rate_hz);

  audibility_report report;
  report.worst_margin_db = -std::numeric_limits<double>::infinity();
  const double p0_sq = ivc::reference_pressure_pa * ivc::reference_pressure_pa;

  double a_weighted_power = 0.0;
  const double nyquist = pressure_pa.sample_rate_hz / 2.0;
  for (const double center : third_octave_centers_hz()) {
    const double lo = center / std::pow(2.0, 1.0 / 6.0);
    const double hi = center * std::pow(2.0, 1.0 / 6.0);
    if (lo >= nyquist) {
      break;
    }
    const double power = psd.band_power(lo, std::min(hi, nyquist));
    band_level band;
    band.center_hz = center;
    band.spl_db = ivc::power_to_db(power / p0_sq);
    band.threshold_db = hearing_threshold_db_spl(center);
    band.margin_db = band.spl_db - band.threshold_db;
    if (band.margin_db > report.worst_margin_db) {
      report.worst_margin_db = band.margin_db;
      report.worst_band_hz = center;
    }
    if (center <= 20'000.0) {
      a_weighted_power += power * ivc::db_to_power(a_weighting_db(center));
    }
    report.bands.push_back(band);
  }
  report.a_weighted_spl_db = ivc::power_to_db(a_weighted_power / p0_sq);
  report.audible = report.worst_margin_db > 0.0;
  return report;
}

}  // namespace ivc::attack
