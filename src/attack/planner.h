// Attack planner: voice command + rig configuration → ready-to-fire
// speaker array. Ties together conditioner, modulator / splitter, power
// allocation, and geometry.
#pragma once

#include <optional>

#include "acoustics/array.h"
#include "attack/conditioner.h"
#include "attack/modulator.h"
#include "attack/splitter.h"
#include "audio/buffer.h"

namespace ivc::attack {

enum class rig_mode {
  monolithic,   // single speaker, carrier + sidebands together (prior work)
  split_array,  // carrier speaker + N chunk speakers (the long-range attack)
};

// Sophisticated-attacker option: pre-distort the baseband so the v²(t)
// trace the microphone will create is (partially) cancelled. `accuracy`
// = 1 means perfect channel knowledge (full cancellation); 0 disables.
struct cancellation_config {
  double accuracy = 0.0;
  // Band that carries the compensation term (the trace's home).
  double trace_band_hz = 120.0;
};

struct rig_config {
  rig_mode mode = rig_mode::split_array;
  conditioner_config conditioner;
  modulator_config modulator;     // carrier/depth levels; carrier_hz is
                                  // taken from here for both modes
  splitter_config splitter;       // chunk layout (split mode)
  acoustics::speaker_params element = acoustics::ultrasonic_tweeter();
  double total_power_w = 25.0;
  // Split mode: fraction of total power given to the carrier speaker.
  double carrier_power_fraction = 0.4;
  // Element spacing in the line array, m.
  double element_spacing_m = 0.08;
  // Transducers stacked per array element, driven coherently: n stacked
  // drivers add +20·log10(n) of on-axis level at n× the electrical power.
  // This is how the paper's 61-transducer rig maps onto the model: one
  // carrier stack plus one stack per chunk.
  std::size_t transducers_per_element = 1;
  std::optional<cancellation_config> cancellation;
};

// The long-range configuration: 40 kHz carrier, 16 chunk stacks of 3
// transducers plus a carrier stack (49 transducers total), 120 W budget.
rig_config long_range_rig();

// The short-range prior-work configuration: one tweeter, 30 kHz AM.
rig_config monolithic_rig(double power_w = 18.7);

// The pocket configuration (DolphinAttack-style): a single small
// ultrasonic transducer off a battery amplifier — centimeter-scale
// range, but silent and concealable.
rig_config portable_rig();

struct attack_rig {
  acoustics::speaker_array array;
  audio::buffer conditioned_baseband;  // after conditioning/cancellation
  rig_config config;
  std::size_t num_speakers = 0;
};

// Builds the rig for `command` (a voice-rate recording). The array is a
// line centered at `origin` along +x. Throws when the per-element power
// would exceed the driver rating. Equivalent to
// assemble_attack_rig(condition_for_rig(command, config), config, origin).
attack_rig build_attack_rig(const audio::buffer& command,
                            const rig_config& config,
                            const acoustics::vec3& origin = {});

// The two stages of build_attack_rig, exposed separately so adaptive-
// attacker sweeps can re-assemble a rig at a new cancellation setting
// without re-conditioning the command: conditioning depends only on the
// conditioner config, while cancellation/modulation/splitting and array
// assembly depend on the rest of the rig config.
audio::buffer condition_for_rig(const audio::buffer& command,
                                const rig_config& config);
attack_rig assemble_attack_rig(const audio::buffer& conditioned,
                               const rig_config& config,
                               const acoustics::vec3& origin = {});

// Applies the trace-cancellation pre-distortion to a conditioned
// baseband (exposed for the adaptive-attacker experiments).
audio::buffer apply_trace_cancellation(const audio::buffer& baseband,
                                       const modulator_config& modulator,
                                       const cancellation_config& cancel);

}  // namespace ivc::attack
