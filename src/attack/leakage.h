// Leakage analysis: how much audible sound does the attack rig itself
// radiate at a bystander's position?
#pragma once

#include "acoustics/array.h"
#include "attack/audibility.h"
#include "attack/splitter.h"

namespace ivc::attack {

struct leakage_report {
  // Full audibility analysis of the rig's field at the bystander.
  audibility_report audibility;
  // SPL of the demodulated-shadow band (300–3400 Hz) — the intelligible
  // leakage the paper's measurements track.
  double voice_band_spl_db = 0.0;
  // SPL of everything below 120 Hz — where split-chunk self-products land.
  double low_band_spl_db = 0.0;
  // Ultrasonic SPL (> 20 kHz), for reference; inaudible by definition.
  double ultrasound_spl_db = 0.0;
  // Extra diagnostic: leakage attributable to speaker non-linearity,
  // i.e. the audible-band SPL difference between the non-linear and
  // linearized renderings.
  double nonlinear_excess_db = 0.0;
};

// Renders the rig's field at `bystander` and analyzes audibility.
leakage_report measure_leakage(const acoustics::speaker_array& rig,
                               const acoustics::vec3& bystander,
                               const acoustics::air_model& air);

// The band where a lone SSB chunk's second-order self-products land:
// [0, chunk width]. Narrower chunks push leakage toward DC — the design
// insight behind the multi-speaker rig.
chunk_band predicted_chunk_leakage_band(const chunk_band& band);

}  // namespace ivc::attack
