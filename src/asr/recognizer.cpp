#include "asr/recognizer.h"

#include <cmath>
#include <limits>

#include "audio/metrics.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"

namespace ivc::asr {
namespace {

// Deterministic dither: a fixed-seed noise stream scaled to the
// configured SNR below the buffer's RMS. Makes matching conditions for
// digitally-clean templates and noisy captures comparable.
audio::buffer dithered(const audio::buffer& input, double snr_db) {
  const double rms = audio::rms(input.samples);
  if (rms <= 1e-12) {
    return input;
  }
  const double noise_rms = rms * ivc::db_to_amplitude(-snr_db);
  ivc::rng rng{0xd17e'd17eULL};
  audio::buffer out = input;
  for (double& v : out.samples) {
    v += rng.normal(0.0, noise_rms);
  }
  return out;
}

}  // namespace

recognizer::recognizer(recognizer_config config) : config_{config} {
  expects(config_.rejection_threshold > 0.0,
          "recognizer: rejection threshold must be > 0");
  expects(config_.min_margin >= 0.0,
          "recognizer: min margin must be >= 0");
}

feature_matrix recognizer::features_of(const audio::buffer& input) const {
  const audio::buffer trimmed =
      config_.trim_with_vad ? trim_to_activity(input, config_.vad) : input;
  return features_from_trimmed(trimmed);
}

feature_matrix recognizer::features_from_trimmed(
    const audio::buffer& trimmed) const {
  // extract_mfcc reuses a per-thread cached mfcc_extractor keyed on
  // (config, rate): the serving batch path — many recognitions per
  // worker claim, all at one device rate — never re-derives the
  // filterbank/window/DCT bases, and the cache being thread-local is
  // what keeps this const method safe under concurrent callers.
  if (config_.dither_snr_db > 0.0) {
    return extract_mfcc(dithered(trimmed, config_.dither_snr_db),
                        config_.mfcc);
  }
  return extract_mfcc(trimmed, config_.mfcc);
}

void recognizer::add_template(const std::string& command_id,
                              const audio::buffer& clean) {
  expects(!command_id.empty(), "recognizer::add_template: empty command id");
  templates_.push_back(entry{command_id, features_of(clean)});
}

recognition_result recognizer::recognize(const audio::buffer& capture) const {
  expects(!templates_.empty(), "recognizer::recognize: no templates loaded");
  recognition_result result;
  result.best_distance = std::numeric_limits<double>::infinity();
  result.margin = 0.0;

  // Reject captures with essentially no signal up front.
  if (audio::peak(capture.samples) < 1e-6) {
    return result;
  }
  const audio::buffer trimmed =
      config_.trim_with_vad ? trim_to_activity(capture, config_.vad) : capture;
  if (trimmed.duration_s() < 0.15) {
    return result;
  }
  // The duration gate already trimmed the capture; extract features from
  // that buffer instead of re-running the VAD from scratch.
  const feature_matrix features = features_from_trimmed(trimmed);

  double best = std::numeric_limits<double>::infinity();
  double second = std::numeric_limits<double>::infinity();
  const std::string* best_id = nullptr;
  for (const entry& e : templates_) {
    const double d = dtw_distance(features, e.features, config_.dtw);
    if (d < best) {
      if (best_id == nullptr || *best_id != e.command_id) {
        second = best;
      }
      best = d;
      best_id = &e.command_id;
    } else if (d < second && (best_id == nullptr || *best_id != e.command_id)) {
      second = d;
    }
  }

  result.best_distance = best;
  result.margin = std::isinf(second) ? best : second - best;
  const bool margin_ok =
      std::isinf(second) || result.margin >= config_.min_margin;
  if (best_id != nullptr && best <= config_.rejection_threshold && margin_ok) {
    result.command_id = *best_id;
  }
  return result;
}

}  // namespace ivc::asr
