// Intelligibility proxy: short-time band-envelope correlation between a
// clean reference and a degraded capture (a simplified STOI). Score in
// [0, 1]; ~1 for a clean copy, ~0 for unrelated noise. Used to score
// demodulated commands without running the full recognizer.
#pragma once

#include "audio/buffer.h"

namespace ivc::asr {

struct intelligibility_config {
  double frame_s = 0.025;
  double hop_s = 0.010;
  std::size_t num_bands = 15;
  double low_hz = 150.0;
  double high_hz = 4'500.0;
  // Maximum alignment slack between reference and capture.
  double max_lag_s = 0.25;
};

// Both buffers must share a sample rate. The capture may be longer than
// the reference; the best alignment within max_lag_s is used.
double intelligibility_score(const audio::buffer& reference,
                             const audio::buffer& capture,
                             const intelligibility_config& config = {});

}  // namespace ivc::asr
