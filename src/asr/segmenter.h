// Streaming utterance segmentation: the duration-gate VAD as an
// incremental stage.
//
// The batch VAD (vad.h) trims one capture around its loudest region; the
// serving pipeline instead consumes an unbounded block stream and must
// cut it into utterances on the fly. The segmenter accumulates samples
// into fixed-size energy frames and runs a small state machine over
// them: a frame whose RMS clears the activity floor opens an utterance
// (with a short pre-roll so onset consonants survive), `hang_s` of
// consecutive silence closes it, and `max_utterance_s` force-closes a
// stream that never goes quiet (the timeout). Utterances shorter than
// `min_utterance_s` are dropped — the duration gate that already fronts
// the recognizer.
//
// Determinism is load-bearing, exactly as for defense::stream_detector:
// frames are assembled from the concatenated sample stream at fixed
// sample counts, so the emitted utterance stream is a pure function of
// the sample sequence — bit-identical however the stream is chunked
// into feed() blocks (1-sample, odd, or whole-buffer blocks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "audio/buffer.h"
#include "common/json_min.h"

namespace ivc::asr {

struct segmenter_config {
  // Energy frame the activity decision is made on.
  double frame_s = 0.02;
  // A frame is active when its RMS clears this (digital full scale = 1).
  // The traffic streams separate utterances with digital silence while
  // ambient + mic noise rides inside the rendered parts, so the floor
  // sits well below ambient level and well above numeric dust.
  double activity_floor = 1e-5;
  // Consecutive silence that closes an utterance (must not exceed the
  // inter-utterance gaps of the workload).
  double hang_s = 0.10;
  // Pre/post-roll kept around the active region.
  double pad_s = 0.04;
  // Duration gate: shorter utterances are dropped, not emitted.
  double min_utterance_s = 0.15;
  // Timeout: activity longer than this force-closes (a stream that hums
  // forever must not buffer unboundedly or starve the recognizer).
  double max_utterance_s = 8.0;
};

// One segmented utterance: its bounds on the stream timeline plus the
// audio itself (pre/post-roll included).
struct utterance {
  double start_s = 0.0;
  double end_s = 0.0;
  audio::buffer samples;
};

class utterance_segmenter {
 public:
  explicit utterance_segmenter(segmenter_config config = {});

  // Feeds one stream block; returns the utterances completed by it.
  std::vector<utterance> feed(const audio::buffer& block);

  // Flushes the in-progress utterance (if any survives the duration
  // gate), then resets: the stream is over and the next feed() starts a
  // new one at t = 0.
  std::vector<utterance> finish();

  // Earliest stream time any utterance not yet emitted can start: the
  // open utterance's start when one is open, else the oldest held
  // pre-roll frame (a future utterance adopts the current pre-roll as
  // its onset padding). Consumers holding per-utterance state keyed by
  // stream time (the serving pipeline's verdict windows) must retain
  // everything at or after this point.
  double earliest_start_s() const;

  // True while no utterance is open. Consumers that checkpoint stream
  // state (the session's crash-recovery snapshots) only do so at idle
  // points: restoring a mid-utterance segmenter would re-emit the open
  // utterance a fail-closed flush already accounted for.
  bool idle() const { return !in_utterance_; }

  // Serializable stream state (the frame grid position, sub-frame
  // residue, pre-roll, and any open utterance — everything but the
  // config, which the owner reconstructs). restore(snapshot()) resumes
  // the cut stream bit-exactly under any later feed() chunking.
  json::value snapshot() const;
  void restore(const json::value& snap);

  void reset();

 private:
  // Consumes one complete frame sitting at the front of pending_.
  void consume_frame(std::vector<utterance>& out);
  // Closes the open utterance; emits it when it passes the gate.
  // `trailing_silent` frames at its end are trimmed back to the pad.
  void close_utterance(std::vector<utterance>& out,
                       std::size_t trailing_silent);

  segmenter_config config_;
  double rate_ = 0.0;
  std::size_t frame_samples_ = 0;
  std::vector<double> pending_;      // sub-frame residue of the stream
  std::uint64_t frames_consumed_ = 0;
  // Pre-roll: the most recent inactive frames, oldest first.
  std::vector<std::vector<double>> preroll_;
  // Open utterance state.
  bool in_utterance_ = false;
  std::uint64_t utterance_start_frame_ = 0;
  std::vector<double> utterance_;    // samples, pre-roll included
  std::size_t silent_run_ = 0;       // trailing silent frames so far
};

}  // namespace ivc::asr
