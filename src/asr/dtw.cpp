#include "asr/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"

namespace ivc::asr {
namespace {

double frame_distance(const double* a, const double* b, std::size_t dims) {
  double acc = 0.0;
  for (std::size_t k = 0; k < dims; ++k) {
    const double d = a[k] - b[k];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

double dtw_distance(const feature_matrix& a, const feature_matrix& b,
                    const dtw_config& config) {
  expects(a.num_frames() > 0 && b.num_frames() > 0,
          "dtw_distance: empty feature matrix");
  expects(a.dims() == b.dims(), "dtw_distance: feature dimension mismatch");
  expects(config.band_fraction > 0.0 && config.band_fraction <= 1.0,
          "dtw_distance: band fraction must be in (0, 1]");

  const std::size_t n = a.num_frames();
  const std::size_t m = b.num_frames();
  const auto band = std::max<std::ptrdiff_t>(
      static_cast<std::ptrdiff_t>(config.band_fraction *
                                  static_cast<double>(std::max(n, m))),
      static_cast<std::ptrdiff_t>(
          std::max(n, m) - std::min(n, m)) + 1);

  constexpr double inf = std::numeric_limits<double>::infinity();
  // Rolling two-row DP. cost[j] = best cost ending at (i, j).
  std::vector<double> prev(m + 1, inf);
  std::vector<double> cur(m + 1, inf);
  std::vector<double> prev_steps(m + 1, 0.0);
  std::vector<double> cur_steps(m + 1, 0.0);
  prev[0] = 0.0;

  // Contiguous row-major feature storage keeps the inner loop streaming
  // linearly: row i of `a` is fixed while the band walks rows of `b`.
  const std::size_t dims = a.dims();
  const double* a_data = a.data.data();
  const double* b_data = b.data.data();
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), inf);
    // Band limits for this row (diagonal ± band).
    const auto diag = static_cast<std::ptrdiff_t>(
        static_cast<double>(i) * static_cast<double>(m) /
        static_cast<double>(n));
    const std::size_t j_lo = static_cast<std::size_t>(
        std::max<std::ptrdiff_t>(1, diag - band));
    const std::size_t j_hi = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m), diag + band));
    const double* a_row = a_data + (i - 1) * dims;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double d = frame_distance(a_row, b_data + (j - 1) * dims, dims);
      // Transitions: match (diag), insertion, deletion.
      double best = prev[j - 1];
      double steps = prev_steps[j - 1];
      if (prev[j] < best) {
        best = prev[j];
        steps = prev_steps[j];
      }
      if (cur[j - 1] < best) {
        best = cur[j - 1];
        steps = cur_steps[j - 1];
      }
      if (best < inf) {
        cur[j] = best + d;
        cur_steps[j] = steps + 1.0;
      }
    }
    std::swap(prev, cur);
    std::swap(prev_steps, cur_steps);
  }

  if (prev[m] == inf) {
    return inf;
  }
  return prev[m] / std::max(1.0, prev_steps[m]);
}

}  // namespace ivc::asr
