#include "asr/intelligibility.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "asr/mel.h"
#include "common/error.h"
#include "dsp/correlate.h"
#include "dsp/fft_plan.h"
#include "dsp/window.h"

namespace ivc::asr {
namespace {

// Mel-spaced band energy envelopes: bands × frames.
std::vector<std::vector<double>> band_envelopes(
    const audio::buffer& b, const intelligibility_config& cfg) {
  const double fs = b.sample_rate_hz;
  const auto frame_len = static_cast<std::size_t>(cfg.frame_s * fs);
  const auto hop_len = static_cast<std::size_t>(cfg.hop_s * fs);
  const std::size_t fft_len = ivc::dsp::next_pow2(frame_len);
  const std::size_t num_bins = fft_len / 2 + 1;
  const double high = std::min(cfg.high_hz, 0.49 * fs);
  const mel_filterbank bank =
      make_mel_filterbank(cfg.num_bands, num_bins, fs, cfg.low_hz, high);
  const std::vector<double> win =
      ivc::dsp::make_periodic_window(ivc::dsp::window_kind::hann, frame_len);

  // Planned packed real transform over reused frame/power buffers.
  const auto plan = ivc::dsp::get_fft_plan(fft_len);
  std::vector<std::vector<double>> envelopes(cfg.num_bands);
  std::vector<double> windowed(fft_len, 0.0);  // tail stays zero-padded
  std::vector<ivc::dsp::cplx> bins(num_bins);
  std::vector<double> power(num_bins);
  std::vector<double> bands;
  for (std::size_t start = 0; start + frame_len <= b.size();
       start += hop_len) {
    for (std::size_t i = 0; i < frame_len; ++i) {
      windowed[i] = b.samples[start + i] * win[i];
    }
    plan->rfft(windowed, bins);
    for (std::size_t k = 0; k < num_bins; ++k) {
      power[k] = std::norm(bins[k]);
    }
    bank.apply_to(power, bands);
    for (std::size_t m = 0; m < cfg.num_bands; ++m) {
      envelopes[m].push_back(std::sqrt(std::max(0.0, bands[m])));
    }
  }
  return envelopes;
}

}  // namespace

double intelligibility_score(const audio::buffer& reference,
                             const audio::buffer& capture,
                             const intelligibility_config& config) {
  audio::validate(reference, "intelligibility_score");
  audio::validate(capture, "intelligibility_score");
  expects(reference.sample_rate_hz == capture.sample_rate_hz,
          "intelligibility_score: sample-rate mismatch");

  const auto ref_env = band_envelopes(reference, config);
  const auto cap_env = band_envelopes(capture, config);
  if (ref_env.front().empty() || cap_env.front().empty()) {
    return 0.0;
  }

  const auto max_lag_frames = static_cast<std::size_t>(
      std::max(1.0, config.max_lag_s / config.hop_s));

  // Correlate per band at the globally best envelope lag (estimated from
  // the broadband envelope), then average positive correlations.
  std::vector<double> ref_broad(ref_env.front().size(), 0.0);
  std::vector<double> cap_broad(cap_env.front().size(), 0.0);
  for (std::size_t m = 0; m < config.num_bands; ++m) {
    for (std::size_t t = 0; t < ref_broad.size(); ++t) {
      ref_broad[t] += ref_env[m][t];
    }
    for (std::size_t t = 0; t < cap_broad.size(); ++t) {
      cap_broad[t] += cap_env[m][t];
    }
  }
  const ivc::dsp::alignment align =
      ivc::dsp::best_alignment(cap_broad, ref_broad);
  const std::ptrdiff_t lag = std::clamp<std::ptrdiff_t>(
      align.lag, -static_cast<std::ptrdiff_t>(max_lag_frames),
      static_cast<std::ptrdiff_t>(max_lag_frames));

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t m = 0; m < config.num_bands; ++m) {
    // Align capture to reference: capture[t + lag] ~ reference[t].
    std::vector<double> r;
    std::vector<double> c;
    for (std::size_t t = 0; t < ref_env[m].size(); ++t) {
      const std::ptrdiff_t u = static_cast<std::ptrdiff_t>(t) + lag;
      if (u >= 0 && u < static_cast<std::ptrdiff_t>(cap_env[m].size())) {
        r.push_back(ref_env[m][t]);
        c.push_back(cap_env[m][static_cast<std::size_t>(u)]);
      }
    }
    if (r.size() < 8) {
      continue;
    }
    total += std::max(0.0, ivc::dsp::pearson_correlation(r, c));
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace ivc::asr
