// Energy-based voice activity detection, used to trim captures before
// recognition and to gate the streaming defense detector.
#pragma once

#include "audio/buffer.h"

namespace ivc::asr {

struct vad_config {
  double frame_s = 0.02;
  // Activity threshold relative to the buffer's peak frame energy, dB.
  double threshold_below_peak_db = 30.0;
  // Hangover: keep this many seconds around active regions.
  double margin_s = 0.1;
};

struct vad_result {
  double start_s = 0.0;
  double end_s = 0.0;
  bool any_activity = false;
};

// Finds the first..last active region of the buffer.
vad_result detect_activity(const audio::buffer& input,
                           const vad_config& config = {});

// Trims to the active region (returns the input unchanged when nothing is
// active, so downstream code always has samples to work with).
audio::buffer trim_to_activity(const audio::buffer& input,
                               const vad_config& config = {});

}  // namespace ivc::asr
