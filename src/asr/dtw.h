// Dynamic time warping over feature matrices.
#pragma once

#include <cstddef>

#include "asr/mfcc.h"

namespace ivc::asr {

struct dtw_config {
  // Sakoe–Chiba band half-width as a fraction of the longer sequence
  // (bounds the warp and cuts cost by ~4x).
  double band_fraction = 0.2;
};

// Path-length-normalized DTW distance between two feature matrices using
// Euclidean frame distance. Returns +inf when no path fits in the band
// (which cannot happen for band_fraction >= |len difference| / max_len).
double dtw_distance(const feature_matrix& a, const feature_matrix& b,
                    const dtw_config& config = {});

}  // namespace ivc::asr
