// MFCC feature extraction (the standard ASR front-end).
//
// Pipeline per frame: pre-emphasis → Hamming window → power spectrum →
// mel filterbank → log → DCT-II → liftering, plus Δ (delta) features and
// optional cepstral mean normalization. The recognizer's DTW distance
// operates on these vectors.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/buffer.h"

namespace ivc::asr {

struct mfcc_config {
  double frame_s = 0.025;
  double hop_s = 0.010;
  std::size_t num_filters = 26;
  std::size_t num_coeffs = 13;  // c0..c12
  double low_hz = 80.0;
  double high_hz = 7'000.0;     // clamped to fs/2 · 0.99 internally
  double pre_emphasis = 0.97;
  bool append_delta = true;
  bool cepstral_mean_norm = true;
  double lifter = 22.0;         // sinusoidal liftering parameter (0 = off)
  // Per-frame mel-energy floor relative to the frame's largest band.
  // Keeps empty bands (band-limited channels, silence) from dominating
  // cepstral distances through log(~0).
  double mel_floor_rel = 1e-2;
};

// One feature matrix: frames × dims (dims = num_coeffs · (1 + delta)).
struct feature_matrix {
  std::vector<std::vector<double>> frames;
  double hop_s = 0.010;

  std::size_t num_frames() const { return frames.size(); }
  std::size_t dims() const { return frames.empty() ? 0 : frames.front().size(); }
};

// Extracts MFCC (+Δ) features from a mono buffer.
feature_matrix extract_mfcc(const audio::buffer& input,
                            const mfcc_config& config = {});

}  // namespace ivc::asr
