// MFCC feature extraction (the standard ASR front-end).
//
// Pipeline per frame: pre-emphasis → Hamming window → power spectrum →
// mel filterbank → log → DCT-II → liftering, plus Δ (delta) features and
// optional cepstral mean normalization. The recognizer's DTW distance
// operates on these vectors.
//
// The per-utterance invariants (mel filterbank, analysis window, DCT-II
// basis, lifter weights, FFT plan) live in `mfcc_extractor`, which hot
// callers construct once and reuse; `extract_mfcc` keeps the one-call
// interface over a per-thread extractor cache.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "audio/buffer.h"

namespace ivc::asr {

struct mfcc_config {
  double frame_s = 0.025;
  double hop_s = 0.010;
  std::size_t num_filters = 26;
  std::size_t num_coeffs = 13;  // c0..c12
  double low_hz = 80.0;
  double high_hz = 7'000.0;     // clamped to fs/2 · 0.99 internally
  double pre_emphasis = 0.97;
  bool append_delta = true;
  bool cepstral_mean_norm = true;
  double lifter = 22.0;         // sinusoidal liftering parameter (0 = off)
  // Per-frame mel-energy floor relative to the frame's largest band.
  // Keeps empty bands (band-limited channels, silence) from dominating
  // cepstral distances through log(~0).
  double mel_floor_rel = 1e-2;

  bool operator==(const mfcc_config&) const = default;
};

// One feature matrix: frames × dims (dims = num_coeffs · (1 + delta)),
// stored contiguously row-major so frame-distance loops stream linearly
// through cache instead of chasing one heap block per frame.
struct feature_matrix {
  std::vector<double> data;  // row-major, num_frames() × dims()
  std::size_t num_dims = 0;
  double hop_s = 0.010;

  std::size_t num_frames() const {
    return num_dims == 0 ? 0 : data.size() / num_dims;
  }
  std::size_t dims() const { return num_dims; }

  // Row view of frame `i` (no bounds check beyond the data it owns).
  std::span<const double> frame(std::size_t i) const {
    return {data.data() + i * num_dims, num_dims};
  }

  // Appends one frame; the first push fixes dims(), later pushes must
  // match it.
  void push_frame(std::span<const double> row);
  void push_frame(std::initializer_list<double> row) {
    push_frame(std::span<const double>{row.begin(), row.size()});
  }
};

// Reusable extractor: precomputes everything that depends only on
// (config, sample rate) and owns the per-frame scratch buffers, so
// extraction performs no per-frame allocation and no per-utterance
// basis rebuilds.
class mfcc_extractor {
 public:
  mfcc_extractor(const mfcc_config& config, double sample_rate_hz);
  ~mfcc_extractor();

  mfcc_extractor(const mfcc_extractor&) = delete;
  mfcc_extractor& operator=(const mfcc_extractor&) = delete;

  const mfcc_config& config() const;
  double sample_rate_hz() const;
  bool matches(const mfcc_config& config, double sample_rate_hz) const;

  // Extracts MFCC (+Δ) features; input must be at this extractor's rate.
  feature_matrix extract(const audio::buffer& input) const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

// Extracts MFCC (+Δ) features from a mono buffer. Reuses a per-thread
// mfcc_extractor while consecutive calls share (config, sample rate) —
// the common case everywhere in the pipeline.
feature_matrix extract_mfcc(const audio::buffer& input,
                            const mfcc_config& config = {});

}  // namespace ivc::asr
