#include "asr/mfcc.h"

#include <algorithm>
#include <cmath>

#include "asr/mel.h"
#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft_plan.h"
#include "dsp/window.h"

namespace ivc::asr {

void feature_matrix::push_frame(std::span<const double> row) {
  expects(!row.empty(), "feature_matrix::push_frame: empty row");
  if (num_dims == 0) {
    num_dims = row.size();
  }
  expects(row.size() == num_dims,
          "feature_matrix::push_frame: row width mismatch");
  data.insert(data.end(), row.begin(), row.end());
}

// Everything that depends only on (config, sample rate), plus the
// scratch buffers the per-frame loop reuses. Scratch makes extract()
// non-reentrant; concurrent callers hold their own extractor (the
// extract_mfcc wrapper keeps one per thread).
struct mfcc_extractor::impl {
  mfcc_config config;
  double fs = 0.0;
  std::size_t frame_len = 0;
  std::size_t hop_len = 0;
  std::size_t fft_len = 0;
  std::size_t num_bins = 0;
  mel_filterbank bank;
  std::vector<double> window;
  // DCT-II basis rows (num_coeffs × num_filters) and the shared
  // sqrt(2/n) scale, applied after accumulation exactly like the
  // on-the-fly version so coefficients match bit for bit.
  std::vector<double> dct_basis;
  double dct_scale = 0.0;
  std::vector<double> lifter_weights;  // num_coeffs, [0] unused
  std::shared_ptr<const ivc::dsp::fft_plan> plan;

  mutable std::vector<double> pre;       // pre-emphasized signal
  mutable std::vector<double> windowed;  // fft_len, zero-padded tail
  mutable std::vector<ivc::dsp::cplx> bins;
  mutable std::vector<double> power;
  mutable std::vector<double> mel;
  mutable std::vector<double> cepstra;   // frames × num_coeffs, flat
};

mfcc_extractor::mfcc_extractor(const mfcc_config& config,
                               double sample_rate_hz)
    : impl_{std::make_unique<impl>()} {
  expects(sample_rate_hz > 0.0, "mfcc_extractor: sample rate must be > 0");
  expects(config.frame_s > 0.0 && config.hop_s > 0.0,
          "extract_mfcc: frame and hop must be > 0");
  expects(config.num_coeffs >= 2 && config.num_coeffs <= config.num_filters,
          "extract_mfcc: need 2 <= num_coeffs <= num_filters");

  impl& s = *impl_;
  s.config = config;
  s.fs = sample_rate_hz;
  s.frame_len = static_cast<std::size_t>(std::llround(config.frame_s * s.fs));
  s.hop_len = static_cast<std::size_t>(std::llround(config.hop_s * s.fs));
  expects(s.frame_len >= 16, "extract_mfcc: frame too short for this rate");

  s.fft_len = ivc::dsp::next_pow2(s.frame_len);
  s.num_bins = s.fft_len / 2 + 1;
  const double high = std::min(config.high_hz, 0.49 * s.fs);
  s.bank = make_mel_filterbank(config.num_filters, s.num_bins, s.fs,
                               config.low_hz, high);
  s.window = ivc::dsp::make_periodic_window(ivc::dsp::window_kind::hamming,
                                            s.frame_len);
  s.plan = ivc::dsp::get_fft_plan(s.fft_len);

  const std::size_t nf = config.num_filters;
  s.dct_basis.resize(config.num_coeffs * nf);
  for (std::size_t k = 0; k < config.num_coeffs; ++k) {
    for (std::size_t i = 0; i < nf; ++i) {
      s.dct_basis[k * nf + i] =
          std::cos(pi * static_cast<double>(k) *
                   (static_cast<double>(i) + 0.5) / static_cast<double>(nf));
    }
  }
  s.dct_scale = std::sqrt(2.0 / static_cast<double>(nf));

  s.lifter_weights.assign(config.num_coeffs, 1.0);
  if (config.lifter > 0.0) {
    for (std::size_t k = 1; k < config.num_coeffs; ++k) {
      s.lifter_weights[k] =
          1.0 + 0.5 * config.lifter *
                    std::sin(pi * static_cast<double>(k) / config.lifter);
    }
  }

  s.windowed.assign(s.fft_len, 0.0);  // tail past frame_len stays zero
  s.bins.resize(s.num_bins);
  s.power.resize(s.num_bins);
  s.mel.resize(nf);
}

mfcc_extractor::~mfcc_extractor() = default;

const mfcc_config& mfcc_extractor::config() const { return impl_->config; }

double mfcc_extractor::sample_rate_hz() const { return impl_->fs; }

bool mfcc_extractor::matches(const mfcc_config& config,
                             double sample_rate_hz) const {
  return impl_->config == config && impl_->fs == sample_rate_hz;
}

feature_matrix mfcc_extractor::extract(const audio::buffer& input) const {
  audio::validate(input, "extract_mfcc");
  expects(input.sample_rate_hz == impl_->fs,
          "mfcc_extractor: input rate differs from the planned rate");
  const impl& s = *impl_;
  const mfcc_config& config = s.config;

  // Pre-emphasis.
  std::vector<double>& x = s.pre;
  x.resize(input.samples.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = input.samples[i] - config.pre_emphasis * prev;
    prev = input.samples[i];
  }

  // Framing + per-frame cepstra into one flat frames × num_coeffs block.
  const std::size_t nc = config.num_coeffs;
  const std::size_t nf = config.num_filters;
  std::vector<double>& cepstra = s.cepstra;
  cepstra.clear();
  for (std::size_t start = 0; start + s.frame_len <= x.size();
       start += s.hop_len) {
    for (std::size_t i = 0; i < s.frame_len; ++i) {
      s.windowed[i] = x[start + i] * s.window[i];
    }
    s.plan->rfft(s.windowed, s.bins);
    for (std::size_t k = 0; k < s.num_bins; ++k) {
      s.power[k] = std::norm(s.bins[k]);
    }
    s.bank.apply_to(s.power, s.mel);
    double mel_max = 0.0;
    for (const double m : s.mel) {
      mel_max = std::max(mel_max, m);
    }
    const double floor = std::max(1e-12, mel_max * config.mel_floor_rel);
    for (double& m : s.mel) {
      m = std::log(std::max(m, floor));
    }
    const std::size_t row = cepstra.size();
    cepstra.resize(row + nc);
    for (std::size_t k = 0; k < nc; ++k) {
      const double* basis = s.dct_basis.data() + k * nf;
      double acc = 0.0;
      for (std::size_t i = 0; i < nf; ++i) {
        acc += s.mel[i] * basis[i];
      }
      cepstra[row + k] = acc * s.dct_scale * s.lifter_weights[k];
    }
  }
  expects(!cepstra.empty(), "extract_mfcc: input shorter than one frame");
  const std::size_t num_frames = cepstra.size() / nc;

  // Cepstral mean normalization (per coefficient, over the utterance).
  if (config.cepstral_mean_norm) {
    for (std::size_t k = 0; k < nc; ++k) {
      double mean = 0.0;
      for (std::size_t t = 0; t < num_frames; ++t) {
        mean += cepstra[t * nc + k];
      }
      mean /= static_cast<double>(num_frames);
      for (std::size_t t = 0; t < num_frames; ++t) {
        cepstra[t * nc + k] -= mean;
      }
    }
  }

  // Assemble rows (+Δ over a ±2 frame regression window) contiguously.
  feature_matrix out;
  out.hop_s = config.hop_s;
  out.num_dims = config.append_delta ? 2 * nc : nc;
  out.data.resize(num_frames * out.num_dims);
  const auto n = static_cast<std::ptrdiff_t>(num_frames);
  for (std::ptrdiff_t t = 0; t < n; ++t) {
    double* row = out.data.data() +
                  static_cast<std::size_t>(t) * out.num_dims;
    const double* src = cepstra.data() + static_cast<std::size_t>(t) * nc;
    std::copy_n(src, nc, row);
    if (config.append_delta) {
      for (std::size_t k = 0; k < nc; ++k) {
        double num = 0.0;
        double den = 0.0;
        for (std::ptrdiff_t d = 1; d <= 2; ++d) {
          const std::size_t lo =
              static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, t - d));
          const std::size_t hi =
              static_cast<std::size_t>(std::min(n - 1, t + d));
          num += static_cast<double>(d) *
                 (cepstra[hi * nc + k] - cepstra[lo * nc + k]);
          den += 2.0 * static_cast<double>(d * d);
        }
        row[nc + k] = num / den;
      }
    }
  }
  return out;
}

feature_matrix extract_mfcc(const audio::buffer& input,
                            const mfcc_config& config) {
  audio::validate(input, "extract_mfcc");
  // Consecutive calls share (config, rate) almost everywhere — template
  // enrollment, recognition, corpus building — so one extractor per
  // thread amortizes the basis builds without any locking.
  thread_local std::unique_ptr<mfcc_extractor> cached;
  if (!cached || !cached->matches(config, input.sample_rate_hz)) {
    cached = std::make_unique<mfcc_extractor>(config, input.sample_rate_hz);
  }
  return cached->extract(input);
}

}  // namespace ivc::asr
