#include "asr/mfcc.h"

#include <algorithm>
#include <cmath>

#include "asr/mel.h"
#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace ivc::asr {
namespace {

// DCT-II of the log-mel energies, truncated to num_coeffs.
std::vector<double> dct2(const std::vector<double>& x, std::size_t num_coeffs) {
  const std::size_t n = x.size();
  std::vector<double> out(num_coeffs, 0.0);
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(pi * static_cast<double>(k) *
                             (static_cast<double>(i) + 0.5) /
                             static_cast<double>(n));
    }
    out[k] = acc * std::sqrt(2.0 / static_cast<double>(n));
  }
  return out;
}

}  // namespace

feature_matrix extract_mfcc(const audio::buffer& input,
                            const mfcc_config& config) {
  audio::validate(input, "extract_mfcc");
  expects(config.frame_s > 0.0 && config.hop_s > 0.0,
          "extract_mfcc: frame and hop must be > 0");
  expects(config.num_coeffs >= 2 && config.num_coeffs <= config.num_filters,
          "extract_mfcc: need 2 <= num_coeffs <= num_filters");

  const double fs = input.sample_rate_hz;
  const auto frame_len =
      static_cast<std::size_t>(std::llround(config.frame_s * fs));
  const auto hop_len = static_cast<std::size_t>(std::llround(config.hop_s * fs));
  expects(frame_len >= 16, "extract_mfcc: frame too short for this rate");

  const std::size_t fft_len = ivc::dsp::next_pow2(frame_len);
  const std::size_t num_bins = fft_len / 2 + 1;
  const double high = std::min(config.high_hz, 0.49 * fs);
  const mel_filterbank bank = make_mel_filterbank(
      config.num_filters, num_bins, fs, config.low_hz, high);
  const std::vector<double> window =
      ivc::dsp::make_periodic_window(ivc::dsp::window_kind::hamming, frame_len);

  // Pre-emphasis.
  std::vector<double> x(input.samples.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = input.samples[i] - config.pre_emphasis * prev;
    prev = input.samples[i];
  }

  // Framing + per-frame cepstra.
  std::vector<std::vector<double>> cepstra;
  std::vector<ivc::dsp::cplx> frame(fft_len);
  for (std::size_t start = 0; start + frame_len <= x.size();
       start += hop_len) {
    for (std::size_t i = 0; i < fft_len; ++i) {
      const double v = i < frame_len ? x[start + i] * window[i] : 0.0;
      frame[i] = ivc::dsp::cplx{v, 0.0};
    }
    ivc::dsp::fft_pow2_inplace(frame, /*inverse=*/false);
    std::vector<double> power(num_bins);
    for (std::size_t k = 0; k < num_bins; ++k) {
      power[k] = std::norm(frame[k]);
    }
    std::vector<double> mel = bank.apply(power);
    double mel_max = 0.0;
    for (const double m : mel) {
      mel_max = std::max(mel_max, m);
    }
    const double floor = std::max(1e-12, mel_max * config.mel_floor_rel);
    for (double& m : mel) {
      m = std::log(std::max(m, floor));
    }
    std::vector<double> c = dct2(mel, config.num_coeffs);
    if (config.lifter > 0.0) {
      for (std::size_t k = 1; k < c.size(); ++k) {
        c[k] *= 1.0 + 0.5 * config.lifter *
                          std::sin(pi * static_cast<double>(k) / config.lifter);
      }
    }
    cepstra.push_back(std::move(c));
  }
  expects(!cepstra.empty(), "extract_mfcc: input shorter than one frame");

  // Cepstral mean normalization (per coefficient, over the utterance).
  if (config.cepstral_mean_norm) {
    std::vector<double> mean(config.num_coeffs, 0.0);
    for (const auto& c : cepstra) {
      for (std::size_t k = 0; k < c.size(); ++k) {
        mean[k] += c[k];
      }
    }
    for (double& m : mean) {
      m /= static_cast<double>(cepstra.size());
    }
    for (auto& c : cepstra) {
      for (std::size_t k = 0; k < c.size(); ++k) {
        c[k] -= mean[k];
      }
    }
  }

  // Δ features over a ±2 frame regression window.
  feature_matrix out;
  out.hop_s = config.hop_s;
  const auto n = static_cast<std::ptrdiff_t>(cepstra.size());
  for (std::ptrdiff_t t = 0; t < n; ++t) {
    std::vector<double> row = cepstra[static_cast<std::size_t>(t)];
    if (config.append_delta) {
      for (std::size_t k = 0; k < config.num_coeffs; ++k) {
        double num = 0.0;
        double den = 0.0;
        for (std::ptrdiff_t d = 1; d <= 2; ++d) {
          const std::size_t lo =
              static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, t - d));
          const std::size_t hi =
              static_cast<std::size_t>(std::min(n - 1, t + d));
          num += static_cast<double>(d) * (cepstra[hi][k] - cepstra[lo][k]);
          den += 2.0 * static_cast<double>(d * d);
        }
        row.push_back(num / den);
      }
    }
    out.frames.push_back(std::move(row));
  }
  return out;
}

}  // namespace ivc::asr
