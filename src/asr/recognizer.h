// Template-matching command recognizer (the commercial-ASR stand-in).
//
// Templates are MFCC feature matrices of clean command renditions (one or
// more voices per command). Recognition is nearest-template under DTW
// with a rejection threshold; an attack trial "succeeds" when the
// recognizer accepts the intended command id — the same success criterion
// the papers apply to Google Assistant / Alexa.
//
// Concurrency: recognize() is const-thread-safe. The serving layer calls
// it from N workers against ONE shared template set
// (sim::shared_enrolled_recognizer), which is sound because the const
// path touches no shared mutable state: templates_ is read-only after
// enrollment, DTW is stateless, the dither stream is a fixed-seed local
// rng, and MFCC extraction runs through the per-thread cached
// mfcc_extractor (extract_mfcc's thread_local cache), so concurrent
// recognitions never contend on — or rebuild — the filterbank/DCT
// bases. add_template() is NOT thread-safe; enroll before sharing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asr/dtw.h"
#include "asr/mfcc.h"
#include "asr/vad.h"
#include "audio/buffer.h"

namespace ivc::asr {

// The recognizer analyzes the band the attack's conditioned commands and
// telephone-band speech share; the 4.5–7 kHz fricative band is the
// defense's business, not the recognizer's.
inline mfcc_config recognizer_default_mfcc() {
  mfcc_config c;
  c.high_hz = 4'000.0;
  return c;
}

struct recognizer_config {
  mfcc_config mfcc = recognizer_default_mfcc();
  dtw_config dtw;
  vad_config vad;
  // Reject when the best DTW distance exceeds this (calibrated so clean
  // renditions pass with wide margin and noise is rejected; see
  // tests/asr/recognizer_test.cpp for the calibration evidence).
  double rejection_threshold = 38.0;
  // Additionally require the runner-up command to be at least this much
  // farther than the best (noise matches everything about equally).
  double min_margin = 2.0;
  bool trim_with_vad = true;
  // Both templates and queries are dithered with white noise at this SNR
  // before feature extraction ("multi-condition" matching): real captures
  // always carry a noise floor, and matching digitally-silent templates
  // against them inflates distances in quiet mel bands. 0 disables.
  double dither_snr_db = 28.0;
};

struct recognition_result {
  std::optional<std::string> command_id;  // nullopt == rejected
  double best_distance = 0.0;
  double margin = 0.0;  // runner-up distance minus best (confidence proxy)

  bool accepted() const { return command_id.has_value(); }
};

class recognizer {
 public:
  explicit recognizer(recognizer_config config = {});

  // Registers a clean rendition of `command_id` as a template.
  void add_template(const std::string& command_id, const audio::buffer& clean);

  // Number of stored templates (across all commands).
  std::size_t num_templates() const { return templates_.size(); }

  // Recognizes a capture. Empty/near-silent audio is rejected.
  recognition_result recognize(const audio::buffer& capture) const;

  const recognizer_config& config() const { return config_; }

 private:
  struct entry {
    std::string command_id;
    feature_matrix features;
  };

  feature_matrix features_of(const audio::buffer& input) const;
  // Feature extraction for a buffer the caller has already VAD-trimmed.
  feature_matrix features_from_trimmed(const audio::buffer& trimmed) const;

  recognizer_config config_;
  std::vector<entry> templates_;
};

}  // namespace ivc::asr
