#include "asr/segmenter.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "audio/metrics.h"
#include "common/error.h"
#include "common/json_field.h"

namespace ivc::asr {
namespace {

std::size_t frames_of(double seconds, double frame_s) {
  return static_cast<std::size_t>(std::llround(seconds / frame_s));
}

}  // namespace

utterance_segmenter::utterance_segmenter(segmenter_config config)
    : config_{config} {
  expects(config_.frame_s > 0.0, "utterance_segmenter: frame_s must be > 0");
  expects(config_.activity_floor > 0.0,
          "utterance_segmenter: activity_floor must be > 0");
  expects(config_.hang_s >= config_.frame_s,
          "utterance_segmenter: hang_s must cover at least one frame");
  expects(config_.pad_s >= 0.0, "utterance_segmenter: pad_s must be >= 0");
  expects(config_.min_utterance_s >= 0.0 &&
              config_.min_utterance_s <= config_.max_utterance_s,
          "utterance_segmenter: need 0 <= min_utterance_s <= max_utterance_s");
}

std::vector<utterance> utterance_segmenter::feed(const audio::buffer& block) {
  audio::validate(block, "utterance_segmenter::feed");
  if (rate_ == 0.0) {
    rate_ = block.sample_rate_hz;
    frame_samples_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(config_.frame_s * rate_)));
  }
  expects(block.sample_rate_hz == rate_,
          "utterance_segmenter: sample rate changed mid-stream");
  pending_.insert(pending_.end(), block.samples.begin(), block.samples.end());

  std::vector<utterance> out;
  // Consume whole frames in place, then drop the consumed prefix once —
  // the sub-frame residue carries over to the next feed(), which is what
  // makes the frame grid (and everything downstream) chunking-invariant.
  std::size_t pos = 0;
  while (pending_.size() - pos >= frame_samples_) {
    const std::span<const double> frame{pending_.data() + pos, frame_samples_};
    const bool active = audio::rms(frame) > config_.activity_floor;
    const std::size_t pad_frames = frames_of(config_.pad_s, config_.frame_s);

    if (!in_utterance_) {
      if (active) {
        utterance_start_frame_ =
            frames_consumed_ - static_cast<std::uint64_t>(preroll_.size());
        utterance_.clear();
        for (const std::vector<double>& p : preroll_) {
          utterance_.insert(utterance_.end(), p.begin(), p.end());
        }
        preroll_.clear();
        utterance_.insert(utterance_.end(), frame.begin(), frame.end());
        silent_run_ = 0;
        in_utterance_ = true;
      } else {
        preroll_.emplace_back(frame.begin(), frame.end());
        while (preroll_.size() > pad_frames) {
          preroll_.erase(preroll_.begin());
        }
      }
    } else {
      utterance_.insert(utterance_.end(), frame.begin(), frame.end());
      if (active) {
        silent_run_ = 0;
      } else {
        ++silent_run_;
        if (silent_run_ >=
            std::max<std::size_t>(1,
                                  frames_of(config_.hang_s, config_.frame_s))) {
          close_utterance(out, silent_run_);
        }
      }
      // Timeout: an utterance that never goes quiet force-closes so the
      // recognizer sees bounded segments (and memory stays bounded).
      if (in_utterance_ &&
          utterance_.size() >=
              frames_of(config_.max_utterance_s, config_.frame_s) *
                  frame_samples_) {
        close_utterance(out, silent_run_);
      }
    }
    pos += frame_samples_;
    ++frames_consumed_;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

void utterance_segmenter::close_utterance(std::vector<utterance>& out,
                                          std::size_t trailing_silent) {
  const std::size_t pad_frames = frames_of(config_.pad_s, config_.frame_s);
  const std::size_t keep = std::min(pad_frames, trailing_silent);
  const std::size_t trim = trailing_silent - keep;
  const std::size_t kept_samples = utterance_.size() - trim * frame_samples_;

  const double start_s =
      static_cast<double>(utterance_start_frame_) *
      static_cast<double>(frame_samples_) / rate_;
  const double end_s = start_s + static_cast<double>(kept_samples) / rate_;
  if (static_cast<double>(kept_samples) / rate_ >=
      config_.min_utterance_s) {  // the duration gate
    utterance u;
    u.start_s = start_s;
    u.end_s = end_s;
    u.samples = audio::buffer{
        {utterance_.begin(),
         utterance_.begin() + static_cast<std::ptrdiff_t>(kept_samples)},
        rate_};
    out.push_back(std::move(u));
  }

  // The trimmed trailing silence doubles as the next utterance's
  // pre-roll: its most recent frames are exactly the audio preceding
  // whatever opens next.
  preroll_.clear();
  const std::size_t reroll = std::min(pad_frames, trim);
  for (std::size_t f = trim - reroll; f < trim; ++f) {
    const std::size_t offset = kept_samples + f * frame_samples_;
    preroll_.emplace_back(
        utterance_.begin() + static_cast<std::ptrdiff_t>(offset),
        utterance_.begin() +
            static_cast<std::ptrdiff_t>(offset + frame_samples_));
  }
  utterance_.clear();
  in_utterance_ = false;
  silent_run_ = 0;
}

double utterance_segmenter::earliest_start_s() const {
  if (rate_ == 0.0) {
    return 0.0;  // nothing fed yet
  }
  const std::uint64_t frame =
      in_utterance_
          ? utterance_start_frame_
          : frames_consumed_ - static_cast<std::uint64_t>(preroll_.size());
  return static_cast<double>(frame) * static_cast<double>(frame_samples_) /
         rate_;
}

std::vector<utterance> utterance_segmenter::finish() {
  std::vector<utterance> out;
  if (in_utterance_) {
    if (silent_run_ == 0 && !pending_.empty()) {
      // The stream ended mid-speech: the sub-frame residue belongs to
      // the open utterance.
      utterance_.insert(utterance_.end(), pending_.begin(), pending_.end());
    }
    close_utterance(out, silent_run_);
  }
  reset();
  return out;
}

json::value utterance_segmenter::snapshot() const {
  json::object o;
  o.emplace_back("rate", json::value{rate_});
  o.emplace_back("fs", json::value{static_cast<double>(frame_samples_)});
  o.emplace_back("fc", json::value{static_cast<double>(frames_consumed_)});
  o.emplace_back("in", json::value{in_utterance_});
  o.emplace_back("usf",
                 json::value{static_cast<double>(utterance_start_frame_)});
  o.emplace_back("sr", json::value{static_cast<double>(silent_run_)});
  o.emplace_back("pend", json::from_samples(pending_));
  o.emplace_back("utt", json::from_samples(utterance_));
  json::array preroll;
  preroll.reserve(preroll_.size());
  for (const std::vector<double>& frame : preroll_) {
    preroll.push_back(json::from_samples(frame));
  }
  o.emplace_back("pre", json::value{std::move(preroll)});
  return json::value{std::move(o)};
}

void utterance_segmenter::restore(const json::value& snap) {
  rate_ = json::num(snap, "rate");
  frame_samples_ = static_cast<std::size_t>(json::u64(snap, "fs"));
  frames_consumed_ = json::u64(snap, "fc");
  in_utterance_ = json::flag(snap, "in");
  utterance_start_frame_ = json::u64(snap, "usf");
  silent_run_ = static_cast<std::size_t>(json::u64(snap, "sr"));
  pending_ = json::to_samples(json::field(snap, "pend"));
  utterance_ = json::to_samples(json::field(snap, "utt"));
  preroll_.clear();
  for (const json::value& frame : json::arr(snap, "pre")) {
    preroll_.push_back(json::to_samples(frame));
  }
}

void utterance_segmenter::reset() {
  rate_ = 0.0;
  frame_samples_ = 0;
  pending_.clear();
  frames_consumed_ = 0;
  preroll_.clear();
  in_utterance_ = false;
  utterance_start_frame_ = 0;
  utterance_.clear();
  silent_run_ = 0;
}

}  // namespace ivc::asr
