#include "asr/vad.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace ivc::asr {

vad_result detect_activity(const audio::buffer& input,
                           const vad_config& config) {
  audio::validate(input, "detect_activity");
  expects(config.frame_s > 0.0, "detect_activity: frame must be > 0");

  const auto frame = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.frame_s * input.sample_rate_hz));
  std::vector<double> energy;
  for (std::size_t start = 0; start < input.size(); start += frame) {
    const std::size_t end = std::min(input.size(), start + frame);
    double acc = 0.0;
    for (std::size_t i = start; i < end; ++i) {
      acc += input.samples[i] * input.samples[i];
    }
    energy.push_back(acc / static_cast<double>(end - start));
  }

  const double peak = *std::max_element(energy.begin(), energy.end());
  vad_result out;
  if (peak <= 1e-300) {
    return out;
  }
  const double threshold =
      peak * ivc::db_to_power(-config.threshold_below_peak_db);
  std::size_t first = energy.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < energy.size(); ++i) {
    if (energy[i] >= threshold) {
      first = std::min(first, i);
      last = i;
    }
  }
  if (first == energy.size()) {
    return out;
  }
  const double frame_s = static_cast<double>(frame) / input.sample_rate_hz;
  out.any_activity = true;
  out.start_s = std::max(0.0, static_cast<double>(first) * frame_s -
                                  config.margin_s);
  out.end_s = std::min(input.duration_s(),
                       static_cast<double>(last + 1) * frame_s + config.margin_s);
  return out;
}

audio::buffer trim_to_activity(const audio::buffer& input,
                               const vad_config& config) {
  const vad_result r = detect_activity(input, config);
  if (!r.any_activity || r.end_s <= r.start_s) {
    return input;
  }
  return audio::slice(input, r.start_s, r.end_s - r.start_s);
}

}  // namespace ivc::asr
