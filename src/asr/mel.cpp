#include "asr/mel.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ivc::asr {

double hz_to_mel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double mel_to_hz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

std::vector<double> mel_filterbank::apply(
    const std::vector<double>& power_spectrum) const {
  std::vector<double> out;
  apply_to(power_spectrum, out);
  return out;
}

void mel_filterbank::apply_to(const std::vector<double>& power_spectrum,
                              std::vector<double>& out) const {
  expects(!weights.empty(), "mel_filterbank::apply: empty bank");
  expects(power_spectrum.size() == weights.front().size(),
          "mel_filterbank::apply: spectrum size mismatch");
  const bool sparse = support.size() == weights.size();
  out.resize(weights.size());
  for (std::size_t m = 0; m < weights.size(); ++m) {
    const std::size_t lo = sparse ? support[m].first : 0;
    const std::size_t hi = sparse ? support[m].second : power_spectrum.size();
    const double* w = weights[m].data();
    double acc = 0.0;
    for (std::size_t k = lo; k < hi; ++k) {
      acc += w[k] * power_spectrum[k];
    }
    out[m] = acc;
  }
}

mel_filterbank make_mel_filterbank(std::size_t num_filters,
                                   std::size_t num_bins,
                                   double sample_rate_hz, double low_hz,
                                   double high_hz) {
  expects(num_filters >= 2, "make_mel_filterbank: need >= 2 filters");
  expects(num_bins >= num_filters,
          "make_mel_filterbank: need more bins than filters");
  expects(low_hz >= 0.0 && high_hz > low_hz &&
              high_hz <= sample_rate_hz / 2.0,
          "make_mel_filterbank: need 0 <= low < high <= fs/2");

  const double mel_lo = hz_to_mel(low_hz);
  const double mel_hi = hz_to_mel(high_hz);
  // num_filters + 2 equally spaced mel points define the triangles.
  std::vector<double> edges_hz(num_filters + 2);
  for (std::size_t i = 0; i < edges_hz.size(); ++i) {
    const double mel = mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    static_cast<double>(num_filters + 1);
    edges_hz[i] = mel_to_hz(mel);
  }

  const double bin_hz = (sample_rate_hz / 2.0) / static_cast<double>(num_bins - 1);
  mel_filterbank bank;
  bank.weights.assign(num_filters, std::vector<double>(num_bins, 0.0));
  bank.center_hz.resize(num_filters);
  bank.support.assign(num_filters, {0, 0});
  for (std::size_t m = 0; m < num_filters; ++m) {
    const double left = edges_hz[m];
    const double center = edges_hz[m + 1];
    const double right = edges_hz[m + 2];
    bank.center_hz[m] = center;
    std::size_t lo = num_bins;
    std::size_t hi = 0;
    for (std::size_t k = 0; k < num_bins; ++k) {
      const double f = static_cast<double>(k) * bin_hz;
      if (f > left && f < center) {
        bank.weights[m][k] = (f - left) / (center - left);
      } else if (f >= center && f < right) {
        bank.weights[m][k] = (right - f) / (right - center);
      }
      if (bank.weights[m][k] != 0.0) {
        lo = std::min(lo, k);
        hi = k + 1;
      }
    }
    bank.support[m] = lo < hi ? std::pair<std::size_t, std::size_t>{lo, hi}
                              : std::pair<std::size_t, std::size_t>{0, 0};
  }
  return bank;
}

}  // namespace ivc::asr
