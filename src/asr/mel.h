// Mel scale and triangular filterbank.
#pragma once

#include <cstddef>
#include <vector>

namespace ivc::asr {

// Hz ↔ mel (O'Shaughnessy's formula, the HTK convention).
double hz_to_mel(double hz);
double mel_to_hz(double mel);

// Triangular filterbank: `num_filters` rows over `num_bins` linear
// frequency bins spanning [0, sample_rate/2], covering [low_hz, high_hz].
struct mel_filterbank {
  std::vector<std::vector<double>> weights;  // [filter][bin]
  std::vector<double> center_hz;

  std::size_t num_filters() const { return weights.size(); }

  // Applies the bank to a power spectrum (size must equal num_bins).
  std::vector<double> apply(const std::vector<double>& power_spectrum) const;
};

mel_filterbank make_mel_filterbank(std::size_t num_filters,
                                   std::size_t num_bins,
                                   double sample_rate_hz, double low_hz,
                                   double high_hz);

}  // namespace ivc::asr
