// Mel scale and triangular filterbank.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ivc::asr {

// Hz ↔ mel (O'Shaughnessy's formula, the HTK convention).
double hz_to_mel(double hz);
double mel_to_hz(double mel);

// Triangular filterbank: `num_filters` rows over `num_bins` linear
// frequency bins spanning [0, sample_rate/2], covering [low_hz, high_hz].
struct mel_filterbank {
  std::vector<std::vector<double>> weights;  // [filter][bin]
  std::vector<double> center_hz;
  // Half-open nonzero column range per filter. Triangles are sparse
  // (each covers a small slice of the bins), and skipping exact-zero
  // weights is arithmetic-identical, so apply() only walks the support.
  // Empty (e.g. a hand-assembled bank) means "walk every bin".
  std::vector<std::pair<std::size_t, std::size_t>> support;

  std::size_t num_filters() const { return weights.size(); }

  // Applies the bank to a power spectrum (size must equal num_bins).
  std::vector<double> apply(const std::vector<double>& power_spectrum) const;
  // Allocation-free variant for per-frame hot loops: writes the band
  // energies into `out` (resized to num_filters()).
  void apply_to(const std::vector<double>& power_spectrum,
                std::vector<double>& out) const;
};

mel_filterbank make_mel_filterbank(std::size_t num_filters,
                                   std::size_t num_bins,
                                   double sample_rate_hz, double low_hz,
                                   double high_hz);

}  // namespace ivc::asr
