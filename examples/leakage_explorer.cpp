// leakage_explorer: why the attacker needs many speakers.
//
// Walks through the rig design space and prints, for each configuration,
// what a bystander next to the rig hears (third-octave audibility
// analysis) and what the victim device receives. This is the tool for
// understanding the leakage/chunk-width trade-off before committing to a
// rig — and for writing the attack ultrasound itself to WAV files for
// inspection in an audio editor.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "attack/leakage.h"
#include "audio/wav_io.h"
#include "sim/scenario.h"

namespace {

void print_band_table(const ivc::attack::audibility_report& report) {
  std::printf("    band (Hz)   SPL (dB)   threshold   margin\n");
  for (const ivc::attack::band_level& band : report.bands) {
    if (band.spl_db < -40.0 || band.center_hz > 16'000.0) {
      continue;  // keep the table to the interesting rows
    }
    std::printf("    %9.0f   %8.1f   %9.1f   %+6.1f%s\n", band.center_hz,
                band.spl_db, band.threshold_db, band.margin_db,
                band.margin_db > 0.0 ? "  <-- audible" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ivc;
  const bool write_wavs = argc > 1 && std::string{argv[1]} == "--write-wavs";

  ivc::rng rng{5};
  const audio::buffer command = synth::render_command(
      synth::command_by_id("take_picture"), synth::male_voice(), rng,
      16'000.0);
  const acoustics::vec3 bystander{0.0, 1.0, 0.0};
  const acoustics::air_model air;

  struct config_case {
    const char* label;
    attack::rig_config cfg;
  };
  std::vector<config_case> cases;
  cases.push_back({"monolithic, 18.7 W (prior work)",
                   attack::monolithic_rig(18.7)});
  {
    attack::rig_config c = attack::long_range_rig();
    c.splitter.num_chunks = 4;
    cases.push_back({"split x4 chunks, 120 W", c});
  }
  cases.push_back({"split x16 chunks, 120 W (long-range rig)",
                   attack::long_range_rig()});

  for (const config_case& c : cases) {
    std::printf("== %s ==\n", c.label);
    const attack::attack_rig rig = attack::build_attack_rig(command, c.cfg);
    const attack::leakage_report leak =
        attack::measure_leakage(rig.array, bystander, air);
    std::printf("  bystander at 1 m: %s | worst %+.1f dB at %.0f Hz | "
                "voice-band %.1f dB SPL | dBA %.1f\n",
                leak.audibility.audible ? "HEARS THE COMMAND" : "hears nothing",
                leak.audibility.worst_margin_db, leak.audibility.worst_band_hz,
                leak.voice_band_spl_db, leak.audibility.a_weighted_spl_db);
    print_band_table(leak.audibility);

    if (write_wavs) {
      // The field a bystander would record (for listening tests): band-
      // limit to the audible range by writing at 48 kHz equivalent? The
      // raw field is ultrasound-dominated; write it as float to preserve
      // scale for analysis tools.
      const audio::buffer field = rig.array.render_at(bystander, air);
      const std::string path =
          std::string{"leakage_"} + (c.cfg.mode == attack::rig_mode::monolithic
                                         ? "mono"
                                         : "split") +
          ".wav";
      audio::write_wav(path, field, audio::wav_format::float32);
      std::printf("  field written to %s\n", path.c_str());
    }
    std::printf("\n");
  }

  std::printf("per-chunk leakage bands (16-chunk rig): a lone chunk's\n"
              "second-order products land in [0, chunk width]:\n");
  attack::splitter_config split = attack::long_range_rig().splitter;
  const double width =
      (split.voice_high_hz - split.voice_low_hz) /
      static_cast<double>(split.num_chunks);
  for (std::size_t k = 0; k < split.num_chunks; k += 5) {
    attack::chunk_band band;
    band.low_hz = split.voice_low_hz + width * static_cast<double>(k);
    band.high_hz = band.low_hz + width;
    const attack::chunk_band leak_band =
        attack::predicted_chunk_leakage_band(band);
    std::printf("  chunk %2zu [%5.0f, %5.0f] Hz -> leakage in [0, %.0f] Hz "
                "(threshold there: %.0f dB SPL)\n",
                k, band.low_hz, band.high_hz, leak_band.high_hz,
                attack::hearing_threshold_db_spl(
                    std::max(25.0, leak_band.high_hz)));
  }
  return 0;
}
