// Quickstart: the whole story in one file.
//
// 1. Synthesize a voice command ("ok google take a picture").
// 2. Build the short-range monolithic attack (one speaker, AM ultrasound)
//    and fire it at a phone 2 m away — it works, but a bystander next to
//    the rig can hear the demodulated shadow.
// 3. Build the long-range split-spectrum rig (carrier + 16 chunk
//    speakers) and fire it from 6 m — it still works, and the rig stays
//    below the hearing threshold.
// 4. Run the defense on both captures and on a genuine utterance.
// 5. Sweep the attack envelope declaratively: a distance × power grid
//    through the parallel experiment engine, written to CSV.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/quickstart
#include <cstdio>

#include "attack/leakage.h"
#include "defense/classifier.h"
#include "defense/detector.h"
#include "sim/corpus.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace {

void print_trial(const char* label, const ivc::sim::trial_result& r) {
  std::printf("%-28s recognized=%-14s intelligibility=%.2f %s\n", label,
              r.recognition.accepted() ? r.recognition.command_id->c_str()
                                       : "(rejected)",
              r.intelligibility, r.success ? "<- ATTACK SUCCEEDED" : "");
}

void print_leakage(const char* label, const ivc::attack::leakage_report& l) {
  std::printf(
      "%-28s worst margin=%+6.1f dB at %.0f Hz (%s), voice-band leak=%.1f dB "
      "SPL, ultrasound=%.1f dB SPL\n",
      label, l.audibility.worst_margin_db, l.audibility.worst_band_hz,
      l.audibility.audible ? "AUDIBLE" : "inaudible", l.voice_band_spl_db,
      l.ultrasound_spl_db);
}

}  // namespace

int main() {
  std::printf("== ivc quickstart: inaudible voice commands ==\n\n");

  // ---------------------------------------------------------------- 1+2
  ivc::sim::attack_scenario mono;
  mono.rig.mode = ivc::attack::rig_mode::monolithic;
  mono.rig.modulator.carrier_hz = 30'000.0;
  mono.rig.total_power_w = 18.7;  // the short paper's Table 1 column
  mono.command_id = "take_picture";
  mono.distance_m = 2.0;

  ivc::sim::attack_session mono_session{mono, /*seed=*/42};
  print_trial("monolithic @ 2 m, 18.7 W:", mono_session.run_trial(0));

  // What a bystander 1 m from the rig hears.
  const ivc::acoustics::vec3 bystander{0.0, 1.0, 0.0};
  print_leakage("  rig leakage @ 1 m:",
                ivc::attack::measure_leakage(mono_session.rig().array,
                                             bystander,
                                             mono.environment.air));

  // ---------------------------------------------------------------- 3
  ivc::sim::attack_scenario split = mono;
  split.rig = ivc::attack::long_range_rig();  // carrier + 16 chunk stacks
  split.distance_m = 6.0;

  ivc::sim::attack_session split_session{split, /*seed=*/42};
  std::printf("\n");
  print_trial("split array @ 6 m, 120 W:", split_session.run_trial(0));
  print_leakage("  rig leakage @ 1 m:",
                ivc::attack::measure_leakage(split_session.rig().array,
                                             bystander,
                                             split.environment.air));

  // ---------------------------------------------------------------- 4
  std::printf("\nTraining the defense on a small simulated corpus...\n");
  ivc::sim::corpus_config corpus_cfg;
  corpus_cfg.rig = split.rig;
  // Quickstart-sized corpus (the benches build the full one).
  corpus_cfg.genuine_distances_m = {1.0, 2.5};
  corpus_cfg.genuine_levels_db = {62.0, 70.0};
  corpus_cfg.attack_distances_m = {2.0, 5.0};
  corpus_cfg.attack_powers_w = {40.0};
  corpus_cfg.max_attack_commands = 4;
  corpus_cfg.max_genuine_phrases = 8;
  const ivc::sim::defense_corpus corpus =
      ivc::sim::build_defense_corpus(corpus_cfg, /*seed=*/7);
  ivc::defense::logistic_classifier clf;
  clf.train(corpus.train);
  std::printf("defense accuracy on held-out corpus: %.1f%% (%zu samples)\n",
              100.0 * clf.accuracy(corpus.test), corpus.test.size());

  const ivc::defense::classifier_detector detector{clf};
  const auto mono_capture = mono_session.run_trial(1).capture;
  const auto split_capture = split_session.run_trial(1).capture;
  ivc::rng genuine_rng{99};
  ivc::sim::genuine_scenario genuine;
  const auto genuine_capture =
      ivc::sim::run_genuine_capture(genuine, genuine_rng);

  const auto d_mono = detector.detect(mono_capture);
  const auto d_split = detector.detect(split_capture);
  const auto d_genuine = detector.detect(genuine_capture);
  std::printf("defense verdicts: monolithic=%s(%.2f) split=%s(%.2f) "
              "genuine=%s(%.2f)\n",
              d_mono.is_attack ? "ATTACK" : "ok", d_mono.score,
              d_split.is_attack ? "ATTACK" : "ok", d_split.score,
              d_genuine.is_attack ? "ATTACK" : "ok", d_genuine.score);

  // ---------------------------------------------------------------- 5
  // Declarative sweep: success over a distance × power grid of the
  // split rig, run on the thread pool. Every future scenario axis
  // (carrier, device, ambient, voice, command, custom) composes the
  // same way — see sim/experiment.h.
  std::printf("\nsweeping the split rig's envelope (distance x power)...\n");
  ivc::sim::run_config sweep_cfg;
  sweep_cfg.trials_per_point = 3;
  sweep_cfg.seed = 42;
  const ivc::sim::result_table envelope = ivc::sim::engine{sweep_cfg}.run(
      split, ivc::sim::grid::cartesian(
                 {ivc::sim::distance_axis({2.0, 5.0, 7.6}),
                  ivc::sim::power_axis({30.0, 120.0})}));
  envelope.print();
  envelope.write_csv_file("quickstart_envelope.csv");
  std::printf("envelope written to quickstart_envelope.csv\n");
  return 0;
}
