// craft_attack: turn any WAV recording into attack drive signals.
//
// The artifact an attacker (or red-teamer) actually wants: feed a voice
// recording in, get per-speaker ultrasonic drive WAVs out, plus a report
// on what each speaker radiates and what a square-law receiver would
// recover. Without arguments it synthesizes a command and demonstrates
// the full round trip.
//
// Usage: craft_attack [input.wav] [mono|split] [output_prefix]
#include <cstdio>
#include <string>

#include "attack/modulator.h"
#include "attack/planner.h"
#include "audio/metrics.h"
#include "audio/wav_io.h"
#include "dsp/correlate.h"
#include "dsp/resample.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace ivc;

  // 1. Load or synthesize the command.
  audio::buffer command;
  if (argc > 1) {
    command = audio::read_wav(argv[1]);
    std::printf("loaded %s: %.2f s at %.0f Hz\n", argv[1],
                command.duration_s(), command.sample_rate_hz);
  } else {
    ivc::rng rng{1};
    command = synth::render_command(synth::command_by_id("open_door"),
                                    synth::male_voice(), rng, 16'000.0);
    std::printf("no input given; synthesized \"%s\" (%.2f s)\n",
                synth::command_by_id("open_door").text.c_str(),
                command.duration_s());
  }
  const std::string mode = argc > 2 ? argv[2] : "split";
  const std::string prefix = argc > 3 ? argv[3] : "attack";

  // 2. Build the rig (this runs conditioning, modulation, splitting).
  const attack::rig_config cfg = mode == "mono"
                                     ? attack::monolithic_rig()
                                     : attack::long_range_rig();
  const attack::attack_rig rig = attack::build_attack_rig(command, cfg);
  std::printf("rig: %zu drive signal(s) at %.0f kHz sample rate, carrier "
              "%.0f kHz\n",
              rig.array.size(),
              rig.array.elements().front().drive.sample_rate_hz / 1'000.0,
              cfg.modulator.carrier_hz / 1'000.0);

  // 3. Write each drive signal.
  for (std::size_t i = 0; i < rig.array.size(); ++i) {
    const std::string path =
        prefix + "_speaker" + std::to_string(i) + ".wav";
    audio::write_wav(path, rig.array.elements()[i].drive,
                     audio::wav_format::float32);
    std::printf("  %-26s peak %.2f, power %.1f W\n", path.c_str(),
                audio::peak(rig.array.elements()[i].drive.samples),
                rig.array.elements()[i].input_power_w);
  }

  // 4. Verify: what would a square-law receiver recover from the sum?
  audio::buffer sum = rig.array.elements().front().drive;
  for (std::size_t i = 1; i < rig.array.size(); ++i) {
    const auto& d = rig.array.elements()[i].drive;
    for (std::size_t k = 0; k < std::min(sum.size(), d.size()); ++k) {
      sum.samples[k] += d.samples[k];
    }
  }
  const audio::buffer demod = attack::square_law_demodulate(
      sum, cfg.conditioner.voice_bandwidth_hz, 16'000.0);
  const std::vector<double> reference = ivc::dsp::resample(
      rig.conditioned_baseband.samples,
      rig.conditioned_baseband.sample_rate_hz, 16'000.0);
  const double corr =
      ivc::dsp::aligned_correlation(demod.samples, reference, 400);
  audio::write_wav(prefix + "_demodulated.wav",
                   audio::buffer{demod.samples, 16'000.0});
  std::printf("square-law recovery correlation vs conditioned command: "
              "%.3f\n", corr);
  std::printf("demodulated preview written to %s_demodulated.wav\n",
              prefix.c_str());
  return 0;
}
