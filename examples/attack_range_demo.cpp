// attack_range_demo: interactive-ish exploration of the attack envelope.
//
// Usage: attack_range_demo [mode] [power_w] [distance_m] [command_id]
//   mode: "mono" or "split" (default split)
//
// Builds the requested rig, fires a burst of trials at the given
// distance, and reports success rate, recognizer distances, leakage at a
// bystander, and writes the device's capture to capture.wav so you can
// listen to what the victim actually recorded.
//
// The success curve at the end runs through the experiment engine: a
// distance grid over the prepared session, executed on the thread pool
// and written to range_curve.csv for plotting.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attack/leakage.h"
#include "audio/wav_io.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace ivc;

  const std::string mode = argc > 1 ? argv[1] : "split";
  const double power = argc > 2 ? std::atof(argv[2]) : 0.0;
  const double distance = argc > 3 ? std::atof(argv[3]) : 5.0;
  const std::string command = argc > 4 ? argv[4] : "open_door";

  sim::attack_scenario sc;
  if (mode == "mono") {
    sc.rig = attack::monolithic_rig(power > 0.0 ? power : 18.7);
  } else {
    sc.rig = attack::long_range_rig();
    if (power > 0.0) {
      sc.rig.total_power_w = power;
    }
  }
  sc.command_id = command;
  sc.distance_m = distance;

  std::printf("rig: %s, %.1f W total, %zu speaker element(s)\n", mode.c_str(),
              sc.rig.total_power_w, static_cast<std::size_t>(
                  sc.rig.mode == attack::rig_mode::monolithic
                      ? 1
                      : sc.rig.splitter.num_chunks + 1));
  std::printf("command: \"%s\" at %.1f m from a %s\n",
              synth::command_by_id(command).text.c_str(), distance,
              sc.device.name.c_str());

  sim::attack_session session{sc, 2'024};
  const sim::success_estimate est = sim::estimate_success(session, 8);
  std::printf("success: %.0f%% (%zu/%zu), mean intelligibility %.2f\n",
              100.0 * est.rate, est.successes, est.trials,
              est.mean_intelligibility);

  const attack::leakage_report leak = attack::measure_leakage(
      session.rig().array, acoustics::vec3{0.0, 1.0, 0.0},
      sc.environment.air);
  std::printf("bystander at 1 m hears: %s (worst margin %+.1f dB at %.0f Hz)\n",
              leak.audibility.audible ? "AUDIBLE LEAKAGE" : "nothing",
              leak.audibility.worst_margin_db, leak.audibility.worst_band_hz);

  const sim::trial_result r = session.run_trial(0);
  audio::write_wav("capture.wav", r.capture);
  std::printf("device capture written to capture.wav (recognized: %s)\n",
              r.recognition.accepted() ? r.recognition.command_id->c_str()
                                       : "rejected");

  // Sketch the success-vs-distance curve around the requested point —
  // one engine run over a distance grid, all points in parallel.
  std::vector<double> curve_distances;
  for (double d = std::max(0.5, distance - 3.0); d <= distance + 3.0;
       d += 1.0) {
    curve_distances.push_back(d);
  }
  sim::run_config cfg;
  cfg.trials_per_point = 4;
  const sim::result_table curve = sim::engine{cfg}.run_over(
      session, sim::grid::cartesian({sim::distance_axis(curve_distances)}));

  std::printf("\nsuccess curve:\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double rate = curve.metric(i, "rate");
    std::printf("  %4.1f m: %3.0f%%  %s\n", curve.at(i).coords[0],
                100.0 * rate,
                std::string(static_cast<std::size_t>(rate * 30.0), '#')
                    .c_str());
  }
  curve.write_csv_file("range_curve.csv");
  std::printf("curve written to range_curve.csv\n");
  return 0;
}
