// defense_demo: train the detector, then watch it vet a live audio feed.
//
// Simulates a deployment: a stream of genuine requests with one injected
// command hidden in the middle, fed block-by-block through the streaming
// detector in front of the recognizer. The detector must veto the
// injected command and pass the genuine ones.
#include <cstdio>

#include "audio/ops.h"
#include "defense/classifier.h"
#include "defense/stream.h"
#include "sim/corpus.h"
#include "sim/scenario.h"

int main() {
  using namespace ivc;

  std::printf("training the defense on a simulated corpus...\n");
  sim::corpus_config cfg;
  cfg.rig = attack::long_range_rig();
  cfg.genuine_distances_m = {0.5, 2.0};
  cfg.genuine_levels_db = {62.0, 70.0};
  cfg.attack_distances_m = {2.0, 5.0};
  cfg.attack_powers_w = {120.0};
  cfg.max_attack_commands = 5;
  cfg.max_genuine_phrases = 10;
  const sim::defense_corpus corpus = sim::build_defense_corpus(cfg, 31);
  defense::logistic_classifier clf;
  clf.train(corpus.train);
  std::printf("held-out accuracy: %.1f%% on %zu captures\n\n",
              100.0 * clf.accuracy(corpus.test), corpus.test.size());

  // Assemble the "day in the life" feed: genuine, genuine, ATTACK,
  // genuine.
  struct segment {
    const char* label;
    audio::buffer capture;
  };
  std::vector<segment> feed;
  ivc::rng rng{32};
  sim::genuine_scenario g;
  g.phrase_id = "play_music";
  feed.push_back({"genuine: play music", run_genuine_capture(g, rng)});
  g.phrase_id = "what_time";
  feed.push_back({"genuine: what time is it", run_genuine_capture(g, rng)});

  sim::attack_scenario atk;
  atk.rig = attack::long_range_rig();
  atk.command_id = "open_door";
  atk.distance_m = 6.0;
  sim::attack_session session{atk, 33};
  feed.push_back({"INJECTED: open the front door (6 m, inaudible)",
                  session.run_trial(0).capture});

  g.phrase_id = "weather_today";
  feed.push_back({"genuine: what is the weather today",
                  run_genuine_capture(g, rng)});

  // Stream every segment through the detector in 100 ms blocks.
  defense::stream_detector detector{defense::classifier_detector{clf}};
  for (const segment& seg : feed) {
    detector.reset();
    double worst = 0.0;
    bool flagged = false;
    const std::size_t block =
        static_cast<std::size_t>(0.1 * seg.capture.sample_rate_hz);
    for (std::size_t start = 0; start < seg.capture.size(); start += block) {
      const std::size_t len = std::min(block, seg.capture.size() - start);
      audio::buffer piece{{seg.capture.samples.begin() +
                               static_cast<std::ptrdiff_t>(start),
                           seg.capture.samples.begin() +
                               static_cast<std::ptrdiff_t>(start + len)},
                          seg.capture.sample_rate_hz};
      for (const defense::stream_event& e : detector.feed(piece)) {
        worst = std::max(worst, e.score);
        flagged |= e.is_attack;
      }
    }
    for (const defense::stream_event& e : detector.finish()) {
      worst = std::max(worst, e.score);
      flagged |= e.is_attack;
    }
    std::printf("%-48s -> %s (max score %.2f)\n", seg.label,
                flagged ? "VETOED as inaudible-injection" : "passed", worst);
  }
  return 0;
}
