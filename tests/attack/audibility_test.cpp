#include "attack/audibility.h"

#include <cmath>
#include <gtest/gtest.h>

#include "audio/generate.h"
#include "common/units.h"

namespace ivc::attack {
namespace {

TEST(audibility, threshold_curve_shape) {
  // The ear is most sensitive around 3-4 kHz and deaf-ish at the edges.
  const double at_100 = hearing_threshold_db_spl(100.0);
  const double at_1k = hearing_threshold_db_spl(1'000.0);
  const double at_3k3 = hearing_threshold_db_spl(3'300.0);
  const double at_12k = hearing_threshold_db_spl(12'000.0);
  EXPECT_GT(at_100, at_1k);
  EXPECT_GT(at_1k, at_3k3);
  EXPECT_GT(at_12k, at_3k3);
  EXPECT_NEAR(at_1k, 3.4, 1.5);   // Terhardt at 1 kHz ≈ 3.4 dB SPL
  EXPECT_LT(at_3k3, 0.0);         // dips below 0 dB SPL near 3.3 kHz
  EXPECT_GT(at_100, 20.0);
}

TEST(audibility, ultrasound_and_infrasound_are_never_audible) {
  EXPECT_TRUE(std::isinf(hearing_threshold_db_spl(25'000.0)));
  EXPECT_TRUE(std::isinf(hearing_threshold_db_spl(40'000.0)));
  EXPECT_TRUE(std::isinf(hearing_threshold_db_spl(10.0)));
}

TEST(audibility, a_weighting_reference_points) {
  EXPECT_NEAR(a_weighting_db(1'000.0), 0.0, 0.3);
  EXPECT_NEAR(a_weighting_db(100.0), -19.1, 1.5);
  EXPECT_NEAR(a_weighting_db(10'000.0), -2.5, 1.5);
  EXPECT_LT(a_weighting_db(20.0), -45.0);
}

TEST(audibility, loud_voice_band_tone_is_audible) {
  // 60 dB SPL at 1 kHz: far above threshold.
  const double amp = ivc::spl_db_to_pa(60.0) * std::sqrt(2.0);
  const audio::buffer tone = audio::tone(1'000.0, 0.5, 48'000.0, amp);
  const audibility_report r = analyze_audibility(tone);
  EXPECT_TRUE(r.audible);
  EXPECT_NEAR(r.worst_band_hz, 1'000.0, 150.0);
  EXPECT_NEAR(r.worst_margin_db, 60.0 - hearing_threshold_db_spl(1'000.0),
              3.0);
}

TEST(audibility, loud_ultrasound_is_inaudible) {
  const double amp = ivc::spl_db_to_pa(120.0) * std::sqrt(2.0);
  const audio::buffer tone = audio::tone(40'000.0, 0.2, 192'000.0, amp);
  const audibility_report r = analyze_audibility(tone);
  EXPECT_FALSE(r.audible);
}

TEST(audibility, quiet_low_frequency_tone_is_inaudible) {
  // 35 dB SPL at 40 Hz is well below the ~50 dB threshold there.
  const double amp = ivc::spl_db_to_pa(35.0) * std::sqrt(2.0);
  const audio::buffer tone = audio::tone(40.0, 1.0, 48'000.0, amp);
  const audibility_report r = analyze_audibility(tone);
  EXPECT_FALSE(r.audible);
  // The same level at 1 kHz would be audible.
  const audio::buffer mid = audio::tone(1'000.0, 1.0, 48'000.0, amp);
  EXPECT_TRUE(analyze_audibility(mid).audible);
}

TEST(audibility, report_covers_third_octave_bands) {
  const auto& centers = third_octave_centers_hz();
  EXPECT_GE(centers.size(), 25u);
  EXPECT_DOUBLE_EQ(centers.front(), 25.0);
  EXPECT_DOUBLE_EQ(centers.back(), 16'000.0);
  for (std::size_t i = 1; i < centers.size(); ++i) {
    // Successive third-octave centers are ~2^(1/3) apart.
    EXPECT_NEAR(centers[i] / centers[i - 1], std::pow(2.0, 1.0 / 3.0), 0.06);
  }
}

TEST(audibility, a_weighted_level_reported) {
  const double amp = ivc::spl_db_to_pa(70.0) * std::sqrt(2.0);
  const audio::buffer tone = audio::tone(1'000.0, 0.5, 48'000.0, amp);
  const audibility_report r = analyze_audibility(tone);
  EXPECT_NEAR(r.a_weighted_spl_db, 70.0, 2.0);
}

}  // namespace
}  // namespace ivc::attack
