#include "attack/splitter.h"

#include <cmath>
#include <gtest/gtest.h>

#include "attack/conditioner.h"
#include "audio/metrics.h"
#include "common/rng.h"
#include "dsp/correlate.h"
#include "dsp/spectrum.h"
#include "synth/commands.h"

namespace ivc::attack {
namespace {

audio::buffer conditioned_command() {
  ivc::rng rng{60};
  const audio::buffer cmd = synth::render_command(
      synth::command_by_id("take_picture"), synth::male_voice(), rng,
      16'000.0);
  conditioner_config cfg;
  cfg.output_rate_hz = 96'000.0;  // cheaper for tests; carrier fits below
  return condition_command(cmd, cfg);
}

splitter_config test_config(std::size_t chunks) {
  splitter_config cfg;
  cfg.num_chunks = chunks;
  cfg.carrier_hz = 36'000.0;
  cfg.voice_low_hz = 100.0;
  cfg.voice_high_hz = 4'000.0;
  return cfg;
}

TEST(splitter, produces_one_drive_per_chunk_plus_carrier) {
  const audio::buffer base = conditioned_command();
  const split_plan plan = split_spectrum(base, test_config(8));
  EXPECT_EQ(plan.chunk_drives.size(), 8u);
  EXPECT_EQ(plan.bands.size(), 8u);
  EXPECT_EQ(plan.carrier_drive.size(), base.size());
  EXPECT_DOUBLE_EQ(plan.carrier_hz, 36'000.0);
  for (const audio::buffer& d : plan.chunk_drives) {
    EXPECT_EQ(d.size(), base.size());
    EXPECT_LE(audio::peak(d.samples), 0.95 + 1e-9);
  }
}

TEST(splitter, bands_partition_voice_range) {
  const split_plan plan =
      split_spectrum(conditioned_command(), test_config(10));
  EXPECT_DOUBLE_EQ(plan.bands.front().low_hz, 100.0);
  EXPECT_DOUBLE_EQ(plan.bands.back().high_hz, 4'000.0);
  for (std::size_t k = 1; k < plan.bands.size(); ++k) {
    EXPECT_DOUBLE_EQ(plan.bands[k].low_hz, plan.bands[k - 1].high_hz);
  }
}

TEST(splitter, each_chunk_occupies_its_slice_above_carrier) {
  const audio::buffer base = conditioned_command();
  const splitter_config cfg = test_config(8);
  const split_plan plan = split_spectrum(base, cfg);
  for (std::size_t k = 0; k < plan.chunk_drives.size(); ++k) {
    const chunk_band band = plan.bands[k];
    const auto psd =
        ivc::dsp::welch_psd(plan.chunk_drives[k].samples, 96'000.0);
    const double width = band.high_hz - band.low_hz;
    const double in_slice = psd.band_power(
        cfg.carrier_hz + band.low_hz - 0.3 * width,
        cfg.carrier_hz + band.high_hz + 0.3 * width);
    const double total = psd.band_power(100.0, 47'000.0);
    EXPECT_GT(in_slice, 0.9 * total) << "chunk " << k;
    // Single-sideband: nothing below the carrier.
    const double below = psd.band_power(
        cfg.carrier_hz - band.high_hz - width, cfg.carrier_hz - 50.0);
    EXPECT_LT(below, 0.02 * std::max(total, 1e-15)) << "chunk " << k;
  }
}

TEST(splitter, chunk_self_products_confined_to_chunk_width) {
  // The design property that makes per-speaker leakage inaudible:
  // squaring one chunk drive puts baseband energy only below the chunk
  // width (plus transition slack).
  const audio::buffer base = conditioned_command();
  const splitter_config cfg = test_config(16);
  const split_plan plan = split_spectrum(base, cfg);
  const double width = (cfg.voice_high_hz - cfg.voice_low_hz) / 16.0;
  for (std::size_t k = 0; k < plan.chunk_drives.size(); ++k) {
    std::vector<double> squared(plan.chunk_drives[k].size());
    for (std::size_t i = 0; i < squared.size(); ++i) {
      const double v = plan.chunk_drives[k].samples[i];
      squared[i] = v * v;
    }
    const auto psd = ivc::dsp::welch_psd(squared, 96'000.0);
    const double leak_band = psd.band_power(1.0, width * 1.6);
    // Audible band beyond the chunk width up to 16 kHz.
    const double beyond = psd.band_power(width * 1.6, 16'000.0);
    EXPECT_LT(beyond, 0.05 * std::max(leak_band, 1e-15)) << "chunk " << k;
  }
}

TEST(splitter, chunk_ensemble_reconstructs_band_passed_input) {
  const audio::buffer base = conditioned_command();
  const splitter_config cfg = test_config(12);
  const audio::buffer recon = sum_of_chunks_baseband(base, cfg);
  ASSERT_EQ(recon.size(), base.size());
  // Compare in the interior band (edges are shaped by the mask).
  const double corr =
      ivc::dsp::pearson_correlation(recon.samples, base.samples);
  EXPECT_GT(corr, 0.97);
}

TEST(splitter, single_chunk_degenerates_to_full_band) {
  const audio::buffer base = conditioned_command();
  const split_plan plan = split_spectrum(base, test_config(1));
  EXPECT_EQ(plan.chunk_drives.size(), 1u);
  const auto psd = ivc::dsp::welch_psd(plan.chunk_drives[0].samples, 96'000.0);
  const double sideband = psd.band_power(36'100.0, 40'000.0);
  const double total = psd.band_power(100.0, 47'000.0);
  EXPECT_GT(sideband, 0.9 * total);
}

TEST(splitter, rejects_bad_configs) {
  const audio::buffer base = conditioned_command();
  splitter_config bad = test_config(8);
  bad.carrier_hz = 94'000.0;  // carrier + band exceeds Nyquist
  EXPECT_THROW(split_spectrum(base, bad), std::invalid_argument);
  bad = test_config(0);
  EXPECT_THROW(split_spectrum(base, bad), std::invalid_argument);
  bad = test_config(4);
  bad.voice_low_hz = 5'000.0;
  bad.voice_high_hz = 4'000.0;
  EXPECT_THROW(split_spectrum(base, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::attack
