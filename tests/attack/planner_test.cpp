#include "attack/planner.h"

#include <cmath>
#include <gtest/gtest.h>

#include "attack/leakage.h"
#include "audio/metrics.h"
#include "common/rng.h"
#include "dsp/spectrum.h"
#include "synth/commands.h"

namespace ivc::attack {
namespace {

audio::buffer short_command() {
  ivc::rng rng{70};
  return synth::render_command(synth::command_by_id("mute_yourself"),
                               synth::male_voice(), rng, 16'000.0);
}

rig_config small_split_rig() {
  rig_config cfg;
  cfg.mode = rig_mode::split_array;
  cfg.modulator.carrier_hz = 40'000.0;
  cfg.splitter.num_chunks = 6;
  cfg.total_power_w = 30.0;
  return cfg;
}

TEST(planner, monolithic_rig_has_single_element) {
  const attack_rig rig = build_attack_rig(short_command(), monolithic_rig());
  EXPECT_EQ(rig.array.size(), 1u);
  EXPECT_EQ(rig.num_speakers, 1u);
  EXPECT_NEAR(rig.array.total_power_w(), 18.7, 1e-9);
}

TEST(planner, split_rig_has_chunks_plus_carrier) {
  const attack_rig rig = build_attack_rig(short_command(), small_split_rig());
  EXPECT_EQ(rig.array.size(), 7u);  // 6 chunks + carrier
  EXPECT_NEAR(rig.array.total_power_w(), 30.0, 1e-9);
  // Carrier element gets the configured fraction.
  EXPECT_NEAR(rig.array.elements()[0].input_power_w, 0.4 * 30.0, 1e-9);
}

TEST(planner, elements_form_centered_line) {
  rig_config cfg = small_split_rig();
  cfg.element_spacing_m = 0.1;
  const attack_rig rig = build_attack_rig(short_command(), cfg);
  double mean_x = 0.0;
  for (const auto& e : rig.array.elements()) {
    mean_x += e.position.x;
  }
  mean_x /= static_cast<double>(rig.array.size());
  EXPECT_NEAR(mean_x, 0.0, 1e-9);
  // Adjacent spacing respected.
  EXPECT_NEAR(rig.array.elements()[1].position.x -
                  rig.array.elements()[0].position.x,
              0.1, 1e-9);
}

TEST(planner, transducer_stack_raises_sensitivity_and_rating) {
  rig_config cfg = small_split_rig();
  cfg.transducers_per_element = 4;
  const attack_rig rig = build_attack_rig(short_command(), cfg);
  const auto& el = rig.array.elements()[0].speaker;
  EXPECT_NEAR(el.sensitivity_db_spl,
              acoustics::ultrasonic_tweeter().sensitivity_db_spl +
                  20.0 * std::log10(4.0),
              1e-9);
  EXPECT_NEAR(el.rated_power_w,
              4.0 * acoustics::ultrasonic_tweeter().rated_power_w, 1e-9);
}

TEST(planner, long_range_preset_is_buildable) {
  const attack_rig rig = build_attack_rig(short_command(), long_range_rig());
  EXPECT_EQ(rig.array.size(), 17u);
  EXPECT_GT(rig.array.total_power_w(), 100.0);
}

TEST(planner, rejects_power_beyond_element_rating) {
  rig_config cfg = monolithic_rig();
  cfg.total_power_w = 1'000.0;
  EXPECT_THROW(build_attack_rig(short_command(), cfg), std::invalid_argument);
  rig_config split = small_split_rig();
  split.total_power_w = 5'000.0;
  EXPECT_THROW(build_attack_rig(short_command(), split),
               std::invalid_argument);
}

TEST(planner, build_equals_condition_then_assemble) {
  // build_attack_rig is exactly the two exposed stages composed — the
  // adaptive-attacker sweep re-runs only the second one.
  rig_config cfg = small_split_rig();
  cancellation_config cancel;
  cancel.accuracy = 0.5;
  cfg.cancellation = cancel;
  const audio::buffer command = short_command();

  const attack_rig direct = build_attack_rig(command, cfg);
  const attack_rig staged =
      assemble_attack_rig(condition_for_rig(command, cfg), cfg);
  EXPECT_EQ(direct.num_speakers, staged.num_speakers);
  EXPECT_EQ(direct.conditioned_baseband.samples,
            staged.conditioned_baseband.samples);
  ASSERT_EQ(direct.array.size(), staged.array.size());
  for (std::size_t i = 0; i < direct.array.size(); ++i) {
    EXPECT_EQ(direct.array.elements()[i].drive.samples,
              staged.array.elements()[i].drive.samples);
  }
}

TEST(planner, trace_cancellation_reduces_demodulated_m2) {
  // Build the predicted square-law output with and without cancellation
  // and compare the sub-120 Hz trace.
  ivc::rng rng{71};
  const audio::buffer cmd = short_command();
  conditioner_config ccfg;
  const audio::buffer base = condition_command(cmd, ccfg);
  modulator_config mod;

  cancellation_config cancel;
  cancel.accuracy = 1.0;
  const audio::buffer cancelled =
      apply_trace_cancellation(base, mod, cancel);

  const audio::buffer s_plain = am_modulate(base, mod);
  const audio::buffer s_cancel = am_modulate(cancelled, mod);
  const audio::buffer d_plain = square_law_demodulate(s_plain, 4'000.0, 16'000.0);
  const audio::buffer d_cancel =
      square_law_demodulate(s_cancel, 4'000.0, 16'000.0);

  const double trace_plain =
      ivc::dsp::band_power(d_plain.samples, 16'000.0, 20.0, 100.0);
  const double trace_cancel =
      ivc::dsp::band_power(d_cancel.samples, 16'000.0, 20.0, 100.0);
  EXPECT_LT(trace_cancel, 0.35 * trace_plain);

  // Zero-accuracy cancellation is the identity.
  cancellation_config off;
  off.accuracy = 0.0;
  const audio::buffer same = apply_trace_cancellation(base, mod, off);
  EXPECT_EQ(same.samples, base.samples);
}

TEST(planner, cancellation_validates_accuracy) {
  const audio::buffer base = condition_command(short_command(), {});
  cancellation_config bad;
  bad.accuracy = 1.5;
  EXPECT_THROW(apply_trace_cancellation(base, {}, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace ivc::attack
