#include "attack/leakage.h"

#include <gtest/gtest.h>

#include "attack/planner.h"
#include "common/rng.h"
#include "synth/commands.h"

namespace ivc::attack {
namespace {

audio::buffer short_command() {
  ivc::rng rng{44};
  return synth::render_command(synth::command_by_id("mute_yourself"),
                               synth::male_voice(), rng, 16'000.0);
}

TEST(leakage, monolithic_rig_leaks_audibly_at_high_power) {
  const attack_rig rig =
      build_attack_rig(short_command(), monolithic_rig(18.7));
  const leakage_report report = measure_leakage(
      rig.array, acoustics::vec3{0.0, 1.0, 0.0}, acoustics::air_model{});
  EXPECT_TRUE(report.audibility.audible);
  EXPECT_GT(report.nonlinear_excess_db, 5.0);
  // The leak is the demodulated command: voice band, not sub-bass.
  EXPECT_GT(report.audibility.worst_band_hz, 200.0);
  EXPECT_GT(report.ultrasound_spl_db, 100.0);  // the carrier is loud
}

TEST(leakage, split_rig_stays_below_threshold) {
  rig_config cfg = long_range_rig();
  const attack_rig rig = build_attack_rig(short_command(), cfg);
  const leakage_report report = measure_leakage(
      rig.array, acoustics::vec3{0.0, 1.0, 0.0}, acoustics::air_model{});
  EXPECT_FALSE(report.audibility.audible);
  EXPECT_LT(report.audibility.worst_margin_db, -10.0);
  EXPECT_LT(report.nonlinear_excess_db, 6.0);
}

TEST(leakage, monolithic_leak_grows_with_power) {
  const audio::buffer cmd = short_command();
  const attack_rig low = build_attack_rig(cmd, monolithic_rig(4.0));
  const attack_rig high = build_attack_rig(cmd, monolithic_rig(30.0));
  const acoustics::vec3 bystander{0.0, 1.0, 0.0};
  const acoustics::air_model air;
  const double margin_low =
      measure_leakage(low.array, bystander, air).audibility.worst_margin_db;
  const double margin_high =
      measure_leakage(high.array, bystander, air).audibility.worst_margin_db;
  EXPECT_GT(margin_high, margin_low + 6.0);
}

TEST(leakage, predicted_chunk_band_is_zero_to_width) {
  const chunk_band band{1'200.0, 1'450.0};
  const chunk_band leak = predicted_chunk_leakage_band(band);
  EXPECT_DOUBLE_EQ(leak.low_hz, 0.0);
  EXPECT_DOUBLE_EQ(leak.high_hz, 250.0);
}

}  // namespace
}  // namespace ivc::attack
