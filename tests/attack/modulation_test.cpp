#include <cmath>
#include <gtest/gtest.h>

#include "attack/conditioner.h"
#include "attack/modulator.h"
#include "audio/generate.h"
#include "audio/metrics.h"
#include "common/rng.h"
#include "dsp/correlate.h"
#include "dsp/goertzel.h"
#include "dsp/resample.h"
#include "dsp/spectrum.h"
#include "synth/commands.h"

namespace ivc::attack {
namespace {

audio::buffer test_command(std::uint64_t seed = 50) {
  ivc::rng rng{seed};
  return synth::render_command(synth::command_by_id("mute_yourself"),
                               synth::male_voice(), rng, 16'000.0);
}

TEST(conditioner, band_limits_and_upsamples) {
  const audio::buffer cmd = test_command();
  conditioner_config cfg;
  cfg.voice_bandwidth_hz = 4'000.0;
  cfg.output_rate_hz = 192'000.0;
  const audio::buffer out = condition_command(cmd, cfg);
  EXPECT_DOUBLE_EQ(out.sample_rate_hz, 192'000.0);
  EXPECT_NEAR(audio::peak(out.samples), 0.95, 0.01);
  const auto psd = ivc::dsp::welch_psd(out.samples, 192'000.0);
  const double in_band = psd.band_power(100.0, 4'000.0);
  const double out_band = psd.band_power(6'000.0, 90'000.0);
  EXPECT_GT(in_band, 1'000.0 * std::max(out_band, 1e-15));
}

TEST(conditioner, highpass_removes_rumble) {
  // Synthetic rumble at 30 Hz plus voice tone at 1 kHz.
  audio::buffer cmd = audio::tone(1'000.0, 1.0, 16'000.0, 0.5);
  const audio::buffer rumble = audio::tone(30.0, 1.0, 16'000.0, 0.5);
  for (std::size_t i = 0; i < cmd.size(); ++i) {
    cmd.samples[i] += rumble.samples[i];
  }
  const audio::buffer out = condition_command(cmd, {});
  const auto psd = ivc::dsp::welch_psd(out.samples, 192'000.0);
  EXPECT_GT(psd.band_power(900.0, 1'100.0),
            100.0 * psd.band_power(10.0, 50.0));
}

TEST(conditioner, rejects_bandwidth_beyond_nyquist) {
  const audio::buffer cmd = test_command();
  conditioner_config cfg;
  cfg.voice_bandwidth_hz = 9'000.0;  // > 8 kHz Nyquist of the input
  EXPECT_THROW(condition_command(cmd, cfg), std::invalid_argument);
}

TEST(modulator, am_spectrum_sits_around_carrier) {
  const audio::buffer base = condition_command(test_command(), {});
  modulator_config cfg;
  cfg.carrier_hz = 40'000.0;
  const audio::buffer s = am_modulate(base, cfg);
  EXPECT_LE(audio::peak(s.samples), 1.0 + 1e-9);
  const auto psd = ivc::dsp::welch_psd(s.samples, 192'000.0);
  const double near_carrier = psd.band_power(35'000.0, 45'000.0);
  const double audible = psd.band_power(20.0, 16'000.0);
  EXPECT_GT(near_carrier, 1e6 * std::max(audible, 1e-18));
}

TEST(modulator, dsb_sc_suppresses_carrier) {
  const audio::buffer base = condition_command(test_command(), {});
  modulator_config cfg;
  cfg.carrier_hz = 40'000.0;
  const audio::buffer am = am_modulate(base, cfg);
  const audio::buffer sc = dsb_sc_modulate(base, cfg);
  const std::span<const double> am_mid{am.samples.data() + 50'000, 100'000};
  const std::span<const double> sc_mid{sc.samples.data() + 50'000, 100'000};
  const double carrier_am =
      ivc::dsp::goertzel_amplitude(am_mid, 192'000.0, 40'000.0);
  const double carrier_sc =
      ivc::dsp::goertzel_amplitude(sc_mid, 192'000.0, 40'000.0);
  EXPECT_LT(carrier_sc, 0.05 * carrier_am);
}

TEST(modulator, square_law_demodulation_recovers_command) {
  // The core attack identity: square the AM drive, low-pass, and the
  // original (band-limited) command re-appears.
  const audio::buffer cmd = test_command();
  const audio::buffer base = condition_command(cmd, {});
  const audio::buffer s = am_modulate(base, {});
  const audio::buffer demod = square_law_demodulate(s, 4'000.0, 16'000.0);
  // Compare against the band-limited command at 16 kHz.
  const std::vector<double> reference =
      ivc::dsp::resample(base.samples, 192'000.0, 16'000.0);
  const double corr = ivc::dsp::aligned_correlation(
      demod.samples, reference, 256);
  EXPECT_GT(std::abs(corr), 0.9);
}

TEST(modulator, carrier_tone_is_pure) {
  const audio::buffer base = condition_command(test_command(), {});
  const audio::buffer c = carrier_tone(base, {});
  const auto psd = ivc::dsp::welch_psd(c.samples, 192'000.0);
  const double at_carrier = psd.band_power(39'000.0, 41'000.0);
  const double elsewhere = psd.band_power(100.0, 35'000.0);
  EXPECT_GT(at_carrier, 1e6 * std::max(elsewhere, 1e-18));
}

TEST(modulator, rejects_bad_configs) {
  const audio::buffer base = condition_command(test_command(), {});
  modulator_config bad;
  bad.carrier_hz = 10'000.0;  // audible carrier
  EXPECT_THROW(am_modulate(base, bad), std::invalid_argument);
  modulator_config clip;
  clip.carrier_level = 0.7;
  clip.depth_level = 0.7;  // sums above 1
  EXPECT_THROW(am_modulate(base, clip), std::invalid_argument);
  modulator_config high;
  high.carrier_hz = 100'000.0;  // above Nyquist at 192 kHz
  EXPECT_THROW(am_modulate(base, high), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::attack
