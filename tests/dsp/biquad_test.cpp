#include "dsp/biquad.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "dsp/goertzel.h"

namespace ivc::dsp {
namespace {

TEST(biquad, lowpass_response_at_key_frequencies) {
  const auto lp = butterworth_lowpass(4, 1'000.0, 16'000.0);
  EXPECT_NEAR(lp.response_at(0.0, 16'000.0), 1.0, 1e-6);
  // -3 dB at the cutoff, by construction.
  EXPECT_NEAR(lp.response_at(1'000.0, 16'000.0), 1.0 / std::sqrt(2.0), 1e-3);
  // 4th order: -24 dB/octave.
  const double octave_up = lp.response_at(2'000.0, 16'000.0);
  EXPECT_NEAR(20.0 * std::log10(octave_up), -24.0, 1.5);
}

TEST(biquad, highpass_response_mirrors_lowpass) {
  const auto hp = butterworth_highpass(4, 1'000.0, 16'000.0);
  EXPECT_LT(hp.response_at(100.0, 16'000.0), 0.01);
  EXPECT_NEAR(hp.response_at(1'000.0, 16'000.0), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(hp.response_at(6'000.0, 16'000.0), 1.0, 0.01);
}

TEST(biquad, odd_orders_produce_first_order_section) {
  const auto lp = butterworth_lowpass(5, 1'000.0, 16'000.0);
  EXPECT_EQ(lp.sections().size(), 3u);  // 2 biquads + 1 first-order
  EXPECT_NEAR(lp.response_at(1'000.0, 16'000.0), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(biquad, designs_are_stable_across_orders_and_cutoffs) {
  for (const std::size_t order : {1u, 2u, 3u, 4u, 6u, 8u}) {
    for (const double fc : {20.0, 100.0, 1'000.0, 7'000.0}) {
      EXPECT_TRUE(butterworth_lowpass(order, fc, 16'000.0).is_stable())
          << "lp order=" << order << " fc=" << fc;
      EXPECT_TRUE(butterworth_highpass(order, fc, 16'000.0).is_stable())
          << "hp order=" << order << " fc=" << fc;
    }
  }
}

TEST(biquad, bandpass_passes_center_rejects_edges) {
  const auto bp = butterworth_bandpass(2, 500.0, 2'000.0, 16'000.0);
  EXPECT_LT(bp.response_at(50.0, 16'000.0), 0.02);
  EXPECT_GT(bp.response_at(1'000.0, 16'000.0), 0.9);
  EXPECT_LT(bp.response_at(7'000.0, 16'000.0), 0.02);
}

TEST(biquad, process_attenuates_stopband_tone) {
  const double fs = 16'000.0;
  const auto lp = butterworth_lowpass(6, 1'000.0, fs);
  std::vector<double> sig(8'000);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = std::sin(two_pi * 4'000.0 * static_cast<double>(i) / fs);
  }
  const auto out = lp.process(sig);
  // Measure on the tail (past the transient).
  const std::span<const double> tail{out.data() + 4'000, 4'000};
  EXPECT_LT(goertzel_amplitude(tail, fs, 4'000.0), 1e-3);
}

TEST(biquad, streaming_filter_matches_block_processing) {
  const double fs = 16'000.0;
  const auto lp = butterworth_lowpass(4, 2'000.0, fs);
  std::vector<double> sig(1'000);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = std::sin(two_pi * 700.0 * static_cast<double>(i) / fs) +
             0.3 * std::sin(two_pi * 5'000.0 * static_cast<double>(i) / fs);
  }
  const auto block = lp.process(sig);

  iir_filter stream{lp};
  std::vector<double> streamed(sig.size());
  // Feed in uneven chunks.
  std::size_t pos = 0;
  for (const std::size_t chunk : {7u, 100u, 13u, 380u, 500u}) {
    const std::size_t take = std::min(chunk, sig.size() - pos);
    stream.process_block({sig.data() + pos, take}, {streamed.data() + pos, take});
    pos += take;
  }
  while (pos < sig.size()) {
    streamed[pos] = stream.process_sample(sig[pos]);
    ++pos;
  }
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(streamed[i], block[i], 1e-12);
  }
}

TEST(biquad, reset_clears_state) {
  const auto lp = butterworth_lowpass(2, 1'000.0, 16'000.0);
  iir_filter f{lp};
  const double first = f.process_sample(1.0);
  f.process_sample(0.5);
  f.reset();
  EXPECT_DOUBLE_EQ(f.process_sample(1.0), first);
}

TEST(biquad, rejects_bad_designs) {
  EXPECT_THROW(butterworth_lowpass(0, 1'000.0, 16'000.0),
               std::invalid_argument);
  EXPECT_THROW(butterworth_lowpass(4, 9'000.0, 16'000.0),
               std::invalid_argument);
  EXPECT_THROW(butterworth_bandpass(2, 3'000.0, 1'000.0, 16'000.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp
