#include "dsp/fir.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "common/rng.h"
#include "dsp/goertzel.h"

namespace ivc::dsp {
namespace {

TEST(fir, lowpass_passband_and_stopband) {
  const auto taps = design_fir_lowpass(201, 1'000.0, 16'000.0);
  EXPECT_NEAR(fir_response_at(taps, 0.0, 16'000.0), 1.0, 0.01);
  EXPECT_NEAR(fir_response_at(taps, 500.0, 16'000.0), 1.0, 0.01);
  EXPECT_NEAR(fir_response_at(taps, 1'000.0, 16'000.0), 0.5, 0.05);
  EXPECT_LT(fir_response_at(taps, 2'000.0, 16'000.0), 1e-3);
  EXPECT_LT(fir_response_at(taps, 6'000.0, 16'000.0), 1e-3);
}

TEST(fir, highpass_inverts_lowpass) {
  const auto taps = design_fir_highpass(201, 2'000.0, 16'000.0);
  EXPECT_LT(fir_response_at(taps, 100.0, 16'000.0), 1e-3);
  EXPECT_NEAR(fir_response_at(taps, 5'000.0, 16'000.0), 1.0, 0.01);
}

TEST(fir, bandpass_selects_band) {
  const auto taps = design_fir_bandpass(301, 1'000.0, 3'000.0, 16'000.0);
  EXPECT_LT(fir_response_at(taps, 200.0, 16'000.0), 1e-3);
  EXPECT_NEAR(fir_response_at(taps, 2'000.0, 16'000.0), 1.0, 0.01);
  EXPECT_LT(fir_response_at(taps, 5'000.0, 16'000.0), 1e-3);
}

TEST(fir, bandstop_rejects_band) {
  const auto taps = design_fir_bandstop(301, 1'000.0, 3'000.0, 16'000.0);
  EXPECT_NEAR(fir_response_at(taps, 200.0, 16'000.0), 1.0, 0.01);
  EXPECT_LT(fir_response_at(taps, 2'000.0, 16'000.0), 1e-3);
  EXPECT_NEAR(fir_response_at(taps, 6'000.0, 16'000.0), 1.0, 0.01);
}

TEST(fir, taps_are_symmetric_linear_phase) {
  const auto taps = design_fir_lowpass(101, 1'000.0, 16'000.0);
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-14);
  }
}

TEST(fir, convolve_matches_manual_small_case) {
  const std::vector<double> sig{1.0, 2.0, 3.0};
  const std::vector<double> taps{1.0, -1.0};
  const auto out = convolve(sig, taps);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[0], 1.0, 1e-12);
  EXPECT_NEAR(out[1], 1.0, 1e-12);
  EXPECT_NEAR(out[2], 1.0, 1e-12);
  EXPECT_NEAR(out[3], -3.0, 1e-12);
}

TEST(fir, fft_and_direct_convolution_agree) {
  ivc::rng rng{11};
  std::vector<double> sig(3'000);
  std::vector<double> taps(129);
  for (auto& v : sig) {
    v = rng.normal();
  }
  for (auto& v : taps) {
    v = rng.normal();
  }
  // Force both paths by exploiting the threshold: large product uses FFT.
  const auto fft_out = convolve(sig, taps);
  // Direct reference.
  std::vector<double> direct(sig.size() + taps.size() - 1, 0.0);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    for (std::size_t j = 0; j < taps.size(); ++j) {
      direct[i + j] += sig[i] * taps[j];
    }
  }
  ASSERT_EQ(fft_out.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(fft_out[i], direct[i], 1e-8);
  }
}

TEST(fir, filter_zero_delay_preserves_alignment) {
  // A slow sine passed through a low-pass must come out nearly in phase.
  const double fs = 8'000.0;
  std::vector<double> sig(4'000);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = std::sin(two_pi * 100.0 * static_cast<double>(i) / fs);
  }
  const auto taps = design_fir_lowpass(401, 500.0, fs);
  const auto out = filter_zero_delay(sig, taps);
  ASSERT_EQ(out.size(), sig.size());
  // Compare mid-section (edges have transients).
  for (std::size_t i = 1'000; i < 3'000; ++i) {
    EXPECT_NEAR(out[i], sig[i], 0.01);
  }
}

TEST(fir, apply_magnitude_response_scales_tones_independently) {
  const double fs = 16'000.0;
  std::vector<double> sig(8'192);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const double t = static_cast<double>(i);
    sig[i] = std::sin(two_pi * 1'000.0 * t / fs) +
             std::sin(two_pi * 3'000.0 * t / fs);
  }
  const auto out = apply_magnitude_response(sig, fs, [](double f) {
    return f < 2'000.0 ? 1.0 : 0.25;
  });
  EXPECT_NEAR(goertzel_amplitude(out, fs, 1'000.0), 1.0, 0.02);
  EXPECT_NEAR(goertzel_amplitude(out, fs, 3'000.0), 0.25, 0.02);
}

TEST(fir, design_rejects_bad_arguments) {
  EXPECT_THROW(design_fir_lowpass(100, 1'000.0, 16'000.0),
               std::invalid_argument);  // even taps
  EXPECT_THROW(design_fir_lowpass(101, 9'000.0, 16'000.0),
               std::invalid_argument);  // cutoff >= fs/2
  EXPECT_THROW(design_fir_bandpass(101, 3'000.0, 1'000.0, 16'000.0),
               std::invalid_argument);  // inverted band
  EXPECT_THROW(filter_zero_delay(std::vector<double>{1.0, 2.0},
                                 std::vector<double>{1.0, 1.0}),
               std::invalid_argument);  // even-length taps
}

}  // namespace
}  // namespace ivc::dsp
