#include "dsp/fft_plan.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "common/rng.h"

namespace ivc::dsp {
namespace {

// O(n^2) reference DFT of a real signal (ground truth for every fast
// path under test).
std::vector<cplx> reference_dft(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = -two_pi * static_cast<double>(k) *
                           static_cast<double>(i) / static_cast<double>(n);
      acc += x[i] * cplx{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  ivc::rng rng{seed};
  std::vector<double> x(n);
  for (double& v : x) {
    v = rng.normal();
  }
  return x;
}

TEST(fft_plan, rejects_non_pow2_sizes) {
  EXPECT_THROW((fft_plan{12}), std::invalid_argument);
  EXPECT_THROW(get_fft_plan(0), std::invalid_argument);
  EXPECT_THROW(get_fft_plan(48), std::invalid_argument);
}

TEST(fft_plan, rfft_matches_reference_dft_at_pow2_lengths) {
  for (const std::size_t n : {1u, 2u, 4u, 8u, 64u, 256u, 1024u}) {
    const std::vector<double> x = random_signal(n, 7 + n);
    const std::vector<cplx> ref = reference_dft(x);
    const std::vector<cplx> half = rfft(x);
    ASSERT_EQ(half.size(), n / 2 + 1) << "n=" << n;
    for (std::size_t k = 0; k < half.size(); ++k) {
      EXPECT_NEAR(half[k].real(), ref[k].real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(half[k].imag(), ref[k].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(fft_plan, rfft_matches_reference_dft_at_odd_lengths) {
  // Non-pow2 (including odd and prime) lengths route through Bluestein;
  // the half-spectrum contract is the same.
  for (const std::size_t n : {3u, 5u, 17u, 63u, 100u, 255u}) {
    const std::vector<double> x = random_signal(n, 31 + n);
    const std::vector<cplx> ref = reference_dft(x);
    const std::vector<cplx> half = rfft(x);
    ASSERT_EQ(half.size(), n / 2 + 1) << "n=" << n;
    for (std::size_t k = 0; k < half.size(); ++k) {
      EXPECT_NEAR(half[k].real(), ref[k].real(), 1e-7) << "n=" << n;
      EXPECT_NEAR(half[k].imag(), ref[k].imag(), 1e-7) << "n=" << n;
    }
  }
}

TEST(fft_plan, rfft_irfft_round_trips_at_pow2_and_odd_lengths) {
  for (const std::size_t n : {1u, 2u, 8u, 100u, 128u, 255u, 501u, 1024u}) {
    const std::vector<double> x = random_signal(n, 100 + n);
    const std::vector<double> back = irfft(rfft(x), n);
    ASSERT_EQ(back.size(), n) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], x[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(fft_plan, planned_complex_transform_matches_unplanned_fft) {
  ivc::rng rng{5};
  const std::size_t n = 512;
  std::vector<cplx> x(n);
  for (auto& v : x) {
    v = cplx{rng.normal(), rng.normal()};
  }
  // Unplanned reference through the public entry point.
  const std::vector<cplx> expected = fft(x);
  // Planned in-place execute.
  const auto plan = get_fft_plan(n);
  std::vector<cplx> data = x;
  plan->forward(data);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(data[i] - expected[i]), 0.0, 1e-9);
  }
  // And the inverse round-trips.
  plan->inverse(data);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(data[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(fft_plan, plan_cache_shares_one_plan_per_size) {
  const auto a = get_fft_plan(256);
  const auto b = get_fft_plan(256);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->size(), 256u);
  EXPECT_EQ(a->num_real_bins(), 129u);
  EXPECT_NE(a.get(), get_fft_plan(512).get());
}

TEST(fft_plan, member_rfft_needs_no_allocation_buffers_of_exact_size) {
  const std::size_t n = 64;
  const auto plan = get_fft_plan(n);
  const std::vector<double> x = random_signal(n, 9);
  std::vector<cplx> out(plan->num_real_bins());
  plan->rfft(x, out);
  const std::vector<cplx> expected = reference_dft(x);
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_NEAR(std::abs(out[k] - expected[k]), 0.0, 1e-9);
  }
  // irfft with a caller-owned workspace recovers the signal.
  std::vector<double> back(n);
  std::vector<cplx> work(plan->workspace_size());
  plan->irfft(out, back, work);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-10);
  }
  // Size mismatches are rejected rather than silently misread.
  std::vector<cplx> short_out(3);
  EXPECT_THROW(plan->rfft(x, short_out), std::invalid_argument);
  std::vector<cplx> no_work;
  EXPECT_THROW(plan->irfft(out, back, no_work), std::invalid_argument);
}

TEST(fft_plan, sine_lands_in_expected_half_spectrum_bin) {
  const std::size_t n = 256;
  const std::size_t k = 10;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(two_pi * static_cast<double>(k * i) / n);
  }
  const std::vector<cplx> half = rfft(x);
  EXPECT_NEAR(std::abs(half[k]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(half[k + 3]), 0.0, 1e-9);
}

}  // namespace
}  // namespace ivc::dsp
