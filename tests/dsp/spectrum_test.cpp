#include "dsp/spectrum.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "common/rng.h"

namespace ivc::dsp {
namespace {

TEST(spectrum, welch_psd_integrates_to_signal_power) {
  ivc::rng rng{21};
  std::vector<double> x(65'536);
  double power = 0.0;
  for (auto& v : x) {
    v = rng.normal(0.0, 0.5);
    power += v * v;
  }
  power /= static_cast<double>(x.size());
  const auto psd = welch_psd(x, 16'000.0);
  const double integrated = psd.band_power(0.0, 8'000.0);
  EXPECT_NEAR(integrated, power, 0.05 * power);
}

TEST(spectrum, tone_power_concentrates_in_band) {
  const double fs = 16'000.0;
  std::vector<double> x(32'768);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * 1'000.0 * static_cast<double>(i) / fs);
  }
  const auto psd = welch_psd(x, fs);
  // A unit sine has mean-square 0.5, almost all within ±50 Hz of 1 kHz.
  EXPECT_NEAR(psd.band_power(950.0, 1'050.0), 0.5, 0.02);
  EXPECT_LT(psd.band_power(2'000.0, 8'000.0), 1e-4);
}

TEST(spectrum, peak_frequency_finds_strongest_component) {
  const double fs = 16'000.0;
  std::vector<double> x(32'768);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = 0.3 * std::sin(two_pi * 500.0 * t) + std::sin(two_pi * 3'000.0 * t);
  }
  const auto psd = welch_psd(x, fs);
  EXPECT_NEAR(psd.peak_frequency(0.0, 8'000.0), 3'000.0, 10.0);
  EXPECT_NEAR(psd.peak_frequency(0.0, 1'000.0), 500.0, 10.0);
}

TEST(spectrum, band_power_ratio_db_matches_construction) {
  const double fs = 16'000.0;
  std::vector<double> x(65'536);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    // 1 kHz at amplitude 1, 3 kHz at amplitude 0.1 → power ratio -20 dB.
    x[i] = std::sin(two_pi * 1'000.0 * t) + 0.1 * std::sin(two_pi * 3'000.0 * t);
  }
  const double ratio = band_power_ratio_db(x, fs, 2'900.0, 3'100.0,
                                           900.0, 1'100.0);
  EXPECT_NEAR(ratio, -20.0, 0.5);
}

TEST(spectrum, short_signal_falls_back_to_single_frame) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * 0.1 * static_cast<double>(i));
  }
  const auto psd = welch_psd(x, 16'000.0);
  EXPECT_FALSE(psd.power.empty());
  EXPECT_GT(psd.band_power(0.0, 8'000.0), 0.0);
}

TEST(spectrum, rejects_bad_arguments) {
  EXPECT_THROW(welch_psd({}, 16'000.0), std::invalid_argument);
  const std::vector<double> x(1'024, 1.0);
  welch_config bad;
  bad.segment_size = 100;  // not a power of two
  EXPECT_THROW(welch_psd(x, 16'000.0, bad), std::invalid_argument);
  bad.segment_size = 256;
  bad.overlap = 256;
  EXPECT_THROW(welch_psd(x, 16'000.0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp
