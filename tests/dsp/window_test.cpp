#include "dsp/window.h"

#include <cmath>
#include <gtest/gtest.h>

namespace ivc::dsp {
namespace {

TEST(window, symmetric_windows_are_symmetric) {
  for (const auto kind :
       {window_kind::hann, window_kind::hamming, window_kind::blackman,
        window_kind::blackman_harris, window_kind::kaiser}) {
    const auto w = make_window(kind, 65);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << to_string(kind);
    }
  }
}

TEST(window, hann_endpoints_are_zero_and_center_is_one) {
  const auto w = make_window(window_kind::hann, 33);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(window, rectangular_is_all_ones) {
  const auto w = make_window(window_kind::rectangular, 10);
  for (const double v : w) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(window, values_lie_in_unit_interval) {
  for (const auto kind :
       {window_kind::hann, window_kind::hamming, window_kind::blackman,
        window_kind::blackman_harris, window_kind::kaiser}) {
    for (const double v : make_window(kind, 101)) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(window, periodic_hann_satisfies_cola_at_half_overlap) {
  // hann periodic windows at 50% hop sum to a constant.
  const std::size_t n = 64;
  const auto w = make_periodic_window(window_kind::hann, n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(w[i] + w[i + n / 2], 1.0, 1e-12);
  }
}

TEST(window, bessel_i0_known_values) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-9);
}

TEST(window, kaiser_beta_formula_regions) {
  EXPECT_DOUBLE_EQ(kaiser_beta_for_attenuation(15.0), 0.0);
  EXPECT_NEAR(kaiser_beta_for_attenuation(60.0), 0.1102 * (60.0 - 8.7), 1e-12);
  const double beta30 = kaiser_beta_for_attenuation(30.0);
  EXPECT_GT(beta30, 0.0);
  EXPECT_LT(beta30, kaiser_beta_for_attenuation(50.0));
}

TEST(window, kaiser_length_grows_with_attenuation_and_sharpness) {
  const auto a = kaiser_length_for_design(60.0, 1000.0, 48'000.0);
  const auto b = kaiser_length_for_design(90.0, 1000.0, 48'000.0);
  const auto c = kaiser_length_for_design(60.0, 200.0, 48'000.0);
  EXPECT_GT(b, a);
  EXPECT_GT(c, a);
  EXPECT_EQ(a % 2, 1u);
}

TEST(window, zero_length_throws) {
  EXPECT_THROW(make_window(window_kind::hann, 0), std::invalid_argument);
}

TEST(window, single_sample_window_is_one) {
  const auto w = make_window(window_kind::blackman, 1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

}  // namespace
}  // namespace ivc::dsp
