#include "dsp/hilbert.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "dsp/goertzel.h"
#include "dsp/spectrum.h"

namespace ivc::dsp {
namespace {

TEST(hilbert, analytic_signal_of_cosine_is_complex_exponential) {
  const double fs = 8'000.0;
  const std::size_t n = 4'096;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(two_pi * 500.0 * static_cast<double>(i) / fs);
  }
  const auto a = analytic_signal(x);
  // Interior samples: |a| == 1, imag == sin.
  for (std::size_t i = 200; i < n - 200; ++i) {
    EXPECT_NEAR(std::abs(a[i]), 1.0, 0.01);
    EXPECT_NEAR(a[i].imag(),
                std::sin(two_pi * 500.0 * static_cast<double>(i) / fs), 0.02);
  }
}

TEST(hilbert, envelope_of_am_tone_tracks_modulation) {
  const double fs = 48'000.0;
  const std::size_t n = 48'000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double env = 1.0 + 0.5 * std::sin(two_pi * 5.0 * t);
    x[i] = env * std::cos(two_pi * 8'000.0 * t);
  }
  const auto env = envelope(x);
  for (std::size_t i = 2'000; i < n - 2'000; ++i) {
    const double t = static_cast<double>(i) / fs;
    EXPECT_NEAR(env[i], 1.0 + 0.5 * std::sin(two_pi * 5.0 * t), 0.03);
  }
}

TEST(hilbert, smoothed_envelope_removes_ripple) {
  const double fs = 16'000.0;
  std::vector<double> x(16'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * 200.0 * static_cast<double>(i) / fs);
  }
  const auto env = smoothed_envelope(x, fs, 20.0);
  // Steady tone: smoothed envelope settles near 1.
  for (std::size_t i = 8'000; i < 15'000; ++i) {
    EXPECT_NEAR(env[i], 1.0, 0.05);
  }
}

TEST(hilbert, ssb_shifts_spectrum_without_mirror_image) {
  const double fs = 192'000.0;
  const double tone = 1'000.0;
  const double carrier = 40'000.0;
  std::vector<double> x(1 << 16);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(two_pi * tone * static_cast<double>(i) / fs);
  }
  const auto shifted = ssb_modulate(x, carrier, fs);
  const std::span<const double> mid{shifted.data() + 8'192, 49'152};
  // Upper sideband present, lower sideband suppressed.
  EXPECT_NEAR(goertzel_amplitude(mid, fs, carrier + tone), 1.0, 0.03);
  EXPECT_LT(goertzel_amplitude(mid, fs, carrier - tone), 0.02);
  EXPECT_LT(goertzel_amplitude(mid, fs, carrier), 0.02);
}

TEST(hilbert, ssb_at_zero_carrier_is_identity) {
  const double fs = 8'000.0;
  std::vector<double> x(4'096);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * 300.0 * static_cast<double>(i) / fs);
  }
  const auto out = ssb_modulate(x, 0.0, fs);
  for (std::size_t i = 100; i < x.size() - 100; ++i) {
    EXPECT_NEAR(out[i], x[i], 0.02);
  }
}

TEST(hilbert, rejects_bad_arguments) {
  EXPECT_THROW(analytic_signal({}), std::invalid_argument);
  const std::vector<double> x(64, 0.0);
  EXPECT_THROW(ssb_modulate(x, 5'000.0, 8'000.0), std::invalid_argument);
  EXPECT_THROW(smoothed_envelope(x, 8'000.0, 5'000.0), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp
