#include "dsp/resample.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "dsp/goertzel.h"

namespace ivc::dsp {
namespace {

std::vector<double> sine(double freq, double fs, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::sin(two_pi * freq * static_cast<double>(i) / fs);
  }
  return out;
}

TEST(resample, identity_when_rates_match) {
  const auto sig = sine(440.0, 16'000.0, 1'000);
  const auto out = resample(sig, 16'000.0, 16'000.0);
  EXPECT_EQ(out, sig);
}

TEST(resample, upsample_preserves_tone_frequency_and_amplitude) {
  const double f = 1'000.0;
  const auto sig = sine(f, 16'000.0, 16'000);
  const auto out = resample(sig, 16'000.0, 48'000.0);
  EXPECT_EQ(out.size(), 48'000u);
  // Measure on the interior to avoid edge transients.
  const std::span<const double> mid{out.data() + 8'000, 32'000};
  EXPECT_NEAR(goertzel_amplitude(mid, 48'000.0, f), 1.0, 0.02);
  EXPECT_LT(goertzel_amplitude(mid, 48'000.0, 15'000.0), 1e-3);
}

TEST(resample, downsample_preserves_in_band_tone) {
  const double f = 2'000.0;
  const auto sig = sine(f, 48'000.0, 48'000);
  const auto out = resample(sig, 48'000.0, 16'000.0);
  EXPECT_EQ(out.size(), 16'000u);
  const std::span<const double> mid{out.data() + 2'000, 12'000};
  EXPECT_NEAR(goertzel_amplitude(mid, 16'000.0, f), 1.0, 0.02);
}

TEST(resample, downsample_removes_aliasing_content) {
  // 20 kHz tone at 48 kHz must NOT alias into a 16 kHz capture.
  const auto sig = sine(20'000.0, 48'000.0, 48'000);
  const auto out = resample(sig, 48'000.0, 16'000.0);
  // The alias would land at |20k - 16k| = 4 kHz.
  const std::span<const double> mid{out.data() + 2'000, 12'000};
  EXPECT_LT(goertzel_amplitude(mid, 16'000.0, 4'000.0), 1e-3);
}

TEST(resample, rational_ratio_44100_to_48000) {
  const double f = 997.0;
  const auto sig = sine(f, 44'100.0, 44'100);
  const auto out = resample(sig, 44'100.0, 48'000.0);
  EXPECT_EQ(out.size(), 48'000u);
  const std::span<const double> mid{out.data() + 8'000, 32'000};
  EXPECT_NEAR(goertzel_amplitude(mid, 48'000.0, f), 1.0, 0.03);
}

TEST(resample, length_formula_matches_output) {
  const auto sig = sine(100.0, 16'000.0, 12'345);
  for (const double out_rate : {8'000.0, 22'050.0, 48'000.0, 192'000.0}) {
    const auto out = resample(sig, 16'000.0, out_rate);
    EXPECT_EQ(out.size(), resampled_length(sig.size(), 16'000.0, out_rate));
  }
}

TEST(resample, wide_transition_still_clean_for_band_limited_input) {
  // The conditioner's fast path: content at 1 kHz only, transition 0.45.
  const auto sig = sine(1'000.0, 16'000.0, 16'000);
  const auto out = resample(sig, 16'000.0, 192'000.0, 80.0, 0.45);
  const std::span<const double> mid{out.data() + 96'000, 96'000};
  EXPECT_NEAR(goertzel_amplitude(mid, 192'000.0, 1'000.0), 1.0, 0.02);
  EXPECT_LT(goertzel_amplitude(mid, 192'000.0, 17'000.0), 1e-3);
}

TEST(resample, output_time_alignment) {
  // A peak in the middle of the input stays in the middle of the output.
  std::vector<double> sig(1'001, 0.0);
  sig[500] = 1.0;
  const auto out = resample(sig, 16'000.0, 48'000.0);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i] > out[argmax]) {
      argmax = i;
    }
  }
  EXPECT_NEAR(static_cast<double>(argmax), 1500.0, 2.0);
}

TEST(resample, rejects_bad_arguments) {
  const std::vector<double> sig(16, 0.0);
  EXPECT_THROW(resample({}, 16'000.0, 48'000.0), std::invalid_argument);
  EXPECT_THROW(resample(sig, -1.0, 48'000.0), std::invalid_argument);
  EXPECT_THROW(resample(sig, 16'000.5, 48'000.0), std::invalid_argument);
  EXPECT_THROW(resample(sig, 16'000.0, 48'000.0, 80.0, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp
