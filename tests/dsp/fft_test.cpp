#include "dsp/fft.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "common/rng.h"

namespace ivc::dsp {
namespace {

TEST(fft, next_pow2_covers_edges) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(fft, is_pow2_matches_definition) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(48));
}

TEST(fft, impulse_transforms_to_flat_spectrum) {
  std::vector<cplx> x(16, cplx{0.0, 0.0});
  x[0] = cplx{1.0, 0.0};
  const auto spec = fft(x);
  for (const cplx& bin : spec) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(fft, sine_lands_in_expected_bin) {
  const std::size_t n = 256;
  std::vector<double> x(n);
  const std::size_t k = 10;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(two_pi * static_cast<double>(k * i) / n);
  }
  const auto spec = fft_real(x);
  // Bin k should hold amplitude n/2, everything else ~0.
  EXPECT_NEAR(std::abs(spec[k]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[n - k]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[k + 3]), 0.0, 1e-9);
}

TEST(fft, round_trip_recovers_signal_pow2) {
  ivc::rng rng{1};
  std::vector<cplx> x(128);
  for (auto& v : x) {
    v = cplx{rng.normal(), rng.normal()};
  }
  const auto back = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(fft, round_trip_recovers_signal_arbitrary_length) {
  ivc::rng rng{2};
  for (const std::size_t n : {3u, 12u, 100u, 255u, 499u}) {
    std::vector<cplx> x(n);
    for (auto& v : x) {
      v = cplx{rng.normal(), rng.normal()};
    }
    const auto back = ifft(fft(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i].real(), x[i].real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(fft, bluestein_matches_radix2_on_common_length) {
  // Cross-check: compute a 64-point transform once as pow2 and once by
  // forcing Bluestein through a 65-point zero-padded comparison is not
  // valid; instead verify Parseval on a non-pow2 length.
  ivc::rng rng{3};
  const std::size_t n = 96;
  std::vector<cplx> x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = cplx{rng.normal(), rng.normal()};
    time_energy += std::norm(v);
  }
  const auto spec = fft(x);
  double freq_energy = 0.0;
  for (const auto& bin : spec) {
    freq_energy += std::norm(bin);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

TEST(fft, parseval_holds_for_real_signals) {
  ivc::rng rng{4};
  const std::size_t n = 512;
  std::vector<double> x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = rng.normal();
    time_energy += v * v;
  }
  const auto spec = fft_real(x);
  double freq_energy = 0.0;
  for (const auto& bin : spec) {
    freq_energy += std::norm(bin);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy);
}

TEST(fft, linearity) {
  ivc::rng rng{5};
  const std::size_t n = 64;
  std::vector<cplx> a(n);
  std::vector<cplx> b(n);
  std::vector<cplx> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = cplx{rng.normal(), 0.0};
    b[i] = cplx{rng.normal(), 0.0};
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const cplx expected = 2.0 * fa[i] + 3.0 * fb[i];
    EXPECT_NEAR(std::abs(fsum[i] - expected), 0.0, 1e-9);
  }
}

TEST(fft, ifft_real_recovers_real_signal) {
  ivc::rng rng{6};
  std::vector<double> x(200);
  for (auto& v : x) {
    v = rng.normal();
  }
  const auto spec = fft_real(x);
  const auto back = ifft_real(spec);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST(fft, bin_frequency_maps_positive_and_negative) {
  EXPECT_DOUBLE_EQ(bin_frequency_hz(0, 8, 8000.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency_hz(1, 8, 8000.0), 1000.0);
  EXPECT_DOUBLE_EQ(bin_frequency_hz(4, 8, 8000.0), 4000.0);
  EXPECT_DOUBLE_EQ(bin_frequency_hz(5, 8, 8000.0), -3000.0);
  EXPECT_DOUBLE_EQ(bin_frequency_hz(7, 8, 8000.0), -1000.0);
}

TEST(fft, rejects_empty_and_bad_args) {
  EXPECT_THROW(fft({}), std::invalid_argument);
  std::vector<cplx> three(3);
  EXPECT_THROW(fft_pow2_inplace(three, false), std::invalid_argument);
  EXPECT_THROW(bin_frequency_hz(8, 8, 8000.0), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp
