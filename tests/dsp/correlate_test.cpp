#include "dsp/correlate.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "common/rng.h"

namespace ivc::dsp {
namespace {

TEST(correlate, pearson_of_identical_signals_is_one) {
  ivc::rng rng{1};
  std::vector<double> x(500);
  for (auto& v : x) {
    v = rng.normal();
  }
  EXPECT_NEAR(pearson_correlation(x, x), 1.0, 1e-12);
}

TEST(correlate, pearson_is_scale_and_offset_invariant) {
  ivc::rng rng{2};
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 3.0 * x[i] + 7.0;
  }
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  for (auto& v : y) {
    v = -v;
  }
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(correlate, pearson_of_independent_noise_is_small) {
  ivc::rng rng{3};
  std::vector<double> x(20'000);
  std::vector<double> y(20'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_LT(std::abs(pearson_correlation(x, y)), 0.05);
}

TEST(correlate, pearson_zero_variance_returns_zero) {
  const std::vector<double> x(100, 1.0);
  const std::vector<double> y{std::vector<double>(100, 2.0)};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(correlate, best_alignment_finds_known_shift) {
  ivc::rng rng{4};
  std::vector<double> base(1'000);
  for (auto& v : base) {
    v = rng.normal();
  }
  // a = base delayed by 37 samples.
  std::vector<double> a(1'200, 0.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    a[i + 37] = base[i];
  }
  const alignment al = best_alignment(a, base);
  EXPECT_EQ(al.lag, 37);
  EXPECT_NEAR(al.peak, 1.0, 0.05);
}

TEST(correlate, aligned_correlation_tolerates_lag) {
  ivc::rng rng{5};
  std::vector<double> base(2'000);
  for (auto& v : base) {
    v = rng.normal();
  }
  std::vector<double> shifted(2'000, 0.0);
  for (std::size_t i = 0; i + 25 < base.size(); ++i) {
    shifted[i + 25] = base[i];
  }
  EXPECT_GT(aligned_correlation(shifted, base, 50), 0.95);
  // Without enough slack the alignment fails to reach the true lag.
  EXPECT_LT(aligned_correlation(shifted, base, 3), 0.5);
}

TEST(correlate, cross_correlation_peak_normalized_copy_is_one) {
  ivc::rng rng{6};
  std::vector<double> x(512);
  for (auto& v : x) {
    v = rng.normal();
  }
  const auto xc = normalized_cross_correlation(x, x);
  // Zero lag lives at index size-1.
  EXPECT_NEAR(xc[x.size() - 1], 1.0, 1e-9);
  for (const double v : xc) {
    EXPECT_LE(std::abs(v), 1.0 + 1e-9);
  }
}

TEST(correlate, rejects_bad_arguments) {
  const std::vector<double> x(10, 1.0);
  const std::vector<double> y(9, 1.0);
  EXPECT_THROW(pearson_correlation(x, y), std::invalid_argument);
  EXPECT_THROW(normalized_cross_correlation({}, x), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp

// ------------------------------------------------------------------------
// Goertzel
#include "dsp/goertzel.h"

namespace ivc::dsp {
namespace {

TEST(goertzel, unit_sine_measures_unit_amplitude) {
  const double fs = 16'000.0;
  std::vector<double> x(16'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * 1'000.0 * static_cast<double>(i) / fs);
  }
  EXPECT_NEAR(goertzel_amplitude(x, fs, 1'000.0), 1.0, 1e-3);
  EXPECT_NEAR(goertzel_power(x, fs, 1'000.0), 0.5, 1e-3);
}

TEST(goertzel, off_frequency_measures_near_zero) {
  const double fs = 16'000.0;
  std::vector<double> x(16'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(two_pi * 1'000.0 * static_cast<double>(i) / fs);
  }
  EXPECT_LT(goertzel_amplitude(x, fs, 3'000.0), 1e-3);
}

TEST(goertzel, scales_quadratically_in_power) {
  const double fs = 16'000.0;
  std::vector<double> x(8'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * std::sin(two_pi * 2'000.0 * static_cast<double>(i) / fs);
  }
  EXPECT_NEAR(goertzel_power(x, fs, 2'000.0), 0.125, 1e-3);
}

TEST(goertzel, dc_component) {
  const std::vector<double> x(1'000, 0.7);
  EXPECT_NEAR(goertzel_amplitude(x, 16'000.0, 0.0), 0.7, 1e-6);
}

TEST(goertzel, rejects_out_of_range_frequency) {
  const std::vector<double> x(100, 1.0);
  EXPECT_THROW(goertzel_power(x, 16'000.0, 9'000.0), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp
