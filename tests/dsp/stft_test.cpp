#include "dsp/stft.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"

namespace ivc::dsp {
namespace {

std::vector<double> tone(double f, double fs, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::sin(two_pi * f * static_cast<double>(i) / fs);
  }
  return out;
}

TEST(stft, frame_count_matches_hop) {
  const auto sig = tone(440.0, 16'000.0, 16'000);
  stft_config cfg;
  cfg.frame_size = 512;
  cfg.hop_size = 256;
  const auto result = stft(sig, 16'000.0, cfg);
  // center=true pads half a frame on each side.
  EXPECT_NEAR(static_cast<double>(result.num_frames()),
              16'000.0 / 256.0, 3.0);
  EXPECT_EQ(result.num_bins(), 257u);
}

TEST(stft, tone_energy_lands_in_matching_bin) {
  const double fs = 16'000.0;
  const double f = 1'000.0;
  const auto sig = tone(f, fs, 16'000);
  const auto power = power_spectrogram(sig, fs);
  // Expected bin for 1 kHz with frame 512 at 16 kHz: 32.
  const std::size_t expected_bin = 32;
  for (std::size_t t = 4; t + 4 < power.size(); ++t) {
    std::size_t argmax = 0;
    for (std::size_t k = 1; k < power[t].size(); ++k) {
      if (power[t][k] > power[t][argmax]) {
        argmax = k;
      }
    }
    EXPECT_EQ(argmax, expected_bin);
  }
}

TEST(stft, band_power_trace_follows_amplitude_steps) {
  const double fs = 16'000.0;
  // 0.5 s quiet tone then 0.5 s loud tone.
  std::vector<double> sig = tone(500.0, fs, 16'000);
  for (std::size_t i = 0; i < 8'000; ++i) {
    sig[i] *= 0.1;
  }
  const auto trace = band_power_trace(sig, fs, 400.0, 600.0);
  ASSERT_GT(trace.size(), 20u);
  const double early = trace[trace.size() / 4];
  const double late = trace[3 * trace.size() / 4];
  EXPECT_GT(late, 50.0 * early);  // 20 dB amplitude step = 100x power
}

TEST(stft, band_power_trace_ignores_out_of_band_energy) {
  const double fs = 16'000.0;
  const auto sig = tone(3'000.0, fs, 16'000);
  const auto trace = band_power_trace(sig, fs, 100.0, 500.0);
  const auto in_band = band_power_trace(sig, fs, 2'800.0, 3'200.0);
  double out_sum = 0.0;
  double in_sum = 0.0;
  for (const double v : trace) {
    out_sum += v;
  }
  for (const double v : in_band) {
    in_sum += v;
  }
  EXPECT_LT(out_sum, 1e-4 * in_sum);
}

TEST(stft, frame_time_and_bin_frequency_metadata) {
  const auto sig = tone(440.0, 16'000.0, 8'000);
  const auto result = stft(sig, 16'000.0);
  EXPECT_DOUBLE_EQ(result.frame_time_s(0), 0.0);
  EXPECT_NEAR(result.frame_time_s(10), 10.0 * 256.0 / 16'000.0, 1e-12);
  EXPECT_NEAR(result.bin_hz(32), 1'000.0, 1e-9);
}

TEST(stft, rejects_bad_config) {
  const auto sig = tone(440.0, 16'000.0, 4'096);
  stft_config bad;
  bad.frame_size = 500;  // not a power of two
  EXPECT_THROW(stft(sig, 16'000.0, bad), std::invalid_argument);
  bad.frame_size = 512;
  bad.hop_size = 0;
  EXPECT_THROW(stft(sig, 16'000.0, bad), std::invalid_argument);
  EXPECT_THROW(band_power_trace(sig, 16'000.0, 500.0, 400.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ivc::dsp
