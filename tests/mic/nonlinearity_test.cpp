#include "mic/nonlinearity.h"

#include <cmath>
#include <gtest/gtest.h>

#include "audio/generate.h"
#include "dsp/goertzel.h"

namespace ivc::mic {
namespace {

TEST(nonlinearity, linear_profile_is_identity) {
  const poly_nonlinearity nl{1.0, 0.0, 0.0, 0.0};
  EXPECT_TRUE(nl.is_linear());
  EXPECT_DOUBLE_EQ(nl(0.5), 0.5);
  EXPECT_DOUBLE_EQ(nl(-2.0), -2.0);
}

TEST(nonlinearity, polynomial_evaluation_matches_horner) {
  const poly_nonlinearity nl{1.0, 0.1, 0.01, 0.001};
  const double x = 1.7;
  const double expected = x + 0.1 * x * x + 0.01 * x * x * x +
                          0.001 * x * x * x * x;
  EXPECT_NEAR(nl(x), expected, 1e-12);
}

TEST(nonlinearity, two_tone_intermodulation_at_difference_frequency) {
  // The paper's core physics: 25 kHz + 30 kHz in, 5 kHz out.
  const double fs = 192'000.0;
  const std::vector<double> freqs{25'000.0, 30'000.0};
  const audio::buffer in = audio::multi_tone(freqs, 0.5, fs, 1.0);
  const poly_nonlinearity nl{1.0, 0.05, 0.0, 0.0};
  const auto out = apply_nonlinearity(in.samples, nl);

  const double measured = ivc::dsp::goertzel_amplitude(out, fs, 5'000.0);
  const double predicted = predicted_imd2_amplitude(nl, 1.0);
  EXPECT_NEAR(measured, predicted, 0.05 * predicted);
  // Harmonics also appear at 2f1 and f1+f2.
  EXPECT_NEAR(ivc::dsp::goertzel_amplitude(out, fs, 50'000.0),
              0.5 * predicted, 0.05 * predicted);
  EXPECT_NEAR(ivc::dsp::goertzel_amplitude(out, fs, 55'000.0), predicted,
              0.05 * predicted);
}

TEST(nonlinearity, no_intermodulation_without_a2) {
  const double fs = 192'000.0;
  const std::vector<double> freqs{25'000.0, 30'000.0};
  const audio::buffer in = audio::multi_tone(freqs, 0.5, fs, 1.0);
  const poly_nonlinearity nl{1.0, 0.0, 0.0, 0.0};
  const auto out = apply_nonlinearity(in.samples, nl);
  EXPECT_LT(ivc::dsp::goertzel_amplitude(out, fs, 5'000.0), 1e-9);
}

TEST(nonlinearity, am_signal_self_demodulates) {
  // s(t) = (0.5 + 0.5 m(t))·cos(w_c t) with m a 1 kHz tone: the a2 term
  // recreates the 1 kHz baseband.
  const double fs = 192'000.0;
  const double fc = 40'000.0;
  const std::size_t n = 1 << 16;
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double m = std::sin(2.0 * M_PI * 1'000.0 * t);
    s[i] = (0.5 + 0.5 * m) * std::cos(2.0 * M_PI * fc * t);
  }
  const poly_nonlinearity nl{1.0, 0.1, 0.0, 0.0};
  const auto out = apply_nonlinearity(s, nl);
  // Expected baseband term: a2 · 2 · carrier · depth · m/2 =
  // 0.1 · 0.5 · 0.5 · m → amplitude 0.025 at 1 kHz.
  EXPECT_NEAR(ivc::dsp::goertzel_amplitude(out, fs, 1'000.0), 0.025, 0.003);
}

TEST(nonlinearity, third_order_creates_asymmetric_products) {
  const double fs = 192'000.0;
  const std::vector<double> freqs{30'000.0, 31'000.0};
  const audio::buffer in = audio::multi_tone(freqs, 0.5, fs, 1.0);
  const poly_nonlinearity nl{1.0, 0.0, 0.05, 0.0};
  const auto out = apply_nonlinearity(in.samples, nl);
  // 2f1 - f2 = 29 kHz and 2f2 - f1 = 32 kHz (third-order IMD).
  EXPECT_GT(ivc::dsp::goertzel_amplitude(out, fs, 29'000.0), 0.01);
  EXPECT_GT(ivc::dsp::goertzel_amplitude(out, fs, 32'000.0), 0.01);
  // But no second-order difference tone.
  EXPECT_LT(ivc::dsp::goertzel_amplitude(out, fs, 1'000.0), 1e-9);
}

}  // namespace
}  // namespace ivc::mic
