#include "mic/frontend.h"

#include <cmath>
#include <gtest/gtest.h>

#include "audio/generate.h"
#include "audio/metrics.h"
#include "common/units.h"
#include "dsp/goertzel.h"
#include "mic/device_profiles.h"

namespace ivc::mic {
namespace {

mic_params quiet_params() {
  mic_params p = phone_profile().mic;
  p.self_noise_spl_db = -60.0;  // effectively noiseless for clean tests
  p.agc = std::nullopt;
  return p;
}

TEST(frontend, captures_voice_band_tone_at_device_rate) {
  const mic_params p = quiet_params();
  const microphone mic{p};
  // 94 dB SPL tone (1 Pa RMS) at 1 kHz, analog at 48 kHz.
  const double amp = ivc::spl_db_to_pa(94.0) * std::sqrt(2.0);
  const audio::buffer pressure = audio::tone(1'000.0, 0.5, 48'000.0, amp);
  ivc::rng rng{1};
  const audio::buffer cap = mic.record(pressure, rng);
  EXPECT_DOUBLE_EQ(cap.sample_rate_hz, 16'000.0);
  // Expected digital amplitude: 1 Pa·sqrt2 / full-scale-pa.
  const double fs_pa = ivc::spl_db_to_pa(p.full_scale_spl_db) * std::sqrt(2.0);
  const std::span<const double> mid{cap.samples.data() + 3'200, 3'200};
  EXPECT_NEAR(ivc::dsp::goertzel_amplitude(mid, 16'000.0, 1'000.0),
              amp / fs_pa, 0.05 * amp / fs_pa);
}

TEST(frontend, removes_ultrasound_but_keeps_demodulated_product) {
  // AM ultrasound in, voice out: the end-to-end demodulation effect.
  const mic_params p = quiet_params();
  const microphone mic{p};
  const double fs = 192'000.0;
  const double fc = 40'000.0;
  const std::size_t n = 1 << 17;
  std::vector<double> pressure(n);
  const double carrier_peak = ivc::spl_db_to_pa(110.0) * std::sqrt(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double m = std::sin(2.0 * M_PI * 400.0 * t);
    pressure[i] = carrier_peak * (0.5 + 0.5 * m) * std::cos(2.0 * M_PI * fc * t);
  }
  ivc::rng rng{2};
  const audio::buffer cap = mic.record({pressure, fs}, rng);
  const std::span<const double> mid{cap.samples.data() + 2'000,
                                    cap.size() - 4'000};
  const double demod = ivc::dsp::goertzel_amplitude(mid, 16'000.0, 400.0);
  EXPECT_GT(demod, 1e-4);  // the command came through
  // No energy anywhere near the (removed) carrier band remains: probing
  // the top of the capture band instead.
  EXPECT_LT(ivc::dsp::goertzel_amplitude(mid, 16'000.0, 7'900.0),
            0.05 * demod);
}

TEST(frontend, hardened_device_demodulates_far_less) {
  const double fs = 192'000.0;
  const std::size_t n = 1 << 17;
  std::vector<double> pressure(n);
  const double carrier_peak = ivc::spl_db_to_pa(110.0) * std::sqrt(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double m = std::sin(2.0 * M_PI * 400.0 * t);
    pressure[i] =
        carrier_peak * (0.5 + 0.5 * m) * std::cos(2.0 * M_PI * 40'000.0 * t);
  }
  mic_params normal = quiet_params();
  mic_params hard = hardened_profile().mic;
  hard.self_noise_spl_db = -60.0;
  hard.agc = std::nullopt;
  ivc::rng r1{3};
  ivc::rng r2{3};
  const audio::buffer cap_normal =
      microphone{normal}.record({pressure, fs}, r1);
  const audio::buffer cap_hard = microphone{hard}.record({pressure, fs}, r2);
  const std::span<const double> m1{cap_normal.samples.data() + 2'000,
                                   cap_normal.size() - 4'000};
  const std::span<const double> m2{cap_hard.samples.data() + 2'000,
                                   cap_hard.size() - 4'000};
  const double d_normal = ivc::dsp::goertzel_amplitude(m1, 16'000.0, 400.0);
  const double d_hard = ivc::dsp::goertzel_amplitude(m2, 16'000.0, 400.0);
  // Hardened: ~30 dB enclosure loss twice over + 9x lower a2.
  EXPECT_LT(d_hard, 1e-3 * d_normal);
}

TEST(frontend, enclosure_loss_ramp) {
  enclosure_model e{18'000.0, 30'000.0, 12.0};
  EXPECT_DOUBLE_EQ(e.loss_db_at(1'000.0), 0.0);
  EXPECT_DOUBLE_EQ(e.loss_db_at(18'000.0), 0.0);
  EXPECT_NEAR(e.loss_db_at(24'000.0), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(e.loss_db_at(40'000.0), 12.0);
  const enclosure_model none{};
  EXPECT_DOUBLE_EQ(none.loss_db_at(40'000.0), 0.0);
}

TEST(frontend, self_noise_sets_capture_floor) {
  mic_params p = quiet_params();
  p.self_noise_spl_db = 30.0;
  const microphone mic{p};
  const audio::buffer silence{std::vector<double>(48'000, 0.0), 48'000.0};
  ivc::rng rng{4};
  const audio::buffer cap = mic.record(silence, rng);
  const double rms_digital = audio::rms(cap.samples);
  const double fs_pa = ivc::spl_db_to_pa(p.full_scale_spl_db) * std::sqrt(2.0);
  const double measured_spl = ivc::pa_to_spl_db(rms_digital * fs_pa);
  // The rating is in-band: the captured floor matches it within the DC
  // blocker / quantizer slop.
  EXPECT_NEAR(measured_spl, 30.0, 2.5);
}

TEST(frontend, clipping_at_overload_point) {
  const mic_params p = quiet_params();
  const microphone mic{p};
  // 20 dB above the overload point must clip to ±1.
  const double amp = ivc::spl_db_to_pa(p.full_scale_spl_db + 20.0) * std::sqrt(2.0);
  const audio::buffer pressure = audio::tone(1'000.0, 0.1, 48'000.0, amp);
  ivc::rng rng{5};
  const audio::buffer cap = mic.record(pressure, rng);
  EXPECT_LE(audio::peak(cap.samples), 1.0);
  EXPECT_GT(audio::peak(cap.samples), 0.99);
}

TEST(frontend, agc_boosts_quiet_capture_toward_target) {
  mic_params p = quiet_params();
  agc_config agc;
  agc.target_rms_dbfs = -20.0;
  agc.max_gain_db = 30.0;
  p.agc = agc;
  const microphone mic{p};
  const double amp = ivc::spl_db_to_pa(70.0) * std::sqrt(2.0);
  const audio::buffer pressure = audio::tone(500.0, 1.0, 48'000.0, amp);
  ivc::rng rng{6};
  const audio::buffer cap = mic.record(pressure, rng);
  // Without AGC this sits at 70-120-3 = -53 dBFS; AGC pulls it up by
  // up to 30 dB. Measure the steady-state tail.
  const std::span<const double> tail{cap.samples.data() + cap.size() / 2,
                                     cap.size() / 2};
  const double tail_dbfs = ivc::amplitude_to_db(audio::rms(tail));
  EXPECT_GT(tail_dbfs, -28.0);
}

TEST(frontend, agc_does_not_boost_silence) {
  const audio::buffer quiet{std::vector<double>(16'000, 1e-6), 16'000.0};
  agc_config agc;
  const audio::buffer out = apply_agc(quiet, agc);
  EXPECT_NEAR(audio::peak(out.samples), 1e-6, 2e-6);
}

TEST(frontend, rejects_bad_configs) {
  mic_params p = quiet_params();
  p.capture_rate_hz = 0.0;
  EXPECT_THROW(microphone{p}, std::invalid_argument);
  mic_params q = quiet_params();
  q.analog_lpf_hz = 10'000.0;  // above capture Nyquist
  EXPECT_THROW(microphone{q}, std::invalid_argument);
  const microphone mic{quiet_params()};
  ivc::rng rng{7};
  const audio::buffer low_rate{std::vector<double>(100, 0.0), 8'000.0};
  EXPECT_THROW(mic.record(low_rate, rng), std::invalid_argument);
}

TEST(frontend, device_profiles_are_valid_and_distinct) {
  const auto profiles = all_profiles();
  EXPECT_GE(profiles.size(), 4u);
  for (const auto& p : profiles) {
    EXPECT_NO_THROW(microphone{p.mic});
    EXPECT_FALSE(p.name.empty());
  }
  // Smart speaker has a grille, phone does not.
  EXPECT_GT(smart_speaker_profile().mic.enclosure.ultra_loss_db, 0.0);
  EXPECT_DOUBLE_EQ(phone_profile().mic.enclosure.ultra_loss_db, 0.0);
  // Hardened is far less non-linear.
  EXPECT_LT(hardened_profile().mic.nonlinearity.a2,
            phone_profile().mic.nonlinearity.a2 / 5.0);
}

}  // namespace
}  // namespace ivc::mic
