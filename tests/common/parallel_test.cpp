#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ivc {
namespace {

TEST(parallel, covers_every_index_exactly_once) {
  constexpr std::size_t count = 1'000;
  std::vector<std::atomic<int>> hits(count);
  thread_pool pool{4};
  EXPECT_EQ(pool.size(), 4u);
  pool.parallel_for(count, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(parallel, single_thread_pool_runs_on_caller) {
  thread_pool pool{1};
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(parallel, pool_is_reusable_across_jobs) {
  thread_pool pool{3};
  std::vector<double> out(64, 0.0);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] += static_cast<double>(i);
    });
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], 5.0 * static_cast<double>(i));
  }
}

TEST(parallel, zero_count_is_a_no_op) {
  thread_pool pool{2};
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(parallel, rethrows_first_exception_and_still_covers_indices) {
  thread_pool pool{2};
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(
      pool.parallel_for(hits.size(),
                        [&](std::size_t i) {
                          hits[i].fetch_add(1);
                          if (i == 7) {
                            throw std::runtime_error{"index 7"};
                          }
                        }),
      std::runtime_error);
  // The failure does not abort the remaining indices.
  int total = 0;
  for (std::atomic<int>& h : hits) {
    total += h.load();
  }
  EXPECT_EQ(total, 32);
  // And the pool still works afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(4, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(parallel, one_shot_helper_works) {
  std::vector<int> out(100, 0);
  parallel_for(out.size(), 0, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 100);
}

TEST(parallel, default_thread_count_is_positive) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace ivc
