#include "common/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/json_min.h"
#include "common/rng.h"

namespace ivc {
namespace {

TEST(histogram, empty_reads_as_zero) {
  const log_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(histogram, single_value_pins_every_quantile) {
  log_histogram h;
  h.record(3.5e-3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.5e-3);
  EXPECT_DOUBLE_EQ(h.max(), 3.5e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5e-3);
  // Quantiles clamp to the observed range, so they are exact here.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.5e-3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5e-3);
}

TEST(histogram, quantiles_track_a_known_distribution) {
  log_histogram h;
  ivc::rng rng{5};
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.uniform(1e-3, 1.0);  // 1 ms .. 1 s
    values.push_back(v);
    h.record(v);
  }
  // Uniform on [1e-3, 1]: p50 ≈ 0.5, p95 ≈ 0.95. Log bins are ~15% wide,
  // so accept 20%.
  EXPECT_NEAR(h.quantile(0.50), 0.5, 0.1);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.19);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.50));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(histogram, out_of_range_values_clamp_into_edge_bins) {
  log_histogram h;
  h.record(0.0);      // below the lowest edge
  h.record(-1.0);     // negative clamps to 0
  h.record(1e6);      // above the highest edge
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 1e6);
  EXPECT_LE(h.quantile(0.3), h.quantile(0.99));
}

TEST(histogram, merge_equals_recording_everything_in_one) {
  log_histogram a;
  log_histogram b;
  log_histogram all;
  ivc::rng rng{6};
  for (int i = 0; i < 2'000; ++i) {
    const double v = rng.uniform(1e-5, 1e-1);
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
  }
}

TEST(histogram, merge_into_empty_copies) {
  log_histogram a;
  log_histogram b;
  b.record(2e-3);
  b.record(4e-3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 2e-3);
  EXPECT_DOUBLE_EQ(a.max(), 4e-3);
}

TEST(histogram, custom_config_sizes_bins_and_still_tracks_quantiles) {
  histogram_config cfg;
  cfg.lo_edge = 1e-3;
  cfg.hi_edge = 10.0;
  cfg.bins_per_decade = 8;
  log_histogram h{cfg};
  EXPECT_EQ(h.num_bins(), 32u);  // 4 decades x 8 bins
  ivc::rng rng{9};
  for (int i = 0; i < 5'000; ++i) {
    h.record(rng.uniform(1e-2, 1.0));
  }
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.15);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
}

// Regression: merging histograms with different binning used to add
// bin-by-bin anyway — misfiling every sample and reading other.bins_
// out of bounds when `other` had fewer bins. Now it is a precondition.
TEST(histogram, merge_rejects_mismatched_configs) {
  histogram_config small;
  small.lo_edge = 1e-3;
  small.hi_edge = 1.0;
  small.bins_per_decade = 4;
  log_histogram a;
  log_histogram b{small};
  b.record(0.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(b.merge(a), std::invalid_argument);
  // Same custom config on both sides merges fine.
  log_histogram c{small};
  c.record(0.25);
  c.merge(b);
  EXPECT_EQ(c.count(), 2u);
}

TEST(histogram, reset_preserves_the_binning_config) {
  histogram_config cfg;
  cfg.lo_edge = 1e-4;
  cfg.hi_edge = 1.0;
  cfg.bins_per_decade = 4;
  log_histogram h{cfg};
  h.record(0.1);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.config(), cfg);
  log_histogram other{cfg};
  other.record(0.2);
  h.merge(other);  // still mergeable after reset
  EXPECT_EQ(h.count(), 1u);
}

TEST(histogram, snapshot_restore_round_trips_exactly) {
  log_histogram h;
  ivc::rng rng{17};
  for (int i = 0; i < 5'000; ++i) {
    h.record(rng.uniform(1e-6, 10.0));
  }
  h.record(0.0);    // clamps into the low edge bin
  h.record(1e9);    // clamps into the high edge bin

  log_histogram back;
  back.restore(h.snapshot());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.min(), h.min());
  EXPECT_EQ(back.max(), h.max());
  EXPECT_EQ(back.mean(), h.mean());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(back.quantile(q), h.quantile(q)) << q;
  }
  // The restored histogram keeps living: identical records afterwards
  // keep the two bit-identical (what evict→rehydrate→keep-serving needs).
  h.record(2.5e-3);
  back.record(2.5e-3);
  EXPECT_EQ(back.quantile(0.5), h.quantile(0.5));
  // And it still merges with fleet histograms of the same binning.
  log_histogram fleet;
  fleet.merge(back);
  EXPECT_EQ(fleet.count(), h.count());
}

TEST(histogram, snapshot_restore_of_empty_histogram) {
  const log_histogram h;
  log_histogram back;
  back.record(1.0);  // restore must clear pre-existing counts
  back.restore(h.snapshot());
  EXPECT_EQ(back.count(), 0u);
  EXPECT_EQ(back.quantile(0.5), 0.0);
}

TEST(histogram, snapshot_is_sparse_and_text_round_trips) {
  // A histogram with two occupied bins snapshots to two (index, count)
  // pairs — and survives the json text writer's full-precision doubles.
  log_histogram h;
  h.record(1e-3);
  h.record(1e-3);
  h.record(0.5);
  const json::value snap = json::parse(json::write(h.snapshot()));
  EXPECT_EQ(snap.find("bins")->items().size(), 4u);
  log_histogram back;
  back.restore(snap);
  EXPECT_EQ(back.count(), 3u);
  EXPECT_EQ(back.mean(), h.mean());
  EXPECT_EQ(back.quantile(0.5), h.quantile(0.5));
}

TEST(histogram, restore_rejects_mismatched_configs) {
  histogram_config cfg;
  cfg.bins_per_decade = 4;
  const log_histogram theirs{cfg};
  log_histogram mine;  // default binning
  EXPECT_THROW(mine.restore(theirs.snapshot()), std::invalid_argument);
  // Corrupt bin indices cannot scribble out of bounds either.
  json::value snap = mine.snapshot();
  json::object o = snap.members();
  for (auto& [key, val] : o) {
    if (key == "bins") {
      val = json::value{
          json::array{json::value{1e9}, json::value{1.0}}};
    }
  }
  EXPECT_THROW(mine.restore(json::value{o}), std::invalid_argument);
}

}  // namespace
}  // namespace ivc
