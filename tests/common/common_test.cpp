#include <cmath>
#include <gtest/gtest.h>

#include "common/constants.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"

namespace ivc {
namespace {

TEST(units, amplitude_db_round_trip) {
  for (const double db : {-60.0, -6.02, 0.0, 12.0, 40.0}) {
    EXPECT_NEAR(amplitude_to_db(db_to_amplitude(db)), db, 1e-12);
  }
  EXPECT_NEAR(amplitude_to_db(2.0), 6.0206, 1e-3);
  EXPECT_NEAR(power_to_db(2.0), 3.0103, 1e-3);
}

TEST(units, nonpositive_maps_to_negative_infinity) {
  EXPECT_TRUE(std::isinf(amplitude_to_db(0.0)));
  EXPECT_TRUE(std::isinf(power_to_db(-1.0)));
  EXPECT_LT(amplitude_to_db(0.0), 0.0);
}

TEST(units, spl_reference_points) {
  // 94 dB SPL is 1 Pa RMS by definition of the 20 µPa reference.
  EXPECT_NEAR(spl_db_to_pa(93.9794), 1.0, 1e-4);
  EXPECT_NEAR(pa_to_spl_db(1.0), 93.9794, 1e-3);
  EXPECT_NEAR(pa_to_spl_db(20e-6), 0.0, 1e-9);
  EXPECT_NEAR(spl_db_to_sine_peak_pa(93.9794), std::sqrt(2.0), 1e-3);
}

TEST(units, spl_round_trip) {
  for (const double spl : {0.0, 40.0, 94.0, 120.0}) {
    EXPECT_NEAR(pa_to_spl_db(spl_db_to_pa(spl)), spl, 1e-9);
  }
}

TEST(error, expects_and_ensures_throw_typed_exceptions) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_NO_THROW(ensures(true, "fine"));
  EXPECT_THROW(expects(false, "bad input"), std::invalid_argument);
  EXPECT_THROW(ensures(false, "bad state"), std::runtime_error);
  try {
    expects(false, "message text");
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "message text");
  }
}

TEST(rng, deterministic_and_seed_sensitive) {
  rng a{42};
  rng b{42};
  rng c{43};
  const double va = a.uniform();
  EXPECT_DOUBLE_EQ(va, b.uniform());
  EXPECT_NE(va, c.uniform());
}

TEST(rng, split_streams_are_stable_and_distinct) {
  rng root{7};
  rng s1 = root.split(1);
  rng s2 = root.split(2);
  rng s1_again = rng{7}.split(1);
  EXPECT_DOUBLE_EQ(s1.uniform(), s1_again.uniform());
  EXPECT_NE(s1.normal(), s2.normal());
}

TEST(rng, distributions_respect_ranges) {
  rng r{11};
  for (int i = 0; i < 1'000; ++i) {
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
    const auto n = r.uniform_int(5, 9);
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
  }
  EXPECT_THROW(r.uniform(3.0, 2.0), std::invalid_argument);
  EXPECT_THROW(r.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW(r.normal(0.0, -1.0), std::invalid_argument);
}

TEST(rng, normal_moments_are_plausible) {
  rng r{13};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(constants, sane_values) {
  EXPECT_NEAR(pi, 3.14159265358979, 1e-12);
  EXPECT_NEAR(speed_of_sound_20c, 343.0, 1.0);
  EXPECT_LT(audible_low_hz, audible_high_hz);
}

}  // namespace
}  // namespace ivc
