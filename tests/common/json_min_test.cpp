#include "common/json_min.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ivc::json {
namespace {

TEST(json_min, parses_scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").boolean());
  EXPECT_FALSE(parse("false").boolean());
  EXPECT_DOUBLE_EQ(parse("-12.5e2").number(), -1250.0);
  EXPECT_EQ(parse("\"hi\"").string(), "hi");
  // Full-precision doubles survive (what format_double_exact emits).
  EXPECT_DOUBLE_EQ(parse("0.30000000000000004").number(),
                   0.30000000000000004);
}

TEST(json_min, parses_string_escapes) {
  EXPECT_EQ(parse("\"a\\\"b\\\\c\\nd\\te\"").string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse("\"\\u0041\\u00e9\"").string(), "A\u00e9");
  EXPECT_EQ(parse("\"\\u0007\"").string(), "\a");
}

TEST(json_min, parses_nested_structures) {
  const value v = parse(
      R"({"name": "F-R9", "seed": 91, "rows": [[1, 2], []], "meta": {"ok": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->string(), "F-R9");
  EXPECT_DOUBLE_EQ(v.find("seed")->number(), 91.0);
  const array& rows = v.find("rows")->items();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].items()[1].number(), 2.0);
  EXPECT_TRUE(rows[1].items().empty());
  EXPECT_TRUE(v.find("meta")->find("ok")->boolean());
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(json_min, object_members_keep_insertion_order) {
  const value v = parse(R"({"b": 1, "a": 2})");
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
}

TEST(json_min, rejects_malformed_documents) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("{"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(parse("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW(parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse("troo"), std::invalid_argument);
  EXPECT_THROW(parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(parse("\"\\u00zz\""), std::invalid_argument);
}

TEST(json_min, rejects_unterminated_strings) {
  // Every way a string can run off the end of the document: plain text,
  // a dangling escape, and a \u escape cut mid-digits. None may read
  // past the buffer or return a partial value.
  EXPECT_THROW(parse("\"runs off the end"), std::invalid_argument);
  EXPECT_THROW(parse("\"ends in escape\\"), std::invalid_argument);
  EXPECT_THROW(parse("\"\\u00"), std::invalid_argument);
  EXPECT_THROW(parse("{\"key"), std::invalid_argument);
  EXPECT_THROW(parse("[\"a\", \"b"), std::invalid_argument);
}

TEST(json_min, rejects_pathologically_deep_nesting) {
  // The recursive-descent parser caps nesting so a hostile document
  // ("[[[[...") fails cleanly instead of overflowing the stack.
  const auto nested = [](std::size_t depth) {
    std::string doc(depth, '[');
    doc += "1";
    doc.append(depth, ']');
    return doc;
  };
  const value* inner = nullptr;
  const value shallow = parse(nested(32));  // well inside the cap
  for (inner = &shallow; inner->is_array(); inner = &inner->items()[0]) {
  }
  EXPECT_DOUBLE_EQ(inner->number(), 1.0);
  EXPECT_THROW(parse(nested(100'000)), std::invalid_argument);
  // Mixed object/array nesting hits the same guard.
  std::string mixed;
  for (int i = 0; i < 50'000; ++i) {
    mixed += "{\"k\":[";
  }
  EXPECT_THROW(parse(mixed), std::invalid_argument);
}

TEST(json_min, rejects_trailing_garbage) {
  // A valid prefix does not excuse junk after it — JSONL readers rely
  // on one-document-per-parse.
  EXPECT_THROW(parse("null null"), std::invalid_argument);
  EXPECT_THROW(parse("[1, 2] [3]"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\": 1}}"), std::invalid_argument);
  EXPECT_THROW(parse("12.5garbage"), std::invalid_argument);
  EXPECT_THROW(parse("\"done\"x"), std::invalid_argument);
  // Trailing whitespace alone stays legal.
  EXPECT_TRUE(parse("  true  \n").boolean());
}

TEST(json_min, accessors_reject_type_mismatches) {
  EXPECT_THROW(parse("1").string(), std::invalid_argument);
  EXPECT_THROW(parse("\"s\"").number(), std::invalid_argument);
  EXPECT_THROW(parse("[1]").members(), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::json
