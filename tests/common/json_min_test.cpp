#include "common/json_min.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace ivc::json {
namespace {

// Bit-level double equality: the snapshot round trip promises the BITS
// back, which EXPECT_DOUBLE_EQ (ULP-based, and -0.0 == 0.0) is too weak
// to pin.
bool same_bits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

TEST(json_min, parses_scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").boolean());
  EXPECT_FALSE(parse("false").boolean());
  EXPECT_DOUBLE_EQ(parse("-12.5e2").number(), -1250.0);
  EXPECT_EQ(parse("\"hi\"").string(), "hi");
  // Full-precision doubles survive (what format_double_exact emits).
  EXPECT_DOUBLE_EQ(parse("0.30000000000000004").number(),
                   0.30000000000000004);
}

TEST(json_min, parses_string_escapes) {
  EXPECT_EQ(parse("\"a\\\"b\\\\c\\nd\\te\"").string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse("\"\\u0041\\u00e9\"").string(), "A\u00e9");
  EXPECT_EQ(parse("\"\\u0007\"").string(), "\a");
}

TEST(json_min, parses_nested_structures) {
  const value v = parse(
      R"({"name": "F-R9", "seed": 91, "rows": [[1, 2], []], "meta": {"ok": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->string(), "F-R9");
  EXPECT_DOUBLE_EQ(v.find("seed")->number(), 91.0);
  const array& rows = v.find("rows")->items();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].items()[1].number(), 2.0);
  EXPECT_TRUE(rows[1].items().empty());
  EXPECT_TRUE(v.find("meta")->find("ok")->boolean());
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(json_min, object_members_keep_insertion_order) {
  const value v = parse(R"({"b": 1, "a": 2})");
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
}

TEST(json_min, rejects_malformed_documents) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("{"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(parse("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW(parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse("troo"), std::invalid_argument);
  EXPECT_THROW(parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(parse("\"\\u00zz\""), std::invalid_argument);
}

TEST(json_min, rejects_unterminated_strings) {
  // Every way a string can run off the end of the document: plain text,
  // a dangling escape, and a \u escape cut mid-digits. None may read
  // past the buffer or return a partial value.
  EXPECT_THROW(parse("\"runs off the end"), std::invalid_argument);
  EXPECT_THROW(parse("\"ends in escape\\"), std::invalid_argument);
  EXPECT_THROW(parse("\"\\u00"), std::invalid_argument);
  EXPECT_THROW(parse("{\"key"), std::invalid_argument);
  EXPECT_THROW(parse("[\"a\", \"b"), std::invalid_argument);
}

TEST(json_min, rejects_pathologically_deep_nesting) {
  // The recursive-descent parser caps nesting so a hostile document
  // ("[[[[...") fails cleanly instead of overflowing the stack.
  const auto nested = [](std::size_t depth) {
    std::string doc(depth, '[');
    doc += "1";
    doc.append(depth, ']');
    return doc;
  };
  const value* inner = nullptr;
  const value shallow = parse(nested(32));  // well inside the cap
  for (inner = &shallow; inner->is_array(); inner = &inner->items()[0]) {
  }
  EXPECT_DOUBLE_EQ(inner->number(), 1.0);
  EXPECT_THROW(parse(nested(100'000)), std::invalid_argument);
  // Mixed object/array nesting hits the same guard.
  std::string mixed;
  for (int i = 0; i < 50'000; ++i) {
    mixed += "{\"k\":[";
  }
  EXPECT_THROW(parse(mixed), std::invalid_argument);
}

TEST(json_min, rejects_trailing_garbage) {
  // A valid prefix does not excuse junk after it — JSONL readers rely
  // on one-document-per-parse.
  EXPECT_THROW(parse("null null"), std::invalid_argument);
  EXPECT_THROW(parse("[1, 2] [3]"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\": 1}}"), std::invalid_argument);
  EXPECT_THROW(parse("12.5garbage"), std::invalid_argument);
  EXPECT_THROW(parse("\"done\"x"), std::invalid_argument);
  // Trailing whitespace alone stays legal.
  EXPECT_TRUE(parse("  true  \n").boolean());
}

TEST(json_min, accessors_reject_type_mismatches) {
  EXPECT_THROW(parse("1").string(), std::invalid_argument);
  EXPECT_THROW(parse("\"s\"").number(), std::invalid_argument);
  EXPECT_THROW(parse("[1]").members(), std::invalid_argument);
}

// The doubles that break sloppy serializers: denormals down to the very
// smallest, negative zero, both ends of the exponent range, and values
// famous for needing all 17 digits.
const double hard_doubles[] = {
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.1,
    0.30000000000000004,
    1.0 / 3.0,
    std::numeric_limits<double>::denorm_min(),
    -std::numeric_limits<double>::denorm_min(),
    4.9406564584124654e-324,  // min denormal, spelled as text
    2.2250738585072014e-308,  // min normal
    2.2250738585072011e-308,  // largest denormal
    std::numeric_limits<double>::max(),
    -std::numeric_limits<double>::max(),
    1.7976931348623157e308,
    1e-300,
    -1e300,
    9007199254740993.0,  // 2^53 + 1 (rounds to 2^53: still round-trips)
    6.283185307179586,
    2.5e-322,
};

TEST(json_min, write_round_trips_doubles_bit_exactly) {
  for (const double d : hard_doubles) {
    const std::string text = write(value{d});
    const value back = parse(text);
    ASSERT_TRUE(back.is_number()) << text;
    EXPECT_TRUE(same_bits(back.number(), d))
        << text << " parsed to " << back.number() << " wanted " << d;
  }
  // Negative zero keeps its sign through the text form.
  EXPECT_TRUE(std::signbit(parse(write(value{-0.0})).number()));
  EXPECT_FALSE(std::signbit(parse(write(value{0.0})).number()));
}

TEST(json_min, write_round_trips_structures) {
  array samples;
  for (const double d : hard_doubles) {
    samples.emplace_back(d);
  }
  object o;
  o.emplace_back("name", value{std::string{"snap \"v1\"\n\ttab"}});
  o.emplace_back("ok", value{true});
  o.emplace_back("none", value{nullptr});
  o.emplace_back("samples", value{std::move(samples)});
  o.emplace_back("nested", value{object{{"count", value{42.0}}}});
  const value v{std::move(o)};

  const value back = parse(write(v));
  EXPECT_EQ(back.find("name")->string(), "snap \"v1\"\n\ttab");
  EXPECT_TRUE(back.find("ok")->boolean());
  EXPECT_TRUE(back.find("none")->is_null());
  const array& got = back.find("samples")->items();
  ASSERT_EQ(got.size(), std::size(hard_doubles));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(same_bits(got[i].number(), hard_doubles[i])) << i;
  }
  EXPECT_DOUBLE_EQ(back.find("nested")->find("count")->number(), 42.0);
  // write() is deterministic: same tree, same bytes.
  EXPECT_EQ(write(v), write(back));
}

TEST(json_min, write_prints_integers_without_exponent) {
  EXPECT_EQ(write(value{0.0}), "0");
  EXPECT_EQ(write(value{-0.0}), "-0");
  EXPECT_EQ(write(value{1234567.0}), "1234567");
  EXPECT_EQ(write(value{-42.0}), "-42");
}

TEST(json_min, write_rejects_non_finite_numbers) {
  EXPECT_THROW(write(value{std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
  EXPECT_THROW(write(value{std::numeric_limits<double>::quiet_NaN()}),
               std::invalid_argument);
}

TEST(json_min, binary_round_trips_everything) {
  array samples;
  for (const double d : hard_doubles) {
    samples.emplace_back(d);
  }
  // A silence-heavy array takes the run-length path; make sure it comes
  // back element-exact (including the -0.0 run staying distinct from
  // the 0.0 run).
  array silence;
  for (int i = 0; i < 500; ++i) {
    silence.emplace_back(0.0);
  }
  for (int i = 0; i < 100; ++i) {
    silence.emplace_back(-0.0);
  }
  silence.emplace_back(0.25);
  object o;
  o.emplace_back("name", value{std::string{"binary \0 safe", 13}});
  o.emplace_back("flag", value{false});
  o.emplace_back("none", value{nullptr});
  o.emplace_back("hard", value{samples});
  o.emplace_back("silence", value{silence});
  o.emplace_back("mixed", value{array{value{1.0}, value{std::string{"x"}}}});
  o.emplace_back("nan", value{std::numeric_limits<double>::quiet_NaN()});
  const value v{std::move(o)};

  const std::string bytes = to_binary(v);
  const value back = from_binary(bytes);
  const array& got = back.find("hard")->items();
  ASSERT_EQ(got.size(), std::size(hard_doubles));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(same_bits(got[i].number(), hard_doubles[i])) << i;
  }
  const array& sil = back.find("silence")->items();
  ASSERT_EQ(sil.size(), 601u);
  EXPECT_FALSE(std::signbit(sil[0].number()));
  EXPECT_TRUE(std::signbit(sil[550].number()));
  EXPECT_TRUE(same_bits(sil[600].number(), 0.25));
  EXPECT_EQ(back.find("name")->string(), (std::string{"binary \0 safe", 13}));
  EXPECT_FALSE(back.find("flag")->boolean());
  EXPECT_TRUE(back.find("none")->is_null());
  EXPECT_TRUE(std::isnan(back.find("nan")->number()));
  // The run-length path earns its keep on the silence array.
  EXPECT_LT(to_binary(value{silence}).size(), 601u * 8u / 4u);
}

TEST(json_min, binary_rejects_truncated_and_malformed_buffers) {
  const std::string bytes =
      to_binary(parse(R"({"a": [1, 2, 3], "s": "text"})"));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
                                bytes.size() - 1}) {
    EXPECT_THROW(from_binary(bytes.substr(0, cut)), std::invalid_argument)
        << cut;
  }
  EXPECT_THROW(from_binary("Q"), std::invalid_argument);
  EXPECT_THROW(from_binary(bytes + "x"), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::json
