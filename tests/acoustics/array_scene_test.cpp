#include <cmath>
#include <gtest/gtest.h>

#include "acoustics/array.h"
#include "acoustics/noise.h"
#include "acoustics/scene.h"
#include "audio/generate.h"
#include "audio/metrics.h"
#include "common/units.h"
#include "dsp/goertzel.h"

namespace ivc::acoustics {
namespace {

array_element tone_element(double freq, double amp, vec3 pos,
                           double power = 25.0) {
  array_element e;
  e.speaker = ultrasonic_tweeter();
  e.speaker.nonlin_a2 = 0.0;
  e.speaker.nonlin_a3 = 0.0;
  e.drive = audio::tone(freq, 0.1, 192'000.0, amp);
  e.input_power_w = power;
  e.position = pos;
  return e;
}

TEST(array, single_element_matches_emit_plus_propagate) {
  speaker_array arr;
  arr.add_element(tone_element(40'000.0, 0.7, vec3{0.0, 0.0, 0.0}));
  const air_model air;
  const audio::buffer at_listener = arr.render_at(vec3{0.0, 3.0, 0.0}, air);

  // Reference: explicit emit then propagate.
  const speaker spk{arr.elements()[0].speaker};
  const audio::buffer emitted = spk.emit(arr.elements()[0].drive, 25.0);
  propagation_config cfg;
  cfg.distance_m = 3.0;
  cfg.air = air;
  const auto reference = propagate(emitted.samples, 192'000.0, cfg);

  const std::span<const double> a{at_listener.samples.data() + 4'800, 9'600};
  const std::span<const double> b{reference.data() + 4'800, 9'600};
  const double amp_a = ivc::dsp::goertzel_amplitude(a, 192'000.0, 40'000.0);
  const double amp_b = ivc::dsp::goertzel_amplitude(b, 192'000.0, 40'000.0);
  EXPECT_NEAR(amp_a, amp_b, 0.02 * amp_b);
}

TEST(array, two_elements_superpose) {
  speaker_array arr;
  arr.add_element(tone_element(38'000.0, 0.5, vec3{-0.1, 0.0, 0.0}));
  arr.add_element(tone_element(41'000.0, 0.5, vec3{0.1, 0.0, 0.0}));
  const air_model air;
  const audio::buffer rx = arr.render_at(vec3{0.0, 2.0, 0.0}, air);
  const std::span<const double> mid{rx.samples.data() + 4'800, 9'600};
  EXPECT_GT(ivc::dsp::goertzel_amplitude(mid, 192'000.0, 38'000.0), 0.0);
  EXPECT_GT(ivc::dsp::goertzel_amplitude(mid, 192'000.0, 41'000.0), 0.0);
}

TEST(array, total_power_and_scaling) {
  speaker_array arr;
  arr.add_element(tone_element(40'000.0, 0.5, vec3{}, 10.0));
  arr.add_element(tone_element(40'500.0, 0.5, vec3{}, 30.0));
  EXPECT_DOUBLE_EQ(arr.total_power_w(), 40.0);
  arr.scale_power(0.5);
  EXPECT_DOUBLE_EQ(arr.total_power_w(), 20.0);
  EXPECT_THROW(arr.scale_power(10.0), std::invalid_argument);
}

TEST(array, translate_moves_elements) {
  speaker_array arr;
  arr.add_element(tone_element(40'000.0, 0.5, vec3{1.0, 2.0, 3.0}));
  arr.translate(vec3{-1.0, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(arr.elements()[0].position.x, 0.0);
  EXPECT_DOUBLE_EQ(arr.elements()[0].position.z, 3.5);
}

TEST(array, farther_listener_receives_less) {
  speaker_array arr;
  arr.add_element(tone_element(40'000.0, 0.7, vec3{}));
  const air_model air;
  const audio::buffer near = arr.render_at(vec3{0.0, 1.0, 0.0}, air);
  const audio::buffer far = arr.render_at(vec3{0.0, 6.0, 0.0}, air);
  const std::span<const double> mn{near.samples.data() + 4'800, 9'600};
  const std::span<const double> mf{far.samples.data() + 4'800, 9'600};
  const double ratio = ivc::dsp::goertzel_amplitude(mn, 192'000.0, 40'000.0) /
                       ivc::dsp::goertzel_amplitude(mf, 192'000.0, 40'000.0);
  // 6x spreading plus ~5 m of ultrasound absorption: > 6x, < 30x.
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 30.0);
}

TEST(array, rejects_mixed_sample_rates_and_empty_render) {
  speaker_array arr;
  EXPECT_THROW(arr.render_at(vec3{}, air_model{}), std::invalid_argument);
  arr.add_element(tone_element(40'000.0, 0.5, vec3{}));
  array_element wrong_rate;
  wrong_rate.speaker = ultrasonic_tweeter();
  wrong_rate.drive = audio::tone(1'000.0, 0.1, 48'000.0, 0.5);
  wrong_rate.input_power_w = 1.0;
  EXPECT_THROW(arr.add_element(wrong_rate), std::invalid_argument);
}

TEST(noise, ambient_noise_hits_target_spl) {
  ivc::rng rng{3};
  for (const auto kind :
       {noise_kind::white, noise_kind::pink, noise_kind::speech_shaped}) {
    const audio::buffer n = ambient_noise(1.0, 48'000.0, 50.0, kind, rng);
    EXPECT_NEAR(ivc::pa_to_spl_db(audio::rms(n.samples)), 50.0, 0.1);
  }
}

TEST(scene, source_plus_ambient_render) {
  scene sc{air_model{}};
  pressure_source src;
  src.pressure_at_1m = audio::tone(1'000.0, 0.3, 48'000.0, 0.2);
  src.position = vec3{0.0, 0.0, 0.0};
  sc.add_source(src);
  sc.set_ambient(ambient_config{35.0, noise_kind::white});
  ivc::rng rng{4};
  const audio::buffer rx = sc.render_at(vec3{0.0, 2.0, 0.0}, rng);
  ASSERT_FALSE(rx.empty());
  const std::span<const double> mid{rx.samples.data() + 9'600, 2'400};
  // Tone present at ~0.1 Pa (0.2/2), noise floor present but lower.
  EXPECT_NEAR(ivc::dsp::goertzel_amplitude(mid, 48'000.0, 1'000.0), 0.1,
              0.02);
}

TEST(scene, empty_scene_rejected_ambient_only_allowed) {
  scene empty{air_model{}};
  ivc::rng rng{5};
  EXPECT_THROW(empty.render_at(vec3{}, rng), std::invalid_argument);
  scene ambient_only{air_model{}};
  ambient_only.set_ambient(ambient_config{40.0, noise_kind::pink});
  const audio::buffer rx = ambient_only.render_at(vec3{}, rng);
  EXPECT_FALSE(rx.empty());
}

}  // namespace
}  // namespace ivc::acoustics
