#include "acoustics/speaker.h"

#include <cmath>
#include <gtest/gtest.h>

#include "audio/generate.h"
#include "common/units.h"
#include "dsp/goertzel.h"

namespace ivc::acoustics {
namespace {

TEST(speaker, full_scale_inband_sine_hits_rated_sensitivity) {
  speaker_params p = ultrasonic_tweeter();
  p.nonlin_a2 = 0.0;
  p.nonlin_a3 = 0.0;
  // Widen the response so 40 kHz sits on the flat plateau: sensitivity is
  // defined at a frequency where the response is ~1.
  p.band_low_hz = 2'000.0;
  p.band_high_hz = 500'000.0;
  const speaker spk{p};
  const audio::buffer drive = audio::tone(40'000.0, 0.1, 192'000.0, 1.0);
  const audio::buffer out = spk.emit(drive, p.rated_power_w);
  const std::span<const double> mid{out.samples.data() + 4'800, 9'600};
  const double rms_pa =
      ivc::dsp::goertzel_amplitude(mid, 192'000.0, 40'000.0) / std::sqrt(2.0);
  EXPECT_NEAR(ivc::pa_to_spl_db(rms_pa), p.sensitivity_db_spl, 0.5);
}

TEST(speaker, power_scales_output_by_sqrt) {
  speaker_params p = ultrasonic_tweeter();
  p.nonlin_a2 = 0.0;
  p.nonlin_a3 = 0.0;
  const speaker spk{p};
  const audio::buffer drive = audio::tone(40'000.0, 0.1, 192'000.0, 0.5);
  const audio::buffer quarter = spk.emit(drive, p.rated_power_w / 4.0);
  const audio::buffer full = spk.emit(drive, p.rated_power_w);
  const std::span<const double> mq{quarter.samples.data() + 4'800, 9'600};
  const std::span<const double> mf{full.samples.data() + 4'800, 9'600};
  const double ratio = ivc::dsp::goertzel_amplitude(mf, 192'000.0, 40'000.0) /
                       ivc::dsp::goertzel_amplitude(mq, 192'000.0, 40'000.0);
  EXPECT_NEAR(ratio, 2.0, 0.02);  // sqrt(4) in amplitude
}

TEST(speaker, response_rolls_off_outside_band) {
  const speaker spk{ultrasonic_tweeter()};
  EXPECT_NEAR(spk.response_at(40'000.0), 1.0, 0.1);  // in-band plateau
  EXPECT_LT(spk.response_at(1'000.0), 0.01);   // voice band: piezo is deaf
  EXPECT_LT(spk.response_at(300'000.0), 0.06); // far ultrasound
  EXPECT_DOUBLE_EQ(spk.response_at(0.0), 0.0);
}

TEST(speaker, nonlinearity_creates_intermodulation_products) {
  // Two ultrasonic tones through a non-linear speaker radiate a
  // difference tone — but shaped by the (weak) low-frequency response.
  speaker_params p = ultrasonic_tweeter();
  const speaker spk{p};
  const std::vector<double> freqs{38'000.0, 40'000.0};
  const audio::buffer drive =
      audio::multi_tone(freqs, 0.1, 192'000.0, 0.45);
  const audio::buffer with_nl = spk.emit(drive, p.rated_power_w);
  const audio::buffer without_nl = spk.emit_linear(drive, p.rated_power_w);
  const std::span<const double> m_nl{with_nl.samples.data() + 4'800, 9'600};
  const std::span<const double> m_lin{without_nl.samples.data() + 4'800, 9'600};
  const double imd_nl = ivc::dsp::goertzel_amplitude(m_nl, 192'000.0, 2'000.0);
  const double imd_lin = ivc::dsp::goertzel_amplitude(m_lin, 192'000.0, 2'000.0);
  EXPECT_GT(imd_nl, 100.0 * std::max(imd_lin, 1e-12));
}

TEST(speaker, emit_linear_has_no_harmonic_distortion) {
  speaker_params p = ultrasonic_tweeter();
  const speaker spk{p};
  const audio::buffer drive = audio::tone(30'000.0, 0.1, 192'000.0, 0.8);
  const audio::buffer out = spk.emit_linear(drive, p.rated_power_w);
  const std::span<const double> mid{out.samples.data() + 4'800, 9'600};
  const double fundamental =
      ivc::dsp::goertzel_amplitude(mid, 192'000.0, 30'000.0);
  const double second = ivc::dsp::goertzel_amplitude(mid, 192'000.0, 60'000.0);
  EXPECT_LT(second / fundamental, 1e-6);
}

TEST(speaker, overdrive_clips_and_distorts) {
  speaker_params p = ultrasonic_tweeter();
  p.nonlin_a2 = 0.0;
  p.nonlin_a3 = 0.0;
  const speaker spk{p};
  const audio::buffer drive = audio::tone(30'000.0, 0.1, 192'000.0, 1.0);
  // Driving at twice rated power pushes gain*drive past the rail.
  const audio::buffer out = spk.emit(drive, 2.0 * p.rated_power_w);
  const std::span<const double> mid{out.samples.data() + 4'800, 9'600};
  // Clipped sine has 3rd harmonic content at 90 kHz.
  const double third = ivc::dsp::goertzel_amplitude(mid, 192'000.0, 90'000.0);
  const double fundamental =
      ivc::dsp::goertzel_amplitude(mid, 192'000.0, 30'000.0);
  EXPECT_GT(third / fundamental, 0.01);
}

TEST(speaker, rejects_power_above_rating) {
  const speaker spk{ultrasonic_tweeter()};
  const audio::buffer drive = audio::tone(40'000.0, 0.01, 192'000.0, 1.0);
  EXPECT_THROW(spk.emit(drive, 1'000.0), std::invalid_argument);
  EXPECT_THROW(spk.emit(drive, 0.0), std::invalid_argument);
}

TEST(speaker, wideband_preset_covers_voice_band) {
  const speaker spk{wideband_speaker()};
  EXPECT_GT(spk.response_at(1'000.0), 0.9);
  EXPECT_GT(spk.response_at(200.0), 0.7);
  EXPECT_LT(spk.response_at(40'000.0), 0.3);
}

TEST(speaker, invalid_params_rejected) {
  speaker_params p = ultrasonic_tweeter();
  p.band_low_hz = 50'000.0;
  p.band_high_hz = 40'000.0;
  EXPECT_THROW(speaker{p}, std::invalid_argument);
  speaker_params q = ultrasonic_tweeter();
  q.max_power_w = q.rated_power_w / 2.0;
  EXPECT_THROW(speaker{q}, std::invalid_argument);
}

}  // namespace
}  // namespace ivc::acoustics
