#include "acoustics/air.h"

#include <cmath>
#include <gtest/gtest.h>

namespace ivc::acoustics {
namespace {

TEST(air, speed_of_sound_reference_values) {
  air_model a;
  a.temperature_c = 20.0;
  EXPECT_NEAR(a.speed_of_sound(), 343.2, 0.5);
  a.temperature_c = 0.0;
  EXPECT_NEAR(a.speed_of_sound(), 331.3, 0.5);
  a.temperature_c = 30.0;
  EXPECT_NEAR(a.speed_of_sound(), 349.0, 1.0);
}

TEST(air, absorption_iso9613_spot_checks) {
  // ISO 9613-1 published values at 20 °C, 70 % RH, 101.325 kPa:
  // 1 kHz ≈ 4.7 dB/km; 4 kHz ≈ 23 dB/km (both ±20 % tolerance here,
  // the formula approximations differ slightly between editions).
  air_model a;
  a.temperature_c = 20.0;
  a.relative_humidity_percent = 70.0;
  EXPECT_NEAR(a.absorption_db_per_m(1'000.0) * 1'000.0, 4.7, 1.5);
  EXPECT_NEAR(a.absorption_db_per_m(4'000.0) * 1'000.0, 23.0, 7.0);
}

TEST(air, ultrasound_absorption_is_meters_scale) {
  // The attack-relevant fact: ~1 dB/m around 40 kHz at room conditions.
  air_model a;
  a.temperature_c = 20.0;
  a.relative_humidity_percent = 50.0;
  const double alpha40k = a.absorption_db_per_m(40'000.0);
  EXPECT_GT(alpha40k, 0.5);
  EXPECT_LT(alpha40k, 3.0);
  // And it dwarfs voice-band absorption by orders of magnitude.
  EXPECT_GT(alpha40k / a.absorption_db_per_m(1'000.0), 50.0);
}

TEST(air, absorption_monotone_in_frequency) {
  air_model a;
  double prev = 0.0;
  for (double f = 100.0; f <= 80'000.0; f *= 2.0) {
    const double alpha = a.absorption_db_per_m(f);
    EXPECT_GT(alpha, prev) << "f=" << f;
    prev = alpha;
  }
}

TEST(air, absorption_zero_at_dc) {
  air_model a;
  EXPECT_DOUBLE_EQ(a.absorption_db_per_m(0.0), 0.0);
}

TEST(air, absorption_gain_decays_with_distance) {
  air_model a;
  const double g1 = a.absorption_gain(40'000.0, 1.0);
  const double g5 = a.absorption_gain(40'000.0, 5.0);
  EXPECT_LT(g5, g1);
  EXPECT_NEAR(g5, std::pow(g1, 5.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.absorption_gain(40'000.0, 0.0), 1.0);
}

TEST(air, humidity_affects_ultrasound_absorption) {
  air_model dry;
  dry.relative_humidity_percent = 20.0;
  air_model humid;
  humid.relative_humidity_percent = 80.0;
  // Both plausible, but they must differ measurably at 40 kHz.
  const double a_dry = dry.absorption_db_per_m(40'000.0);
  const double a_humid = humid.absorption_db_per_m(40'000.0);
  EXPECT_GT(std::abs(a_dry - a_humid) / a_humid, 0.1);
}

TEST(air, rejects_invalid_parameters) {
  air_model a;
  a.relative_humidity_percent = 150.0;
  EXPECT_THROW(a.absorption_db_per_m(1'000.0), std::invalid_argument);
  air_model b;
  b.pressure_kpa = -1.0;
  EXPECT_THROW(b.absorption_db_per_m(1'000.0), std::invalid_argument);
  EXPECT_THROW(a.absorption_db_per_m(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::acoustics
