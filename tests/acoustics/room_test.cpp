#include "acoustics/room.h"

#include <cmath>
#include <gtest/gtest.h>

#include "acoustics/propagation.h"
#include "audio/generate.h"
#include "audio/metrics.h"

namespace ivc::acoustics {
namespace {

room_model meeting_room() {
  return room_model{};  // 6.5 x 4 x 2.5 m defaults
}

TEST(room, image_count_matches_order) {
  const room_model room = meeting_room();
  const vec3 src{2.0, 1.5, 1.2};
  room_model order0 = room;
  order0.max_reflection_order = 0;
  EXPECT_EQ(compute_image_sources(order0, src).size(), 1u);  // direct only
  room_model order1 = room;
  order1.max_reflection_order = 1;
  // Direct + one image per wall.
  EXPECT_EQ(compute_image_sources(order1, src).size(), 7u);
}

TEST(room, direct_image_is_the_source) {
  const room_model room = meeting_room();
  const vec3 src{2.0, 1.5, 1.2};
  bool found_direct = false;
  for (const image_source& img : compute_image_sources(room, src)) {
    if (img.reflections == 0) {
      EXPECT_DOUBLE_EQ(img.position.x, src.x);
      EXPECT_DOUBLE_EQ(img.position.y, src.y);
      EXPECT_DOUBLE_EQ(img.position.z, src.z);
      found_direct = true;
    }
  }
  EXPECT_TRUE(found_direct);
}

TEST(room, first_order_images_mirror_across_walls) {
  const room_model room = meeting_room();
  const vec3 src{2.0, 1.5, 1.2};
  bool found_floor_mirror = false;
  for (const image_source& img : compute_image_sources(room, src)) {
    if (img.reflections == 1 && std::abs(img.position.z + src.z) < 1e-9 &&
        img.position.x == src.x && img.position.y == src.y) {
      found_floor_mirror = true;  // mirrored across z = 0
    }
  }
  EXPECT_TRUE(found_floor_mirror);
}

TEST(room, reflection_gain_decays_per_bounce_and_penalizes_ultrasound) {
  const room_model room = meeting_room();
  EXPECT_DOUBLE_EQ(reflection_gain(room, 1'000.0, 0), 1.0);
  const double one = reflection_gain(room, 1'000.0, 1);
  const double two = reflection_gain(room, 1'000.0, 2);
  EXPECT_LT(one, 1.0);
  EXPECT_NEAR(two, one * one, 1e-12);
  EXPECT_LT(reflection_gain(room, 40'000.0, 1), one);
}

TEST(room, order_zero_matches_free_field) {
  room_model room = meeting_room();
  room.max_reflection_order = 0;
  const air_model air;
  const vec3 src{1.0, 1.0, 1.2};
  const vec3 dst{4.0, 3.0, 1.2};
  const audio::buffer tone = audio::tone(1'000.0, 0.2, 48'000.0, 0.5);

  const audio::buffer in_room = render_in_room(tone, src, dst, room, air);
  propagation_config cfg;
  cfg.distance_m = distance(src, dst);
  cfg.air = air;
  const auto free_field = propagate(tone.samples, 48'000.0, cfg);

  // Compare steady-state RMS (lengths differ; room output is padded).
  const std::span<const double> a{in_room.samples.data() + 2'400, 4'800};
  const std::span<const double> b{free_field.data() + 2'400, 4'800};
  EXPECT_NEAR(audio::rms(a), audio::rms(b), 0.02 * audio::rms(b));
}

TEST(room, reflections_add_energy_and_tail) {
  room_model reverberant = meeting_room();
  reverberant.max_reflection_order = 2;
  room_model dry = meeting_room();
  dry.max_reflection_order = 0;
  const air_model air;
  const vec3 src{1.0, 1.0, 1.2};
  const vec3 dst{5.5, 3.0, 1.2};

  // Impulse-ish burst.
  audio::buffer burst = audio::tone(2'000.0, 0.02, 48'000.0, 1.0);
  const audio::buffer wet = render_in_room(burst, src, dst, reverberant, air);
  const audio::buffer anechoic = render_in_room(burst, src, dst, dry, air);

  double wet_energy = 0.0;
  double dry_energy = 0.0;
  for (const double v : wet.samples) {
    wet_energy += v * v;
  }
  for (const double v : anechoic.samples) {
    dry_energy += v * v;
  }
  EXPECT_GT(wet_energy, 1.2 * dry_energy);

  // The reverberant tail extends past the direct arrival.
  const auto direct_end = static_cast<std::size_t>(
      (distance(src, dst) / air.speed_of_sound() + 0.02) * 48'000.0) + 100;
  double tail = 0.0;
  for (std::size_t i = direct_end; i < wet.size(); ++i) {
    tail += wet.samples[i] * wet.samples[i];
  }
  EXPECT_GT(tail, 0.05 * wet_energy);
}

TEST(room, rejects_positions_outside_the_room) {
  const room_model room = meeting_room();
  const audio::buffer tone = audio::tone(440.0, 0.05, 48'000.0, 0.5);
  EXPECT_THROW(
      render_in_room(tone, vec3{-1.0, 1.0, 1.0}, vec3{1.0, 1.0, 1.0}, room,
                     air_model{}),
      std::invalid_argument);
  EXPECT_THROW(compute_image_sources(room, vec3{0.0, 10.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ivc::acoustics
