#include "acoustics/propagation.h"

#include <cmath>
#include <gtest/gtest.h>

#include "audio/generate.h"
#include "audio/metrics.h"
#include "common/constants.h"
#include "common/units.h"
#include "dsp/goertzel.h"

namespace ivc::acoustics {
namespace {

TEST(propagation, inverse_distance_spreading) {
  const audio::buffer src = audio::tone(1'000.0, 0.5, 48'000.0, 1.0);
  propagation_config cfg;
  cfg.include_delay = false;
  cfg.distance_m = 2.0;
  const auto at2 = propagate(src.samples, 48'000.0, cfg);
  cfg.distance_m = 4.0;
  const auto at4 = propagate(src.samples, 48'000.0, cfg);
  const double r2 = audio::rms({at2.data() + 4'800, 14'400});
  const double r4 = audio::rms({at4.data() + 4'800, 14'400});
  EXPECT_NEAR(r2 / r4, 2.0, 0.05);
}

TEST(propagation, delay_matches_distance_over_speed) {
  // An impulse at t=0 arrives at t = r/c.
  std::vector<double> impulse(9'600, 0.0);
  impulse[0] = 1.0;
  propagation_config cfg;
  cfg.distance_m = 3.43;  // ~10 ms at 343 m/s
  const auto received = propagate(impulse, 48'000.0, cfg);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (std::abs(received[i]) > std::abs(received[argmax])) {
      argmax = i;
    }
  }
  const double expected = 3.43 / cfg.air.speed_of_sound() * 48'000.0;
  EXPECT_NEAR(static_cast<double>(argmax), expected, 3.0);
}

TEST(propagation, ultrasound_attenuates_more_than_voice) {
  const double fs = 192'000.0;
  audio::buffer two_tone = audio::tone(1'000.0, 0.2, fs, 0.5);
  const audio::buffer ultra = audio::tone(40'000.0, 0.2, fs, 0.5);
  for (std::size_t i = 0; i < two_tone.size(); ++i) {
    two_tone.samples[i] += ultra.samples[i];
  }
  propagation_config cfg;
  cfg.include_delay = false;
  cfg.distance_m = 8.0;
  const auto rx = propagate(two_tone.samples, fs, cfg);
  const std::span<const double> mid{rx.data() + 9'600, 19'200};
  const double voice = ivc::dsp::goertzel_amplitude(mid, fs, 1'000.0);
  const double us = ivc::dsp::goertzel_amplitude(mid, fs, 40'000.0);
  // Both spread 1/r equally; ultrasound additionally loses ~7·1.2 dB.
  const double extra_db = ivc::amplitude_to_db(voice / us);
  EXPECT_GT(extra_db, 4.0);
  EXPECT_LT(extra_db, 18.0);
}

TEST(propagation, extra_loss_db_applies_flat) {
  const audio::buffer src = audio::tone(1'000.0, 0.5, 48'000.0, 1.0);
  propagation_config cfg;
  cfg.include_delay = false;
  cfg.distance_m = 1.0;
  const auto base = propagate(src.samples, 48'000.0, cfg);
  cfg.extra_loss_db = 12.0;
  const auto attenuated = propagate(src.samples, 48'000.0, cfg);
  const double ratio = audio::rms({base.data() + 4'800, 14'400}) /
                       audio::rms({attenuated.data() + 4'800, 14'400});
  EXPECT_NEAR(ivc::amplitude_to_db(ratio), 12.0, 0.2);
}

TEST(propagation, received_spl_analytic_matches_simulated) {
  const double fs = 192'000.0;
  const double f = 30'000.0;
  const double src_spl = 110.0;
  const double amp = ivc::spl_db_to_pa(src_spl) * std::sqrt(2.0);
  const audio::buffer src = audio::tone(f, 0.2, fs, amp);
  propagation_config cfg;
  cfg.include_delay = false;
  cfg.distance_m = 5.0;
  const auto rx = propagate(src.samples, fs, cfg);
  const std::span<const double> mid{rx.data() + 9'600, 19'200};
  const double rx_rms = ivc::dsp::goertzel_amplitude(mid, fs, f) / std::sqrt(2.0);
  const double simulated_spl = ivc::pa_to_spl_db(rx_rms);
  const double analytic = received_spl_db(src_spl, f, 5.0, cfg.air);
  EXPECT_NEAR(simulated_spl, analytic, 0.5);
}

TEST(propagation, analytic_received_spl_decreases_monotonically) {
  const air_model air;
  double prev = 1e9;
  for (double d = 0.5; d <= 10.0; d += 0.5) {
    const double spl = received_spl_db(120.0, 40'000.0, d, air);
    EXPECT_LT(spl, prev);
    prev = spl;
  }
}

TEST(propagation, rejects_bad_arguments) {
  const std::vector<double> sig(100, 1.0);
  propagation_config cfg;
  cfg.distance_m = 0.0;
  EXPECT_THROW(propagate(sig, 48'000.0, cfg), std::invalid_argument);
  EXPECT_THROW(propagate({}, 48'000.0, propagation_config{}),
               std::invalid_argument);
  EXPECT_THROW(received_spl_db(100.0, 1'000.0, 0.0, air_model{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ivc::acoustics
