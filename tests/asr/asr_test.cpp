#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <utility>
#include <vector>

#include "asr/dtw.h"
#include "asr/intelligibility.h"
#include "asr/mel.h"
#include "asr/mfcc.h"
#include "asr/recognizer.h"
#include "asr/vad.h"
#include "audio/generate.h"
#include "audio/ops.h"
#include "common/rng.h"
#include "synth/commands.h"

namespace ivc::asr {
namespace {

TEST(mel, scale_round_trip) {
  for (const double hz : {100.0, 440.0, 1'000.0, 4'000.0, 7'900.0}) {
    EXPECT_NEAR(mel_to_hz(hz_to_mel(hz)), hz, 1e-6);
  }
  EXPECT_NEAR(hz_to_mel(1'000.0), 999.9855, 0.1);  // ~1000 mel at 1 kHz
}

TEST(mel, filterbank_rows_cover_band_and_sum_smoothly) {
  const auto bank = make_mel_filterbank(26, 257, 16'000.0, 80.0, 7'000.0);
  EXPECT_EQ(bank.num_filters(), 26u);
  // Each filter has nonzero weight somewhere; centers are increasing.
  for (std::size_t m = 0; m < bank.num_filters(); ++m) {
    double sum = 0.0;
    for (const double w : bank.weights[m]) {
      sum += w;
    }
    EXPECT_GT(sum, 0.0) << m;
    if (m > 0) {
      EXPECT_GT(bank.center_hz[m], bank.center_hz[m - 1]);
    }
  }
}

TEST(mel, filterbank_responds_to_matching_tone) {
  const auto bank = make_mel_filterbank(26, 257, 16'000.0, 80.0, 7'000.0);
  // Synthetic power spectrum with a single hot bin at ~1 kHz (bin 32 of
  // a 512-FFT at 16 kHz).
  std::vector<double> power(257, 0.0);
  power[32] = 1.0;
  const auto out = bank.apply(power);
  std::size_t hottest = 0;
  for (std::size_t m = 1; m < out.size(); ++m) {
    if (out[m] > out[hottest]) {
      hottest = m;
    }
  }
  EXPECT_NEAR(bank.center_hz[hottest], 1'000.0, 300.0);
}

TEST(mfcc, shape_matches_config) {
  ivc::rng rng{1};
  const audio::buffer noise = audio::white_noise(1.0, 16'000.0, 0.1, rng);
  mfcc_config cfg;
  cfg.append_delta = true;
  const feature_matrix f = extract_mfcc(noise, cfg);
  EXPECT_EQ(f.dims(), 26u);  // 13 + 13 deltas
  EXPECT_NEAR(static_cast<double>(f.num_frames()), 98.0, 5.0);
  cfg.append_delta = false;
  EXPECT_EQ(extract_mfcc(noise, cfg).dims(), 13u);
}

TEST(mfcc, distinguishes_tones_from_noise) {
  ivc::rng rng{2};
  const audio::buffer tone = audio::tone(800.0, 1.0, 16'000.0, 0.3);
  const audio::buffer noise = audio::white_noise(1.0, 16'000.0, 0.3, rng);
  const feature_matrix ft = extract_mfcc(tone);
  const feature_matrix fn = extract_mfcc(noise);
  const double d_same = dtw_distance(ft, ft);
  const double d_diff = dtw_distance(ft, fn);
  EXPECT_LT(d_same, 1e-9);
  EXPECT_GT(d_diff, 1.0);
}

TEST(dtw, identical_sequences_have_zero_distance) {
  feature_matrix a;
  for (int i = 0; i < 20; ++i) {
    a.push_frame({static_cast<double>(i), 1.0});
  }
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
}

TEST(dtw, tolerates_time_stretching) {
  // b is a 2x time-stretched copy of a; DTW distance stays small while
  // naive frame-by-frame distance would be large.
  feature_matrix a;
  feature_matrix b;
  for (int i = 0; i < 30; ++i) {
    a.push_frame({std::sin(0.3 * i), std::cos(0.3 * i)});
  }
  for (int i = 0; i < 60; ++i) {
    b.push_frame({std::sin(0.15 * i), std::cos(0.15 * i)});
  }
  dtw_config cfg;
  cfg.band_fraction = 0.6;
  EXPECT_LT(dtw_distance(a, b, cfg), 0.08);
}

TEST(dtw, rejects_mismatched_dims) {
  feature_matrix a;
  a.push_frame({1.0, 2.0});
  feature_matrix b;
  b.push_frame({1.0});
  EXPECT_THROW(dtw_distance(a, b), std::invalid_argument);
}

TEST(dtw, feature_matrix_rows_stay_contiguous_and_addressable) {
  feature_matrix a;
  a.push_frame({1.0, 2.0, 3.0});
  a.push_frame({4.0, 5.0, 6.0});
  ASSERT_EQ(a.num_frames(), 2u);
  ASSERT_EQ(a.dims(), 3u);
  EXPECT_DOUBLE_EQ(a.frame(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(a.frame(1)[2], 6.0);
  EXPECT_EQ(a.data.size(), 6u);
  // Mismatched widths within one matrix are rejected.
  EXPECT_THROW(a.push_frame({1.0}), std::invalid_argument);
}

// Reference DTW retained from the pre-flattening implementation
// (vector-of-vectors storage, identical recurrence); the flattened
// production path must match it bit for bit.
double reference_dtw(const std::vector<std::vector<double>>& a,
                     const std::vector<std::vector<double>>& b,
                     double band_fraction) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const auto band = std::max<std::ptrdiff_t>(
      static_cast<std::ptrdiff_t>(band_fraction *
                                  static_cast<double>(std::max(n, m))),
      static_cast<std::ptrdiff_t>(std::max(n, m) - std::min(n, m)) + 1);
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m + 1, inf);
  std::vector<double> cur(m + 1, inf);
  std::vector<double> prev_steps(m + 1, 0.0);
  std::vector<double> cur_steps(m + 1, 0.0);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), inf);
    const auto diag = static_cast<std::ptrdiff_t>(
        static_cast<double>(i) * static_cast<double>(m) /
        static_cast<double>(n));
    const auto j_lo = static_cast<std::size_t>(
        std::max<std::ptrdiff_t>(1, diag - band));
    const auto j_hi = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m), diag + band));
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a[i - 1].size(); ++k) {
        const double d = a[i - 1][k] - b[j - 1][k];
        acc += d * d;
      }
      const double d = std::sqrt(acc);
      double best = prev[j - 1];
      double steps = prev_steps[j - 1];
      if (prev[j] < best) {
        best = prev[j];
        steps = prev_steps[j];
      }
      if (cur[j - 1] < best) {
        best = cur[j - 1];
        steps = cur_steps[j - 1];
      }
      if (best < inf) {
        cur[j] = best + d;
        cur_steps[j] = steps + 1.0;
      }
    }
    std::swap(prev, cur);
    std::swap(prev_steps, cur_steps);
  }
  if (prev[m] == inf) {
    return inf;
  }
  return prev[m] / std::max(1.0, prev_steps[m]);
}

TEST(dtw, flattened_storage_matches_seed_implementation) {
  ivc::rng rng{42};
  for (const auto& [frames_a, frames_b] :
       {std::pair<int, int>{25, 40}, {40, 25}, {1, 1}, {13, 13}}) {
    std::vector<std::vector<double>> ref_a;
    std::vector<std::vector<double>> ref_b;
    feature_matrix a;
    feature_matrix b;
    for (int i = 0; i < frames_a; ++i) {
      std::vector<double> row(8);
      for (double& v : row) {
        v = rng.normal();
      }
      ref_a.push_back(row);
      a.push_frame(row);
    }
    for (int i = 0; i < frames_b; ++i) {
      std::vector<double> row(8);
      for (double& v : row) {
        v = rng.normal();
      }
      ref_b.push_back(row);
      b.push_frame(row);
    }
    for (const double band : {0.2, 0.6, 1.0}) {
      dtw_config cfg;
      cfg.band_fraction = band;
      const double expected = reference_dtw(ref_a, ref_b, band);
      const double actual = dtw_distance(a, b, cfg);
      if (std::isinf(expected)) {
        EXPECT_TRUE(std::isinf(actual));
      } else {
        EXPECT_DOUBLE_EQ(actual, expected)
            << frames_a << "x" << frames_b << " band " << band;
      }
    }
  }
}

TEST(vad, detects_activity_island) {
  audio::buffer b = audio::silence(3.0, 16'000.0);
  const audio::buffer burst = audio::tone(500.0, 0.5, 16'000.0, 0.5);
  b = audio::mix_at(b, burst, 1.0);
  const vad_result r = detect_activity(b);
  EXPECT_TRUE(r.any_activity);
  EXPECT_NEAR(r.start_s, 1.0, 0.15);
  EXPECT_NEAR(r.end_s, 1.5, 0.15);
  const audio::buffer trimmed = trim_to_activity(b);
  EXPECT_LT(trimmed.duration_s(), 1.0);
}

TEST(vad, silence_reports_no_activity) {
  const audio::buffer b = audio::silence(1.0, 16'000.0);
  EXPECT_FALSE(detect_activity(b).any_activity);
  // Trim becomes a no-op.
  EXPECT_EQ(trim_to_activity(b).size(), b.size());
}

TEST(recognizer, recognizes_own_and_rejects_noise) {
  ivc::rng rng{3};
  recognizer rec;
  for (const synth::command& cmd : synth::command_bank()) {
    rec.add_template(cmd.id, synth::render_command(cmd, synth::male_voice(),
                                                   rng, 16'000.0));
  }
  EXPECT_EQ(rec.num_templates(), synth::command_bank().size());

  // A perturbed rendition of a known command is recognized.
  ivc::rng rng2{4};
  const synth::voice_params v = synth::perturbed_voice(synth::male_voice(), rng2);
  const audio::buffer probe = synth::render_command(
      synth::command_by_id("add_milk"), v, rng2, 16'000.0);
  const recognition_result r = rec.recognize(probe);
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(*r.command_id, "add_milk");

  // Pure noise is rejected.
  ivc::rng rng3{5};
  const audio::buffer noise = audio::white_noise(2.0, 16'000.0, 0.1, rng3);
  EXPECT_FALSE(rec.recognize(noise).accepted());

  // Near-silence is rejected.
  const audio::buffer tiny{std::vector<double>(16'000, 1e-9), 16'000.0};
  EXPECT_FALSE(rec.recognize(tiny).accepted());
}

TEST(recognizer, distinguishes_commands) {
  ivc::rng rng{6};
  recognizer rec;
  for (const synth::command& cmd : synth::command_bank()) {
    rec.add_template(cmd.id, synth::render_command(cmd, synth::male_voice(),
                                                   rng, 16'000.0));
    rec.add_template(cmd.id, synth::render_command(cmd, synth::female_voice(),
                                                   rng, 16'000.0));
  }
  std::size_t correct = 0;
  std::size_t total = 0;
  ivc::rng rng2{7};
  for (const synth::command& cmd : synth::command_bank()) {
    const synth::voice_params v =
        synth::perturbed_voice(synth::male_voice(), rng2);
    const audio::buffer probe =
        synth::render_command(cmd, v, rng2, 16'000.0);
    const recognition_result r = rec.recognize(probe);
    ++total;
    if (r.accepted() && *r.command_id == cmd.id) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, total);
}

TEST(recognizer, requires_templates) {
  const recognizer rec;
  const audio::buffer b = audio::tone(500.0, 0.5, 16'000.0, 0.5);
  EXPECT_THROW(rec.recognize(b), std::invalid_argument);
}

TEST(intelligibility, clean_copy_scores_high_noise_scores_low) {
  ivc::rng rng{8};
  const audio::buffer speech = synth::render_command(
      synth::command_by_id("take_picture"), synth::male_voice(), rng,
      16'000.0);
  EXPECT_GT(intelligibility_score(speech, speech), 0.95);

  ivc::rng rng2{9};
  const audio::buffer noise = audio::white_noise(
      speech.duration_s(), 16'000.0, 0.1, rng2);
  EXPECT_LT(intelligibility_score(speech, noise), 0.3);
}

TEST(intelligibility, degrades_monotonically_with_noise) {
  ivc::rng rng{10};
  const audio::buffer speech = synth::render_command(
      synth::command_by_id("open_door"), synth::male_voice(), rng, 16'000.0);
  double prev = 1.1;
  for (const double noise_rms : {0.002, 0.02, 0.2}) {
    ivc::rng nr{11};
    audio::buffer noisy = speech;
    const audio::buffer n =
        audio::white_noise(speech.duration_s(), 16'000.0, noise_rms, nr);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      noisy.samples[i] += n.samples[i];
    }
    const double score = intelligibility_score(speech, noisy);
    EXPECT_LT(score, prev);
    prev = score;
  }
}

TEST(intelligibility, tolerates_delay) {
  ivc::rng rng{12};
  const audio::buffer speech = synth::render_command(
      synth::command_by_id("mute_yourself"), synth::male_voice(), rng,
      16'000.0);
  const audio::buffer delayed = audio::pad(speech, 0.15, 0.0);
  EXPECT_GT(intelligibility_score(speech, delayed), 0.9);
}

}  // namespace
}  // namespace ivc::asr
