#include "asr/segmenter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "audio/buffer.h"

namespace ivc::asr {
namespace {

constexpr double kRate = 16'000.0;

// A stream of alternating segments: (duration_s, amplitude) pairs, where
// amplitude 0 is digital silence (the traffic-gap shape) and anything
// else is a sine burst at that amplitude.
audio::buffer make_stream(
    const std::vector<std::pair<double, double>>& segments) {
  std::vector<double> samples;
  for (const auto& [duration_s, amplitude] : segments) {
    const auto n = static_cast<std::size_t>(duration_s * kRate);
    for (std::size_t i = 0; i < n; ++i) {
      samples.push_back(
          amplitude *
          std::sin(2.0 * M_PI * 440.0 * static_cast<double>(i) / kRate));
    }
  }
  return audio::buffer{samples, kRate};
}

// Feeds `stream` in `block`-sample chunks (0 = the whole buffer at
// once), collecting everything feed() and finish() emit.
std::vector<utterance> segment_chunked(const audio::buffer& stream,
                                       std::size_t block,
                                       const segmenter_config& cfg = {}) {
  utterance_segmenter seg{cfg};
  std::vector<utterance> out;
  const std::size_t step = block == 0 ? stream.size() : block;
  for (std::size_t start = 0; start < stream.size(); start += step) {
    const std::size_t end = std::min(start + step, stream.size());
    const audio::buffer piece{
        {stream.samples.begin() + static_cast<std::ptrdiff_t>(start),
         stream.samples.begin() + static_cast<std::ptrdiff_t>(end)},
        kRate};
    for (utterance& u : seg.feed(piece)) {
      out.push_back(std::move(u));
    }
  }
  for (utterance& u : seg.finish()) {
    out.push_back(std::move(u));
  }
  return out;
}

TEST(segmenter, cuts_bursts_at_silence_with_padded_bounds) {
  const audio::buffer stream = make_stream(
      {{0.50, 0.0}, {0.40, 0.1}, {0.50, 0.0}, {0.30, 0.1}, {0.30, 0.0}});
  const std::vector<utterance> utts = segment_chunked(stream, 0);
  ASSERT_EQ(utts.size(), 2u);

  // Bounds land within a frame of the burst edges, grown by the pad.
  const segmenter_config cfg;
  const double tol = cfg.frame_s + 1e-9;
  EXPECT_NEAR(utts[0].start_s, 0.50 - cfg.pad_s, tol);
  EXPECT_NEAR(utts[0].end_s, 0.90 + cfg.pad_s, tol);
  EXPECT_NEAR(utts[1].start_s, 1.40 - cfg.pad_s, tol);
  EXPECT_NEAR(utts[1].end_s, 1.70 + cfg.pad_s, tol);
  for (const utterance& u : utts) {
    EXPECT_EQ(u.samples.sample_rate_hz, kRate);
    EXPECT_NEAR(u.samples.duration_s(), u.end_s - u.start_s, 1e-9);
  }
}

// The tentpole invariant: the utterance stream is a pure function of
// the sample sequence — bit-identical however the stream is chunked
// into feed() blocks (1-sample, odd-size, or whole-buffer blocks).
TEST(segmenter, utterances_invariant_to_block_chunking) {
  const audio::buffer stream = make_stream(
      {{0.31, 0.0}, {0.43, 0.08}, {0.27, 0.0}, {0.52, 0.12}, {0.21, 0.0}});
  const std::vector<utterance> whole = segment_chunked(stream, 0);
  ASSERT_GE(whole.size(), 2u);
  for (const std::size_t block : {std::size_t{1}, std::size_t{997},
                                  std::size_t{4'096}}) {
    const std::vector<utterance> chunked = segment_chunked(stream, block);
    ASSERT_EQ(whole.size(), chunked.size()) << "block " << block;
    for (std::size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(whole[i].start_s, chunked[i].start_s) << "block " << block;
      EXPECT_EQ(whole[i].end_s, chunked[i].end_s) << "block " << block;
      ASSERT_EQ(whole[i].samples.size(), chunked[i].samples.size())
          << "block " << block;
      EXPECT_EQ(whole[i].samples.samples, chunked[i].samples.samples)
          << "block " << block;
    }
  }
}

TEST(segmenter, duration_gate_drops_short_blips) {
  // 60 ms blip < the 150 ms gate; the long burst next to it survives.
  const audio::buffer stream = make_stream(
      {{0.30, 0.0}, {0.06, 0.1}, {0.40, 0.0}, {0.30, 0.1}, {0.30, 0.0}});
  const std::vector<utterance> utts = segment_chunked(stream, 0);
  ASSERT_EQ(utts.size(), 1u);
  EXPECT_GT(utts[0].start_s, 0.5);  // the blip was dropped, not merged
}

TEST(segmenter, timeout_force_closes_unbounded_activity) {
  segmenter_config cfg;
  cfg.max_utterance_s = 1.0;
  // 2.6 s of continuous activity never goes quiet: without the timeout
  // it would buffer forever. Expect force-closed pieces of at most the
  // timeout length (plus a trailing pad-sized remainder).
  const audio::buffer stream = make_stream({{0.20, 0.0}, {2.60, 0.1}});
  const std::vector<utterance> utts = segment_chunked(stream, 0, cfg);
  ASSERT_GE(utts.size(), 2u);
  for (const utterance& u : utts) {
    EXPECT_LE(u.end_s - u.start_s, cfg.max_utterance_s + cfg.frame_s + 1e-9);
  }
  // The pieces tile the burst: consecutive, non-overlapping.
  for (std::size_t i = 1; i < utts.size(); ++i) {
    EXPECT_GE(utts[i].start_s, utts[i - 1].end_s - 1e-9);
  }
}

TEST(segmenter, finish_flushes_utterance_open_at_end_of_stream) {
  // The stream ends mid-speech; only finish() can close the utterance.
  const audio::buffer stream = make_stream({{0.30, 0.0}, {0.50, 0.1}});
  utterance_segmenter seg;
  std::vector<utterance> from_feed = seg.feed(stream);
  EXPECT_TRUE(from_feed.empty());
  const std::vector<utterance> flushed = seg.finish();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_NEAR(flushed[0].end_s, 0.80, segmenter_config{}.frame_s + 1e-9);

  // finish() also resets: the next stream starts at t = 0 again.
  std::vector<utterance> next = seg.feed(stream);
  for (utterance& u : seg.finish()) {
    next.push_back(std::move(u));
  }
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].start_s, flushed[0].start_s);
  EXPECT_EQ(next[0].end_s, flushed[0].end_s);
}

}  // namespace
}  // namespace ivc::asr
