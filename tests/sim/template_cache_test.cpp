#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/scenario.h"

namespace ivc::sim {
namespace {

attack_scenario quick_mono(double distance) {
  attack_scenario sc;
  sc.rig = attack::monolithic_rig(18.7);
  sc.command_id = "mute_yourself";
  sc.distance_m = distance;
  return sc;
}

TEST(template_cache, cached_recognizer_matches_fresh_enrollment) {
  clear_enrolled_recognizer_cache();
  const auto cached = shared_enrolled_recognizer(16'000.0, 99);
  const asr::recognizer fresh = make_enrolled_recognizer(16'000.0, 99);
  ASSERT_EQ(cached->num_templates(), fresh.num_templates());

  // Bit-identical recognitions on a clean rendition and on a harder
  // perturbed one: distance, margin, and the accepted id all match.
  ivc::rng rng{1};
  const audio::buffer probe = synth::render_command(
      synth::command_by_id("add_milk"), synth::male_voice(), rng, 16'000.0);
  ivc::rng rng2{2};
  const audio::buffer perturbed = synth::render_command(
      synth::command_by_id("open_door"),
      synth::perturbed_voice(synth::female_voice(), rng2), rng2, 16'000.0);
  for (const audio::buffer* b : {&probe, &perturbed}) {
    const asr::recognition_result a = cached->recognize(*b);
    const asr::recognition_result c = fresh.recognize(*b);
    EXPECT_EQ(a.command_id, c.command_id);
    EXPECT_EQ(a.best_distance, c.best_distance);  // bit-identical
    EXPECT_EQ(a.margin, c.margin);
  }
}

TEST(template_cache, same_key_returns_the_shared_instance) {
  clear_enrolled_recognizer_cache();
  const auto a = shared_enrolled_recognizer(16'000.0, 7);
  const auto b = shared_enrolled_recognizer(16'000.0, 7);
  EXPECT_EQ(a.get(), b.get());
  // Different seed or rate means a different enrollment.
  EXPECT_NE(a.get(), shared_enrolled_recognizer(16'000.0, 8).get());
  EXPECT_NE(a.get(), shared_enrolled_recognizer(48'000.0, 7).get());
  // Clearing drops the cache but live references stay valid.
  clear_enrolled_recognizer_cache();
  EXPECT_NE(a.get(), shared_enrolled_recognizer(16'000.0, 7).get());
  EXPECT_GT(a->num_templates(), 0u);
}

TEST(template_cache, sessions_with_shared_seed_share_the_enrollment) {
  clear_enrolled_recognizer_cache();
  const attack_session first{quick_mono(1.5), 314};
  const attack_session second{quick_mono(3.0), 314};  // same session seed
  EXPECT_EQ(&first.command_recognizer(), &second.command_recognizer());

  attack_scenario pinned = quick_mono(1.5);
  pinned.enrollment_seed = 0xfeedu;
  const attack_session third{pinned, 1};
  const attack_session fourth{pinned, 2};  // different session seed
  EXPECT_EQ(&third.command_recognizer(), &fourth.command_recognizer());
  EXPECT_NE(&first.command_recognizer(), &third.command_recognizer());
}

TEST(template_cache, cached_sessions_run_bit_identical_trials) {
  // A session built on a cold cache and one built on a warm cache must
  // produce the same captures and recognitions.
  clear_enrolled_recognizer_cache();
  const attack_session cold{quick_mono(1.5), 271};
  const trial_result a = cold.run_trial(0);
  const attack_session warm{quick_mono(1.5), 271};
  const trial_result b = warm.run_trial(0);
  EXPECT_EQ(a.capture.samples, b.capture.samples);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.recognition.best_distance, b.recognition.best_distance);
  EXPECT_EQ(a.intelligibility, b.intelligibility);
}

TEST(template_cache, engine_trial_chunking_is_invariant_to_pool_size) {
  // A single-point grid exercises the per-trial split: with 1 thread
  // there is one chunk, with 4 threads several — results must be
  // bit-identical (this is the ROADMAP's single-point-scan case).
  const grid g = grid::cartesian({distance_axis({2.0})});
  run_config cfg;
  cfg.trials_per_point = 6;
  cfg.seed = 2'025;
  cfg.num_threads = 1;
  const result_table serial = engine{cfg}.run(quick_mono(2.0), g);
  cfg.num_threads = 4;
  const result_table chunked = engine{cfg}.run(quick_mono(2.0), g);
  EXPECT_EQ(serial, chunked);
  EXPECT_DOUBLE_EQ(serial.metric(0, "trials"), 6.0);

  // Same invariance on the scenario path (non-session-mutable axis).
  const grid carrier = grid::cartesian({carrier_axis({30e3})});
  cfg.num_threads = 1;
  const result_table c_serial = engine{cfg}.run(quick_mono(2.0), carrier);
  cfg.num_threads = 3;
  const result_table c_chunked = engine{cfg}.run(quick_mono(2.0), carrier);
  EXPECT_EQ(c_serial, c_chunked);
}

}  // namespace
}  // namespace ivc::sim
