#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace ivc::sim {
namespace {

attack_scenario quick_mono(double distance) {
  attack_scenario sc;
  sc.rig = attack::monolithic_rig(18.7);
  sc.command_id = "mute_yourself";  // shortest command, fastest tests
  sc.distance_m = distance;
  return sc;
}

// ------------------------------------------------------------------ grid

TEST(experiment_grid, cartesian_enumerates_cross_product_row_major) {
  const grid g = grid::cartesian(
      {distance_axis({1.0, 2.0, 3.0}), power_axis({5.0, 10.0})});
  ASSERT_EQ(g.size(), 6u);
  // Last axis fastest-varying.
  EXPECT_EQ(g.value_indices(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(g.value_indices(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(g.value_indices(2), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(g.value_indices(5), (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(g.coords(3), (std::vector<double>{2.0, 10.0}));
  EXPECT_EQ(g.labels(5), (std::vector<std::string>{"3", "10"}));

  // The scenario at a point carries every axis mutation.
  const attack_scenario sc = g.scenario_at(5, quick_mono(9.0));
  EXPECT_DOUBLE_EQ(sc.distance_m, 3.0);
  EXPECT_DOUBLE_EQ(sc.rig.total_power_w, 10.0);
}

TEST(experiment_grid, zipped_advances_axes_together) {
  const grid g = grid::zipped(
      {distance_axis({1.0, 2.0}), ambient_axis({30.0, 50.0})});
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.value_indices(1), (std::vector<std::size_t>{1, 1}));
  const attack_scenario sc = g.scenario_at(1, quick_mono(9.0));
  EXPECT_DOUBLE_EQ(sc.distance_m, 2.0);
  EXPECT_DOUBLE_EQ(sc.environment.ambient_spl_db, 50.0);
}

TEST(experiment_grid, zipped_rejects_mismatched_lengths) {
  EXPECT_THROW(
      grid::zipped({distance_axis({1.0, 2.0}), power_axis({5.0})}),
      std::invalid_argument);
}

TEST(experiment_grid, session_mutability_tracks_axes) {
  EXPECT_TRUE(grid::cartesian({distance_axis({1.0}), power_axis({5.0})})
                  .session_mutable());
  // Carrier changes force a rig rebuild: no session fast path.
  EXPECT_FALSE(grid::cartesian({distance_axis({1.0}), carrier_axis({30e3})})
                   .session_mutable());
}

TEST(experiment_grid, custom_axis_extends_the_vocabulary) {
  axis chunks = custom_axis(
      "chunks", {axis_point{"4", 4.0,
                            [](attack_scenario& sc) {
                              sc.rig.splitter.num_chunks = 4;
                            },
                            nullptr},
                 axis_point{"16", 16.0,
                            [](attack_scenario& sc) {
                              sc.rig.splitter.num_chunks = 16;
                            },
                            nullptr}});
  const grid g = grid::cartesian({chunks});
  attack_scenario base = quick_mono(2.0);
  base.rig = attack::long_range_rig();
  EXPECT_EQ(g.scenario_at(0, base).rig.splitter.num_chunks, 4u);
  EXPECT_EQ(g.scenario_at(1, base).rig.splitter.num_chunks, 16u);
}

// ---------------------------------------------------------------- engine

TEST(experiment_engine, deterministic_at_any_thread_count) {
  const grid g = grid::cartesian(
      {distance_axis({1.5, 6.0}), power_axis({5.0, 18.7})});
  run_config cfg;
  cfg.trials_per_point = 2;
  cfg.seed = 2'024;

  cfg.num_threads = 1;
  const result_table serial = engine{cfg}.run(quick_mono(2.0), g);
  cfg.num_threads = 4;
  const result_table threaded = engine{cfg}.run(quick_mono(2.0), g);

  EXPECT_EQ(serial, threaded);  // bit-identical rows, labels, metrics
  ASSERT_EQ(serial.size(), 4u);
  // Close + strong beats far + weak.
  EXPECT_GE(serial.metric(1, "rate"), serial.metric(2, "rate"));
}

TEST(experiment_engine, scenario_path_is_deterministic_too) {
  // A carrier axis disables the session fast path; determinism must hold
  // on the session-per-point path as well.
  const grid g = grid::cartesian({carrier_axis({30e3, 36e3})});
  run_config cfg;
  cfg.trials_per_point = 2;
  cfg.num_threads = 1;
  const result_table serial = engine{cfg}.run(quick_mono(2.0), g);
  cfg.num_threads = 3;
  const result_table threaded = engine{cfg}.run(quick_mono(2.0), g);
  EXPECT_EQ(serial, threaded);
}

TEST(experiment_engine, matches_legacy_sweep_seeding) {
  // The sweep wrappers promise bit-identical results to the legacy
  // serial loops: same session, trial indices accumulating across
  // points.
  const attack_session session{quick_mono(1.0), 108};
  const std::vector<double> distances{1.5, 10.0};
  constexpr std::size_t trials = 3;
  const std::vector<sweep_point> points =
      sweep_distance(session, distances, trials);
  ASSERT_EQ(points.size(), 2u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    attack_session probe = session;
    probe.set_distance(distances[i]);
    const success_estimate direct =
        estimate_success(probe, trials, i * trials);
    EXPECT_EQ(points[i].result.successes, direct.successes);
    EXPECT_DOUBLE_EQ(points[i].result.mean_intelligibility,
                     direct.mean_intelligibility);
  }
}

TEST(experiment_engine, custom_trial_evaluator_redefines_success) {
  const grid g = grid::cartesian({distance_axis({1.5})});
  run_config cfg;
  cfg.trials_per_point = 3;
  cfg.num_threads = 1;
  const result_table t = engine{cfg}.run(
      quick_mono(1.5), g, [](const trial_result& r) {
        return trial_outcome{r.capture.size() > 0, 1.0};
      });
  EXPECT_DOUBLE_EQ(t.metric(0, "rate"), 1.0);
  EXPECT_DOUBLE_EQ(t.metric(0, "mean_score"), 1.0);
  EXPECT_DOUBLE_EQ(t.metric(0, "trials"), 3.0);
}

TEST(experiment_engine, run_trial_means_averages_per_point) {
  const grid g = grid::cartesian(
      {distance_axis({1.5, 6.0}), power_axis({5.0, 18.7})});
  run_config cfg;
  cfg.trials_per_point = 2;
  cfg.seed = 2'025;
  const trial_metrics_evaluator eval = [](const trial_result& r) {
    return std::vector<double>{r.success ? 1.0 : 0.0, r.intelligibility};
  };

  cfg.num_threads = 1;
  const result_table serial = engine{cfg}.run_trial_means(
      quick_mono(2.0), g, {"success", "intel"}, eval);
  cfg.num_threads = 4;
  const result_table threaded = engine{cfg}.run_trial_means(
      quick_mono(2.0), g, {"success", "intel"}, eval);
  EXPECT_EQ(serial, threaded);  // bit-identical at any thread count
  ASSERT_EQ(serial.size(), 4u);

  // This grid is session-mutable, so engine::run takes the SAME fast
  // path (one prototype seeded config_.seed, trial indices p*trials+t)
  // as run_trial_means: the noise streams match bit for bit, and the
  // success means must equal the reported rates exactly — a structural
  // invariant, not a lucky draw.
  const result_table rates = engine{cfg}.run(quick_mono(2.0), g);
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_DOUBLE_EQ(serial.metric(p, "success"), rates.metric(p, "rate"));
  }
}

TEST(experiment_engine, run_metrics_maps_points_to_columns) {
  const grid g = grid::cartesian({power_axis({2.0, 4.0, 8.0})});
  run_config cfg;
  cfg.num_threads = 2;
  const result_table t = engine{cfg}.run_metrics(
      quick_mono(2.0), g, {"power_squared", "seed_is_nonzero", "point"},
      [](const attack_scenario& sc, std::uint64_t point_seed,
         std::size_t point) {
        return std::vector<double>{
            sc.rig.total_power_w * sc.rig.total_power_w,
            point_seed != 0 ? 1.0 : 0.0, static_cast<double>(point)};
      });
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.metric(1, "power_squared"), 16.0);
  EXPECT_DOUBLE_EQ(t.metric(2, "power_squared"), 64.0);
  EXPECT_DOUBLE_EQ(t.metric(0, "seed_is_nonzero"), 1.0);
  EXPECT_DOUBLE_EQ(t.metric(2, "point"), 2.0);
}

// --------------------------------------------------------------- writers

result_table sample_table() {
  result_table t{{"distance_m"}, {"rate", "ci_low"}};
  t.add_row({{"1.5"}, {1.5}, {0.625, 0.3000000000000000444}});
  t.add_row({{"7.25"}, {7.25}, {1.0 / 3.0, 0.0}});
  return t;
}

// Labels with a comma, quotes, and a newline — the fields RFC 4180
// quoting exists for. A device or command label with a comma used to
// shift every column to its right.
result_table awkward_table() {
  result_table t{{"device", "command"}, {"rate"}};
  t.add_row({{"Echo, 2nd gen", "say \"hello\""}, {0.0, 1.0}, {0.5}});
  t.add_row({{"phone\nline2", ","}, {1.0, 2.0}, {0.25}});
  return t;
}

TEST(experiment_results, csv_round_trips_at_full_precision) {
  const result_table t = sample_table();
  std::istringstream in{t.to_csv()};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // Header carries the coord columns the table promises.
  EXPECT_EQ(line, "distance_m,distance_m:coord,rate,ci_low");
  EXPECT_EQ(result_table::from_csv(t.to_csv()), t);  // bit-identical
}

TEST(experiment_results, csv_quotes_awkward_labels_per_rfc4180) {
  const result_table t = awkward_table();
  const std::string csv = t.to_csv();
  // Comma-bearing label is quoted, embedded quotes double.
  EXPECT_NE(csv.find("\"Echo, 2nd gen\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hello\"\"\""), std::string::npos);
  EXPECT_EQ(result_table::from_csv(csv), t);
}

TEST(experiment_results, json_round_trips_awkward_labels) {
  const result_table t = awkward_table();
  EXPECT_EQ(result_table::from_json(t.to_json()), t);
}

TEST(experiment_results, from_csv_rejects_malformed_input) {
  EXPECT_THROW(result_table::from_csv(""), std::invalid_argument);
  EXPECT_THROW(result_table::from_csv("a,a:coord,m\n\"unterminated"),
               std::invalid_argument);
  // Row width mismatch against the header.
  EXPECT_THROW(result_table::from_csv("a,a:coord,m\nx,1.0\n"),
               std::invalid_argument);
  // Non-numeric coord cell.
  EXPECT_THROW(result_table::from_csv("a,a:coord,m\nx,oops,1.0\n"),
               std::invalid_argument);
}

TEST(experiment_results, json_contains_names_and_exact_values) {
  const std::string json = sample_table().to_json();
  EXPECT_NE(json.find("\"axis_names\": [\"distance_m\"]"), std::string::npos);
  EXPECT_NE(json.find("\"metric_names\": [\"rate\", \"ci_low\"]"),
            std::string::npos);
  EXPECT_NE(json.find("0.625"), std::string::npos);
  // Full-precision value survives.
  EXPECT_NE(json.find("0.30000000000000004"), std::string::npos);
}

TEST(experiment_results, file_writers_produce_readable_files) {
  const result_table t = sample_table();
  const std::string csv_path = "experiment_test_table.csv";
  const std::string json_path = "experiment_test_table.json";
  t.write_csv_file(csv_path);
  t.write_json_file(json_path);
  std::ifstream csv{csv_path};
  std::ifstream json{json_path};
  ASSERT_TRUE(csv.good());
  ASSERT_TRUE(json.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "distance_m,distance_m:coord,rate,ci_low");
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

TEST(experiment_results, column_names_reject_reserved_coord_suffix) {
  // A metric named like an axis's coordinate column would parse back
  // with the wrong shape.
  EXPECT_THROW((result_table{{"d"}, {"x", "x:coord"}}),
               std::invalid_argument);
  EXPECT_THROW((result_table{{"d:coord"}, {"rate"}}), std::invalid_argument);
}

TEST(experiment_results, metric_lookup_rejects_unknown_names) {
  const result_table t = sample_table();
  EXPECT_THROW(t.metric(0, "no_such_metric"), std::invalid_argument);
  EXPECT_THROW(t.at(5), std::out_of_range);
}

}  // namespace
}  // namespace ivc::sim
