#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "audio/metrics.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace ivc::sim {
namespace {

genuine_scenario quick_genuine() {
  genuine_scenario g;
  g.phrase_id = "what_time";  // short benign phrase, fast tests
  return g;
}

// ---------------------------------------------------------------- session

TEST(genuine_session, trials_are_reproducible_and_decorrelated) {
  const genuine_session session{quick_genuine(), 404};
  const audio::buffer again = session.run_trial(3);
  EXPECT_EQ(session.run_trial(3).samples, again.samples);
  // Different trials draw different ambient/microphone noise.
  EXPECT_NE(session.run_trial(4).samples, again.samples);
}

TEST(genuine_session, mutation_matches_fresh_session) {
  // A mutated session must be indistinguishable from one built at the
  // target scenario: the rendition depends only on (phrase, voice,
  // seed), never on mutation history.
  genuine_session mutated{quick_genuine(), 11};
  mutated.set_distance(3.0);
  mutated.set_ambient(50.0);
  mutated.set_level(70.0);

  genuine_scenario direct = quick_genuine();
  direct.distance_m = 3.0;
  direct.environment.ambient_spl_db = 50.0;
  direct.level_db_spl_at_1m = 70.0;
  const genuine_session fresh{direct, 11};
  EXPECT_EQ(fresh.run_trial(0).samples, mutated.run_trial(0).samples);
}

TEST(genuine_session, room_placement_renders_reverberant_capture) {
  genuine_scenario g = quick_genuine();
  g.room = room_placement{};
  g.room->room.max_reflection_order = 2;
  const genuine_session session{g, 7};
  const audio::buffer capture = session.run_trial(0);
  EXPECT_GT(capture.size(), 0u);
  EXPECT_GT(audio::rms(capture.samples), 0.0);

  // Reflections change the capture relative to order 0.
  genuine_scenario direct = g;
  direct.room->room.max_reflection_order = 0;
  const genuine_session direct_session{direct, 7};
  EXPECT_NE(direct_session.run_trial(0).samples, capture.samples);
}

// ------------------------------------------------------------------- grid

TEST(genuine_grid, bit_identical_at_any_thread_count) {
  // Phrase axis is scenario-only, so this exercises the per-point
  // session path (the F-R9 FPR shape).
  const genuine_grid g = genuine_grid::cartesian(
      {genuine_ambient_axis({30.0, 50.0}),
       genuine_phrase_axis({"what_time", "stop_music"})});
  run_config cfg;
  cfg.trials_per_point = 2;
  cfg.seed = 909;
  const genuine_trial_evaluator eval = [](const audio::buffer& capture) {
    return trial_outcome{capture.size() > 0, audio::rms(capture.samples)};
  };

  cfg.num_threads = 1;
  const result_table serial = engine{cfg}.run_genuine(quick_genuine(), g, eval);
  cfg.num_threads = 4;
  const result_table threaded =
      engine{cfg}.run_genuine(quick_genuine(), g, eval);

  EXPECT_EQ(serial, threaded);  // bit-identical rows, labels, metrics
  ASSERT_EQ(serial.size(), 4u);
  EXPECT_DOUBLE_EQ(serial.metric(0, "trials"), 2.0);
}

TEST(genuine_grid, session_fast_path_is_deterministic_too) {
  // Ambient × distance are both session-mutable: one rendition, global
  // trial indices.
  const genuine_grid g = genuine_grid::cartesian(
      {genuine_ambient_axis({35.0, 45.0}),
       genuine_distance_axis({1.0, 2.5})});
  ASSERT_TRUE(g.session_mutable());
  run_config cfg;
  cfg.trials_per_point = 2;
  cfg.seed = 910;
  const genuine_trial_evaluator eval = [](const audio::buffer& capture) {
    return trial_outcome{true, audio::rms(capture.samples)};
  };
  cfg.num_threads = 1;
  const result_table serial = engine{cfg}.run_genuine(quick_genuine(), g, eval);
  cfg.num_threads = 3;
  const result_table threaded =
      engine{cfg}.run_genuine(quick_genuine(), g, eval);
  EXPECT_EQ(serial, threaded);
}

TEST(genuine_grid, ambient_level_lands_in_the_seed_stream) {
  // The legacy F-R9 loop reset its RNG per ambient level, so every
  // level reused identical noise streams. On the grid path each point
  // gets its own seed: same phrase, different ambient row, different
  // point seed.
  const genuine_grid g = genuine_grid::cartesian(
      {genuine_ambient_axis({30.0, 50.0}),
       genuine_phrase_axis({"what_time"})});
  run_config cfg;
  cfg.num_threads = 1;
  std::vector<std::uint64_t> seeds;
  engine{cfg}.run_genuine_metrics(
      quick_genuine(), g, {"seed_lo"},
      [&seeds](const genuine_scenario&, std::uint64_t point_seed,
               std::size_t) {
        seeds.push_back(point_seed);
        return std::vector<double>{static_cast<double>(point_seed & 0xffff)};
      });
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_NE(seeds[0], seeds[1]);
}

TEST(genuine_grid, run_genuine_metrics_maps_points_to_columns) {
  const genuine_grid g =
      genuine_grid::cartesian({genuine_level_axis({60.0, 70.0})});
  run_config cfg;
  cfg.num_threads = 2;
  const result_table t = engine{cfg}.run_genuine_metrics(
      quick_genuine(), g, {"level", "point"},
      [](const genuine_scenario& sc, std::uint64_t, std::size_t point) {
        return std::vector<double>{sc.level_db_spl_at_1m,
                                   static_cast<double>(point)};
      });
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.metric(0, "level"), 60.0);
  EXPECT_DOUBLE_EQ(t.metric(1, "level"), 70.0);
  EXPECT_DOUBLE_EQ(t.metric(1, "point"), 1.0);
}

}  // namespace
}  // namespace ivc::sim
