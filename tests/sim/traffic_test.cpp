#include "sim/traffic.h"

#include <gtest/gtest.h>

#include "audio/buffer.h"

namespace ivc::sim {
namespace {

// Small genuine-only fleet: cheap to render, covers slicing/determinism.
traffic_config small_genuine_config() {
  traffic_config cfg;
  cfg.num_sessions = 4;
  cfg.attack_fraction = 0.0;
  cfg.block_s = 0.05;
  cfg.devices = {mic::phone_profile(), mic::smart_speaker_profile()};
  return cfg;
}

TEST(traffic, scripts_are_deterministic_per_index) {
  const traffic_generator gen{small_genuine_config(), 21};
  const session_script a = gen.script(2);
  const session_script b = gen.script(2);
  EXPECT_EQ(a.is_attack, b.is_attack);
  EXPECT_EQ(a.phrase_id, b.phrase_id);
  EXPECT_EQ(a.device_name, b.device_name);
  ASSERT_EQ(a.capture.size(), b.capture.size());
  EXPECT_EQ(a.capture.samples, b.capture.samples);
}

TEST(traffic, render_all_is_bit_identical_at_any_thread_count) {
  traffic_config cfg = small_genuine_config();
  cfg.num_threads = 1;
  const std::vector<session_script> serial =
      traffic_generator{cfg, 21}.render_all();
  cfg.num_threads = 4;
  const std::vector<session_script> parallel =
      traffic_generator{cfg, 21}.render_all();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].is_attack, parallel[i].is_attack);
    EXPECT_EQ(serial[i].capture.samples, parallel[i].capture.samples)
        << "session " << i;
  }
}

TEST(traffic, blocks_tile_the_capture_exactly) {
  const traffic_generator gen{small_genuine_config(), 22};
  const session_script s = gen.script(0);
  ASSERT_GT(s.num_blocks(), 1u);
  std::vector<double> reassembled;
  for (std::size_t b = 0; b < s.num_blocks(); ++b) {
    const audio::buffer piece = s.block(b);
    EXPECT_EQ(piece.sample_rate_hz, s.capture.sample_rate_hz);
    if (b + 1 < s.num_blocks()) {
      EXPECT_EQ(piece.size(), s.block_samples);
    }
    reassembled.insert(reassembled.end(), piece.samples.begin(),
                       piece.samples.end());
  }
  EXPECT_EQ(reassembled, s.capture.samples);
}

TEST(traffic, attack_fraction_one_renders_attack_streams) {
  traffic_config cfg;
  cfg.num_sessions = 1;
  cfg.attack_fraction = 1.0;
  cfg.devices = {mic::phone_profile()};
  const traffic_generator gen{cfg, 23};
  const session_script s = gen.script(0);
  EXPECT_TRUE(s.is_attack);
  EXPECT_GT(s.capture.size(), 0u);
  EXPECT_EQ(s.capture.sample_rate_hz,
            mic::phone_profile().mic.capture_rate_hz);
  EXPECT_GE(s.distance_m, cfg.attack_distance_m.first);
  EXPECT_LE(s.distance_m, cfg.attack_distance_m.second);
}

TEST(traffic, session_parameters_stay_in_their_ranges) {
  traffic_config cfg = small_genuine_config();
  cfg.num_sessions = 6;
  const traffic_generator gen{cfg, 24};
  for (std::size_t i = 0; i < cfg.num_sessions; ++i) {
    const session_script s = gen.script(i);
    EXPECT_FALSE(s.is_attack);
    EXPECT_GE(s.ambient_spl_db, cfg.ambient_spl_db.first);
    EXPECT_LE(s.ambient_spl_db, cfg.ambient_spl_db.second);
    EXPECT_GE(s.distance_m, cfg.genuine_distance_m.first);
    EXPECT_LE(s.distance_m, cfg.genuine_distance_m.second);
    EXPECT_TRUE(s.device_name == "phone" ||
                s.device_name == mic::phone_profile().name ||
                s.device_name == mic::smart_speaker_profile().name);
  }
}

TEST(traffic, default_timeline_starts_everyone_at_zero) {
  const traffic_generator gen{small_genuine_config(), 21};
  const session_script s = gen.script(1);
  EXPECT_EQ(s.start_s, 0.0);
  EXPECT_EQ(gen.session_start_s(1), 0.0);
  // Block b arrives once its audio exists: monotone, ending at the
  // capture duration.
  double prev = 0.0;
  for (std::size_t b = 0; b < s.num_blocks(); ++b) {
    const double t = s.block_arrival_s(b);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_DOUBLE_EQ(s.end_s(), s.capture.duration_s());
}

TEST(traffic, uniform_spread_stays_in_range_and_is_deterministic) {
  traffic_config cfg = small_genuine_config();
  cfg.start_spread_s = 2.0;
  const traffic_generator a{cfg, 21};
  const traffic_generator b{cfg, 21};
  bool any_nonzero = false;
  for (std::size_t i = 0; i < cfg.num_sessions; ++i) {
    const double t = a.session_start_s(i);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 2.0);
    EXPECT_EQ(t, b.session_start_s(i));
    EXPECT_EQ(a.script(i).start_s, t);
    any_nonzero = any_nonzero || t > 0.0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(traffic, poisson_starts_are_cumulative_and_deterministic) {
  traffic_config cfg = small_genuine_config();
  cfg.num_sessions = 8;
  cfg.session_rate_hz = 4.0;
  const traffic_generator a{cfg, 33};
  const traffic_generator b{cfg, 33};
  double prev = 0.0;
  for (std::size_t i = 0; i < cfg.num_sessions; ++i) {
    const double t = a.session_start_s(i);
    EXPECT_GT(t, prev);  // a Poisson arrival process is strictly ordered
    EXPECT_EQ(t, b.session_start_s(i));
    prev = t;
  }
  // Mean inter-arrival ~ 1/rate; with 8 draws just sanity-bound it.
  EXPECT_GT(prev, 0.0);
  EXPECT_LT(prev, 8.0 * 4.0 / cfg.session_rate_hz);
}

// The pacing timeline must never perturb the audio: its draws come from
// a dedicated stream past every per-session id.
TEST(traffic, pacing_config_does_not_change_the_audio) {
  traffic_config cfg = small_genuine_config();
  const session_script plain = traffic_generator{cfg, 21}.script(2);
  cfg.session_rate_hz = 16.0;
  const session_script paced = traffic_generator{cfg, 21}.script(2);
  EXPECT_EQ(plain.phrase_id, paced.phrase_id);
  EXPECT_EQ(plain.capture.samples, paced.capture.samples);
  EXPECT_NE(paced.start_s, 0.0);
}

TEST(traffic, invalid_configs_throw) {
  traffic_config cfg = small_genuine_config();
  cfg.num_sessions = 0;
  EXPECT_THROW((traffic_generator{cfg, 1}), std::invalid_argument);
  cfg = small_genuine_config();
  cfg.attack_fraction = 1.5;
  EXPECT_THROW((traffic_generator{cfg, 1}), std::invalid_argument);
  cfg = small_genuine_config();
  cfg.block_s = 0.0;
  EXPECT_THROW((traffic_generator{cfg, 1}), std::invalid_argument);
  cfg = small_genuine_config();
  cfg.start_spread_s = -1.0;
  EXPECT_THROW((traffic_generator{cfg, 1}), std::invalid_argument);
  cfg = small_genuine_config();
  cfg.session_rate_hz = -2.0;
  EXPECT_THROW((traffic_generator{cfg, 1}), std::invalid_argument);
  const traffic_generator gen{small_genuine_config(), 1};
  EXPECT_THROW(gen.script(99), std::invalid_argument);
  EXPECT_THROW(gen.session_start_s(99), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::sim
