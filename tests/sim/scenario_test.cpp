#include "sim/scenario.h"

#include <gtest/gtest.h>

#include "audio/metrics.h"
#include "sim/sweep.h"

namespace ivc::sim {
namespace {

attack_scenario quick_mono(double distance) {
  attack_scenario sc;
  sc.rig = attack::monolithic_rig(18.7);
  sc.command_id = "mute_yourself";  // shortest command, fastest tests
  sc.distance_m = distance;
  return sc;
}

TEST(scenario, monolithic_attack_succeeds_close_fails_far) {
  attack_session session{quick_mono(1.5), 101};
  const trial_result close = session.run_trial(0);
  EXPECT_TRUE(close.success);
  EXPECT_GT(close.intelligibility, 0.5);

  session.set_distance(12.0);
  const trial_result far = session.run_trial(0);
  EXPECT_FALSE(far.success);
}

TEST(scenario, trials_are_deterministic_per_index) {
  attack_session session{quick_mono(2.0), 102};
  const trial_result a = session.run_trial(3);
  const trial_result b = session.run_trial(3);
  EXPECT_EQ(a.capture.samples, b.capture.samples);
  EXPECT_EQ(a.success, b.success);
  // Different indices draw different noise.
  const trial_result c = session.run_trial(4);
  EXPECT_NE(a.capture.samples, c.capture.samples);
}

TEST(scenario, power_rescaling_changes_received_level) {
  attack_session session{quick_mono(2.0), 103};
  const audio::buffer strong = session.render_field(0);
  session.set_total_power(4.7);
  const audio::buffer weak = session.render_field(0);
  EXPECT_GT(audio::rms(strong.samples), 1.5 * audio::rms(weak.samples));
  EXPECT_NEAR(session.total_power_w(), 4.7, 1e-9);
}

TEST(scenario, device_swap_keeps_capture_rate) {
  attack_session session{quick_mono(2.0), 104};
  session.set_device(mic::smart_speaker_profile());
  const trial_result r = session.run_trial(0);
  EXPECT_DOUBLE_EQ(r.capture.sample_rate_hz, 16'000.0);
}

TEST(scenario, cancellation_swap_matches_fresh_session) {
  // The F-R10 session mutation: swapping the cancellation setting on a
  // live session must reproduce a session built with it from scratch.
  attack_scenario with_cancel = quick_mono(2.0);
  attack::cancellation_config cancel;
  cancel.accuracy = 0.75;
  with_cancel.rig.cancellation = cancel;
  const attack_session fresh{with_cancel, 107};

  attack_session mutated{quick_mono(2.0), 107};
  mutated.set_cancellation(cancel);
  const trial_result a = fresh.run_trial(2);
  const trial_result b = mutated.run_trial(2);
  EXPECT_EQ(a.capture.samples, b.capture.samples);
  EXPECT_EQ(a.success, b.success);

  // And swapping back restores the uncancelled rig.
  attack_session round_trip{quick_mono(2.0), 107};
  round_trip.set_cancellation(cancel);
  round_trip.set_cancellation(std::nullopt);
  const attack_session plain{quick_mono(2.0), 107};
  EXPECT_EQ(plain.run_trial(1).capture.samples,
            round_trip.run_trial(1).capture.samples);
}

TEST(scenario, genuine_capture_is_recognized_and_attack_free) {
  genuine_scenario g;
  g.phrase_id = "take_picture";
  g.distance_m = 1.0;
  ivc::rng rng{105};
  const audio::buffer cap = run_genuine_capture(g, rng);
  EXPECT_DOUBLE_EQ(cap.sample_rate_hz, 16'000.0);
  const asr::recognizer rec = make_enrolled_recognizer(16'000.0, 11);
  const asr::recognition_result r = rec.recognize(cap);
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(*r.command_id, "take_picture");
}

TEST(scenario, quieter_talker_is_harder_to_recognize) {
  const asr::recognizer rec = make_enrolled_recognizer(16'000.0, 11);
  genuine_scenario loud;
  loud.phrase_id = "add_milk";
  loud.level_db_spl_at_1m = 70.0;
  genuine_scenario whisper = loud;
  whisper.level_db_spl_at_1m = 38.0;
  whisper.distance_m = 3.0;
  ivc::rng r1{106};
  ivc::rng r2{106};
  const auto loud_res = rec.recognize(run_genuine_capture(loud, r1));
  const auto quiet_res = rec.recognize(run_genuine_capture(whisper, r2));
  EXPECT_LT(loud_res.best_distance, quiet_res.best_distance);
}

TEST(scenario, invalid_configs_throw) {
  attack_scenario bad = quick_mono(0.0);
  EXPECT_THROW(attack_session(bad, 1), std::invalid_argument);
  attack_session session{quick_mono(1.0), 107};
  EXPECT_THROW(session.set_distance(-1.0), std::invalid_argument);
  EXPECT_THROW(session.set_total_power(0.0), std::invalid_argument);
}

TEST(sweep, wilson_interval_brackets_proportion) {
  const interval ci = wilson_interval(8, 10);
  EXPECT_GT(ci.low, 0.4);
  EXPECT_LT(ci.high, 0.99);
  EXPECT_LT(ci.low, 0.8);
  EXPECT_GT(ci.high, 0.8);
  const interval zero = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_LT(zero.high, 0.35);
  EXPECT_THROW(wilson_interval(1, 0), std::invalid_argument);
}

TEST(sweep, estimate_success_counts_trials) {
  attack_session session{quick_mono(1.5), 108};
  const success_estimate est = estimate_success(session, 3);
  EXPECT_EQ(est.trials, 3u);
  EXPECT_GE(est.rate, 0.0);
  EXPECT_LE(est.rate, 1.0);
  EXPECT_LE(est.ci_low, est.rate);
  EXPECT_GE(est.ci_high, est.rate);
}

TEST(sweep, success_declines_with_distance) {
  attack_session session{quick_mono(1.0), 109};
  const std::vector<double> distances{1.5, 10.0};
  const auto points = sweep_distance(session, distances, 3);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].result.rate, points[1].result.rate);
  EXPECT_GT(points[0].result.mean_intelligibility,
            points[1].result.mean_intelligibility);
}

TEST(sweep, success_improves_with_power) {
  attack_scenario sc = quick_mono(3.5);
  attack_session session{sc, 111};
  const std::vector<double> powers{2.0, 30.0};
  const auto points = sweep_power(session, powers, 3);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LE(points[0].result.rate, points[1].result.rate);
  EXPECT_LT(points[0].result.mean_intelligibility,
            points[1].result.mean_intelligibility);
}

TEST(sweep, max_range_finds_boundary) {
  attack_session session{quick_mono(1.0), 110};
  const double range = max_attack_range_m(session, 0.5, 2, 1.0, 10.0, 1.0);
  // The boundary exists and sits inside the scan: short commands carry a
  // little farther than the calibrated reference phrase, but not past
  // ~8 m at 18.7 W.
  EXPECT_GE(range, 2.0);
  EXPECT_LE(range, 8.0);
}

}  // namespace
}  // namespace ivc::sim
