#include "sim/corpus.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace ivc::sim {
namespace {

corpus_config tiny_config() {
  corpus_config cfg;
  cfg.genuine_distances_m = {1.0};
  cfg.genuine_levels_db = {65.0};
  cfg.genuine_per_combo = 1;
  cfg.attack_distances_m = {2.0, 5.0};
  cfg.attack_powers_w = {60.0};
  cfg.attack_trials_per_combo = 1;
  cfg.rig = attack::long_range_rig();
  cfg.rig.total_power_w = 60.0;
  cfg.max_attack_commands = 2;
  cfg.max_genuine_phrases = 6;
  return cfg;
}

TEST(corpus, builds_both_classes_into_both_halves) {
  const defense_corpus corpus = build_defense_corpus(tiny_config(), 11);
  for (const defense::labelled_features* half :
       {&corpus.train, &corpus.test}) {
    EXPECT_GE(half->size(), 8u);
    EXPECT_TRUE(std::any_of(half->y.begin(), half->y.end(),
                            [](int y) { return y == 0; }));
    EXPECT_TRUE(std::any_of(half->y.begin(), half->y.end(),
                            [](int y) { return y == 1; }));
  }
  EXPECT_EQ(corpus.test_captures.size(), corpus.test.size());
  EXPECT_EQ(corpus.test_labels.size(), corpus.test.size());
}

TEST(corpus, split_covers_attack_conditions_in_both_halves) {
  // The regression this guards: a round-robin split once sent every
  // near-distance attack to train and every far one to test, teaching
  // the classifier a distance artifact. With the hash split, attack
  // samples must appear in both halves.
  corpus_config cfg = tiny_config();
  cfg.max_attack_commands = 4;  // 8 attack samples across 2 distances
  const defense_corpus corpus = build_defense_corpus(cfg, 12);
  const auto attacks_in = [](const defense::labelled_features& set) {
    return std::count(set.y.begin(), set.y.end(), 1);
  };
  EXPECT_GE(attacks_in(corpus.train), 2);
  EXPECT_GE(attacks_in(corpus.test), 2);
}

TEST(corpus, deterministic_for_fixed_seed) {
  const defense_corpus a = build_defense_corpus(tiny_config(), 13);
  const defense_corpus b = build_defense_corpus(tiny_config(), 13);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.x[i], b.train.x[i]);
    EXPECT_EQ(a.train.y[i], b.train.y[i]);
  }
}

TEST(corpus, labels_match_captures) {
  const defense_corpus corpus = build_defense_corpus(tiny_config(), 14);
  // Attack captures in the test half must look attack-like on average:
  // higher waveform trace correlation than genuine ones.
  double attack_mean = 0.0;
  double genuine_mean = 0.0;
  double attack_n = 0.0;
  double genuine_n = 0.0;
  for (std::size_t i = 0; i < corpus.test.size(); ++i) {
    if (corpus.test.y[i] == 1) {
      attack_mean += corpus.test.x[i][4];
      attack_n += 1.0;
    } else {
      genuine_mean += corpus.test.x[i][4];
      genuine_n += 1.0;
    }
  }
  ASSERT_GT(attack_n, 0.0);
  ASSERT_GT(genuine_n, 0.0);
  EXPECT_GT(attack_mean / attack_n, genuine_mean / genuine_n);
}

TEST(corpus, rejects_empty_conditions) {
  corpus_config bad = tiny_config();
  bad.attack_distances_m.clear();
  EXPECT_THROW(build_defense_corpus(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ivc::sim
