#include "sim/runlog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace ivc::sim {
namespace {

class runlog_test : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path.c_str()); }
  const std::string path = "runlog_test.jsonl";
};

run_record sample_record(double rate) {
  run_record r;
  r.figure = "F-R9";
  r.grid_signature = "ambient_db*phrase|27|0011223344556677";
  r.seed = 91;
  r.trials = 3;
  r.metrics = {{"fpr", rate}, {"held_out_accuracy", 0.97}};
  return r;
}

TEST_F(runlog_test, append_then_read_round_trips) {
  run_record r = sample_record(0.125);
  // Awkward characters must survive the JSONL encoding.
  r.figure = "F-R9 \"genuine\", side\n";
  append_run_record(path, r);

  const std::vector<run_record> records = read_run_log(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].figure, r.figure);
  EXPECT_EQ(records[0].grid_signature, r.grid_signature);
  EXPECT_EQ(records[0].seed, 91u);
  EXPECT_EQ(records[0].trials, 3u);
  EXPECT_FALSE(records[0].timestamp.empty());  // stamped on append
  ASSERT_EQ(records[0].metrics.size(), 2u);
  EXPECT_EQ(records[0].metrics[0].first, "fpr");
  EXPECT_DOUBLE_EQ(records[0].metrics[0].second, 0.125);
}

TEST_F(runlog_test, append_is_append_only) {
  append_run_record(path, sample_record(0.1));
  append_run_record(path, sample_record(0.2));
  EXPECT_EQ(read_run_log(path).size(), 2u);
}

TEST_F(runlog_test, torn_lines_are_skipped) {
  append_run_record(path, sample_record(0.1));
  {
    std::ofstream out{path, std::ios::app};
    out << "{\"figure\": \"torn";  // no closing quote/brace
  }
  EXPECT_EQ(read_run_log(path).size(), 1u);
}

TEST_F(runlog_test, crash_mid_append_leaves_intact_prefix_readable) {
  // A process dying inside append_run_record leaves the log ending in a
  // partial record. Simulate every possible tear point: truncate the
  // trailing line one byte at a time and require the reader to return
  // exactly the intact records every time — never a crash, never a
  // phantom record, never losing the good prefix.
  append_run_record(path, sample_record(0.1));
  append_run_record(path, sample_record(0.2));
  append_run_record(path, sample_record(0.3));

  std::string full;
  {
    std::ifstream in{path, std::ios::binary};
    full.assign(std::istreambuf_iterator<char>{in},
                std::istreambuf_iterator<char>{});
  }
  // Start of the final record: one past the newline that ends record 2.
  const std::size_t last_line =
      full.rfind('\n', full.size() - 2) + 1;
  ASSERT_GT(last_line, 0u);
  ASSERT_LT(last_line, full.size());

  for (std::size_t cut = last_line; cut < full.size() - 1; ++cut) {
    {
      std::ofstream out{path, std::ios::binary | std::ios::trunc};
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    const std::vector<run_record> records = read_run_log(path);
    ASSERT_EQ(records.size(), 2u) << "tear at byte " << cut;
    EXPECT_DOUBLE_EQ(records[0].metrics[0].second, 0.1);
    EXPECT_DOUBLE_EQ(records[1].metrics[0].second, 0.2);
  }
  // The complete file still reads all three.
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  EXPECT_EQ(read_run_log(path).size(), 3u);
}

TEST_F(runlog_test, missing_file_reads_empty) {
  EXPECT_TRUE(read_run_log("no_such_runlog.jsonl").empty());
}

TEST(runlog_signature, tracks_grid_shape_not_metrics) {
  result_table a{{"ambient_db"}, {"rate"}};
  a.add_row({{"30"}, {30.0}, {0.1}});
  result_table b{{"ambient_db"}, {"rate"}};
  b.add_row({{"30"}, {30.0}, {0.9}});  // same grid, different result
  EXPECT_EQ(grid_signature(a), grid_signature(b));

  result_table c{{"ambient_db"}, {"rate"}};
  c.add_row({{"50"}, {50.0}, {0.1}});  // different swept point
  EXPECT_NE(grid_signature(a), grid_signature(c));
}

TEST(runlog_diff, latest_run_diffs_against_previous_same_key) {
  std::vector<run_record> records;
  records.push_back(sample_record(0.30));
  run_record other = sample_record(0.5);
  other.figure = "F-R10";  // distinct key, interleaved
  records.push_back(other);
  records.push_back(sample_record(0.20));
  records.push_back(sample_record(0.10));

  const std::vector<run_diff> diffs = diff_latest_runs(records);
  ASSERT_EQ(diffs.size(), 2u);  // same-key records collapse

  // First-seen key order.
  EXPECT_EQ(diffs[0].latest.figure, "F-R9");
  EXPECT_EQ(diffs[0].occurrences, 3u);
  ASSERT_TRUE(diffs[0].has_previous);
  // Latest against the *previous* record, not the first.
  ASSERT_EQ(diffs[0].deltas.size(), 2u);
  EXPECT_EQ(diffs[0].deltas[0].name, "fpr");
  EXPECT_DOUBLE_EQ(diffs[0].deltas[0].latest, 0.10);
  EXPECT_DOUBLE_EQ(diffs[0].deltas[0].previous, 0.20);

  EXPECT_EQ(diffs[1].latest.figure, "F-R10");
  EXPECT_EQ(diffs[1].occurrences, 1u);
  EXPECT_FALSE(diffs[1].has_previous);
}

TEST(runlog_diff, records_with_different_seeds_do_not_collide) {
  run_record a = sample_record(0.1);
  run_record b = sample_record(0.2);
  b.seed = 92;
  const std::vector<run_diff> diffs = diff_latest_runs({a, b});
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_FALSE(diffs[0].has_previous);
  EXPECT_FALSE(diffs[1].has_previous);
}

TEST(runlog_diff, records_with_different_trial_counts_do_not_collide) {
  // A --trials 1 CI smoke and the full default run sweep the same grid
  // with the same seed, but they are not the same experiment.
  run_record smoke = sample_record(0.1);
  smoke.trials = 1;
  const std::vector<run_diff> diffs =
      diff_latest_runs({sample_record(0.3), smoke});
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_FALSE(diffs[0].has_previous);
  EXPECT_FALSE(diffs[1].has_previous);
}

TEST_F(runlog_test, large_seeds_round_trip_exactly) {
  run_record r = sample_record(0.1);
  r.seed = 0x9e37'79b9'7f4a'7c15ULL;  // above 2^53: breaks via a double
  append_run_record(path, r);
  const std::vector<run_record> records = read_run_log(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seed, 0x9e37'79b9'7f4a'7c15ULL);
}

}  // namespace
}  // namespace ivc::sim
